//! # threadscan-repro — reproduction of *ThreadScan: Automatic and
//! Scalable Memory Reclamation* (SPAA 2015)
//!
//! Façade crate re-exporting the workspace:
//!
//! * [`threadscan`] — the collector core (delete buffers, conservative
//!   marking, sweep);
//! * [`sigscan`] — the POSIX-signal platform (the paper's mechanism);
//! * [`simthread`] — the deterministic simulated platform and protocol
//!   model checker;
//! * [`smr`] — the five reclamation schemes of the evaluation;
//! * [`structures`] — Harris list, lock-free hash table, lazy skip list,
//!   lazy list, Shavit–Lotan priority queue, split-ordered hash table;
//! * [`workload`] — the §6 methodology harness (uniform/zipfian mixes,
//!   set and priority-queue runners);
//! * [`alloc`] — the TCMalloc-style thread-caching allocator substrate.
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! figure-regeneration binaries.

#![warn(missing_docs)]

pub use threadscan;
pub use ts_alloc as alloc;
pub use ts_sigscan as sigscan;
pub use ts_simthread as simthread;
pub use ts_smr as smr;
pub use ts_structures as structures;
pub use ts_workload as workload;

/// Convenience: a ThreadScan SMR scheme over real POSIX signals with the
/// paper-default configuration.
pub fn default_threadscan() -> ts_smr::ThreadScanSmr<ts_sigscan::SignalPlatform> {
    ts_smr::ThreadScanSmr::new(
        ts_sigscan::SignalPlatform::new().expect("POSIX signal platform unavailable"),
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_constructs_real_scheme() {
        use ts_smr::Smr;
        let scheme = super::default_threadscan();
        assert_eq!(scheme.name(), "threadscan");
        let _h = scheme.register();
    }
}
