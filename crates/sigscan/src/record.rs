//! Per-thread registration records.
//!
//! Each `Collector::register` call on a thread produces one
//! [`ThreadRecord`]: the thread's pthread id, its stack bounds, and the
//! collector-specific extra roots (§4.3 heap blocks). Records are linked
//! into a thread-local list that the signal handler walks; a thread
//! registered with several collectors scans its stack and registers once
//! per round and its heap blocks once per registration.

use std::cell::Cell;
use std::sync::Arc;

use threadscan::ThreadRoots;

use crate::stackbounds::StackBounds;

/// One (thread × collector) registration.
pub struct ThreadRecord {
    /// pthread id used as the signal target.
    pub(crate) pthread: libc::pthread_t,
    /// The registering thread's stack bounds.
    pub(crate) stack: StackBounds,
    /// Extra roots contributed by this registration.
    pub(crate) roots: Arc<ThreadRoots>,
    /// Next record of the same thread (thread-local intrusive list). Only
    /// the owning thread writes this; the owning thread's signal handler
    /// reads it. Single-word reads/writes on the same thread are always
    /// consistent with respect to that thread's own signal handlers.
    pub(crate) next: Cell<*const ThreadRecord>,
}

// SAFETY: `next` is only touched by the owning thread and its signal
// handler (same thread); all other fields are immutable after construction
// or internally synchronized (`ThreadRoots` uses atomics).
unsafe impl Send for ThreadRecord {}
unsafe impl Sync for ThreadRecord {}

impl ThreadRecord {
    pub(crate) fn new(stack: StackBounds, roots: Arc<ThreadRoots>) -> Self {
        Self {
            pthread: unsafe { libc::pthread_self() },
            stack,
            roots,
            next: Cell::new(std::ptr::null()),
        }
    }

    /// Stack bounds captured at registration (diagnostics).
    #[allow(dead_code)] // used by unit tests and debugging aids
    pub fn stack_bounds(&self) -> StackBounds {
        self.stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stackbounds::current_stack_bounds;

    #[test]
    fn record_captures_calling_thread_identity() {
        let roots = Arc::new(ThreadRoots::new(4));
        let rec = ThreadRecord::new(current_stack_bounds().unwrap(), roots);
        assert_eq!(rec.pthread, unsafe { libc::pthread_self() });
        let local = 0u8;
        assert!(rec.stack_bounds().contains(&local as *const u8 as usize));
        assert!(rec.next.get().is_null());
    }
}
