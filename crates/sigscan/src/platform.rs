//! [`SignalPlatform`]: the paper's OS-signaling mechanism as a
//! [`threadscan::Platform`].

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use threadscan::{Platform, ScanOutcome, ScanSession, SelfScanContext, ThreadRoots};

use crate::handler;
use crate::record::ThreadRecord;
use crate::stackbounds::current_stack_bounds;

/// How long `scan_all` waits for acknowledgments before concluding that a
/// registered thread leaked (exited without dropping its handle) and
/// panicking with a diagnostic instead of hanging the process forever.
const ACK_TIMEOUT: Duration = Duration::from_secs(30);

/// The real ThreadScan platform: POSIX signals + conservative stack and
/// register scanning.
///
/// # Signal ownership
///
/// The configured signal (default `SIGUSR1`) must be reserved for
/// ThreadScan: application code must neither install a handler for it nor
/// send it to threads of this process. A stray in-round signal to a
/// registered thread would be double-counted as an acknowledgment.
///
/// # Thread discipline
///
/// Every thread that accesses protected data must hold a registration
/// (collector handle) while doing so, and must drop it before exiting.
/// A thread that exits while registered leaves a dangling pthread id in
/// the registry; signaling it is undefined behaviour at the OS level.
pub struct SignalPlatform {
    inner: Arc<Inner>,
}

struct Inner {
    signo: libc::c_int,
    registry: Mutex<Vec<Arc<ThreadRecord>>>,
    rounds: AtomicUsize,
    signals_sent: AtomicUsize,
}

impl SignalPlatform {
    /// Creates a platform using `SIGUSR1`.
    pub fn new() -> io::Result<Self> {
        Self::with_signal(libc::SIGUSR1)
    }

    /// Creates a platform using a caller-chosen signal (e.g.
    /// `libc::SIGRTMIN() + k` to keep `SIGUSR1` free for the application).
    pub fn with_signal(signo: libc::c_int) -> io::Result<Self> {
        handler::install(signo)?;
        Ok(Self {
            inner: Arc::new(Inner {
                signo,
                registry: Mutex::new(Vec::new()),
                rounds: AtomicUsize::new(0),
                signals_sent: AtomicUsize::new(0),
            }),
        })
    }

    /// Number of currently registered threads.
    pub fn registered_threads(&self) -> usize {
        self.inner.registry.lock().len()
    }

    /// Completed scan rounds.
    pub fn rounds(&self) -> usize {
        self.inner.rounds.load(Ordering::Relaxed)
    }

    /// Total signals sent across all rounds.
    pub fn signals_sent(&self) -> usize {
        self.inner.signals_sent.load(Ordering::Relaxed)
    }

    /// The signal number in use.
    pub fn signal(&self) -> libc::c_int {
        self.inner.signo
    }
}

/// RAII registration; dropping it unregisters the thread. Produced by
/// `Collector::register` via [`Platform::register_current`].
pub struct RegistrationToken {
    inner: Arc<Inner>,
    rec: Arc<ThreadRecord>,
}

impl Drop for RegistrationToken {
    fn drop(&mut self) {
        // The round lock guarantees no scan is mid-flight while this
        // thread's record disappears (an in-flight round has either
        // already received our handler's ack or will get it while we block
        // here — signals interrupt the futex wait and are handled).
        let _round = handler::round_lock();
        handler::detach_record(&self.rec);
        self.inner
            .registry
            .lock()
            .retain(|r| !Arc::ptr_eq(r, &self.rec));
    }
}

// SAFETY: `scan_all` signals every registered thread; each handler scans
// the full register file from `ucontext_t`, the stack from the interrupted
// frame to its top, and all registered heap blocks, then acks — exactly the
// contract `threadscan::Platform` requires. Registration changes are
// serialized against rounds by the process-global round lock.
unsafe impl Platform for SignalPlatform {
    type ThreadToken = RegistrationToken;

    fn register_current(&self, roots: Arc<ThreadRoots>) -> RegistrationToken {
        let stack = current_stack_bounds()
            .expect("ThreadScan: cannot determine stack bounds for this thread");
        let rec = Arc::new(ThreadRecord::new(stack, roots));
        {
            let _round = handler::round_lock();
            handler::attach_record(&rec);
            self.inner.registry.lock().push(Arc::clone(&rec));
        }
        RegistrationToken {
            inner: Arc::clone(&self.inner),
            rec,
        }
    }

    fn scan_all(&self, session: &ScanSession<'_>, reclaimer: &SelfScanContext) -> ScanOutcome {
        // Serialize rounds process-wide: there is a single global session
        // slot shared by every collector in the process.
        let _round = handler::round_lock();
        let snapshot: Vec<Arc<ThreadRecord>> = self.inner.registry.lock().clone();
        if snapshot.is_empty() {
            // No registered threads ⇒ no thread may hold references
            // (accessors are required to register) ⇒ nothing to scan.
            return ScanOutcome { threads_scanned: 0 };
        }

        // SAFETY: we hold the round lock and wait for all acks below
        // before `end_round`; the session outlives the round.
        unsafe { handler::begin_round(session) };

        // Signal every *other* registered thread, once per distinct thread
        // (a thread may carry several registrations). The reclaimer itself
        // scans directly from its boundary context below — signaling
        // ourselves would scan the collect machinery's own dead frames,
        // which hold copies of every aggregated node address.
        let me = unsafe { libc::pthread_self() };
        let mut targets: Vec<libc::pthread_t> = snapshot.iter().map(|r| r.pthread).collect();
        targets.sort_unstable();
        targets.dedup();
        let telemetry = session.telemetry();
        if let Some((sink, id)) = telemetry {
            sink.event(threadscan::PhaseKind::Announce, id, targets.len() as u64);
        }
        let mut expected = 0usize;
        for t in targets {
            if unsafe { libc::pthread_equal(t, me) } != 0 {
                continue;
            }
            let rc = unsafe { libc::pthread_kill(t, self.inner.signo) };
            if rc == 0 {
                if let Some((sink, id)) = telemetry {
                    sink.event(threadscan::PhaseKind::SignalSent, id, expected as u64);
                }
                expected += 1;
            } else {
                // ESRCH: the thread is gone but never unregistered. Its
                // references are gone with it; skip it but flag the bug.
                debug_assert_eq!(
                    rc,
                    libc::ESRCH,
                    "pthread_kill failed with unexpected error {rc}"
                );
            }
        }
        self.inner
            .signals_sent
            .fetch_add(expected, Ordering::Relaxed);

        // The reclaimer's own scan: stack above the application boundary
        // plus the callee-saved registers captured there (Algorithm 1
        // line 7).
        if handler::scan_self(session, reclaimer) {
            expected += 1;
        }

        // Wait for all acknowledgments (Algorithm 1, line 9).
        let start = Instant::now();
        let mut spins = 0u32;
        while session.acks_received() < expected {
            spins = spins.wrapping_add(1);
            // Yield early and often: on low-core-count machines the
            // signaled threads need CPU time to run their handlers.
            if spins.is_multiple_of(32) {
                std::thread::yield_now();
                if start.elapsed() > ACK_TIMEOUT {
                    handler::end_round();
                    panic!(
                        "ThreadScan: {}/{} acks after {:?}; a registered thread \
                         is unresponsive or exited without unregistering",
                        session.acks_received(),
                        expected,
                        ACK_TIMEOUT
                    );
                }
            } else {
                std::hint::spin_loop();
            }
        }

        if let Some((sink, id)) = telemetry {
            sink.event(threadscan::PhaseKind::AllAcked, id, expected as u64);
        }
        handler::end_round();
        self.inner.rounds.fetch_add(1, Ordering::Relaxed);
        ScanOutcome {
            threads_scanned: expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threadscan::{Collector, CollectorConfig};

    #[test]
    fn register_and_unregister_maintain_registry() {
        let platform = SignalPlatform::new().unwrap();
        assert_eq!(platform.registered_threads(), 0);
        let roots = Arc::new(ThreadRoots::new(4));
        let token = platform.register_current(roots);
        assert_eq!(platform.registered_threads(), 1);
        assert_eq!(handler::attached_records(), 1);
        drop(token);
        assert_eq!(platform.registered_threads(), 0);
        assert_eq!(handler::attached_records(), 0);
    }

    #[test]
    fn multiple_registrations_per_thread_stack() {
        let platform = SignalPlatform::new().unwrap();
        let t1 = platform.register_current(Arc::new(ThreadRoots::new(4)));
        let t2 = platform.register_current(Arc::new(ThreadRoots::new(4)));
        assert_eq!(platform.registered_threads(), 2);
        assert_eq!(handler::attached_records(), 2);
        drop(t1); // out-of-order drop exercises mid-list detach
        assert_eq!(handler::attached_records(), 1);
        drop(t2);
        assert_eq!(handler::attached_records(), 0);
    }

    /// Deep stack churn: overwrites the region of the stack that dead
    /// frames (and spilled registers) may have left a stale pointer in.
    #[inline(never)]
    fn churn(depth: usize) -> usize {
        let noise = std::hint::black_box([depth; 64]);
        if depth == 0 {
            noise[0]
        } else {
            churn(depth - 1) + noise[63]
        }
    }

    /// End-to-end: a stack-held reference must survive a real
    /// signal-driven collect ("must not free" is the safety direction and
    /// is deterministic — our live frame holds the pointer and is always
    /// scanned).
    #[test]
    fn stack_reference_blocks_reclamation() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Node(#[allow(dead_code)] [u64; 16]);
        impl Drop for Node {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        let collector = Collector::with_config(
            SignalPlatform::new().unwrap(),
            CollectorConfig::default().with_buffer_capacity(4),
        );
        let handle = collector.register();

        let pinned = Box::into_raw(Box::new(Node([7; 16])));
        let held = std::hint::black_box(pinned); // live stack copy

        let before = DROPS.load(Ordering::SeqCst);
        unsafe { handle.retire(pinned) };
        handle.flush(); // forced round: our frame holds `held`
        handle.flush();
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            before,
            "node referenced from this stack must not be freed"
        );
        assert!(collector.pending_estimate() >= 1);
        assert_eq!(unsafe { (*std::hint::black_box(held)).0[0] }, 7);
        drop(handle);
        // Collector drop reclaims the survivor; our reference dies with
        // the test, which never dereferences it again.
        drop(collector);
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }

    /// Liveness direction: nodes whose references only ever lived in
    /// frames that have since returned keep getting reclaimed.
    ///
    /// A conservative scanner may pin *individual* addresses forever: a
    /// stale word anywhere in the scanned region (e.g. garbage left in a
    /// glibc-cached thread stack by an earlier test whose freed node's
    /// address malloc then reuses) is indistinguishable from a live
    /// reference. So the testable property is not "this one node is
    /// freed" but "fresh unreferenced nodes are freed" — a stale word can
    /// only match a bounded set of addresses, not a stream of new ones.
    #[test]
    fn unreferenced_node_is_eventually_reclaimed() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Node(#[allow(dead_code)] [u64; 16]);
        impl Drop for Node {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        /// Allocate and immediately retire in a frame that dies on return,
        /// so the outer frame never holds the pointer.
        #[inline(never)]
        fn retire_unheld(handle: &threadscan::ThreadHandle<SignalPlatform>) {
            let p = Box::into_raw(Box::new(Node([3; 16])));
            unsafe { handle.retire(p) };
        }

        let collector = Collector::with_config(
            SignalPlatform::new().unwrap(),
            CollectorConfig::default().with_buffer_capacity(64),
        );
        let handle = collector.register();
        let before = DROPS.load(Ordering::SeqCst);

        let mut freed = false;
        for _ in 0..256 {
            retire_unheld(&handle);
            std::hint::black_box(churn(64));
            handle.flush();
            if DROPS.load(Ordering::SeqCst) > before {
                freed = true;
                break;
            }
        }
        assert!(freed, "unreferenced nodes should eventually be reclaimed");
        drop(handle);
    }

    /// Cross-thread round-trip: another registered thread holding the only
    /// reference pins the node; the reclaimer must observe the mark set by
    /// that thread's signal handler. No asserts run between barrier
    /// points (a panic would strand the peer); outcomes are collected and
    /// checked after all rounds end.
    ///
    /// The protocol runs several rounds with fresh nodes. The pinning
    /// direction is deterministic and must hold in *every* round. The
    /// release direction ("freed once the peer lets go") is only
    /// *usually* true under conservative scanning: a stale word in a
    /// glibc-cached thread stack or spilled register is
    /// indistinguishable from a live reference and can pin one
    /// particular address forever (see
    /// `unreferenced_node_is_eventually_reclaimed`). A stale alias can
    /// shadow at most the single address it happens to contain — rounds
    /// keep their failed predecessors' nodes outstanding, so every round
    /// retires a distinct address — and hence most rounds must reclaim.
    #[test]
    fn other_threads_reference_is_detected_via_signal() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;
        /// Reports its drop through a per-round counter, so a prior
        /// round's stale-pinned node freed by a *later* round's flushes
        /// cannot be mistaken for that round's own node dropping.
        struct Node {
            drops: Arc<AtomicUsize>,
            payload: [u64; 16],
        }
        impl Drop for Node {
            fn drop(&mut self) {
                self.drops.fetch_add(1, Ordering::SeqCst);
            }
        }

        /// Peer helper: loads the reference from the (heap-based) slot and
        /// holds it on its stack across two barrier points, then returns
        /// (killing the frame).
        #[inline(never)]
        fn hold_reference(slot: &AtomicUsize, barrier: &Barrier) {
            barrier.wait(); // (0) address published
            let held = std::hint::black_box(slot.load(Ordering::SeqCst) as *const Node);
            barrier.wait(); // (1) holding
            barrier.wait(); // (2) reclaimer's pinned round done
            std::hint::black_box(unsafe { (*held).payload[0] });
        }

        /// Main helper: allocates and retires in a dying frame so the main
        /// test frame never contains the pointer.
        #[inline(never)]
        fn make_and_retire(
            handle: &threadscan::ThreadHandle<SignalPlatform>,
            slot: &AtomicUsize,
            peer_has_it: &Barrier,
            drops: &Arc<AtomicUsize>,
        ) {
            let p = Box::into_raw(Box::new(Node {
                drops: Arc::clone(drops),
                payload: [9; 16],
            }));
            slot.store(p as usize, Ordering::SeqCst);
            peer_has_it.wait(); // (0) peer picked it up
            unsafe { handle.retire(p) };
        }

        /// One full hold/release round; returns (pinned, freed).
        fn run_round(
            collector: &Arc<Collector<SignalPlatform>>,
            handle: &threadscan::ThreadHandle<SignalPlatform>,
        ) -> (bool, bool) {
            // Heap-based slot: its value (the raw address) must not live
            // in any scanned stack frame, or it would pin the node
            // itself.
            let slot = Arc::new(AtomicUsize::new(0));
            let barrier = Barrier::new(2);
            let drops = Arc::new(AtomicUsize::new(0));
            let mut pinned = false;
            let mut freed = false;

            std::thread::scope(|s| {
                let collector2 = Arc::clone(collector);
                let barrier2 = &barrier;
                let slot2 = Arc::clone(&slot);
                s.spawn(move || {
                    let handle = collector2.register();
                    hold_reference(&slot2, barrier2); // holds across (0)-(2)
                    std::hint::black_box(churn(64)); // scrub stale slots
                    barrier2.wait(); // (3) released
                    barrier2.wait(); // (4) reclaimer done
                    drop(handle);
                });

                make_and_retire(handle, &slot, &barrier, &drops); // passes (0)
                std::hint::black_box(churn(64)); // scrub our own stale slots
                barrier.wait(); // (1) peer is holding
                handle.flush();
                handle.flush();
                pinned = drops.load(Ordering::SeqCst) == 0;
                barrier.wait(); // (2) let the peer release
                barrier.wait(); // (3) peer released + churned
                for _ in 0..256 {
                    std::hint::black_box(churn(64));
                    handle.flush();
                    if drops.load(Ordering::SeqCst) > 0 {
                        freed = true;
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                barrier.wait(); // (4)
            });
            (pinned, freed)
        }

        // One collector across rounds: a round whose node stays pinned by
        // stale garbage leaves it outstanding (not freed), so the next
        // round's allocation cannot reuse that address.
        let collector = Collector::with_config(
            SignalPlatform::new().unwrap(),
            CollectorConfig::default().with_buffer_capacity(64),
        );
        let handle = collector.register();
        const ROUNDS: usize = 4;
        let mut pinned_rounds = 0;
        let mut freed_rounds = 0;
        for _ in 0..ROUNDS {
            let (pinned, freed) = run_round(&collector, &handle);
            pinned_rounds += pinned as usize;
            freed_rounds += freed as usize;
        }
        drop(handle);

        assert_eq!(
            pinned_rounds, ROUNDS,
            "peer stack reference must pin the node in every round"
        );
        assert!(
            freed_rounds * 2 >= ROUNDS,
            "nodes must usually be reclaimed once the peer drops them \
             ({freed_rounds}/{ROUNDS} rounds reclaimed)"
        );
    }
}
