//! Register capture from the signal handler's `ucontext_t`.
//!
//! `TS-Scan` examines "each word chunk in thread's stack **and registers**"
//! (Algorithm 1, line 19). The third argument of an `SA_SIGINFO` handler
//! points at a `ucontext_t` holding the interrupted thread's complete
//! register file — exactly the registers that may cache a node reference
//! that has not (yet) been spilled to the stack.

/// Upper bound on general-purpose registers across supported targets.
pub const MAX_REGS: usize = 34;

/// Extracts the interrupted context's general-purpose registers into `out`,
/// returning how many were written.
///
/// Unsupported architectures return 0: the scan then relies on the stack
/// alone, which weakens conservatism (a register-only reference could be
/// missed) — hence the compile-time error below for unknown targets unless
/// the `permissive-arch` feature is set.
///
/// # Safety
///
/// `uctx` must be the `ucontext_t` pointer passed by the kernel to an
/// `SA_SIGINFO` signal handler on this thread.
pub unsafe fn capture_registers(uctx: *mut libc::c_void, out: &mut [usize; MAX_REGS]) -> usize {
    if uctx.is_null() {
        return 0;
    }
    imp::capture(uctx, out)
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use super::MAX_REGS;

    /// x86_64 Linux: `uc_mcontext.gregs` holds 23 entries (NGREG), of which
    /// the 16 architectural GPRs plus RIP can carry pointers; we scan all
    /// entries — the extras (flags, segment/err words) are just noise words
    /// that almost never alias a 172-byte heap node.
    pub unsafe fn capture(uctx: *mut libc::c_void, out: &mut [usize; MAX_REGS]) -> usize {
        let ctx = &*(uctx as *const libc::ucontext_t);
        let gregs = &ctx.uc_mcontext.gregs;
        let n = gregs.len().min(MAX_REGS);
        for (slot, &reg) in out.iter_mut().zip(gregs.iter()) {
            *slot = reg as usize;
        }
        n
    }
}

#[cfg(all(target_arch = "aarch64", target_os = "linux"))]
mod imp {
    use super::MAX_REGS;

    /// aarch64 Linux: x0..x30, sp, pc.
    pub unsafe fn capture(uctx: *mut libc::c_void, out: &mut [usize; MAX_REGS]) -> usize {
        let ctx = &*(uctx as *const libc::ucontext_t);
        let mc = &ctx.uc_mcontext;
        let mut n = 0;
        for &reg in mc.regs.iter() {
            if n == MAX_REGS {
                break;
            }
            out[n] = reg as usize;
            n += 1;
        }
        if n < MAX_REGS {
            out[n] = mc.sp as usize;
            n += 1;
        }
        if n < MAX_REGS {
            out[n] = mc.pc as usize;
            n += 1;
        }
        n
    }
}

#[cfg(not(any(
    all(target_arch = "x86_64", target_os = "linux"),
    all(target_arch = "aarch64", target_os = "linux"),
)))]
mod imp {
    use super::MAX_REGS;

    #[cfg(not(feature = "permissive-arch"))]
    compile_error!(
        "ts-sigscan supports x86_64-linux and aarch64-linux; enable the \
         `permissive-arch` feature to proceed with stack-only scanning \
         (weaker conservatism)"
    );

    pub unsafe fn capture(_uctx: *mut libc::c_void, _out: &mut [usize; MAX_REGS]) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

    static CAPTURED: AtomicUsize = AtomicUsize::new(0);
    static SENTINEL_SEEN: AtomicUsize = AtomicUsize::new(0);
    static SENTINEL: AtomicPtr<u8> = AtomicPtr::new(std::ptr::null_mut());

    extern "C" fn probe_handler(
        _sig: libc::c_int,
        _info: *mut libc::siginfo_t,
        uctx: *mut libc::c_void,
    ) {
        let mut regs = [0usize; MAX_REGS];
        let n = unsafe { capture_registers(uctx, &mut regs) };
        CAPTURED.store(n, Ordering::SeqCst);
        let sentinel = SENTINEL.load(Ordering::SeqCst) as usize;
        if regs[..n].contains(&sentinel) {
            SENTINEL_SEEN.store(1, Ordering::SeqCst);
        }
    }

    /// Raising a signal at ourselves and capturing the context must yield a
    /// plausible register file (non-zero count; stack pointer among them).
    #[test]
    fn capture_from_live_handler_returns_registers() {
        unsafe {
            let mut sa: libc::sigaction = std::mem::zeroed();
            sa.sa_sigaction = probe_handler as extern "C" fn(_, _, _) as usize;
            sa.sa_flags = libc::SA_SIGINFO | libc::SA_RESTART;
            libc::sigemptyset(&mut sa.sa_mask);
            let mut old: libc::sigaction = std::mem::zeroed();
            assert_eq!(libc::sigaction(libc::SIGURG, &sa, &mut old), 0);

            // Park a recognizable value where the compiler will very likely
            // keep it live in a register across the kill call.
            let marker = Box::new(0xfeed_f00du32);
            let ptr = Box::into_raw(marker);
            SENTINEL.store(ptr.cast(), Ordering::SeqCst);
            let held = std::hint::black_box(ptr);

            libc::pthread_kill(libc::pthread_self(), libc::SIGURG);

            // Keep `held` live past the signal.
            assert_eq!(*std::hint::black_box(held), 0xfeed_f00d);
            drop(Box::from_raw(held));

            assert!(
                CAPTURED.load(Ordering::SeqCst) >= 16,
                "expected at least 16 GPRs, got {}",
                CAPTURED.load(Ordering::SeqCst)
            );
            // Note: we do NOT assert SENTINEL_SEEN — the value may have been
            // spilled to the stack instead; register capture is one half of
            // the conservative net, the stack scan is the other.

            libc::sigaction(libc::SIGURG, &old, std::ptr::null_mut());
        }
    }
}
