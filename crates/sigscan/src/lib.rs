//! # ts-sigscan — the OS-signaling platform for ThreadScan
//!
//! Implements `threadscan::Platform` exactly the way the paper does (§4.2):
//!
//! * inter-thread communication via **POSIX signals** (`sigaction` with
//!   `SA_SIGINFO | SA_RESTART`, delivery via `pthread_kill`);
//! * **stack bounds** discovered per thread with `pthread_getattr_np`
//!   (Rust's explicit registration replaces the paper's `pthread_create`
//!   hook);
//! * **register capture** from the handler's `ucontext_t`, so references
//!   living only in registers are still observed;
//! * an acknowledgment counter the reclaimer spins on (Algorithm 1 line 9).
//!
//! ```no_run
//! use threadscan::Collector;
//! use ts_sigscan::SignalPlatform;
//!
//! let collector = Collector::new(SignalPlatform::new().unwrap());
//! let handle = collector.register(); // per accessing thread
//! let node = Box::into_raw(Box::new(42u64));
//! // ... unlink node from the shared structure ...
//! unsafe { handle.retire(node) };
//! ```
//!
//! Linux-only (x86_64 and aarch64). See `SignalPlatform` for the signal
//! ownership and thread-discipline requirements.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![cfg(unix)]

mod handler;
mod record;
pub mod stackbounds;
pub mod ucontext;

mod platform;

pub use platform::{RegistrationToken, SignalPlatform};
pub use stackbounds::{current_stack_bounds, StackBounds};
