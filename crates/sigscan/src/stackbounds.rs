//! Thread stack boundary discovery.
//!
//! The paper (§4.2, "Stack Boundaries") hooks `pthread_create` to learn
//! stack extents. Rust gives us a cleaner seam: threads register explicitly
//! (a collector handle is created on the thread), and at that moment we ask
//! pthreads for the current thread's stack via `pthread_getattr_np` — which
//! works for spawned threads *and* the main thread (glibc consults
//! `/proc/self/maps` for the latter).

use std::io;

/// `[lo, hi)` bounds of the calling thread's stack. The stack grows down
/// from `hi`; a conservative scan of live frames covers `[sp, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackBounds {
    /// Lowest mapped stack address (guard page boundary).
    pub lo: usize,
    /// One past the highest stack address.
    pub hi: usize,
}

impl StackBounds {
    /// Whether `addr` falls inside the stack mapping.
    pub fn contains(&self, addr: usize) -> bool {
        self.lo <= addr && addr < self.hi
    }

    /// Stack size in bytes.
    pub fn size(&self) -> usize {
        self.hi - self.lo
    }
}

/// Queries the calling thread's stack bounds from pthreads.
pub fn current_stack_bounds() -> io::Result<StackBounds> {
    unsafe {
        let mut attr: libc::pthread_attr_t = std::mem::zeroed();
        let rc = libc::pthread_getattr_np(libc::pthread_self(), &mut attr);
        if rc != 0 {
            return Err(io::Error::from_raw_os_error(rc));
        }
        let mut stackaddr: *mut libc::c_void = std::ptr::null_mut();
        let mut stacksize: libc::size_t = 0;
        let rc = libc::pthread_attr_getstack(&attr, &mut stackaddr, &mut stacksize);
        libc::pthread_attr_destroy(&mut attr);
        if rc != 0 {
            return Err(io::Error::from_raw_os_error(rc));
        }
        let lo = stackaddr as usize;
        Ok(StackBounds {
            lo,
            hi: lo + stacksize,
        })
    }
}

/// A best-effort approximation of the calling frame's stack pointer: the
/// address of a fresh local. Anything at lower addresses belongs to callees
/// that have not run yet (or to this helper), so `[approx_sp(), hi)` covers
/// every live caller frame.
#[inline(never)]
pub fn approx_sp() -> usize {
    let marker = 0u8;
    let addr = &marker as *const u8 as usize;
    // Prevent the compiler from eliding the local entirely.
    std::hint::black_box(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_contain_a_local_variable() {
        let bounds = current_stack_bounds().expect("pthread_getattr_np failed");
        let local = 42u64;
        let addr = &local as *const u64 as usize;
        assert!(
            bounds.contains(addr),
            "local {addr:#x} outside stack {bounds:?}"
        );
        assert!(bounds.size() > 4096, "implausibly small stack");
    }

    #[test]
    fn bounds_work_on_spawned_threads() {
        std::thread::Builder::new()
            .stack_size(512 * 1024)
            .spawn(|| {
                let bounds = current_stack_bounds().unwrap();
                let local = 0u8;
                assert!(bounds.contains(&local as *const u8 as usize));
                // Requested size is a lower bound (guard pages etc. vary).
                assert!(bounds.size() >= 512 * 1024);
            })
            .unwrap()
            .join()
            .unwrap();
    }

    #[test]
    fn approx_sp_is_below_caller_frames() {
        let caller_local = 7u32;
        let caller_addr = &caller_local as *const u32 as usize;
        let sp = approx_sp();
        assert!(
            sp <= caller_addr,
            "sp {sp:#x} must not be above caller local {caller_addr:#x}"
        );
        let bounds = current_stack_bounds().unwrap();
        assert!(bounds.contains(sp));
    }

    #[test]
    fn distinct_threads_have_distinct_stacks() {
        let here = current_stack_bounds().unwrap();
        let there = std::thread::spawn(current_stack_bounds)
            .join()
            .unwrap()
            .unwrap();
        assert!(
            here.hi <= there.lo || there.hi <= here.lo,
            "stacks must not overlap: {here:?} vs {there:?}"
        );
    }
}
