//! The signal handler and the process-global round state.
//!
//! One round = one `TS-Collect` scan phase. The reclaimer publishes the
//! active [`ScanSession`] through a global atomic pointer, bumps the round
//! counter, and signals every registered thread. Each handler invocation:
//!
//! 1. loads the session pointer (null ⇒ stray signal, return);
//! 2. deduplicates by round id (a second same-round signal is a no-op);
//! 3. scans the interrupted register file (from `ucontext_t`), the stack
//!    from the interrupted frame upward, and all registered heap blocks —
//!    each word routed through the session's sharded master buffer (fence
//!    lookup, then one per-shard binary search);
//! 4. acknowledges.
//!
//! Everything on this path is async-signal-safe: const-initialized TLS
//! reads, raw memory walks, and atomics. No allocation, locks, or panics
//! (the per-shard views were allocated by the reclaimer when the session
//! was published, never by a handler).

use std::cell::Cell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use parking_lot::Mutex;
use threadscan::ScanSession;

use crate::record::ThreadRecord;
use crate::stackbounds::approx_sp;
use crate::ucontext::{capture_registers, MAX_REGS};

/// Session for the in-flight round (null between rounds). Type-erased; the
/// reclaimer keeps the real session alive until every ack arrives, and the
/// last thing a handler does with it is ack, so the pointer never dangles
/// while a handler can observe it non-null... modulo the stray-signal
/// caveat documented on [`crate::SignalPlatform`].
static ACTIVE_SESSION: AtomicPtr<()> = AtomicPtr::new(ptr::null_mut());

/// Monotonic round id; lets handlers drop duplicate signals in one round.
static CURRENT_ROUND: AtomicUsize = AtomicUsize::new(0);

/// Serializes rounds *and* registration changes process-wide. Held by the
/// reclaimer for the whole broadcast-scan-ack cycle, and by threads while
/// they register/unregister — so a record can never disappear mid-round.
static ROUND_LOCK: Mutex<()> = Mutex::new(());

/// Signal numbers that already have the ThreadScan handler installed.
static INSTALLED: Mutex<Vec<libc::c_int>> = Mutex::new(Vec::new());

thread_local! {
    /// This thread's registration state. Const-initialized and `Drop`-free,
    /// so access never allocates and works at any point in the thread's
    /// lifetime — including inside signal handlers.
    static CTX: ThreadCtx = const {
        ThreadCtx {
            stack: Cell::new((0, 0)),
            head: Cell::new(ptr::null()),
            last_round: Cell::new(0),
        }
    };
}

struct ThreadCtx {
    /// `(lo, hi)` stack bounds, set at first registration.
    stack: Cell<(usize, usize)>,
    /// Head of this thread's [`ThreadRecord`] list.
    head: Cell<*const ThreadRecord>,
    /// Round id this thread last scanned in.
    last_round: Cell<usize>,
}

/// Acquires the process-global round/registration lock.
pub(crate) fn round_lock() -> parking_lot::MutexGuard<'static, ()> {
    ROUND_LOCK.lock()
}

/// Installs the ThreadScan handler for `signo` (idempotent).
pub(crate) fn install(signo: libc::c_int) -> std::io::Result<()> {
    let mut installed = INSTALLED.lock();
    if installed.contains(&signo) {
        return Ok(());
    }
    unsafe {
        let mut sa: libc::sigaction = std::mem::zeroed();
        sa.sa_sigaction = ts_signal_handler as extern "C" fn(_, _, _) as usize;
        // SA_SIGINFO: we need the ucontext for register capture.
        // SA_RESTART: restart interruptible syscalls so application code
        // rarely observes EINTR (paper §4.2, "Signaling").
        sa.sa_flags = libc::SA_SIGINFO | libc::SA_RESTART;
        libc::sigemptyset(&mut sa.sa_mask);
        if libc::sigaction(signo, &sa, ptr::null_mut()) != 0 {
            return Err(std::io::Error::last_os_error());
        }
    }
    installed.push(signo);
    Ok(())
}

/// Publishes `session` as the active round. Caller must hold the round
/// lock. Returns the round id.
///
/// # Safety
///
/// `session` must stay alive (and its master buffer with it) until
/// [`end_round`] is called, which must happen only after every signaled
/// thread has acknowledged.
pub(crate) unsafe fn begin_round(session: &ScanSession<'_>) -> usize {
    let round = CURRENT_ROUND.fetch_add(1, Ordering::Relaxed) + 1;
    ACTIVE_SESSION.store(
        session as *const ScanSession<'_> as *mut (),
        Ordering::Release,
    );
    round
}

/// Retracts the active session. Caller must hold the round lock and have
/// collected all acknowledgments.
pub(crate) fn end_round() {
    ACTIVE_SESSION.store(ptr::null_mut(), Ordering::Release);
}

/// Links `rec` into the calling thread's record list and caches stack
/// bounds for the handler. Caller must hold the round lock.
pub(crate) fn attach_record(rec: &ThreadRecord) {
    CTX.with(|ctx| {
        ctx.stack.set((rec.stack.lo, rec.stack.hi));
        rec.next.set(ctx.head.get());
        ctx.head.set(rec as *const ThreadRecord);
    });
}

/// Unlinks `rec` from the calling thread's record list. Caller must hold
/// the round lock (so no round is mid-flight while the list changes).
pub(crate) fn detach_record(rec: &ThreadRecord) {
    CTX.with(|ctx| {
        let target = rec as *const ThreadRecord;
        let mut cur = ctx.head.get();
        if cur == target {
            ctx.head.set(rec.next.get());
            return;
        }
        while !cur.is_null() {
            // SAFETY: records in the list are kept alive by their tokens,
            // which detach before dropping.
            let cur_ref = unsafe { &*cur };
            if cur_ref.next.get() == target {
                cur_ref.next.set(rec.next.get());
                return;
            }
            cur = cur_ref.next.get();
        }
        debug_assert!(false, "detach_record: record not found in TLS list");
    });
}

/// Number of records attached to the calling thread (diagnostics/tests).
#[allow(dead_code)] // exercised from unit tests; handy when debugging
pub(crate) fn attached_records() -> usize {
    CTX.with(|ctx| {
        let mut n = 0;
        let mut cur = ctx.head.get();
        while !cur.is_null() {
            n += 1;
            cur = unsafe { (*cur).next.get() };
        }
        n
    })
}

/// Scans the calling (reclaimer) thread using its boundary context: the
/// stack from `floor` (the application/collector boundary captured on
/// entry to the collect) to the stack top, the callee-saved registers
/// captured with it, and every registered heap block. Acks on completion.
///
/// Returns `false` (no scan, no ack) when the caller is not registered.
///
/// Scanning from the *live* stack pointer instead would mark every node
/// the collect machinery itself touched during aggregation — see
/// `threadscan::selfscan` for the full argument.
pub(crate) fn scan_self(session: &ScanSession<'_>, ctx: &threadscan::SelfScanContext) -> bool {
    let participates = CTX.with(|c| !c.head.get().is_null());
    if !participates {
        return false;
    }
    if let Some((sink, id)) = session.telemetry() {
        sink.event(threadscan::PhaseKind::ScanBegin, id, 0);
    }
    scan_thread(session, ctx.regs(), Some(ctx.floor));
    if let Some((sink, id)) = session.telemetry() {
        sink.event(
            threadscan::PhaseKind::ScanEnd,
            id,
            session.words_scanned() as u64,
        );
    }
    session.ack();
    true
}

/// Shared scan body: `regs` are pre-captured register words; `floor`
/// overrides the scan's lower stack bound (defaults to the current frame).
#[inline]
fn scan_thread(session: &ScanSession<'_>, regs: &[usize], floor: Option<usize>) {
    session.scan_words(regs);
    CTX.with(|ctx| {
        let (lo, hi) = ctx.stack.get();
        if hi != 0 {
            let sp = floor.unwrap_or_else(approx_sp).max(lo);
            if sp < hi {
                // SAFETY: [sp, hi) is the live portion of this thread's own
                // stack, mapped and readable by construction.
                unsafe { session.scan_region(sp as *const u8, hi as *const u8) };
            }
        }
        let mut cur = ctx.head.get();
        while !cur.is_null() {
            // SAFETY: list records stay alive for the duration of a round
            // (unregistration takes the round lock).
            let rec = unsafe { &*cur };
            rec.roots.scan(session);
            cur = rec.next.get();
        }
    });
}

/// The installed signal handler: `TS-Scan` (Algorithm 1, lines 18-26).
pub(crate) extern "C" fn ts_signal_handler(
    _signo: libc::c_int,
    _info: *mut libc::siginfo_t,
    uctx: *mut libc::c_void,
) {
    let p = ACTIVE_SESSION.load(Ordering::Acquire);
    if p.is_null() {
        return; // stray signal between rounds
    }
    // SAFETY: non-null implies a round is active, and the reclaimer keeps
    // the session alive until every signaled thread (us included) acks.
    let session: &ScanSession<'_> = unsafe { &*(p as *const ScanSession<'_>) };

    let participate = CTX.with(|ctx| {
        if ctx.head.get().is_null() {
            return false; // not registered: not counted, must not ack
        }
        let round = CURRENT_ROUND.load(Ordering::Acquire);
        if ctx.last_round.replace(round) == round {
            return false; // duplicate signal within one round
        }
        true
    });
    if !participate {
        return;
    }

    // Telemetry stamps from handler context: `session.telemetry()` is a
    // plain field read, and the sink's `record` is contractually
    // async-signal-safe (ring write, no locks/allocation). When telemetry
    // is off this is one branch on a plain load — no atomics.
    if let Some((sink, id)) = session.telemetry() {
        sink.event(threadscan::PhaseKind::ScanBegin, id, 0);
    }
    let mut regs = [0usize; MAX_REGS];
    // SAFETY: `uctx` is the kernel-provided ucontext of this SA_SIGINFO
    // handler invocation.
    let n = unsafe { capture_registers(uctx, &mut regs) };
    scan_thread(session, &regs[..n], None);
    if let Some((sink, id)) = session.telemetry() {
        sink.event(
            threadscan::PhaseKind::ScanEnd,
            id,
            session.words_scanned() as u64,
        );
    }
    // The ack is the very last session access (the reclaimer may free the
    // session as soon as the count is complete).
    session.ack();
}
