//! Process-global concerns of the signal platform: multiple collectors,
//! custom signals, and round serialization.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use threadscan::{Collector, CollectorConfig};
use ts_sigscan::SignalPlatform;

struct Probe {
    drops: Arc<AtomicUsize>,
    _pad: [u64; 4],
}
impl Drop for Probe {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

fn probe(drops: &Arc<AtomicUsize>) -> *mut Probe {
    Box::into_raw(Box::new(Probe {
        drops: Arc::clone(drops),
        _pad: [0; 4],
    }))
}

#[inline(never)]
fn retire_unheld(
    handle: &threadscan::ThreadHandle<SignalPlatform>,
    drops: &Arc<AtomicUsize>,
    n: usize,
) {
    for _ in 0..n {
        // SAFETY: fresh nodes, never shared.
        unsafe { handle.retire(probe(drops)) };
    }
}

#[test]
fn two_collectors_share_the_process_amicably() {
    // Two independent collectors (e.g. two libraries in one process) with
    // separate registries must both reclaim; rounds serialize internally
    // on the global session slot.
    let c1 = Collector::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default().with_buffer_capacity(16),
    );
    let c2 = Collector::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default().with_buffer_capacity(16),
    );
    let d1 = Arc::new(AtomicUsize::new(0));
    let d2 = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for _ in 0..2 {
            let c1 = Arc::clone(&c1);
            let c2 = Arc::clone(&c2);
            let d1 = Arc::clone(&d1);
            let d2 = Arc::clone(&d2);
            s.spawn(move || {
                // One thread registered with BOTH collectors (the TLS
                // record list must handle this).
                let h1 = c1.register();
                let h2 = c2.register();
                for _ in 0..40 {
                    retire_unheld(&h1, &d1, 8);
                    retire_unheld(&h2, &d2, 8);
                }
                drop(h2);
                drop(h1);
            });
        }
    });
    c1.collect_now();
    c2.collect_now();
    assert_eq!(d1.load(Ordering::SeqCst), 2 * 40 * 8);
    assert_eq!(d2.load(Ordering::SeqCst), 2 * 40 * 8);
}

#[test]
fn custom_realtime_signal_works() {
    // Using SIGRTMIN+3 keeps SIGUSR1 free for the application.
    let signo = libc::SIGRTMIN() + 3;
    let platform = SignalPlatform::with_signal(signo).unwrap();
    assert_eq!(platform.signal(), signo);
    let collector =
        Collector::with_config(platform, CollectorConfig::default().with_buffer_capacity(8));
    let drops = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        let collector2 = Arc::clone(&collector);
        let drops2 = Arc::clone(&drops);
        s.spawn(move || {
            let handle = collector2.register();
            retire_unheld(&handle, &drops2, 64);
            drop(handle);
        });
    });
    collector.collect_now();
    assert_eq!(drops.load(Ordering::SeqCst), 64);
    assert!(collector.platform().rounds() > 0);
}

#[test]
fn rounds_count_signals_accurately() {
    let collector = Collector::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default().with_buffer_capacity(1 << 20),
    );
    let drops = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|s| {
        // Two peer threads that stay registered during the rounds.
        for _ in 0..2 {
            let collector = Arc::clone(&collector);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let _handle = collector.register();
                while !stop.load(Ordering::Relaxed) {
                    std::hint::spin_loop();
                }
            });
        }
        let handle = collector.register();
        while collector.platform().registered_threads() < 3 {
            std::thread::yield_now();
        }
        let rounds_before = collector.platform().rounds();
        let signals_before = collector.platform().signals_sent();
        retire_unheld(&handle, &drops, 4);
        handle.flush(); // one round: 2 peers signaled + self-scan
        assert_eq!(collector.platform().rounds(), rounds_before + 1);
        assert_eq!(
            collector.platform().signals_sent(),
            signals_before + 2,
            "exactly one signal per *other* registered thread"
        );
        stop.store(true, Ordering::Relaxed);
        drop(handle);
    });
}

#[test]
fn many_threads_heavy_retire_traffic_is_leak_free() {
    let collector = Collector::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default().with_buffer_capacity(64),
    );
    let drops = Arc::new(AtomicUsize::new(0));
    const THREADS: usize = 8;
    const PER_THREAD: usize = 5_000;

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let collector = Arc::clone(&collector);
            let drops = Arc::clone(&drops);
            s.spawn(move || {
                let handle = collector.register();
                retire_unheld(&handle, &drops, PER_THREAD);
                drop(handle);
            });
        }
    });
    collector.collect_now();
    collector.collect_now();
    let st = collector.stats();
    assert_eq!(st.retired, THREADS * PER_THREAD);
    assert_eq!(
        drops.load(Ordering::SeqCst) + collector.pending_estimate(),
        THREADS * PER_THREAD
    );
    // All worker stacks are gone; only residue on the main thread's stack
    // could pin anything, and these nodes never lived there.
    assert_eq!(
        drops.load(Ordering::SeqCst),
        THREADS * PER_THREAD,
        "all nodes must be reclaimed"
    );
}
