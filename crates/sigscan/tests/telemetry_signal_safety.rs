//! Satellite pin: telemetry's record path holds its async-signal-safety
//! contract under *real* signal delivery.
//!
//! The ring record path is lock-free and allocation-free by
//! construction (preallocated BSS cells, const-init TLS, atomics only —
//! see `ts_telemetry::ring`); what these tests pin is the observable
//! half of the contract:
//!
//! * events stamped *inside the installed signal handler* survive to a
//!   drain (so the handler really did record without deadlocking or
//!   crashing — a handler that took a lock held by the interrupted
//!   thread would hang the ack wait and trip the collector's 30 s
//!   timeout panic);
//! * under a deliberately tiny ring, overflow is accounted in
//!   `dropped_events` rather than silently lost.
//!
//! This test gets its own process (an integration-test binary), so
//! shrinking the global ring capacity cannot disturb other suites.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use threadscan::{Collector, CollectorConfig, PhaseKind};
use ts_sigscan::SignalPlatform;

#[test]
fn handler_recording_survives_and_overflow_is_accounted() {
    // Deliberately tiny: one collect stamps ~11 events on the reclaimer
    // ring alone, so a handful of collects must overflow and be counted.
    ts_telemetry::set_ring_capacity(8);

    let collector = Collector::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default()
            .with_buffer_capacity(1024)
            .with_telemetry(ts_telemetry::sink()),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(Barrier::new(2));
    let peer = {
        let collector = Arc::clone(&collector);
        let stop = Arc::clone(&stop);
        let ready = Arc::clone(&ready);
        std::thread::spawn(move || {
            // Registered peer: every collect signals this thread and its
            // handler stamps ScanBegin/ScanEnd into this thread's ring.
            let handle = collector.register();
            ready.wait();
            while !stop.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            drop(handle);
        })
    };

    let handle = collector.register();
    ready.wait();
    const COLLECTS: usize = 6;
    for _ in 0..COLLECTS {
        let p = Box::into_raw(Box::new([0u8; 64]));
        unsafe { handle.retire(p) };
        handle.flush(); // forced phase: signal broadcast to the peer
    }
    stop.store(true, Ordering::Relaxed);
    peer.join().unwrap();
    drop(handle);

    let events = ts_telemetry::drain_events();

    // The handler recorded from signal context and the events survived.
    // (CollectEnd is each phase's final reclaimer stamp, so it is the one
    // guaranteed to sit in the tiny ring's newest-8 window; CollectBegin
    // is legitimately overwritten by the ~10 stamps that follow it.)
    let reclaimer_ring = events
        .iter()
        .find(|e| e.kind == PhaseKind::CollectEnd)
        .expect("reclaimer events must survive in the newest window")
        .ring;
    let handler_scans: Vec<_> = events
        .iter()
        .filter(|e| e.kind == PhaseKind::ScanBegin && e.ring != reclaimer_ring)
        .collect();
    assert!(
        !handler_scans.is_empty(),
        "peer's signal handler must have stamped scan events on its own ring"
    );
    // Scan events pair up and carry the collect id of a real phase.
    for scan in &handler_scans {
        assert!(
            events.iter().any(|e| e.kind == PhaseKind::ScanEnd
                && e.ring == scan.ring
                && e.collect_id == scan.collect_id),
            "every surviving handler ScanBegin has its ScanEnd"
        );
    }

    // Overflow accounting: 6 collects × ~11 reclaimer events into an
    // 8-cell ring must have overwritten, and every overwrite is counted.
    let dropped = ts_telemetry::dropped_events();
    assert!(
        dropped > 0,
        "tiny ring must report dropped events, got {dropped}"
    );
    // And what *is* readable is bounded by the configured capacity.
    let per_ring_max = events
        .iter()
        .map(|e| e.ring)
        .fold(std::collections::HashMap::new(), |mut m, r| {
            *m.entry(r).or_insert(0usize) += 1;
            m
        })
        .into_values()
        .max()
        .unwrap();
    assert!(
        per_ring_max <= 8,
        "no ring can yield more than its capacity, got {per_ring_max}"
    );
}
