//! OS-interaction fidelity tests for the paper's §4.2 "Signaling" claims:
//!
//! * a thread blocked in a system call is interrupted, runs the handler,
//!   and acks — the reclaimer never waits for the syscall to finish;
//! * with `SA_RESTART`, restartable syscalls (pipe reads) resume
//!   transparently, while the never-restarted family (`nanosleep`)
//!   returns `EINTR` to the caller, "that passes the restart
//!   responsibility to the programmer";
//! * collects complete under heavy oversubscription and concurrent
//!   registration churn.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use threadscan::{Collector, CollectorConfig};
use ts_sigscan::SignalPlatform;

fn collector(buffer: usize) -> Arc<Collector<SignalPlatform>> {
    Collector::with_config(
        SignalPlatform::new().unwrap(),
        CollectorConfig::default().with_buffer_capacity(buffer),
    )
}

fn retire_one(handle: &threadscan::ThreadHandle<SignalPlatform>) {
    let p = Box::into_raw(Box::new([0u64; 8]));
    // SAFETY: fresh allocation, never shared.
    unsafe { handle.retire(p) };
}

/// A peer asleep in `nanosleep` must not block the collect; its sleep is
/// interrupted with EINTR (nanosleep is in signal(7)'s never-restarted
/// family even under SA_RESTART).
#[test]
fn sleeping_peer_acks_and_observes_eintr() {
    let collector = collector(4);
    let ready = Arc::new(Barrier::new(2));
    let eintr_seen = Arc::new(AtomicBool::new(false));
    let slept_full = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let c2 = Arc::clone(&collector);
        let ready2 = Arc::clone(&ready);
        let eintr_seen2 = Arc::clone(&eintr_seen);
        let slept_full2 = Arc::clone(&slept_full);
        s.spawn(move || {
            let _handle = c2.register();
            ready2.wait();
            // Sleep "forever" (3 s) in one nanosleep call; the collect's
            // signal must cut it short.
            let mut req = libc::timespec {
                tv_sec: 3,
                tv_nsec: 0,
            };
            let mut rem = libc::timespec {
                tv_sec: 0,
                tv_nsec: 0,
            };
            loop {
                let rc = unsafe { libc::nanosleep(&req, &mut rem) };
                if rc == 0 {
                    break;
                }
                let err = std::io::Error::last_os_error();
                assert_eq!(
                    err.raw_os_error(),
                    Some(libc::EINTR),
                    "nanosleep failed with non-EINTR: {err}"
                );
                eintr_seen2.store(true, Ordering::SeqCst);
                // The programmer's restart responsibility: resume with the
                // remaining time, as the paper describes.
                req = rem;
            }
            slept_full2.store(true, Ordering::SeqCst);
        });

        let handle = collector.register();
        ready.wait();
        // Give the peer time to actually enter nanosleep.
        std::thread::sleep(Duration::from_millis(100));

        let t0 = Instant::now();
        retire_one(&handle);
        handle.flush();
        let collect_latency = t0.elapsed();
        assert!(
            collect_latency < Duration::from_secs(2),
            "collect took {collect_latency:?}: the reclaimer must not wait \
             out a peer's 3 s sleep"
        );
        drop(handle);
        // Peer thread joins at scope end: its sleep completes via resumes.
    });

    assert!(
        eintr_seen.load(Ordering::SeqCst),
        "the sleeping peer must observe EINTR from the scan signal"
    );
    assert!(slept_full.load(Ordering::SeqCst));
}

/// A peer blocked in a pipe `read` acks the scan, and — because the
/// handler installs with SA_RESTART — the read resumes transparently and
/// delivers the byte written afterwards (no EINTR surfaces).
#[test]
fn pipe_read_is_restarted_transparently() {
    let collector = collector(4);
    let mut fds = [0 as libc::c_int; 2];
    assert_eq!(unsafe { libc::pipe(fds.as_mut_ptr()) }, 0);
    let (rd, wr) = (fds[0], fds[1]);

    let ready = Arc::new(Barrier::new(2));
    let read_result = Arc::new(AtomicUsize::new(usize::MAX));

    std::thread::scope(|s| {
        let c2 = Arc::clone(&collector);
        let ready2 = Arc::clone(&ready);
        let read_result2 = Arc::clone(&read_result);
        s.spawn(move || {
            let _handle = c2.register();
            ready2.wait();
            let mut buf = [0u8; 1];
            // One read call: if the scan signal surfaced EINTR this would
            // return -1 and the assert below would see it.
            let n = unsafe { libc::read(rd, buf.as_mut_ptr().cast(), 1) };
            assert_eq!(
                n,
                1,
                "read must be restarted by SA_RESTART, got {n} (errno {})",
                std::io::Error::last_os_error()
            );
            assert_eq!(buf[0], 0xAB);
            read_result2.store(n as usize, Ordering::SeqCst);
        });

        let handle = collector.register();
        ready.wait();
        std::thread::sleep(Duration::from_millis(100)); // peer enters read

        // Run a collect while the peer is blocked; it must ack from the
        // handler and fall back into the read.
        let t0 = Instant::now();
        retire_one(&handle);
        handle.flush();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "collect must not wait for the blocked read"
        );

        // Only now satisfy the read.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(unsafe { libc::write(wr, [0xABu8].as_ptr().cast(), 1) }, 1);
        drop(handle);
    });

    assert_eq!(read_result.load(Ordering::SeqCst), 1);
    unsafe {
        libc::close(rd);
        libc::close(wr);
    }
}

/// Figure 4's regime in miniature: far more registered threads than
/// cores, all retiring; every collect completes and memory is reclaimed.
#[test]
fn oversubscribed_collects_complete() {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = (hw * 8).max(8);
    let collector = collector(32);
    let start = Arc::new(Barrier::new(threads));

    std::thread::scope(|s| {
        for _ in 0..threads {
            let c = Arc::clone(&collector);
            let start = Arc::clone(&start);
            s.spawn(move || {
                let handle = c.register();
                start.wait();
                for _ in 0..200 {
                    retire_one(&handle);
                }
                handle.flush();
            });
        }
    });

    let stats = collector.stats();
    assert_eq!(stats.retired, threads * 200);
    assert!(stats.collects > 0, "buffers of 32 must have collected");
    assert!(
        stats.freed > stats.retired / 2,
        "freed {} of {} retired",
        stats.freed,
        stats.retired
    );
}

/// Threads register and unregister continuously while another thread
/// drives collect rounds; the round/registration lock must keep the
/// registry and the signal targets consistent (no lost acks, no hangs).
#[test]
fn registration_churn_during_collects() {
    let collector = collector(8);
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for _ in 0..3 {
            let c = Arc::clone(&collector);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let handle = c.register();
                    retire_one(&handle);
                    drop(handle); // unregister immediately: churn
                }
            });
        }

        let c = Arc::clone(&collector);
        let stop2 = Arc::clone(&stop);
        s.spawn(move || {
            let handle = c.register();
            for _ in 0..300 {
                retire_one(&handle);
                handle.flush();
            }
            stop2.store(true, Ordering::Relaxed);
        });
    });

    let stats = collector.stats();
    assert!(stats.collects >= 300, "collects: {}", stats.collects);
    assert!(stats.freed > 0);
}
