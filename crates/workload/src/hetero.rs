//! The heterogeneous measurement loop: several structure types, one
//! shared collector.
//!
//! ThreadScan's pitch is *process-wide* reclamation — the collector does
//! not care what data structures sit on top. The single-structure runner
//! ([`crate::runner::run_combo`]) cannot show that: it drives exactly one
//! structure per process. [`run_hetero_combo`] builds every structure of
//! a weighted [`StructureMix`](crate::params::StructureMix) behind the object-safe
//! [`DynSet`] interface, wires them all to **one**
//! scheme instance via [`ErasedSmr`], and has every worker draw the
//! structure for each operation from the mix's weights
//! ([`WeightedPick`]). Per-structure op counts and throughput come back
//! in [`RunResult::per_structure`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ts_smr::dynamic::ErasedSmr;
use ts_smr::{Smr, SmrHandle};
use ts_structures::DynSet;

use crate::dist::WeightedPick;
use crate::load::{self, Aggregate};
use crate::mix::{prefill_keys, Op, OpMix};
use crate::params::{SchemeKind, WorkloadParams};
use crate::runner::{
    quiesce_and_account, threadscan_extras, AllocBracket, RunResult, StructureOps,
};

/// Runs one heterogeneous cell: every structure in
/// `params.structure_mix` under one shared scheme instance.
///
/// Each structure is sized by its *own* Figure 3 preset at the cell's
/// scale ([`WorkloadParams::hetero_cell`]) and prefilled before the
/// window; each worker keeps one deterministic op stream per structure
/// (distinct seeds per worker × structure) and picks the target
/// structure per-op from the mix weights. The result's `structure` label
/// is `hetero(<mix>)` and `per_structure` carries the split.
///
/// # Panics
///
/// If `params.structure_mix` is `None`.
pub fn run_hetero_combo(scheme: SchemeKind, params: &WorkloadParams) -> RunResult {
    let mix = params
        .structure_mix
        .as_ref()
        .expect("run_hetero_combo needs params.structure_mix");
    let cells: Vec<WorkloadParams> = mix
        .entries()
        .iter()
        .map(|&(kind, _)| params.hetero_cell(kind))
        .collect();

    let dyn_scheme = scheme.build(params);
    let erased = Arc::new(ErasedSmr::new(Arc::clone(&dyn_scheme)));
    let sets: Vec<Arc<dyn DynSet>> = mix
        .entries()
        .iter()
        .zip(&cells)
        .map(|(&(kind, _), cell)| kind.build_dyn(cell))
        .collect();

    let alloc_bracket = AllocBracket::open();

    // Prefill every structure through one temporary handle.
    {
        let handle = erased.register();
        for (set, cell) in sets.iter().zip(&cells) {
            for key in prefill_keys(cell.initial_size, cell.key_range) {
                set.insert(&handle, key);
            }
        }
    }

    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(params.threads + 1);
    let reports = Mutex::new(Vec::with_capacity(params.threads));
    let elapsed_holder = AtomicU64::new(0);

    let weights = mix.weights();
    std::thread::scope(|s| {
        let stop = &stop;
        let start_barrier = &start_barrier;
        let reports = &reports;
        let sets = &sets;
        let cells = &cells;
        let weights = &weights;
        let params_ref = &*params;
        for t in 0..params.threads {
            let erased = Arc::clone(&erased);
            s.spawn(move || {
                let handle = erased.register();
                let pick = WeightedPick::new(weights);
                let mut pick_rng = SmallRng::seed_from_u64(0x4E7E_0517 ^ t as u64);
                // One deterministic stream per structure: each has its own
                // key range / shape, so one shared stream would mis-range.
                let mut mixes: Vec<OpMix> = cells
                    .iter()
                    .enumerate()
                    .map(|(i, cell)| {
                        OpMix::with_dist(
                            0x51ED_1E55 ^ ((t as u64) << 8) ^ i as u64,
                            cell.key_range,
                            cell.update_pct,
                            cell.key_dist,
                        )
                    })
                    .collect();
                start_barrier.wait();
                // The shared worker loop: under `Closed` a per-op stop
                // check around the op (ops completed after the flag flips
                // would be billed outside the window — see the runner's
                // regression note); under an open model the op's class is
                // the structure index, so each structure gets its own
                // latency histogram.
                let report = load::drive_worker(
                    params_ref.load_spec(),
                    t,
                    params_ref.threads,
                    sets.len(),
                    stop,
                    || {
                        let i = pick.sample(&mut pick_rng);
                        match mixes[i].next_op() {
                            Op::Contains(k) => {
                                sets[i].contains(&handle, k);
                            }
                            Op::Insert(k) => {
                                sets[i].insert(&handle, k);
                            }
                            Op::Remove(k) => {
                                sets[i].remove(&handle, k);
                            }
                        }
                        i
                    },
                );
                reports.lock().unwrap().push(report);
                // handle drops here: the thread unregisters before exit.
            });
        }

        start_barrier.wait();
        let t0 = std::time::Instant::now();
        std::thread::sleep(params.duration);
        stop.store(true, Ordering::Relaxed);
        elapsed_holder.store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    });

    let agg = Aggregate::from_reports(reports.into_inner().unwrap(), sets.len());
    let secs = (elapsed_holder.load(Ordering::Relaxed) as f64 / 1e6).max(1e-9);
    let per_structure: Vec<StructureOps> = mix
        .entries()
        .iter()
        .enumerate()
        .map(|(i, &(kind, _))| {
            let ops = agg.class_ops[i];
            StructureOps {
                structure: kind.label().to_string(),
                ops,
                ops_per_sec: ops as f64 / secs,
                latency: agg.class_latency[i].clone(),
            }
        })
        .collect();
    let total_ops: u64 = agg.total_ops;
    let bucket_count = sets.iter().find_map(|s| s.bucket_count());

    let ts = threadscan_extras(&*dyn_scheme); // before quiesce (see runner)
    let (outstanding_after, leaked) = quiesce_and_account(&*dyn_scheme);
    let alloc = alloc_bracket.close();

    RunResult {
        scheme: scheme.label().to_string(),
        structure: format!("hetero({})", mix.label()),
        threads: params.threads,
        duration_s: secs,
        total_ops,
        ops_per_sec: total_ops as f64 / secs,
        outstanding_after,
        leaked,
        protection_slots: erased.register().protection_slots(),
        threadscan: ts,
        alloc,
        per_structure,
        bucket_count,
        latency: agg.latency.clone(),
        open_loop: agg.open_extras(&params.load_model),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{StructureKind, StructureMix};
    use std::time::Duration;

    fn quick_hetero(threads: usize, spec: &str) -> WorkloadParams {
        WorkloadParams::fig3(StructureKind::Hash, threads)
            .scaled_down(64)
            .with_duration(Duration::from_millis(150))
            .with_structure_mix(StructureMix::parse(spec).unwrap())
    }

    #[test]
    fn three_structure_mix_completes_and_splits_ops() {
        let p = quick_hetero(3, "hash:50,skiplist:30,pq:20");
        let r = run_hetero_combo(SchemeKind::Epoch, &p);
        assert_eq!(r.structure, "hetero(hash:50,skiplist:30,pq:20)");
        assert_eq!(r.per_structure.len(), 3);
        assert_eq!(
            r.per_structure.iter().map(|s| s.ops).sum::<u64>(),
            r.total_ops
        );
        assert!(r.total_ops > 0);
        // The 50%-weighted structure must dominate the 20% one over a
        // measurement window's worth of draws.
        assert!(
            r.per_structure[0].ops > r.per_structure[2].ops,
            "hash {} vs pq {}",
            r.per_structure[0].ops,
            r.per_structure[2].ops
        );
        assert!(r.bucket_count.is_none(), "no bucketed structure in mix");
    }

    #[test]
    fn split_ordered_in_the_mix_reports_its_directory() {
        let p = quick_hetero(2, "split-ordered:1,list:1");
        let r = run_hetero_combo(SchemeKind::Leaky, &p);
        let buckets = r.bucket_count.expect("split-ordered exports buckets");
        assert!(buckets >= 2);
        assert!(r.leaked.is_some(), "leaky accounting preserved");
    }

    #[test]
    fn hetero_run_under_threadscan_shares_one_collector() {
        let mut p = quick_hetero(3, "hash:40,skiplist:40,pq:20");
        p.ts_buffer_capacity = 64; // force phases within the window
        p.duration = Duration::from_millis(250);
        let r = run_hetero_combo(SchemeKind::ThreadScan, &p);
        assert!(r.total_ops > 0);
        let ts = r.threadscan.expect("threadscan extras present");
        // Retirements from *all three* structures funnel into the one
        // collector the run built.
        assert!(ts.collects > 0, "no reclamation phases ran");
    }

    #[test]
    fn open_loop_hetero_reports_per_structure_latency() {
        let mut p = quick_hetero(2, "hash:60,list:40");
        p.duration = Duration::from_millis(250);
        p = p.with_load_model(crate::load::LoadModel::OpenPoisson { qps: 20_000.0 });
        let r = run_hetero_combo(SchemeKind::Epoch, &p);
        assert!(r.total_ops > 0);
        let total = r.latency.as_ref().expect("open model measures latency");
        assert_eq!(total.count, r.total_ops);
        let mut class_count = 0;
        for s in &r.per_structure {
            let lat = s
                .latency
                .as_ref()
                .unwrap_or_else(|| panic!("{} saw ops but no latency", s.structure));
            assert_eq!(lat.count, s.ops, "{}", s.structure);
            assert!(lat.p50_ns <= lat.p999_ns, "{}", s.structure);
            class_count += lat.count;
        }
        assert_eq!(class_count, total.count, "class histograms sum to total");
        let ol = r.open_loop.as_ref().expect("open extras present");
        assert!(ol.offered >= r.total_ops);
    }

    #[test]
    fn json_carries_the_per_structure_split() {
        let p = quick_hetero(2, "list:1,pq:1");
        let r = run_hetero_combo(SchemeKind::Leaky, &p);
        let json = r.to_json();
        let v = crate::json::parse(&json).expect("valid JSON");
        let arr = match v.get("per_structure") {
            crate::json::Value::Array(a) => a,
            other => panic!("per_structure not an array: {other:?}"),
        };
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("structure").as_str(), Some("list"));
        assert_eq!(arr[1].get("structure").as_str(), Some("pq"));
        assert!(v.get("bucket_count").is_null(), "no bucketed structure");
    }
}
