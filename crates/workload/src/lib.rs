//! # ts-workload — workload generation and the throughput harness
//!
//! Reproduces the paper's §6 "Methodology": uniform keys, 20% updates
//! (half inserts / half removes), prefill to the target size, timed
//! multi-thread measurement, averaged over runs by the calling binary.
//!
//! * [`params`] — the exact Figure 3 / Figure 4 parameter presets;
//! * [`dist`] — key distributions (uniform per the paper; zipfian for the
//!   skew ablation);
//! * [`mix`] — deterministic per-thread operation streams;
//! * [`load`] — the load-generation layer ([`LoadModel`]): the classic
//!   closed loop, or open-loop Poisson / bursty arrival schedules with
//!   coordinated-omission-correct per-op latency;
//! * [`registry`] — the scheme and structure factories
//!   ([`SchemeKind::build`], [`StructureKind::build_set`],
//!   [`StructureKind::build_dyn`]): one line per variant, the only
//!   harness code that names concrete types;
//! * [`runner`] — the measurement loop, driving registry-built
//!   `Arc<dyn DynSmr>` / `Arc<dyn ConcurrentSet<_>>` objects;
//! * [`hetero`] — the heterogeneous measurement loop: a weighted
//!   [`StructureMix`] of structures sharing one scheme instance;
//! * [`report`] — figure-style series tables + JSON lines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod hetero;
pub mod json;
pub mod load;
pub mod mix;
pub mod params;
pub mod pq;
pub mod registry;
pub mod report;
pub mod runner;

pub use dist::{KeyDist, WeightedPick, ZipfSampler};
pub use hetero::run_hetero_combo;
pub use load::{
    register_worker_metrics, ArrivalSchedule, BacklogPolicy, LatencySummary, LoadModel,
    OpenLoopExtras,
};
pub use mix::{prefill_keys, Op, OpMix};
pub use params::{SchemeKind, StructureKind, StructureMix, WorkloadParams};
pub use pq::{run_pq_combo, PqParams};
pub use report::Report;
pub use runner::{run_combo, AllocExtras, ClassDelta, RunResult, StructureOps, ThreadScanExtras};
