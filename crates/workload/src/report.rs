//! Result reporting: aligned text tables (the figure series) and JSON
//! lines for downstream plotting.

use std::io::Write;

use crate::runner::RunResult;

/// Collects results for one experiment and renders them.
#[derive(Default)]
pub struct Report {
    results: Vec<RunResult>,
    /// Experiment identifier, e.g. `"fig3"`.
    pub experiment: String,
}

impl Report {
    /// A report for the named experiment.
    pub fn new(experiment: &str) -> Self {
        Self {
            results: Vec::new(),
            experiment: experiment.to_string(),
        }
    }

    /// Adds one measured cell.
    pub fn push(&mut self, result: RunResult) {
        self.results.push(result);
    }

    /// All results so far.
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// Renders the figure as the paper presents it: one block per
    /// structure, thread counts as rows, schemes as columns, throughput
    /// (Mops/s) as cells.
    pub fn render_series(&self) -> String {
        let mut out = String::new();
        let mut structures: Vec<String> =
            self.results.iter().map(|r| r.structure.clone()).collect();
        structures.sort();
        structures.dedup();
        for structure in &structures {
            let rows: Vec<&RunResult> = self
                .results
                .iter()
                .filter(|r| &r.structure == structure)
                .collect();
            let mut schemes: Vec<String> = rows.iter().map(|r| r.scheme.clone()).collect();
            schemes.sort();
            schemes.dedup();
            let mut threads: Vec<usize> = rows.iter().map(|r| r.threads).collect();
            threads.sort_unstable();
            threads.dedup();

            out.push_str(&format!(
                "\n== {} : {structure} (throughput, Mops/s) ==\n",
                self.experiment
            ));
            out.push_str(&format!("{:>8}", "threads"));
            for s in &schemes {
                out.push_str(&format!("{s:>14}"));
            }
            out.push('\n');
            for &t in &threads {
                out.push_str(&format!("{t:>8}"));
                for s in &schemes {
                    let cell = rows
                        .iter()
                        .find(|r| r.threads == t && &r.scheme == s)
                        .map(|r| format!("{:>14.3}", r.ops_per_sec / 1e6))
                        .unwrap_or_else(|| format!("{:>14}", "-"));
                    out.push_str(&cell);
                }
                out.push('\n');
            }
        }
        out
    }

    /// Serializes every result as one JSON object per line.
    pub fn to_json_lines(&self) -> String {
        self.results
            .iter()
            .map(RunResult::to_json)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Writes the JSON lines to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.to_json_lines())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunResult;

    fn result(structure: &str, scheme: &str, threads: usize, mops: f64) -> RunResult {
        RunResult {
            scheme: scheme.into(),
            structure: structure.into(),
            threads,
            duration_s: 1.0,
            total_ops: (mops * 1e6) as u64,
            ops_per_sec: mops * 1e6,
            outstanding_after: Some(0),
            leaked: None,
            protection_slots: None,
            threadscan: None,
            alloc: None,
            per_structure: Vec::new(),
            bucket_count: None,
            latency: None,
            open_loop: None,
        }
    }

    #[test]
    fn series_renders_grid() {
        let mut rep = Report::new("fig3");
        rep.push(result("list", "leaky", 1, 1.0));
        rep.push(result("list", "leaky", 2, 1.9));
        rep.push(result("list", "threadscan", 1, 0.9));
        rep.push(result("list", "threadscan", 2, 1.8));
        let s = rep.render_series();
        assert!(s.contains("fig3 : list"));
        assert!(s.contains("leaky"));
        assert!(s.contains("threadscan"));
        assert!(s.contains("1.900"));
    }

    #[test]
    fn missing_cells_render_as_dash() {
        let mut rep = Report::new("x");
        rep.push(result("hash", "epoch", 1, 1.0));
        rep.push(result("hash", "leaky", 2, 2.0));
        let s = rep.render_series();
        assert!(s.contains('-'), "{s}");
    }

    #[test]
    fn json_lines_parse_back() {
        let mut rep = Report::new("fig4");
        rep.push(result("skiplist", "epoch", 100, 3.5));
        let json = rep.to_json_lines();
        let v: crate::json::Value = crate::json::parse(&json).unwrap();
        assert_eq!(v["scheme"], "epoch");
        assert_eq!(v["threads"], 100);
    }
}
