//! Operation mix generation.
//!
//! §6 "Methodology": "The update ratio was set at 20%, so about 10% of all
//! operations were node removals." Updates split evenly between inserts
//! and removes; the rest are lookups. Keys are uniform over the range.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::dist::{scramble_rank, KeyDist, ZipfSampler};

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Membership lookup.
    Contains(u64),
    /// Insertion.
    Insert(u64),
    /// Removal.
    Remove(u64),
}

/// Per-thread deterministic operation stream.
pub struct OpMix {
    rng: SmallRng,
    key_range: u64,
    update_pct: u32,
    zipf: Option<ZipfSampler>,
}

impl OpMix {
    /// A uniform-key stream seeded per thread (same seed ⇒ same stream).
    pub fn new(seed: u64, key_range: u64, update_pct: u32) -> Self {
        Self::with_dist(seed, key_range, update_pct, KeyDist::Uniform)
    }

    /// A stream with an explicit key distribution.
    pub fn with_dist(seed: u64, key_range: u64, update_pct: u32, dist: KeyDist) -> Self {
        assert!(key_range > 0);
        assert!(update_pct <= 100);
        let zipf = match dist {
            KeyDist::Uniform => None,
            KeyDist::Zipf { theta } => Some(ZipfSampler::new(key_range, theta)),
        };
        Self {
            rng: SmallRng::seed_from_u64(seed),
            key_range,
            update_pct,
            zipf,
        }
    }

    /// Next operation.
    #[inline]
    pub fn next_op(&mut self) -> Op {
        let key = match &self.zipf {
            None => self.rng.gen_range(0..self.key_range),
            Some(z) => scramble_rank(z.sample(&mut self.rng), self.key_range),
        };
        let roll = self.rng.gen_range(0..100u32);
        if roll < self.update_pct / 2 {
            Op::Insert(key)
        } else if roll < self.update_pct {
            Op::Remove(key)
        } else {
            Op::Contains(key)
        }
    }
}

/// Deterministic prefill key set: every other key, giving exactly
/// `initial_size` resident keys at 50% range density — the paper's sizing
/// (each preset's range is 2× its initial size), in deterministic form so
/// every scheme starts from the same structure shape.
pub fn prefill_keys(initial_size: usize, key_range: u64) -> impl Iterator<Item = u64> {
    debug_assert!((initial_size as u64) * 2 <= key_range + 1);
    (0..initial_size as u64).map(|i| i * 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_ratio_approximates_update_pct() {
        let mut mix = OpMix::new(1, 1000, 20);
        let mut ins = 0;
        let mut rem = 0;
        let mut con = 0;
        for _ in 0..100_000 {
            match mix.next_op() {
                Op::Insert(_) => ins += 1,
                Op::Remove(_) => rem += 1,
                Op::Contains(_) => con += 1,
            }
        }
        // ~10% / ~10% / ~80% with generous tolerance.
        assert!((8_000..12_000).contains(&ins), "inserts {ins}");
        assert!((8_000..12_000).contains(&rem), "removes {rem}");
        assert!((76_000..84_000).contains(&con), "contains {con}");
    }

    #[test]
    fn zero_update_pct_is_read_only() {
        let mut mix = OpMix::new(2, 100, 0);
        for _ in 0..1000 {
            assert!(matches!(mix.next_op(), Op::Contains(_)));
        }
    }

    #[test]
    fn hundred_pct_updates_have_no_reads() {
        let mut mix = OpMix::new(3, 100, 100);
        for _ in 0..1000 {
            assert!(!matches!(mix.next_op(), Op::Contains(_)));
        }
    }

    #[test]
    fn keys_stay_in_range() {
        let mut mix = OpMix::new(4, 37, 50);
        for _ in 0..10_000 {
            let k = match mix.next_op() {
                Op::Contains(k) | Op::Insert(k) | Op::Remove(k) => k,
            };
            assert!(k < 37);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = OpMix::new(42, 1000, 20);
        let mut b = OpMix::new(42, 1000, 20);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn zipf_stream_is_deterministic_and_skewed() {
        use crate::dist::KeyDist;
        let mut a = OpMix::with_dist(42, 1000, 20, KeyDist::Zipf { theta: 0.99 });
        let mut b = OpMix::with_dist(42, 1000, 20, KeyDist::Zipf { theta: 0.99 });
        let mut counts = std::collections::HashMap::<u64, usize>::new();
        for _ in 0..20_000 {
            let op = a.next_op();
            assert_eq!(op, b.next_op());
            let k = match op {
                Op::Contains(k) | Op::Insert(k) | Op::Remove(k) => k,
            };
            assert!(k < 1000);
            *counts.entry(k).or_default() += 1;
        }
        let hottest = counts.values().max().copied().unwrap();
        assert!(
            hottest > 20_000 / 50,
            "zipf(0.99) must concentrate traffic, hottest saw {hottest}"
        );
    }

    #[test]
    fn prefill_is_exact_and_in_range() {
        let keys: Vec<u64> = prefill_keys(1024, 2048).collect();
        assert_eq!(keys.len(), 1024);
        assert!(keys.iter().all(|&k| k < 2048));
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 1024, "prefill keys must be distinct");
    }
}
