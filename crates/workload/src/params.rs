//! Experiment parameters, with the paper's §6 "Methodology" presets.

use std::time::Duration;

use crate::dist::KeyDist;

/// Which evaluation data structure to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// Harris lock-free linked list (Figure 3 left).
    List,
    /// Lock-free hash table (Figure 3 middle).
    Hash,
    /// Lock-based skip list (Figure 3 right).
    Skip,
    /// Lazy list (the paper's §1 motivating structure; ablations only,
    /// not part of the figures).
    Lazy,
    /// Split-ordered-list resizable hash table (intro cite \[42\];
    /// ablations only, not part of the figures).
    SplitOrdered,
}

impl StructureKind {
    /// All three structures, figure order.
    pub const ALL: [StructureKind; 3] = [Self::List, Self::Hash, Self::Skip];

    /// The figure structures plus the beyond-figure ablation structures.
    pub const EXTENDED: [StructureKind; 5] = [
        Self::List,
        Self::Hash,
        Self::Skip,
        Self::Lazy,
        Self::SplitOrdered,
    ];

    /// Harness label.
    pub fn label(self) -> &'static str {
        match self {
            Self::List => "list",
            Self::Hash => "hash",
            Self::Skip => "skiplist",
            Self::Lazy => "lazy-list",
            Self::SplitOrdered => "split-ordered",
        }
    }
}

/// Which reclamation scheme to run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// No reclamation (leaks) — the performance ceiling.
    Leaky,
    /// Hazard pointers (per-read fence).
    Hazard,
    /// Epoch-based reclamation.
    Epoch,
    /// Epoch with one 40 ms-delayed errant thread.
    SlowEpoch,
    /// ThreadScan over real POSIX signals.
    ThreadScan,
    /// StackTrack-style precise tracking (HTM emulated via asymmetric
    /// fences; §6 text comparator, not part of the figure legends).
    StackTrack,
}

impl SchemeKind {
    /// The five Figure 3 schemes, legend order.
    pub const ALL: [SchemeKind; 5] = [
        Self::Leaky,
        Self::Hazard,
        Self::Epoch,
        Self::SlowEpoch,
        Self::ThreadScan,
    ];

    /// The Figure 4 (oversubscription) subset: "Slow Epoch and Hazard
    /// Pointers were not included in the oversubscription experiment".
    pub const OVERSUB: [SchemeKind; 3] = [Self::Leaky, Self::Epoch, Self::ThreadScan];

    /// The figure schemes plus the StackTrack comparator from §6's text.
    pub const EXTENDED: [SchemeKind; 6] = [
        Self::Leaky,
        Self::Hazard,
        Self::Epoch,
        Self::SlowEpoch,
        Self::ThreadScan,
        Self::StackTrack,
    ];

    /// Harness label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Leaky => "leaky",
            Self::Hazard => "hazard",
            Self::Epoch => "epoch",
            Self::SlowEpoch => "slow-epoch",
            Self::ThreadScan => "threadscan",
            Self::StackTrack => "stacktrack",
        }
    }
}

/// One experiment cell: structure × scheme × thread count × workload shape.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Data structure under test.
    pub structure: StructureKind,
    /// Resident keys after prefill.
    pub initial_size: usize,
    /// Keys are drawn uniformly from `[0, key_range)`.
    pub key_range: u64,
    /// Percentage of operations that are updates (half inserts, half
    /// removes). Paper: 20 ("about 10% of all operations were node
    /// removals").
    pub update_pct: u32,
    /// Key distribution (paper methodology: uniform).
    pub key_dist: KeyDist,
    /// Measurement window. Paper: 10 s × 5 runs; the harness default is
    /// shorter so a full sweep finishes in reasonable time.
    pub duration: Duration,
    /// Worker thread count.
    pub threads: usize,
    /// ThreadScan per-thread delete-buffer capacity (1024 stock; 4096 for
    /// the tuned Figure 4 hash-table line).
    pub ts_buffer_capacity: usize,
    /// Enable the §7 distributed-free extension for ThreadScan runs.
    pub ts_distribute_frees: bool,
    /// Use the paper's §4.2 masked exact matching instead of range
    /// matching for ThreadScan runs. Only sound for structures whose
    /// traversals hold node-base pointers exclusively (the Harris list:
    /// its `next` field is at offset 0).
    pub ts_exact_match: bool,
    /// Master-buffer shard count for ThreadScan runs (`0` keeps the
    /// collector's parallelism-derived default; `1` is the paper's single
    /// sorted delete buffer).
    pub ts_shards: usize,
    /// Reclaimer sort-thread count for ThreadScan runs (`0` keeps the
    /// collector's `min(shards, parallelism)` default; `1` forces the
    /// sequential, pool-free sort).
    pub ts_sort_threads: usize,
    /// Slow-epoch injected delay.
    pub slow_epoch_delay: Duration,
    /// Slow-epoch delay cadence in operations.
    pub slow_epoch_period_ops: usize,
}

impl WorkloadParams {
    /// Paper list workload: "Linked lists were 1024 nodes long, and the
    /// range of values was 2048."
    pub fn fig3_list(threads: usize) -> Self {
        Self::base(StructureKind::List, 1024, 2048, threads)
    }

    /// Paper hash workload: "Hash tables contained 131,072 nodes with a
    /// range of 262,144."
    pub fn fig3_hash(threads: usize) -> Self {
        Self::base(StructureKind::Hash, 131_072, 262_144, threads)
    }

    /// Paper skip-list workload: "Skip lists contained 128,000 nodes with
    /// a range of values of 256,000."
    pub fn fig3_skip(threads: usize) -> Self {
        Self::base(StructureKind::Skip, 128_000, 256_000, threads)
    }

    /// The Figure 3 preset for a given structure. The lazy list (not in
    /// the figures) borrows the linked-list sizing, as §1 describes the
    /// same list shape.
    pub fn fig3(structure: StructureKind, threads: usize) -> Self {
        match structure {
            StructureKind::List => Self::fig3_list(threads),
            StructureKind::Hash => Self::fig3_hash(threads),
            StructureKind::Skip => Self::fig3_skip(threads),
            StructureKind::Lazy => Self::base(StructureKind::Lazy, 1024, 2048, threads),
            // The resizable table borrows the fixed table's sizing so the
            // two are directly comparable in ablations.
            StructureKind::SplitOrdered => {
                Self::base(StructureKind::SplitOrdered, 131_072, 262_144, threads)
            }
        }
    }

    fn base(structure: StructureKind, initial_size: usize, key_range: u64, threads: usize) -> Self {
        Self {
            structure,
            initial_size,
            key_range,
            update_pct: 20,
            key_dist: KeyDist::Uniform,
            duration: Duration::from_secs(2),
            threads,
            ts_buffer_capacity: 1024,
            ts_distribute_frees: false,
            ts_exact_match: false,
            ts_shards: 0,
            ts_sort_threads: 0,
            slow_epoch_delay: Duration::from_millis(40),
            slow_epoch_period_ops: 4096,
        }
    }

    /// Builder: measurement duration.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Builder: update percentage.
    pub fn with_update_pct(mut self, pct: u32) -> Self {
        assert!(pct <= 100);
        self.update_pct = pct;
        self
    }

    /// Builder: ThreadScan buffer capacity (Figure 4 tuning).
    pub fn with_ts_buffer(mut self, cap: usize) -> Self {
        self.ts_buffer_capacity = cap;
        self
    }

    /// Builder: ThreadScan master-buffer shard count (shard-count
    /// ablation); `0` keeps the collector default.
    pub fn with_ts_shards(mut self, shards: usize) -> Self {
        self.ts_shards = shards;
        self
    }

    /// Builder: ThreadScan reclaimer sort-thread count (parallel
    /// shard-sort ablation); `0` keeps the collector default.
    pub fn with_ts_sort_threads(mut self, sort_threads: usize) -> Self {
        self.ts_sort_threads = sort_threads;
        self
    }

    /// Builder: key distribution (skew ablations).
    pub fn with_key_dist(mut self, dist: KeyDist) -> Self {
        self.key_dist = dist;
        self
    }

    /// Builder: shrink the workload by `factor` (both size and range), for
    /// smoke tests and CI.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor >= 1);
        self.initial_size = (self.initial_size / factor).max(16);
        self.key_range = (self.key_range / factor as u64).max(32);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_methodology() {
        let l = WorkloadParams::fig3_list(8);
        assert_eq!(
            (l.initial_size, l.key_range, l.update_pct),
            (1024, 2048, 20)
        );
        let h = WorkloadParams::fig3_hash(8);
        assert_eq!((h.initial_size, h.key_range), (131_072, 262_144));
        let s = WorkloadParams::fig3_skip(8);
        assert_eq!((s.initial_size, s.key_range), (128_000, 256_000));
        assert_eq!(l.ts_buffer_capacity, 1024);
        assert_eq!(l.slow_epoch_delay, Duration::from_millis(40));
    }

    #[test]
    fn oversub_subset_matches_figure4_legend() {
        assert_eq!(
            SchemeKind::OVERSUB.map(|s| s.label()),
            ["leaky", "epoch", "threadscan"]
        );
    }

    #[test]
    fn scaled_down_keeps_ratio_reasonable() {
        let p = WorkloadParams::fig3_hash(4).scaled_down(64);
        assert_eq!(p.initial_size, 2048);
        assert_eq!(p.key_range, 4096);
    }
}
