//! Experiment parameters, with the paper's §6 "Methodology" presets.

use std::time::Duration;

use crate::dist::KeyDist;
use crate::load::{BacklogPolicy, LoadModel};

/// Which evaluation data structure to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureKind {
    /// Harris lock-free linked list (Figure 3 left).
    List,
    /// Lock-free hash table (Figure 3 middle).
    Hash,
    /// Lock-based skip list (Figure 3 right).
    Skip,
    /// Lazy list (the paper's §1 motivating structure; ablations only,
    /// not part of the figures).
    Lazy,
    /// Split-ordered-list resizable hash table (intro cite \[42\];
    /// ablations only, not part of the figures).
    SplitOrdered,
    /// Shavit–Lotan priority queue behind the set-shaped adapter
    /// (`PqAsSet`); heterogeneous-mix runs only, not part of the figures.
    Pq,
}

impl StructureKind {
    /// All three structures, figure order.
    pub const ALL: [StructureKind; 3] = [Self::List, Self::Hash, Self::Skip];

    /// The figure structures plus the beyond-figure ablation structures.
    pub const EXTENDED: [StructureKind; 5] = [
        Self::List,
        Self::Hash,
        Self::Skip,
        Self::Lazy,
        Self::SplitOrdered,
    ];

    /// Harness label.
    pub fn label(self) -> &'static str {
        match self {
            Self::List => "list",
            Self::Hash => "hash",
            Self::Skip => "skiplist",
            Self::Lazy => "lazy-list",
            Self::SplitOrdered => "split-ordered",
            Self::Pq => "pq",
        }
    }

    /// Parses a harness label back to its kind (mix-spec and
    /// `--structures` CLI syntax; `skip` is accepted for `skiplist`).
    pub fn parse(label: &str) -> Option<Self> {
        Some(match label {
            "list" => Self::List,
            "hash" => Self::Hash,
            "skiplist" | "skip" => Self::Skip,
            "lazy-list" => Self::Lazy,
            "split-ordered" => Self::SplitOrdered,
            "pq" => Self::Pq,
            _ => return None,
        })
    }
}

/// A weighted multi-structure mix for heterogeneous runs: each worker
/// draws the structure for every operation from this distribution while
/// all structures share one scheme instance.
///
/// Spec syntax: comma-separated `label:weight` pairs, e.g.
/// `hash:50,skiplist:30,pq:20` (labels from [`StructureKind::label`],
/// weights positive integers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureMix {
    entries: Vec<(StructureKind, u32)>,
}

impl StructureMix {
    /// Parses a `label:weight,label:weight,…` spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            let (label, weight) = part
                .split_once(':')
                .ok_or_else(|| format!("mix entry `{part}` is not `label:weight`"))?;
            let kind = StructureKind::parse(label.trim())
                .ok_or_else(|| format!("unknown structure `{label}` in mix `{spec}`"))?;
            let weight: u32 = weight
                .trim()
                .parse()
                .map_err(|_| format!("bad weight in mix entry `{part}`"))?;
            if weight == 0 {
                return Err(format!("zero weight in mix entry `{part}`"));
            }
            if entries.iter().any(|&(k, _)| k == kind) {
                return Err(format!("duplicate structure `{label}` in mix `{spec}`"));
            }
            entries.push((kind, weight));
        }
        if entries.is_empty() {
            return Err(format!("empty mix spec `{spec}`"));
        }
        Ok(Self { entries })
    }

    /// The `(structure, weight)` pairs, in spec order.
    pub fn entries(&self) -> &[(StructureKind, u32)] {
        &self.entries
    }

    /// The weights alone, in spec order (feed to `dist::WeightedPick`).
    pub fn weights(&self) -> Vec<u32> {
        self.entries.iter().map(|&(_, w)| w).collect()
    }

    /// Canonical `label:weight,…` rendering.
    pub fn label(&self) -> String {
        self.entries
            .iter()
            .map(|(k, w)| format!("{}:{w}", k.label()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Which reclamation scheme to run under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// No reclamation (leaks) — the performance ceiling.
    Leaky,
    /// Hazard pointers (per-read fence).
    Hazard,
    /// Epoch-based reclamation.
    Epoch,
    /// Epoch with one 40 ms-delayed errant thread.
    SlowEpoch,
    /// ThreadScan over real POSIX signals.
    ThreadScan,
    /// StackTrack-style precise tracking (HTM emulated via asymmetric
    /// fences; §6 text comparator, not part of the figure legends).
    StackTrack,
}

impl SchemeKind {
    /// The five Figure 3 schemes, legend order.
    pub const ALL: [SchemeKind; 5] = [
        Self::Leaky,
        Self::Hazard,
        Self::Epoch,
        Self::SlowEpoch,
        Self::ThreadScan,
    ];

    /// The Figure 4 (oversubscription) subset: "Slow Epoch and Hazard
    /// Pointers were not included in the oversubscription experiment".
    pub const OVERSUB: [SchemeKind; 3] = [Self::Leaky, Self::Epoch, Self::ThreadScan];

    /// The figure schemes plus the StackTrack comparator from §6's text.
    pub const EXTENDED: [SchemeKind; 6] = [
        Self::Leaky,
        Self::Hazard,
        Self::Epoch,
        Self::SlowEpoch,
        Self::ThreadScan,
        Self::StackTrack,
    ];

    /// Harness label.
    pub fn label(self) -> &'static str {
        match self {
            Self::Leaky => "leaky",
            Self::Hazard => "hazard",
            Self::Epoch => "epoch",
            Self::SlowEpoch => "slow-epoch",
            Self::ThreadScan => "threadscan",
            Self::StackTrack => "stacktrack",
        }
    }

    /// Parses a harness label back to its kind (`--schemes` CLI lists).
    pub fn parse(label: &str) -> Option<Self> {
        Some(match label {
            "leaky" => Self::Leaky,
            "hazard" => Self::Hazard,
            "epoch" => Self::Epoch,
            "slow-epoch" => Self::SlowEpoch,
            "threadscan" => Self::ThreadScan,
            "stacktrack" => Self::StackTrack,
            _ => return None,
        })
    }
}

/// One experiment cell: structure × scheme × thread count × workload shape.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Data structure under test.
    pub structure: StructureKind,
    /// Resident keys after prefill.
    pub initial_size: usize,
    /// Keys are drawn uniformly from `[0, key_range)`.
    pub key_range: u64,
    /// Percentage of operations that are updates (half inserts, half
    /// removes). Paper: 20 ("about 10% of all operations were node
    /// removals").
    pub update_pct: u32,
    /// Key distribution (paper methodology: uniform).
    pub key_dist: KeyDist,
    /// Measurement window. Paper: 10 s × 5 runs; the harness default is
    /// shorter so a full sweep finishes in reasonable time.
    pub duration: Duration,
    /// Worker thread count.
    pub threads: usize,
    /// ThreadScan per-thread delete-buffer capacity (1024 stock; 4096 for
    /// the tuned Figure 4 hash-table line).
    pub ts_buffer_capacity: usize,
    /// Enable the §7 distributed-free extension for ThreadScan runs.
    pub ts_distribute_frees: bool,
    /// Use the paper's §4.2 masked exact matching instead of range
    /// matching for ThreadScan runs. Only sound for structures whose
    /// traversals hold node-base pointers exclusively (the Harris list:
    /// its `next` field is at offset 0).
    pub ts_exact_match: bool,
    /// Master-buffer shard count for ThreadScan runs (`0` keeps the
    /// collector's parallelism-derived default; `1` is the paper's single
    /// sorted delete buffer).
    pub ts_shards: usize,
    /// Reclaimer sort-thread count for ThreadScan runs (`0` keeps the
    /// collector's `min(shards, parallelism)` default; `1` forces the
    /// sequential, pool-free sort).
    pub ts_sort_threads: usize,
    /// Route structure nodes through a per-structure size-class node pool
    /// ([`ts_alloc::PoolHandle`]) instead of `Box` on the global
    /// allocator. Off by default (the registry passes
    /// `NodeAlloc::Global`, today's exact behavior).
    pub node_pool: bool,
    /// ThreadScan runs only: use the adaptive collect policy
    /// ([`threadscan::CollectPolicy::Adaptive`]) instead of the paper's
    /// fixed full-buffer trigger. When combined with [`Self::node_pool`]
    /// the collector also watches the pools' bytes-resident gauge.
    pub ts_adaptive_collect: bool,
    /// Adaptive runs only: pending retired-node watermark handed to
    /// [`threadscan::CollectorConfig::with_pending_high_watermark`]
    /// (`0` keeps the collector's auto-sizing).
    pub ts_pending_watermark: usize,
    /// Slow-epoch injected delay.
    pub slow_epoch_delay: Duration,
    /// Slow-epoch delay cadence in operations.
    pub slow_epoch_period_ops: usize,
    /// How operations arrive at the workers ([`LoadModel`]): the paper's
    /// closed loop by default, or an open-loop arrival schedule for
    /// coordinated-omission-correct per-op latency.
    pub load_model: LoadModel,
    /// Seed for the open-loop arrival schedules (each worker derives its
    /// own stream from this; same seed ⇒ same offered-load trace).
    pub arrival_seed: u64,
    /// What workers do with arrivals they observe behind schedule
    /// (open-loop models only).
    pub backlog: BacklogPolicy,
    /// Install the `ts-telemetry` observability sink on the scheme's
    /// collector (ThreadScan runs) and publish worker/pool metrics into
    /// the process-wide registry. Off by default: a run without it
    /// executes zero additional atomics on any hot path.
    pub telemetry: bool,
    /// Weighted multi-structure mix for heterogeneous runs
    /// ([`crate::hetero::run_hetero_combo`]); `None` for single-structure
    /// cells.
    pub structure_mix: Option<StructureMix>,
    /// Accumulated [`Self::scaled_down`] factor, so derived cells
    /// ([`Self::hetero_cell`]) can re-apply the same shrink to their own
    /// presets.
    pub scale: usize,
}

impl WorkloadParams {
    /// Paper list workload: "Linked lists were 1024 nodes long, and the
    /// range of values was 2048."
    pub fn fig3_list(threads: usize) -> Self {
        Self::base(StructureKind::List, 1024, 2048, threads)
    }

    /// Paper hash workload: "Hash tables contained 131,072 nodes with a
    /// range of 262,144."
    pub fn fig3_hash(threads: usize) -> Self {
        Self::base(StructureKind::Hash, 131_072, 262_144, threads)
    }

    /// Paper skip-list workload: "Skip lists contained 128,000 nodes with
    /// a range of values of 256,000."
    pub fn fig3_skip(threads: usize) -> Self {
        Self::base(StructureKind::Skip, 128_000, 256_000, threads)
    }

    /// The Figure 3 preset for a given structure. The lazy list (not in
    /// the figures) borrows the linked-list sizing, as §1 describes the
    /// same list shape.
    pub fn fig3(structure: StructureKind, threads: usize) -> Self {
        match structure {
            StructureKind::List => Self::fig3_list(threads),
            StructureKind::Hash => Self::fig3_hash(threads),
            StructureKind::Skip => Self::fig3_skip(threads),
            StructureKind::Lazy => Self::base(StructureKind::Lazy, 1024, 2048, threads),
            // The resizable table borrows the fixed table's sizing so the
            // two are directly comparable in ablations.
            StructureKind::SplitOrdered => {
                Self::base(StructureKind::SplitOrdered, 131_072, 262_144, threads)
            }
            // The priority queue draws fresh random priorities rather than
            // revisiting a key range; a modest resident size keeps
            // delete-min from draining it between inserts.
            StructureKind::Pq => Self::base(StructureKind::Pq, 10_000, 20_000, threads),
        }
    }

    fn base(structure: StructureKind, initial_size: usize, key_range: u64, threads: usize) -> Self {
        Self {
            structure,
            initial_size,
            key_range,
            update_pct: 20,
            key_dist: KeyDist::Uniform,
            duration: Duration::from_secs(2),
            threads,
            ts_buffer_capacity: 1024,
            ts_distribute_frees: false,
            ts_exact_match: false,
            ts_shards: 0,
            ts_sort_threads: 0,
            node_pool: false,
            ts_adaptive_collect: false,
            ts_pending_watermark: 0,
            slow_epoch_delay: Duration::from_millis(40),
            slow_epoch_period_ops: 4096,
            load_model: LoadModel::Closed,
            arrival_seed: 0xA441_7A1E,
            backlog: BacklogPolicy::Queue,
            telemetry: false,
            structure_mix: None,
            scale: 1,
        }
    }

    /// Builder: measurement duration.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Builder: update percentage.
    pub fn with_update_pct(mut self, pct: u32) -> Self {
        assert!(pct <= 100);
        self.update_pct = pct;
        self
    }

    /// Builder: ThreadScan buffer capacity (Figure 4 tuning).
    pub fn with_ts_buffer(mut self, cap: usize) -> Self {
        self.ts_buffer_capacity = cap;
        self
    }

    /// Builder: ThreadScan master-buffer shard count (shard-count
    /// ablation); `0` keeps the collector default.
    pub fn with_ts_shards(mut self, shards: usize) -> Self {
        self.ts_shards = shards;
        self
    }

    /// Builder: ThreadScan reclaimer sort-thread count (parallel
    /// shard-sort ablation); `0` keeps the collector default.
    pub fn with_ts_sort_threads(mut self, sort_threads: usize) -> Self {
        self.ts_sort_threads = sort_threads;
        self
    }

    /// Builder: key distribution (skew ablations).
    pub fn with_key_dist(mut self, dist: KeyDist) -> Self {
        self.key_dist = dist;
        self
    }

    /// Builder: per-structure node pools on/off (node-pool ablation).
    pub fn with_node_pool(mut self, on: bool) -> Self {
        self.node_pool = on;
        self
    }

    /// Builder: ThreadScan adaptive collect policy on/off.
    pub fn with_ts_adaptive_collect(mut self, on: bool) -> Self {
        self.ts_adaptive_collect = on;
        self
    }

    /// Builder: ThreadScan adaptive pending watermark (`0` = collector
    /// auto-sizing).
    pub fn with_ts_pending_watermark(mut self, watermark: usize) -> Self {
        self.ts_pending_watermark = watermark;
        self
    }

    /// Builder: shrink the workload by `factor` (both size and range), for
    /// smoke tests and CI.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor >= 1);
        self.initial_size = (self.initial_size / factor).max(16);
        self.key_range = (self.key_range / factor as u64).max(32);
        self.scale = self.scale.saturating_mul(factor);
        self
    }

    /// Builder: the load model (closed loop by default; open models turn
    /// on per-op latency measurement).
    pub fn with_load_model(mut self, model: LoadModel) -> Self {
        model.validate();
        self.load_model = model;
        self
    }

    /// Builder: arrival-schedule seed for open-loop runs.
    pub fn with_arrival_seed(mut self, seed: u64) -> Self {
        self.arrival_seed = seed;
        self
    }

    /// Builder: backlog policy for open-loop runs.
    pub fn with_backlog(mut self, policy: BacklogPolicy) -> Self {
        self.backlog = policy;
        self
    }

    /// The bundled load-generation knobs for the worker loop.
    pub(crate) fn load_spec(&self) -> crate::load::LoadSpec<'_> {
        crate::load::LoadSpec {
            model: &self.load_model,
            backlog: self.backlog,
            arrival_seed: self.arrival_seed,
            telemetry: self.telemetry,
        }
    }

    /// Builder: telemetry (phase rings + metrics registry) on/off.
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Builder: the weighted structure mix for a heterogeneous run.
    pub fn with_structure_mix(mut self, mix: StructureMix) -> Self {
        self.structure_mix = Some(mix);
        self
    }

    /// Derives the single-structure cell for one member of a
    /// heterogeneous run: `kind`'s own Figure 3 sizing at this cell's
    /// scale, with this cell's workload shape (duration, update mix, key
    /// distribution, scheme tuning) carried over.
    pub fn hetero_cell(&self, kind: StructureKind) -> WorkloadParams {
        let mut cell = Self::fig3(kind, self.threads).scaled_down(self.scale);
        cell.duration = self.duration;
        cell.update_pct = self.update_pct;
        cell.key_dist = self.key_dist;
        cell.ts_buffer_capacity = self.ts_buffer_capacity;
        cell.ts_distribute_frees = self.ts_distribute_frees;
        cell.ts_exact_match = self.ts_exact_match;
        cell.ts_shards = self.ts_shards;
        cell.ts_sort_threads = self.ts_sort_threads;
        cell.node_pool = self.node_pool;
        cell.ts_adaptive_collect = self.ts_adaptive_collect;
        cell.ts_pending_watermark = self.ts_pending_watermark;
        cell.slow_epoch_delay = self.slow_epoch_delay;
        cell.slow_epoch_period_ops = self.slow_epoch_period_ops;
        cell.load_model = self.load_model;
        cell.arrival_seed = self.arrival_seed;
        cell.backlog = self.backlog;
        cell.telemetry = self.telemetry;
        cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_methodology() {
        let l = WorkloadParams::fig3_list(8);
        assert_eq!(
            (l.initial_size, l.key_range, l.update_pct),
            (1024, 2048, 20)
        );
        let h = WorkloadParams::fig3_hash(8);
        assert_eq!((h.initial_size, h.key_range), (131_072, 262_144));
        let s = WorkloadParams::fig3_skip(8);
        assert_eq!((s.initial_size, s.key_range), (128_000, 256_000));
        assert_eq!(l.ts_buffer_capacity, 1024);
        assert_eq!(l.slow_epoch_delay, Duration::from_millis(40));
    }

    #[test]
    fn oversub_subset_matches_figure4_legend() {
        assert_eq!(
            SchemeKind::OVERSUB.map(|s| s.label()),
            ["leaky", "epoch", "threadscan"]
        );
    }

    #[test]
    fn scaled_down_keeps_ratio_reasonable() {
        let p = WorkloadParams::fig3_hash(4).scaled_down(64);
        assert_eq!(p.initial_size, 2048);
        assert_eq!(p.key_range, 4096);
        assert_eq!(p.scale, 64);
    }

    #[test]
    fn scheme_labels_round_trip_through_parse() {
        for kind in SchemeKind::EXTENDED {
            assert_eq!(SchemeKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(SchemeKind::parse("gc"), None);
    }

    #[test]
    fn load_model_knobs_carry_into_hetero_cells() {
        let model = LoadModel::OpenPoisson { qps: 5_000.0 };
        let p = WorkloadParams::fig3(StructureKind::Hash, 4)
            .with_load_model(model)
            .with_arrival_seed(77)
            .with_backlog(BacklogPolicy::DropAfter(Duration::from_millis(5)))
            .with_structure_mix(StructureMix::parse("hash:1,list:1").unwrap());
        let cell = p.hetero_cell(StructureKind::List);
        assert_eq!(cell.load_model, model);
        assert_eq!(cell.arrival_seed, 77);
        assert_eq!(
            cell.backlog,
            BacklogPolicy::DropAfter(Duration::from_millis(5))
        );
    }

    #[test]
    fn structure_labels_round_trip_through_parse() {
        for kind in StructureKind::EXTENDED {
            assert_eq!(StructureKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(StructureKind::parse("pq"), Some(StructureKind::Pq));
        assert_eq!(StructureKind::parse("btree"), None);
    }

    #[test]
    fn mix_spec_parses_and_renders_canonically() {
        let mix = StructureMix::parse("hash:50, skiplist:30 ,pq:20").unwrap();
        assert_eq!(
            mix.entries(),
            [
                (StructureKind::Hash, 50),
                (StructureKind::Skip, 30),
                (StructureKind::Pq, 20),
            ]
        );
        assert_eq!(mix.weights(), [50, 30, 20]);
        assert_eq!(mix.label(), "hash:50,skiplist:30,pq:20");
    }

    #[test]
    fn bad_mix_specs_are_rejected() {
        assert!(StructureMix::parse("").is_err());
        assert!(StructureMix::parse("hash").is_err(), "missing weight");
        assert!(StructureMix::parse("btree:10").is_err(), "unknown label");
        assert!(StructureMix::parse("hash:0").is_err(), "zero weight");
        assert!(StructureMix::parse("hash:1,hash:2").is_err(), "duplicate");
        assert!(StructureMix::parse("hash:x").is_err(), "non-numeric");
    }

    #[test]
    fn hetero_cell_sizes_per_structure_but_keeps_the_run_shape() {
        let mut p = WorkloadParams::fig3(StructureKind::Hash, 6)
            .scaled_down(64)
            .with_update_pct(40)
            .with_ts_buffer(4096)
            .with_node_pool(true)
            .with_ts_adaptive_collect(true)
            .with_ts_pending_watermark(512)
            .with_structure_mix(StructureMix::parse("hash:50,skiplist:30,pq:20").unwrap());
        p.duration = Duration::from_millis(250);
        let skip = p.hetero_cell(StructureKind::Skip);
        assert_eq!(skip.structure, StructureKind::Skip);
        assert_eq!(skip.initial_size, 128_000 / 64);
        assert_eq!(skip.threads, 6);
        assert_eq!(skip.update_pct, 40);
        assert_eq!(skip.ts_buffer_capacity, 4096);
        assert_eq!(skip.duration, Duration::from_millis(250));
        assert!(skip.node_pool, "pool toggle must carry into hetero cells");
        assert!(skip.ts_adaptive_collect);
        assert_eq!(skip.ts_pending_watermark, 512);
        assert!(
            p.clone()
                .with_telemetry(true)
                .hetero_cell(StructureKind::Skip)
                .telemetry,
            "telemetry toggle must carry into hetero cells"
        );
        let pq = p.hetero_cell(StructureKind::Pq);
        assert_eq!(pq.initial_size, 10_000 / 64);
    }
}
