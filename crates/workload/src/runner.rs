//! The throughput runner: the paper's measurement loop.
//!
//! "Each data point in the graphs represents the average number of
//! operations over five executions of 10 seconds" (§6). The runner
//! executes one (structure × scheme × threads) cell: prefill, start all
//! worker threads behind a barrier, run the op mix for the measurement
//! window, stop, and report completed operations.
//!
//! Dispatch is registry-based (see [`crate::registry`]): the scheme is
//! built as `Arc<dyn DynSmr>`, wrapped in [`ErasedSmr`], and the
//! structure as `Arc<dyn ConcurrentSet<ErasedSmr>>` — the runner never
//! names a concrete (scheme × structure) pair. Scheme-specific report
//! fields (Leaky's leak counter, ThreadScan's collector statistics) are
//! recovered by downcasting through [`DynSmr::as_any`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use ts_sigscan::SignalPlatform;
use ts_smr::dynamic::{DynSmr, ErasedSmr};
use ts_smr::{Leaky, Smr, SmrHandle, ThreadScanSmr};
use ts_structures::ConcurrentSet;

use crate::load::{self, Aggregate, LatencySummary, OpenLoopExtras};
use crate::mix::{prefill_keys, Op, OpMix};
use crate::params::{SchemeKind, WorkloadParams};

/// ThreadScan-specific counters attached to a run.
#[derive(Debug, Clone, Default)]
pub struct ThreadScanExtras {
    /// Reclamation phases during the run.
    pub collects: usize,
    /// Phases triggered by the adaptive policy's watermark rather than a
    /// full local buffer (always zero under `CollectPolicy::Fixed`).
    pub adaptive_collects: usize,
    /// Words scanned across all signal handlers.
    pub words_scanned: usize,
    /// Nodes freed.
    pub freed: usize,
    /// Marked survivors (summed over phases).
    pub survivors: usize,
    /// Signals sent by reclaimers.
    pub threads_scanned: usize,
    /// Mean reclaimer-side collect latency (µs).
    pub mean_collect_us: f64,
    /// Worst-case reclaimer-side collect latency (µs).
    pub max_collect_us: f64,
    /// Mean per-phase master-buffer partition-and-sort time (µs),
    /// critical path — what the reclaimer actually waited.
    pub mean_sort_us: f64,
    /// Mean per-phase sort CPU time (µs), summed over sorting threads;
    /// divided by `mean_sort_us` this is the parallel sort's speedup.
    pub mean_sort_cpu_us: f64,
    /// Reclaimer collect-latency percentiles (µs), from the collector's
    /// log2 latency histogram: median, tail, extreme tail.
    pub collect_us_p50: f64,
    /// 95th percentile collect latency (µs).
    pub collect_us_p95: f64,
    /// 99th percentile collect latency (µs).
    pub collect_us_p99: f64,
    /// Raw log2 collect-latency histogram (`[i]` counts phases in
    /// `[2^i, 2^(i+1))` ns), exported so multi-repeat harnesses can
    /// merge histograms across runs before computing percentiles.
    pub collect_ns_hist: Vec<usize>,
    /// Largest master-buffer shard seen in any phase (entries).
    pub max_shard_len: usize,
    /// Per-shard entry counts of the last reclamation phase of the
    /// measurement window, snapshotted before the end-of-run quiesce
    /// (empty when no phase ran during the window).
    pub shard_sizes: Vec<usize>,
}

/// One size class's allocator traffic during a run: only classes that
/// actually moved are reported, so idle runs stay an empty list (and the
/// whole `alloc` block stays `null`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassDelta {
    /// Size-class index (see `ts_alloc::class_size`).
    pub class: usize,
    /// The class's block size in bytes.
    pub size: usize,
    /// Allocations served from this class during the run.
    pub allocs: usize,
    /// Blocks of this class freed during the run.
    pub frees: usize,
}

impl ClassDelta {
    /// Renders as one JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        crate::json::ObjectBuilder::new()
            .num("class", self.class as f64)
            .num("size", self.size as f64)
            .num("allocs", self.allocs as f64)
            .num("frees", self.frees as f64)
            .build()
    }
}

/// Allocator-counter deltas over one run (the `ts-alloc-nodes` feature;
/// meaningful only in binaries that install `ts_alloc` as the global
/// allocator, e.g. `ablation_allocator --real-alloc`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocExtras {
    /// Small (size-class) allocations served during the run.
    pub small_allocs: usize,
    /// Small blocks freed during the run.
    pub small_frees: usize,
    /// Large (passthrough) allocations.
    pub large_allocs: usize,
    /// Large frees.
    pub large_frees: usize,
    /// 64 KiB spans carved from the system allocator.
    pub spans: usize,
    /// Bytes reserved in new spans.
    pub span_bytes: usize,
    /// Thread-cache refills from the central depot (one lock each).
    pub cache_fills: usize,
    /// Thread-cache flushes to the central depot.
    pub cache_flushes: usize,
    /// Per-size-class alloc/free deltas, ascending by class; classes with
    /// no traffic are omitted.
    pub classes: Vec<ClassDelta>,
}

impl AllocExtras {
    /// Small allocations per depot-lock acquisition during the run — the
    /// amortization the thread-caching design exists to provide.
    pub fn allocs_per_lock(&self) -> f64 {
        let locks = self.cache_fills + self.cache_flushes;
        if locks == 0 {
            0.0
        } else {
            self.small_allocs as f64 / locks as f64
        }
    }

    /// Renders as one JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        let classes = format!(
            "[{}]",
            self.classes
                .iter()
                .map(ClassDelta::to_json)
                .collect::<Vec<_>>()
                .join(",")
        );
        crate::json::ObjectBuilder::new()
            .num("small_allocs", self.small_allocs as f64)
            .num("small_frees", self.small_frees as f64)
            .num("large_allocs", self.large_allocs as f64)
            .num("large_frees", self.large_frees as f64)
            .num("spans", self.spans as f64)
            .num("span_bytes", self.span_bytes as f64)
            .num("cache_fills", self.cache_fills as f64)
            .num("cache_flushes", self.cache_flushes as f64)
            .num("allocs_per_lock", self.allocs_per_lock())
            .raw("classes", &classes)
            .build()
    }
}

/// Per-structure share of a heterogeneous run.
#[derive(Debug, Clone)]
pub struct StructureOps {
    /// Structure label ([`crate::params::StructureKind::label`]).
    pub structure: String,
    /// Completed operations routed to this structure.
    pub ops: u64,
    /// This structure's share of throughput (ops/second over the shared
    /// measurement window).
    pub ops_per_sec: f64,
    /// This structure's per-op latency (open-loop runs only; `None`
    /// under the closed loop or when no op completed).
    pub latency: Option<LatencySummary>,
}

impl StructureOps {
    /// Renders as one JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        let latency = match &self.latency {
            Some(l) => l.to_json(),
            None => "null".to_string(),
        };
        crate::json::ObjectBuilder::new()
            .str("structure", &self.structure)
            .num("ops", self.ops as f64)
            .num("ops_per_sec", self.ops_per_sec)
            .raw("latency", &latency)
            .build()
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Reclamation scheme label.
    pub scheme: String,
    /// Structure label.
    pub structure: String,
    /// Worker threads.
    pub threads: usize,
    /// Measured wall time in seconds.
    pub duration_s: f64,
    /// Completed operations across all threads.
    pub total_ops: u64,
    /// Throughput (ops/second).
    pub ops_per_sec: f64,
    /// Retired-but-unfreed nodes at the end (after a quiesce); `None`
    /// for Leaky, where it would read as a leak count instead.
    pub outstanding_after: Option<usize>,
    /// Nodes intentionally leaked (Leaky only).
    pub leaked: Option<usize>,
    /// The scheme's per-handle protection-slot budget; `None` for schemes
    /// with no per-reference state (epoch, ThreadScan, leaky).
    pub protection_slots: Option<usize>,
    /// ThreadScan internals (ThreadScan only).
    pub threadscan: Option<ThreadScanExtras>,
    /// Allocator-counter deltas (`ts-alloc-nodes` builds whose binary
    /// routed allocation through `ts_alloc`; `None` otherwise).
    pub alloc: Option<AllocExtras>,
    /// Per-structure op counts/throughput for heterogeneous runs
    /// ([`crate::hetero::run_hetero_combo`]); empty for single-structure
    /// cells (rendered as JSON `null`).
    pub per_structure: Vec<StructureOps>,
    /// Final bucket count, for structures with a bucket directory (the
    /// split-ordered table); `None` otherwise.
    pub bucket_count: Option<usize>,
    /// Per-op latency from intended arrival to completion — the
    /// coordinated-omission-correct service latency. `None` under
    /// [`LoadModel::Closed`](crate::load::LoadModel::Closed), which takes
    /// no per-op clocks.
    pub latency: Option<LatencySummary>,
    /// Offered-vs-served accounting for open-loop runs (`None` under the
    /// closed loop).
    pub open_loop: Option<OpenLoopExtras>,
}

impl ThreadScanExtras {
    /// Renders as one JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        crate::json::ObjectBuilder::new()
            .num("collects", self.collects as f64)
            .num("adaptive_collects", self.adaptive_collects as f64)
            .num("words_scanned", self.words_scanned as f64)
            .num("freed", self.freed as f64)
            .num("survivors", self.survivors as f64)
            .num("threads_scanned", self.threads_scanned as f64)
            .num("mean_collect_us", self.mean_collect_us)
            .num("max_collect_us", self.max_collect_us)
            .num("mean_sort_us", self.mean_sort_us)
            .num("mean_sort_cpu_us", self.mean_sort_cpu_us)
            .num("collect_us_p50", self.collect_us_p50)
            .num("collect_us_p95", self.collect_us_p95)
            .num("collect_us_p99", self.collect_us_p99)
            .num("max_shard_len", self.max_shard_len as f64)
            .arr_num("shard_sizes", self.shard_sizes.iter().map(|&s| s as f64))
            .arr_num(
                "collect_ns_hist",
                self.collect_ns_hist.iter().map(|&c| c as f64),
            )
            .build()
    }
}

impl RunResult {
    /// Renders as one JSON object line (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        let ts = match &self.threadscan {
            Some(extras) => extras.to_json(),
            None => "null".to_string(),
        };
        let alloc = match &self.alloc {
            Some(extras) => extras.to_json(),
            None => "null".to_string(),
        };
        let per_structure = if self.per_structure.is_empty() {
            "null".to_string()
        } else {
            format!(
                "[{}]",
                self.per_structure
                    .iter()
                    .map(StructureOps::to_json)
                    .collect::<Vec<_>>()
                    .join(",")
            )
        };
        let latency = match &self.latency {
            Some(l) => l.to_json(),
            None => "null".to_string(),
        };
        let open_loop = match &self.open_loop {
            Some(o) => o.to_json(),
            None => "null".to_string(),
        };
        crate::json::ObjectBuilder::new()
            .str("scheme", &self.scheme)
            .str("structure", &self.structure)
            .num("threads", self.threads as f64)
            .num("duration_s", self.duration_s)
            .num("total_ops", self.total_ops as f64)
            .num("ops_per_sec", self.ops_per_sec)
            .opt_num(
                "outstanding_after",
                self.outstanding_after.map(|v| v as f64),
            )
            .opt_num("leaked", self.leaked.map(|v| v as f64))
            .opt_num("protection_slots", self.protection_slots.map(|v| v as f64))
            .opt_num("bucket_count", self.bucket_count.map(|v| v as f64))
            .raw("latency", &latency)
            .raw("open_loop", &open_loop)
            .raw("per_structure", &per_structure)
            .raw("threadscan", &ts)
            .raw("alloc", &alloc)
            .build()
    }
}

/// What one measured window produced, before scheme-specific accounting.
pub(crate) struct DriveOutcome {
    /// Completed operations across all threads.
    pub ops: u64,
    /// Measured wall time, seconds.
    pub secs: f64,
    /// Per-op latency (open-loop models only).
    pub latency: Option<LatencySummary>,
    /// Offered-vs-served accounting (open-loop models only).
    pub open_loop: Option<OpenLoopExtras>,
}

/// Drives `set` under `scheme` per `params`. The generic measurement
/// core: the harness instantiates it once at `S = ErasedSmr` (any scheme
/// at runtime); library users may instantiate it with concrete types for
/// a zero-virtual-call measurement loop.
///
/// The worker loop itself lives in the load-generation layer
/// ([`crate::load::drive_worker`]): under [`LoadModel::Closed`] it is the
/// pre-refactor tight loop (per-op relaxed stop check, no clocks — see
/// the regression note there about post-stop ops); under an open model
/// each worker follows its arrival schedule and measures latency from
/// intended arrival to completion.
///
/// [`LoadModel::Closed`]: crate::load::LoadModel::Closed
fn drive<S, T>(scheme: &Arc<S>, set: &Arc<T>, params: &WorkloadParams) -> DriveOutcome
where
    S: Smr,
    T: ConcurrentSet<S> + ?Sized + 'static,
{
    // Prefill from a temporary handle (deterministic half-density).
    {
        let handle = scheme.register();
        for key in prefill_keys(params.initial_size, params.key_range) {
            set.insert(&handle, key);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let start_barrier = Arc::new(Barrier::new(params.threads + 1));
    let reports = Mutex::new(Vec::with_capacity(params.threads));
    let reports_ref = &reports;
    let elapsed_holder = AtomicU64::new(0);
    let elapsed_holder = &elapsed_holder;

    std::thread::scope(|s| {
        for t in 0..params.threads {
            let scheme = Arc::clone(scheme);
            let set = Arc::clone(set);
            let stop = Arc::clone(&stop);
            let start_barrier = Arc::clone(&start_barrier);
            let params = params.clone();
            s.spawn(move || {
                let handle = scheme.register();
                let mut mix = OpMix::with_dist(
                    0x51ED_1E55 ^ (t as u64) << 1,
                    params.key_range,
                    params.update_pct,
                    params.key_dist,
                );
                start_barrier.wait();
                let report =
                    load::drive_worker(params.load_spec(), t, params.threads, 1, &stop, || {
                        match mix.next_op() {
                            Op::Contains(k) => {
                                set.contains(&handle, k);
                            }
                            Op::Insert(k) => {
                                set.insert(&handle, k);
                            }
                            Op::Remove(k) => {
                                set.remove(&handle, k);
                            }
                        }
                        0
                    });
                reports_ref.lock().unwrap().push(report);
                // handle drops here: the thread unregisters before exit,
                // as the signal platform requires.
            });
        }

        start_barrier.wait();
        let t0 = std::time::Instant::now();
        std::thread::sleep(params.duration);
        stop.store(true, Ordering::Relaxed);
        elapsed_holder.store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
        // scope joins all workers here
    });

    let agg = Aggregate::from_reports(reports.into_inner().unwrap(), 1);
    let open_loop = agg.open_extras(&params.load_model);
    DriveOutcome {
        ops: agg.total_ops,
        secs: elapsed_holder.load(Ordering::Relaxed) as f64 / 1e6,
        latency: agg.latency,
        open_loop,
    }
}

/// ThreadScan-specific report fields, recovered from the erased scheme by
/// downcast. Must run *before* the end-of-run quiesce: its small drain
/// phases would dilute the per-phase latency/sort means and overwrite the
/// last in-run shard sizes, and the extras should describe the measured
/// window.
pub(crate) fn threadscan_extras(scheme: &dyn DynSmr) -> Option<ThreadScanExtras> {
    let ts = scheme
        .as_any()
        .downcast_ref::<ThreadScanSmr<SignalPlatform>>()?;
    let st = ts.stats();
    let shard_sizes = ts.collector().last_shard_sizes();
    Some(ThreadScanExtras {
        collects: st.collects,
        adaptive_collects: st.adaptive_collects,
        words_scanned: st.words_scanned,
        freed: st.freed,
        survivors: st.survivors,
        threads_scanned: st.threads_scanned,
        mean_collect_us: st.mean_collect_us(),
        max_collect_us: st.max_collect_us(),
        mean_sort_us: st.mean_sort_us(),
        mean_sort_cpu_us: st.mean_sort_cpu_us(),
        collect_us_p50: st.collect_us_percentile(0.50),
        collect_us_p95: st.collect_us_percentile(0.95),
        collect_us_p99: st.collect_us_percentile(0.99),
        collect_ns_hist: st.collect_ns_hist.to_vec(),
        max_shard_len: st.max_shard_len,
        shard_sizes,
    })
}

/// Scheme-specific accounting shared by the set and priority-queue
/// runners: quiesces, then splits the post-quiesce count into
/// `outstanding_after` (reclaiming schemes) vs `leaked` (Leaky, whose
/// "outstanding" is intentional leakage and must not read as a deficit).
pub(crate) fn quiesce_and_account(scheme: &dyn DynSmr) -> (Option<usize>, Option<usize>) {
    scheme.quiesce();
    match scheme.as_any().downcast_ref::<Leaky>() {
        Some(leaky) => (None, Some(leaky.leaked())),
        None => (Some(scheme.outstanding()), None),
    }
}

/// Allocator-counter snapshot bracket for the `ts-alloc-nodes` feature:
/// returns `None` when the counters did not move (the binary did not
/// route allocation through `ts_alloc`), so reports stay honest.
#[cfg(feature = "ts-alloc-nodes")]
pub(crate) struct AllocBracket(ts_alloc::AllocStats);

#[cfg(feature = "ts-alloc-nodes")]
impl AllocBracket {
    pub(crate) fn open() -> Self {
        Self(ts_alloc::stats())
    }

    pub(crate) fn close(self) -> Option<AllocExtras> {
        let b = self.0;
        let a = ts_alloc::stats();
        // Only classes with traffic, so an idle run's delta still equals
        // `default()` and the block stays `null`.
        let classes = (0..ts_alloc::NUM_CLASSES)
            .filter_map(|c| {
                let allocs = a.class_allocs[c] - b.class_allocs[c];
                let frees = a.class_frees[c] - b.class_frees[c];
                (allocs != 0 || frees != 0).then(|| ClassDelta {
                    class: c,
                    size: ts_alloc::class_size(c),
                    allocs,
                    frees,
                })
            })
            .collect();
        let delta = AllocExtras {
            small_allocs: a.small_allocs - b.small_allocs,
            small_frees: a.small_frees - b.small_frees,
            large_allocs: a.large_allocs - b.large_allocs,
            large_frees: a.large_frees - b.large_frees,
            spans: a.spans - b.spans,
            span_bytes: a.span_bytes - b.span_bytes,
            cache_fills: a.cache_fills - b.cache_fills,
            cache_flushes: a.cache_flushes - b.cache_flushes,
            classes,
        };
        (delta != AllocExtras::default()).then_some(delta)
    }
}

/// No-op stand-in when the feature is off: `close` always yields `None`.
#[cfg(not(feature = "ts-alloc-nodes"))]
pub(crate) struct AllocBracket;

#[cfg(not(feature = "ts-alloc-nodes"))]
impl AllocBracket {
    pub(crate) fn open() -> Self {
        Self
    }

    pub(crate) fn close(self) -> Option<AllocExtras> {
        None
    }
}

/// Runs one experiment cell through the scheme and structure registries.
///
/// No (scheme × structure) dispatch happens here: [`SchemeKind::build`]
/// yields the scheme as `Arc<dyn DynSmr>`, [`StructureKind::build_set`]
/// the structure as `Arc<dyn ConcurrentSet<ErasedSmr>>`, and the generic
/// measurement loop drives the pair through the erased adapter.
///
/// [`StructureKind::build_set`]: crate::params::StructureKind::build_set
pub fn run_combo(scheme: SchemeKind, params: &WorkloadParams) -> RunResult {
    let dyn_scheme = scheme.build(params);
    let erased = Arc::new(ErasedSmr::new(Arc::clone(&dyn_scheme)));
    let set = params.structure.build_set::<ErasedSmr>(params);

    let alloc_bracket = AllocBracket::open();
    let outcome = drive(&erased, &set, params);

    let ts = threadscan_extras(&*dyn_scheme); // before quiesce (see docs)
    let (outstanding_after, leaked) = quiesce_and_account(&*dyn_scheme);
    let alloc = alloc_bracket.close();
    let protection_slots = erased.register().protection_slots();

    RunResult {
        scheme: scheme.label().to_string(),
        structure: params.structure.label().to_string(),
        threads: params.threads,
        duration_s: outcome.secs,
        total_ops: outcome.ops,
        ops_per_sec: outcome.ops as f64 / outcome.secs.max(1e-9),
        outstanding_after,
        leaked,
        protection_slots,
        threadscan: ts,
        alloc,
        per_structure: Vec::new(),
        bucket_count: set.bucket_count(),
        latency: outcome.latency,
        open_loop: outcome.open_loop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::StructureKind;
    use std::time::Duration;

    fn quick(structure: StructureKind, threads: usize) -> WorkloadParams {
        WorkloadParams::fig3(structure, threads)
            .scaled_down(64)
            .with_duration(Duration::from_millis(120))
    }

    /// A set whose every operation takes ~`OP_MS` ms: long enough that a
    /// batch of them straddles the stop flag by a wide margin.
    struct StallingSet;

    const OP_MS: u64 = 5;

    impl ConcurrentSet<Leaky> for StallingSet {
        fn contains(&self, _h: &<Leaky as Smr>::Handle, _k: u64) -> bool {
            std::thread::sleep(Duration::from_millis(OP_MS));
            false
        }
        fn insert(&self, _h: &<Leaky as Smr>::Handle, _k: u64) -> bool {
            std::thread::sleep(Duration::from_millis(OP_MS));
            true
        }
        fn remove(&self, _h: &<Leaky as Smr>::Handle, _k: u64) -> bool {
            std::thread::sleep(Duration::from_millis(OP_MS));
            false
        }
        fn kind(&self) -> &'static str {
            "stalling"
        }
    }

    /// Regression for the throughput-accounting bug: workers used to run
    /// 64-op batches and only check `stop` between batches, while
    /// `elapsed` is captured the moment the flag is set — so up to 63
    /// ops per thread were billed to a window that excludes the time
    /// they took. With 5 ms ops and a 60 ms window, the old code counted
    /// a full 64-op (320 ms) batch per thread; the fixed code can
    /// complete at most ~12 ops per thread inside the window (plus the
    /// one op in flight when the flag flips).
    #[test]
    fn ops_finished_after_stop_are_not_counted() {
        const THREADS: usize = 2;
        let scheme = Arc::new(Leaky::new());
        let set = Arc::new(StallingSet);
        let mut params = quick(StructureKind::List, THREADS);
        params.initial_size = 0; // no prefill through the stalling set
        params.duration = Duration::from_millis(60);
        let outcome = drive(&scheme, &set, &params);
        let (ops, secs) = (outcome.ops, outcome.secs);
        // Bound against the *measured* window, not the nominal 60 ms —
        // on a loaded machine the driver's sleep can overshoot, in which
        // case more ops legitimately fit. `+ 1` covers the op in flight
        // per thread when the flag flips; 2x slack absorbs scheduling
        // jitter while staying far below the old code's full-batch bill.
        let window_ops_per_thread = (secs * 1000.0 / OP_MS as f64).ceil() as u64 + 1;
        assert!(
            ops <= (THREADS as u64) * window_ops_per_thread * 2,
            "{ops} ops counted against a {secs:.3}s window: post-stop \
             batch work is being billed to the measurement window"
        );
        assert!(ops > 0, "workers must still make progress");
    }

    /// Oversubscription smoke: 4× more ThreadScan workers than cores
    /// must complete, reclaim, and report monotone latency percentiles.
    #[test]
    fn oversubscribed_4x_run_reports_latency_percentiles() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let threads = (cores * 4).min(64);
        let mut p = quick(StructureKind::List, threads);
        p.ts_buffer_capacity = 64; // force reclamation phases
        p.duration = Duration::from_millis(250);
        let r = run_combo(SchemeKind::ThreadScan, &p);
        assert!(r.total_ops > 0);
        let ts = r.threadscan.expect("threadscan extras present");
        assert!(ts.collects > 0, "phases must run under oversubscription");
        assert!(
            ts.collect_us_p50 > 0.0,
            "histogram must populate percentiles"
        );
        assert!(ts.collect_us_p50 <= ts.collect_us_p95);
        assert!(ts.collect_us_p95 <= ts.collect_us_p99);
    }

    #[test]
    fn every_scheme_completes_on_the_list() {
        for scheme in SchemeKind::ALL {
            let r = run_combo(scheme, &quick(StructureKind::List, 3));
            assert!(r.total_ops > 0, "{:?} produced no ops", scheme);
            assert_eq!(r.structure, "list");
            assert_eq!(r.threads, 3);
        }
    }

    #[test]
    fn every_structure_completes_under_threadscan() {
        for structure in StructureKind::ALL {
            let r = run_combo(SchemeKind::ThreadScan, &quick(structure, 3));
            assert!(r.total_ops > 0, "{:?} produced no ops", structure);
            let ts = r.threadscan.expect("threadscan extras present");
            // With 20% updates and a scaled-down buffer the run may or may
            // not trigger a phase; freed+outstanding bookkeeping must be
            // consistent regardless.
            assert!(ts.freed <= ts.freed + ts.survivors);
        }
    }

    #[test]
    fn threadscan_run_reclaims_with_small_buffers() {
        let mut p = quick(StructureKind::List, 4);
        p.ts_buffer_capacity = 64; // force frequent collects
        p.duration = Duration::from_millis(300);
        let r = run_combo(SchemeKind::ThreadScan, &p);
        let ts = r.threadscan.unwrap();
        assert!(ts.collects > 0, "no reclamation phases ran");
        assert!(ts.freed > 0, "nothing was reclaimed");
        // After quiesce, outstanding should be small relative to total
        // retired work (stale stack slots may pin a handful).
        let outstanding = r.outstanding_after.unwrap();
        assert!(
            outstanding < 64 + ts.freed / 2,
            "outstanding {outstanding} too high vs freed {}",
            ts.freed
        );
    }

    #[test]
    fn leaky_reports_leaks_not_outstanding() {
        let r = run_combo(SchemeKind::Leaky, &quick(StructureKind::Hash, 2));
        assert!(r.outstanding_after.is_none());
        assert!(r.leaked.is_some());
    }

    /// A set that records every operation it is asked to perform, in
    /// order — the probe for the closed-model pinning test.
    struct RecordingSet(Mutex<Vec<Op>>);

    impl ConcurrentSet<Leaky> for RecordingSet {
        fn contains(&self, _h: &<Leaky as Smr>::Handle, k: u64) -> bool {
            self.0.lock().unwrap().push(Op::Contains(k));
            false
        }
        fn insert(&self, _h: &<Leaky as Smr>::Handle, k: u64) -> bool {
            self.0.lock().unwrap().push(Op::Insert(k));
            true
        }
        fn remove(&self, _h: &<Leaky as Smr>::Handle, k: u64) -> bool {
            self.0.lock().unwrap().push(Op::Remove(k));
            false
        }
        fn kind(&self) -> &'static str {
            "recording"
        }
    }

    /// Pins [`LoadModel::Closed`](crate::load::LoadModel::Closed) to the
    /// pre-refactor runner observationally: a single worker must issue
    /// *exactly* the op stream of `OpMix::with_dist(0x51ED_1E55 ^ 0, ...)`
    /// (the documented per-worker seed), count every issued op, and take
    /// no per-op clocks (no latency, no open-loop extras).
    #[test]
    fn closed_model_is_observationally_the_pre_refactor_loop() {
        let scheme = Arc::new(Leaky::new());
        let set = Arc::new(RecordingSet(Mutex::new(Vec::new())));
        let mut params = quick(StructureKind::List, 1);
        params.initial_size = 0; // keep prefill out of the recording
        params.duration = Duration::from_millis(40);
        assert_eq!(params.load_model, crate::load::LoadModel::Closed);
        let outcome = drive(&scheme, &set, &params);

        let recorded = set.0.lock().unwrap();
        assert_eq!(
            outcome.ops as usize,
            recorded.len(),
            "every issued op is counted, none invented"
        );
        assert!(outcome.ops > 0, "the worker must make progress");
        assert!(outcome.latency.is_none(), "closed loop takes no clocks");
        assert!(outcome.open_loop.is_none(), "closed loop has no extras");

        // Replay the documented stream: worker 0 seeds OpMix with
        // 0x51ED_1E55 ^ (0 << 1).
        let mut expect = OpMix::with_dist(
            0x51ED_1E55,
            params.key_range,
            params.update_pct,
            params.key_dist,
        );
        for (i, op) in recorded.iter().enumerate() {
            assert_eq!(*op, expect.next_op(), "op {i} diverged from the stream");
        }
    }

    #[test]
    fn open_loop_run_reports_latency_and_extras() {
        let mut p = quick(StructureKind::Hash, 2);
        p.duration = Duration::from_millis(200);
        p = p.with_load_model(crate::load::LoadModel::OpenPoisson { qps: 20_000.0 });
        let r = run_combo(SchemeKind::ThreadScan, &p);
        assert!(r.total_ops > 0);
        let lat = r.latency.clone().expect("open model measures latency");
        assert_eq!(lat.count, r.total_ops, "every completed op is recorded");
        assert!(lat.p50_ns > 0.0);
        assert!(lat.p50_ns <= lat.p99_ns && lat.p99_ns <= lat.p999_ns);
        assert!(lat.max_ns > 0);
        let ol = r.open_loop.clone().expect("open model reports extras");
        assert_eq!(ol.model, "poisson(20000)");
        assert_eq!(ol.dropped, 0, "Queue policy never drops");
        assert!(ol.offered >= r.total_ops, "served ops were all offered");
        // JSON carries both blocks.
        let v = crate::json::parse(&r.to_json()).expect("valid JSON");
        assert!(v.get("latency").get("p999_ns").as_f64().is_some());
        assert_eq!(
            v.get("open_loop").get("model").as_str(),
            Some("poisson(20000)")
        );
    }

    #[test]
    fn open_loop_throughput_tracks_the_offered_rate() {
        // 10k QPS against a trivial structure: the run must complete
        // roughly duration × qps ops — not the millions a closed loop
        // would push. Generous bounds: scheduler jitter on a loaded
        // machine can run the window long or starve arrival precision.
        let mut p = quick(StructureKind::Hash, 2);
        p.duration = Duration::from_millis(300);
        p = p.with_load_model(crate::load::LoadModel::OpenPoisson { qps: 10_000.0 });
        let r = run_combo(SchemeKind::Leaky, &p);
        let expected = 10_000.0 * r.duration_s;
        assert!(
            (r.total_ops as f64) < expected * 2.0,
            "{} ops vs ~{expected:.0} expected: arrivals are not pacing",
            r.total_ops
        );
        assert!(
            (r.total_ops as f64) > expected * 0.5,
            "{} ops vs ~{expected:.0} expected: workers starved",
            r.total_ops
        );
    }

    #[test]
    fn drop_policy_surfaces_in_run_results() {
        // Offered load far beyond one thread's capacity on a stalling
        // structure, with a tight drop deadline: drops must be reported.
        let scheme = Arc::new(Leaky::new());
        let set = Arc::new(StallingSet);
        let mut params = quick(StructureKind::List, 1);
        params.initial_size = 0;
        params.duration = Duration::from_millis(80);
        params = params
            .with_load_model(crate::load::LoadModel::OpenPoisson { qps: 5_000.0 })
            .with_backlog(crate::load::BacklogPolicy::DropAfter(
                Duration::from_millis(10),
            ));
        let outcome = drive(&scheme, &set, &params);
        let ol = outcome.open_loop.expect("open model reports extras");
        assert!(ol.dropped > 0, "overload with a deadline must shed");
        assert!(
            ol.sched_lag_max_ns > 10_000_000,
            "lag must exceed the 10 ms deadline: {}",
            ol.sched_lag_max_ns
        );
        assert_eq!(
            ol.offered,
            outcome.ops + ol.dropped,
            "offered splits exactly into served + dropped"
        );
    }
}
