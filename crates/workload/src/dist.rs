//! Key distributions for workload generation.
//!
//! The paper's methodology draws keys uniformly; real caches and indexes
//! see skew. [`KeyDist::Zipf`] adds a YCSB-style zipfian generator so the
//! ablation benches can ask how reclamation schemes behave when a hot set
//! concentrates both traffic *and* retirement on a few nodes (hot nodes
//! are much more likely to sit in some thread's stack at scan time, so
//! skew directly exercises ThreadScan's survivor carry-over path).

use rand::rngs::SmallRng;
use rand::Rng;

/// How operation keys are drawn from `[0, key_range)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over the range (the paper's methodology).
    Uniform,
    /// Zipfian with exponent `theta` in `(0, 1)`; larger is more skewed.
    /// Ranks are scrambled over the key space (YCSB's "scrambled
    /// zipfian") so the hot set is not one contiguous run of keys.
    Zipf {
        /// Skew exponent; YCSB's default is 0.99.
        theta: f64,
    },
}

impl KeyDist {
    /// Harness label for reports.
    pub fn label(self) -> String {
        match self {
            Self::Uniform => "uniform".to_string(),
            Self::Zipf { theta } => format!("zipf({theta})"),
        }
    }
}

/// Zipfian rank sampler over `0..n` with `P(rank = i) ∝ 1/(i+1)^theta`,
/// using the Gray et al. closed-form inversion popularized by YCSB:
/// constant-time sampling after an `O(n)` zeta precomputation.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfSampler {
    /// Builds a sampler for ranks `0..n`. `theta` must be in `(0, 1)`
    /// (the closed form diverges at 1).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "zipf needs a non-empty range");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Self {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// `ζ_θ(n) = Σ_{i=1..n} i^{-θ}`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Samples a rank; 0 is the hottest.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// The configured range.
    pub fn range(&self) -> u64 {
        self.n
    }
}

/// Weighted index sampler: picks `i` with probability
/// `weights[i] / Σweights`. The heterogeneous runner draws each op's
/// *structure* from one of these (weights from the mix spec); weight
/// lists are tiny, so a linear cumulative scan beats a binary search.
#[derive(Debug, Clone)]
pub struct WeightedPick {
    cumulative: Vec<u64>,
    total: u64,
}

impl WeightedPick {
    /// Builds a sampler over `weights` (non-empty, each weight > 0).
    pub fn new(weights: &[u32]) -> Self {
        assert!(!weights.is_empty(), "weighted pick needs entries");
        assert!(
            weights.iter().all(|&w| w > 0),
            "weighted pick needs positive weights"
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0u64;
        for &w in weights {
            total += u64::from(w);
            cumulative.push(total);
        }
        Self { cumulative, total }
    }

    /// Samples an index in `0..weights.len()`.
    #[inline]
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let x = rng.gen_range(0..self.total);
        self.cumulative.iter().position(|&c| x < c).unwrap()
    }

    /// The number of weighted entries.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always `false` (construction rejects empty weight lists); present
    /// to satisfy the `len`-without-`is_empty` lint pair.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Fixed scramble of a zipf rank over the key space, so the hot set is
/// spread across the range rather than clustered at low keys (which would
/// otherwise put every hot node at the front of a sorted list).
#[inline]
pub fn scramble_rank(rank: u64, key_range: u64) -> u64 {
    let mut z = rank.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % key_range
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(theta: f64, n: u64, samples: usize) -> Vec<usize> {
        let sampler = ZipfSampler::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0usize; n as usize];
        for _ in 0..samples {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn ranks_stay_in_range() {
        let sampler = ZipfSampler::new(100, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50_000 {
            assert!(sampler.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let counts = histogram(0.99, 1000, 200_000);
        assert!(
            counts[0] > counts[10] && counts[10] > counts[200],
            "head {} mid {} tail {}",
            counts[0],
            counts[10],
            counts[200]
        );
        // At theta ≈ 0.99 the hottest rank takes a noticeable share.
        assert!(counts[0] > 200_000 / 50, "rank 0 too cold: {}", counts[0]);
    }

    #[test]
    fn lower_theta_is_flatter() {
        let skewed = histogram(0.9, 100, 100_000);
        let flat = histogram(0.1, 100, 100_000);
        assert!(
            flat[0] < skewed[0],
            "theta 0.1 head {} must be colder than theta 0.9 head {}",
            flat[0],
            skewed[0]
        );
        // The flat tail must see real traffic.
        assert!(flat[99] * 50 > flat[0], "theta 0.1 tail starved");
    }

    #[test]
    fn head_probability_matches_closed_form() {
        // P(rank 0) = 1/zetan; check the empirical share within 10%.
        let n = 500u64;
        let theta = 0.8;
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let expect = 1.0 / zetan;
        let counts = histogram(theta, n, 400_000);
        let got = counts[0] as f64 / 400_000.0;
        assert!(
            (got - expect).abs() / expect < 0.10,
            "head share {got:.4} vs closed-form {expect:.4}"
        );
    }

    #[test]
    fn single_element_range_always_yields_zero() {
        let sampler = ZipfSampler::new(1, 0.5);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 0);
        }
    }

    /// Boundary: theta approaching 1 (the closed form diverges *at* 1,
    /// so 0.999/0.9999 are the extreme admissible skews). `alpha =
    /// 1/(1-theta)` grows to ~10⁴ — the `powf` must stay finite and the
    /// distribution must stay (extremely) head-heavy.
    #[test]
    fn theta_near_one_stays_finite_and_skewed() {
        for theta in [0.999, 0.9999] {
            let sampler = ZipfSampler::new(1000, theta);
            let mut rng = SmallRng::seed_from_u64(13);
            let mut head = 0usize;
            const N: usize = 100_000;
            for _ in 0..N {
                let rank = sampler.sample(&mut rng);
                assert!(rank < 1000, "theta {theta}: rank {rank} out of range");
                if rank == 0 {
                    head += 1;
                }
            }
            // At theta→1, P(rank 0) → 1/ζ₁(1000) ≈ 1/7.5; demand at
            // least half that so the head is provably hot, not NaN-cold.
            assert!(
                head > N / 15,
                "theta {theta}: head share {head}/{N} lost its skew"
            );
        }
    }

    /// Boundary: n = 2 makes `eta = (1 - (2/n)^(1-θ)) / (1 - ζ(2)/ζ(n))`
    /// a 0/0 form — both numerator and denominator vanish. The quotient
    /// is NaN, but it must be unreachable: `ζ(2) == zetan` means the
    /// two explicit branches in `sample` cover the whole unit interval,
    /// so every draw resolves to rank 0 or 1 before `eta` is touched.
    #[test]
    fn two_element_range_never_produces_nan_ranks() {
        for theta in [0.01, 0.5, 0.99, 0.9999] {
            let sampler = ZipfSampler::new(2, theta);
            let mut rng = SmallRng::seed_from_u64(17);
            let mut counts = [0usize; 2];
            const N: usize = 50_000;
            for _ in 0..N {
                let rank = sampler.sample(&mut rng);
                assert!(rank < 2, "theta {theta}: rank {rank} out of range");
                counts[rank as usize] += 1;
            }
            assert!(
                counts[0] > counts[1],
                "theta {theta}: rank 0 ({}) must stay hotter than rank 1 ({})",
                counts[0],
                counts[1]
            );
            assert!(
                counts[1] > 0,
                "theta {theta}: rank 1 must still see traffic"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let sampler = ZipfSampler::new(64, 0.7);
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut a), sampler.sample(&mut b));
        }
    }

    #[test]
    fn scramble_is_a_fixed_map_within_range() {
        for rank in 0..1000u64 {
            let k1 = scramble_rank(rank, 2048);
            let k2 = scramble_rank(rank, 2048);
            assert_eq!(k1, k2);
            assert!(k1 < 2048);
        }
    }

    #[test]
    fn scramble_spreads_the_hot_set() {
        // The ten hottest ranks must not land in one contiguous run.
        let keys: Vec<u64> = (0..10).map(|r| scramble_rank(r, 100_000)).collect();
        let min = *keys.iter().min().unwrap();
        let max = *keys.iter().max().unwrap();
        assert!(max - min > 10_000, "hot set clustered: {keys:?}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(KeyDist::Uniform.label(), "uniform");
        assert_eq!(KeyDist::Zipf { theta: 0.99 }.label(), "zipf(0.99)");
    }

    #[test]
    fn weighted_pick_tracks_the_weights() {
        let pick = WeightedPick::new(&[50, 30, 20]);
        assert_eq!(pick.len(), 3);
        assert!(!pick.is_empty());
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        const N: usize = 100_000;
        for _ in 0..N {
            counts[pick.sample(&mut rng)] += 1;
        }
        for (i, want_pct) in [50.0, 30.0, 20.0].into_iter().enumerate() {
            let got_pct = counts[i] as f64 * 100.0 / N as f64;
            assert!(
                (got_pct - want_pct).abs() < 2.0,
                "index {i}: {got_pct:.1}% vs {want_pct}%"
            );
        }
    }

    #[test]
    fn single_entry_pick_always_yields_zero() {
        let pick = WeightedPick::new(&[7]);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..64 {
            assert_eq!(pick.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive weights")]
    fn zero_weights_are_rejected() {
        WeightedPick::new(&[1, 0]);
    }
}
