//! Priority-queue workload runner (beyond-paper ablation).
//!
//! The paper's harness drives integer *sets*; the Shavit–Lotan priority
//! queue has a different shape — `delete_min` is an update that always
//! retires a node, so the retire rate per operation is far higher than
//! the 10% the set workloads produce. That makes it a stress ablation
//! for reclamation: at a 50/50 insert/delete-min mix, *half of all
//! operations* feed the delete buffers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ts_smr::dynamic::ErasedSmr;
use ts_smr::{Smr, SmrHandle};
use ts_structures::PriorityQueue;

use crate::load::{self, Aggregate, BacklogPolicy, LoadModel};
use crate::params::{SchemeKind, StructureKind, WorkloadParams};
use crate::runner::{quiesce_and_account, AllocBracket, DriveOutcome, RunResult};

/// Parameters for one priority-queue cell.
#[derive(Debug, Clone)]
pub struct PqParams {
    /// Items prefilled before measurement.
    pub prefill: usize,
    /// Percentage of operations that are inserts (the rest are
    /// delete-mins). 50 keeps the queue size stationary.
    pub insert_pct: u32,
    /// Measurement window.
    pub duration: Duration,
    /// Worker thread count.
    pub threads: usize,
    /// ThreadScan per-thread delete-buffer capacity.
    pub ts_buffer_capacity: usize,
    /// How operations arrive ([`LoadModel`]); the closed loop by default.
    pub load_model: LoadModel,
    /// Arrival-schedule seed for open-loop runs.
    pub arrival_seed: u64,
    /// Backlog policy for open-loop runs.
    pub backlog: BacklogPolicy,
}

impl Default for PqParams {
    fn default() -> Self {
        Self {
            prefill: 10_000,
            insert_pct: 50,
            duration: Duration::from_secs(1),
            threads: 2,
            ts_buffer_capacity: 1024,
            load_model: LoadModel::Closed,
            arrival_seed: 0xA441_7A1E,
            backlog: BacklogPolicy::Queue,
        }
    }
}

impl PqParams {
    /// Builder: thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder: measurement duration.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Builder: prefill size.
    pub fn with_prefill(mut self, n: usize) -> Self {
        self.prefill = n;
        self
    }

    /// Builder: the load model (closed loop by default).
    pub fn with_load_model(mut self, model: LoadModel) -> Self {
        model.validate();
        self.load_model = model;
        self
    }

    /// Builder: backlog policy for open-loop runs.
    pub fn with_backlog(mut self, policy: BacklogPolicy) -> Self {
        self.backlog = policy;
        self
    }

    /// The bundled load-generation knobs for the worker loop.
    pub(crate) fn load_spec(&self) -> load::LoadSpec<'_> {
        load::LoadSpec {
            model: &self.load_model,
            backlog: self.backlog,
            arrival_seed: self.arrival_seed,
            telemetry: false,
        }
    }

    /// The [`WorkloadParams`] equivalent of this cell, for the shared
    /// scheme registry ([`SchemeKind::build`]); structure-shape fields
    /// are irrelevant to scheme construction.
    fn scheme_params(&self) -> WorkloadParams {
        let mut p = WorkloadParams::fig3(StructureKind::List, self.threads)
            .with_duration(self.duration)
            .with_ts_buffer(self.ts_buffer_capacity);
        p.slow_epoch_delay = Duration::from_millis(40);
        p.slow_epoch_period_ops = 4096;
        p
    }
}

/// Drives one scheme × thread-count priority-queue cell.
///
/// Schemes come from the same registry as the set runner
/// ([`SchemeKind::build`]); the queue is driven through the erased
/// adapter, so this function names no concrete scheme type.
pub fn run_pq_combo(scheme: SchemeKind, params: &PqParams) -> RunResult {
    let dyn_scheme = scheme.build(&params.scheme_params());
    let erased = Arc::new(ErasedSmr::new(Arc::clone(&dyn_scheme)));

    let alloc_bracket = AllocBracket::open();
    let outcome = drive_pq(&erased, params);
    let (outstanding_after, leaked) = quiesce_and_account(&*dyn_scheme);
    let alloc = alloc_bracket.close();

    RunResult {
        scheme: scheme.label().to_string(),
        structure: "priority-queue".to_string(),
        threads: params.threads,
        duration_s: outcome.secs,
        total_ops: outcome.ops,
        ops_per_sec: outcome.ops as f64 / outcome.secs.max(1e-9),
        outstanding_after,
        leaked,
        protection_slots: erased.register().protection_slots(),
        threadscan: None,
        alloc,
        per_structure: Vec::new(),
        bucket_count: None,
        latency: outcome.latency,
        open_loop: outcome.open_loop,
    }
}

/// The measurement loop: prefill, barrier start, timed mixed ops.
fn drive_pq<S: Smr>(scheme: &Arc<S>, params: &PqParams) -> DriveOutcome {
    let pq = Arc::new(PriorityQueue::<S>::new());
    {
        let h = scheme.register();
        let mut rng = SmallRng::seed_from_u64(0xF1F0);
        let mut inserted = 0usize;
        while inserted < params.prefill {
            if pq.insert(&h, rng.gen::<u64>() >> 1) {
                inserted += 1;
            }
        }
    }
    let insert_pct = params.insert_pct;
    drive_pq_loop(scheme, params, move |h, rng| {
        if rng.gen_range(0..100u32) < insert_pct {
            pq.insert(h, rng.gen::<u64>() >> 1);
        } else {
            pq.delete_min(h);
        }
    })
}

/// Barrier start + timed window around the shared worker loop
/// ([`load::drive_worker`]), with the operation injectable so tests can
/// drive the measurement machinery with a stalling op.
fn drive_pq_loop<S: Smr>(
    scheme: &Arc<S>,
    params: &PqParams,
    op: impl Fn(&S::Handle, &mut SmallRng) + Send + Sync,
) -> DriveOutcome {
    let stop = AtomicBool::new(false);
    let start_barrier = Barrier::new(params.threads + 1);
    let reports = Mutex::new(Vec::with_capacity(params.threads));
    let elapsed_holder = AtomicU64::new(0);
    let (stop_ref, barrier_ref, reports_ref, elapsed_ref, op_ref) =
        (&stop, &start_barrier, &reports, &elapsed_holder, &op);

    std::thread::scope(|s| {
        for t in 0..params.threads {
            let scheme = Arc::clone(scheme);
            let params = params.clone();
            s.spawn(move || {
                let h = scheme.register();
                let mut rng = SmallRng::seed_from_u64(0xBEE5 ^ (t as u64) << 1);
                barrier_ref.wait();
                // The shared worker loop checks `stop` per op — the old
                // local 64-op batch loop billed up to 63 post-window ops
                // per thread (see the regression test below).
                let report =
                    load::drive_worker(params.load_spec(), t, params.threads, 1, stop_ref, || {
                        op_ref(&h, &mut rng);
                        0
                    });
                reports_ref.lock().unwrap().push(report);
            });
        }
        start_barrier.wait();
        let t0 = std::time::Instant::now();
        std::thread::sleep(params.duration);
        stop.store(true, Ordering::Relaxed);
        elapsed_ref.store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    });

    let agg = Aggregate::from_reports(reports.into_inner().unwrap(), 1);
    let open_loop = agg.open_extras(&params.load_model);
    DriveOutcome {
        ops: agg.total_ops,
        secs: elapsed_holder.load(Ordering::Relaxed) as f64 / 1e6,
        latency: agg.latency,
        open_loop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PqParams {
        PqParams::default()
            .with_prefill(256)
            .with_duration(Duration::from_millis(120))
            .with_threads(2)
    }

    #[test]
    fn every_scheme_completes_on_the_priority_queue() {
        for scheme in SchemeKind::ALL {
            let r = run_pq_combo(scheme, &quick());
            assert!(r.total_ops > 0, "{:?} produced no ops", scheme);
            assert_eq!(r.structure, "priority-queue");
        }
    }

    #[test]
    fn delete_heavy_mix_reclaims_under_threadscan() {
        let mut p = quick();
        p.ts_buffer_capacity = 64;
        p.insert_pct = 40; // delete-min-heavy: drains + retires constantly
        p.prefill = 2_000;
        let r = run_pq_combo(SchemeKind::ThreadScan, &p);
        let outstanding = r.outstanding_after.unwrap();
        assert!(
            outstanding < 5_000,
            "outstanding {outstanding} after quiesce"
        );
    }

    #[test]
    fn leaky_leaks_every_delete_min() {
        let r = run_pq_combo(SchemeKind::Leaky, &quick());
        assert!(r.leaked.unwrap() > 0, "delete_min must leak under Leaky");
    }

    /// Regression (same accounting bug the set runner fixed earlier):
    /// `drive_pq` used to run 64-op batches and only check `stop` between
    /// batches, while `elapsed` is captured the moment the flag flips —
    /// up to 63 post-window ops per thread were billed to the window.
    /// With 5 ms ops and a 60 ms window the batch loop counts a full
    /// 64-op (320 ms) batch per thread; the per-op check admits at most
    /// the window's worth plus one in-flight op.
    #[test]
    fn pq_ops_finished_after_stop_are_not_counted() {
        const THREADS: usize = 2;
        const OP_MS: u64 = 5;
        let scheme = Arc::new(ts_smr::Leaky::new());
        let mut params = quick();
        params.threads = THREADS;
        params.duration = Duration::from_millis(60);
        let outcome = drive_pq_loop(&scheme, &params, |_h, _rng| {
            std::thread::sleep(Duration::from_millis(OP_MS));
        });
        let (ops, secs) = (outcome.ops, outcome.secs);
        // Bound against the measured window (the driver's sleep can
        // overshoot on a loaded machine); `+ 1` covers the in-flight op
        // per thread, 2x slack absorbs scheduling jitter while staying
        // far below the old full-batch bill.
        let window_ops_per_thread = (secs * 1000.0 / OP_MS as f64).ceil() as u64 + 1;
        assert!(
            ops <= (THREADS as u64) * window_ops_per_thread * 2,
            "{ops} pq ops counted against a {secs:.3}s window: post-stop \
             batch work is being billed to the measurement window"
        );
        assert!(ops > 0, "workers must still make progress");
    }
}
