//! Priority-queue workload runner (beyond-paper ablation).
//!
//! The paper's harness drives integer *sets*; the Shavit–Lotan priority
//! queue has a different shape — `delete_min` is an update that always
//! retires a node, so the retire rate per operation is far higher than
//! the 10% the set workloads produce. That makes it a stress ablation
//! for reclamation: at a 50/50 insert/delete-min mix, *half of all
//! operations* feed the delete buffers.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ts_smr::dynamic::ErasedSmr;
use ts_smr::{Smr, SmrHandle};
use ts_structures::PriorityQueue;

use crate::params::{SchemeKind, StructureKind, WorkloadParams};
use crate::runner::{quiesce_and_account, AllocBracket, RunResult};

/// Parameters for one priority-queue cell.
#[derive(Debug, Clone)]
pub struct PqParams {
    /// Items prefilled before measurement.
    pub prefill: usize,
    /// Percentage of operations that are inserts (the rest are
    /// delete-mins). 50 keeps the queue size stationary.
    pub insert_pct: u32,
    /// Measurement window.
    pub duration: Duration,
    /// Worker thread count.
    pub threads: usize,
    /// ThreadScan per-thread delete-buffer capacity.
    pub ts_buffer_capacity: usize,
}

impl Default for PqParams {
    fn default() -> Self {
        Self {
            prefill: 10_000,
            insert_pct: 50,
            duration: Duration::from_secs(1),
            threads: 2,
            ts_buffer_capacity: 1024,
        }
    }
}

impl PqParams {
    /// Builder: thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder: measurement duration.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Builder: prefill size.
    pub fn with_prefill(mut self, n: usize) -> Self {
        self.prefill = n;
        self
    }

    /// The [`WorkloadParams`] equivalent of this cell, for the shared
    /// scheme registry ([`SchemeKind::build`]); structure-shape fields
    /// are irrelevant to scheme construction.
    fn scheme_params(&self) -> WorkloadParams {
        let mut p = WorkloadParams::fig3(StructureKind::List, self.threads)
            .with_duration(self.duration)
            .with_ts_buffer(self.ts_buffer_capacity);
        p.slow_epoch_delay = Duration::from_millis(40);
        p.slow_epoch_period_ops = 4096;
        p
    }
}

/// Drives one scheme × thread-count priority-queue cell.
///
/// Schemes come from the same registry as the set runner
/// ([`SchemeKind::build`]); the queue is driven through the erased
/// adapter, so this function names no concrete scheme type.
pub fn run_pq_combo(scheme: SchemeKind, params: &PqParams) -> RunResult {
    let dyn_scheme = scheme.build(&params.scheme_params());
    let erased = Arc::new(ErasedSmr::new(Arc::clone(&dyn_scheme)));

    let alloc_bracket = AllocBracket::open();
    let (ops, secs) = drive_pq(&erased, params);
    let (outstanding_after, leaked) = quiesce_and_account(&*dyn_scheme);
    let alloc = alloc_bracket.close();

    RunResult {
        scheme: scheme.label().to_string(),
        structure: "priority-queue".to_string(),
        threads: params.threads,
        duration_s: secs,
        total_ops: ops,
        ops_per_sec: ops as f64 / secs.max(1e-9),
        outstanding_after,
        leaked,
        protection_slots: erased.register().protection_slots(),
        threadscan: None,
        alloc,
        per_structure: Vec::new(),
        bucket_count: None,
    }
}

/// The measurement loop: prefill, barrier start, timed mixed ops.
fn drive_pq<S: Smr>(scheme: &Arc<S>, params: &PqParams) -> (u64, f64) {
    let pq = Arc::new(PriorityQueue::<S>::new());
    {
        let h = scheme.register();
        let mut rng = SmallRng::seed_from_u64(0xF1F0);
        let mut inserted = 0usize;
        while inserted < params.prefill {
            if pq.insert(&h, rng.gen::<u64>() >> 1) {
                inserted += 1;
            }
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let start_barrier = Arc::new(Barrier::new(params.threads + 1));
    let total_ops = Arc::new(AtomicU64::new(0));
    let elapsed_holder = AtomicU64::new(0);
    let elapsed_holder = &elapsed_holder;

    std::thread::scope(|s| {
        for t in 0..params.threads {
            let scheme = Arc::clone(scheme);
            let pq = Arc::clone(&pq);
            let stop = Arc::clone(&stop);
            let start_barrier = Arc::clone(&start_barrier);
            let total_ops = Arc::clone(&total_ops);
            let params = params.clone();
            s.spawn(move || {
                let h = scheme.register();
                let mut rng = SmallRng::seed_from_u64(0xBEE5 ^ (t as u64) << 1);
                start_barrier.wait();
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        if rng.gen_range(0..100u32) < params.insert_pct {
                            pq.insert(&h, rng.gen::<u64>() >> 1);
                        } else {
                            pq.delete_min(&h);
                        }
                        ops += 1;
                    }
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        start_barrier.wait();
        let t0 = std::time::Instant::now();
        std::thread::sleep(params.duration);
        stop.store(true, Ordering::Relaxed);
        elapsed_holder.store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
    });

    let elapsed = elapsed_holder.load(Ordering::Relaxed) as f64 / 1e6;
    (total_ops.load(Ordering::Relaxed), elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PqParams {
        PqParams::default()
            .with_prefill(256)
            .with_duration(Duration::from_millis(120))
            .with_threads(2)
    }

    #[test]
    fn every_scheme_completes_on_the_priority_queue() {
        for scheme in SchemeKind::ALL {
            let r = run_pq_combo(scheme, &quick());
            assert!(r.total_ops > 0, "{:?} produced no ops", scheme);
            assert_eq!(r.structure, "priority-queue");
        }
    }

    #[test]
    fn delete_heavy_mix_reclaims_under_threadscan() {
        let mut p = quick();
        p.ts_buffer_capacity = 64;
        p.insert_pct = 40; // delete-min-heavy: drains + retires constantly
        p.prefill = 2_000;
        let r = run_pq_combo(SchemeKind::ThreadScan, &p);
        let outstanding = r.outstanding_after.unwrap();
        assert!(
            outstanding < 5_000,
            "outstanding {outstanding} after quiesce"
        );
    }

    #[test]
    fn leaky_leaks_every_delete_min() {
        let r = run_pq_combo(SchemeKind::Leaky, &quick());
        assert!(r.leaked.unwrap() > 0, "delete_min must leak under Leaky");
    }
}
