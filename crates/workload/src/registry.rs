//! The scheme and structure registries — the two single-line-per-variant
//! factories that replaced the runner's nested `SchemeKind ×
//! StructureKind` dispatch match.
//!
//! Adding a scheme is now: implement [`ts_smr::Smr`] in its own module,
//! add a [`SchemeKind`] variant, and add one arm to [`SchemeKind::build`].
//! Adding a structure is: implement [`ConcurrentSet`] in its own module,
//! add a [`StructureKind`] variant, and add one arm to
//! [`StructureKind::build_set`]. Nothing else in the harness changes —
//! the runner drives `Arc<dyn DynSmr>` / `Arc<dyn ConcurrentSet<_>>`
//! objects and never names a concrete combination.

use std::sync::Arc;

use ts_sigscan::SignalPlatform;
use ts_smr::dynamic::{DynSmr, ErasedSmr};
use ts_smr::{EpochScheme, HazardPointers, Leaky, Smr, StackTrackSim, ThreadScanSmr};
use ts_structures::{
    ConcurrentSet, DynSet, HarrisList, LazyList, LockFreeHashTable, NodeAlloc, PqAsSet, SkipList,
    SplitOrderedSet, PQ_REQUIRED_SLOTS, REQUIRED_SLOTS,
};

use crate::params::{SchemeKind, StructureKind, WorkloadParams};

/// Pool bytes-resident level at which the adaptive policy initiates a
/// collect in pooled runs. Sized well above any Figure 3 working set so
/// the pending watermark is the usual trigger; the pressure leg is a
/// backstop against unbounded garbage in oversubscribed cells.
const POOL_PRESSURE_HIGH_BYTES: usize = 256 << 20;

/// Hazard-pointer slots the harness provisions: enough for every
/// registered structure (the skip list and the priority queue need the
/// most — a slot pair per level plus two roving slots).
pub const HARNESS_HAZARD_SLOTS: usize = if REQUIRED_SLOTS > PQ_REQUIRED_SLOTS {
    REQUIRED_SLOTS
} else {
    PQ_REQUIRED_SLOTS
};

impl SchemeKind {
    /// Builds this scheme, type-erased, configured from `params`.
    ///
    /// This is the scheme registry: one arm per variant, and the only
    /// place in the harness that names concrete scheme types. Callers
    /// hold the result as `Arc<dyn DynSmr>` and, to drive generic
    /// structures with it, wrap it in
    /// [`ErasedSmr`].
    ///
    /// ```
    /// use ts_smr::DynSmr;
    /// use ts_workload::{SchemeKind, StructureKind, WorkloadParams};
    ///
    /// let params = WorkloadParams::fig3(StructureKind::List, 2);
    /// let scheme = SchemeKind::Epoch.build(&params);
    /// assert_eq!(scheme.name(), "epoch");
    /// let handle = scheme.register_dyn();
    /// handle.begin_op();
    /// handle.end_op();
    /// assert_eq!(scheme.outstanding(), 0);
    /// ```
    ///
    /// # Panics
    ///
    /// `SchemeKind::ThreadScan` panics when the process cannot install
    /// its signal platform (no spare POSIX real-time signal).
    pub fn build(self, params: &WorkloadParams) -> Arc<dyn DynSmr> {
        match self {
            SchemeKind::Leaky => Arc::new(Leaky::new()),
            SchemeKind::Hazard => Arc::new(HazardPointers::with_params(HARNESS_HAZARD_SLOTS, 64)),
            SchemeKind::Epoch => Arc::new(EpochScheme::with_threshold(1024)),
            SchemeKind::SlowEpoch => Arc::new(EpochScheme::slow(
                1024,
                params.slow_epoch_delay,
                params.slow_epoch_period_ops,
            )),
            SchemeKind::StackTrack => Arc::new(StackTrackSim::new()),
            SchemeKind::ThreadScan => {
                let platform =
                    SignalPlatform::new().expect("signal platform unavailable on this system");
                let mut config = threadscan::CollectorConfig::default()
                    .with_buffer_capacity(params.ts_buffer_capacity)
                    .with_distributed_frees(params.ts_distribute_frees)
                    .with_match_mode(if params.ts_exact_match {
                        threadscan::MatchMode::Exact
                    } else {
                        threadscan::MatchMode::Range
                    });
                if params.ts_shards > 0 {
                    config = config.with_shards(params.ts_shards);
                }
                if params.ts_sort_threads > 0 {
                    config = config.with_sort_threads(params.ts_sort_threads);
                }
                if params.telemetry {
                    // Observability is opt-in: the sink installs the
                    // phase-ring record path on the collector, and the
                    // pool gauges join the same registry so a single
                    // `/metrics` scrape covers both.
                    config = config.with_telemetry(ts_telemetry::sink());
                    ts_alloc::register_pool_metrics();
                    crate::load::register_worker_metrics();
                }
                if params.ts_adaptive_collect {
                    config = config.with_collect_policy(threadscan::CollectPolicy::Adaptive);
                    if params.ts_pending_watermark > 0 {
                        config = config.with_pending_high_watermark(params.ts_pending_watermark);
                    }
                    if params.node_pool {
                        // Pooled nodes make heap pressure observable:
                        // let the controller watch the global
                        // bytes-resident gauge too.
                        config = config.with_pressure_source(
                            threadscan::PressureSource::new(ts_alloc::pool_bytes_resident),
                            POOL_PRESSURE_HIGH_BYTES,
                        );
                    }
                }
                Arc::new(ThreadScanSmr::with_config(platform, config))
            }
        }
    }
}

impl StructureKind {
    /// The node allocator for one instance of this structure:
    /// [`NodeAlloc::Global`] (today's `Box` path, zero-cost) unless
    /// `params.node_pool` asks for a fresh per-structure
    /// [`ts_alloc::PoolHandle`] whose counters the ablations read back.
    pub fn node_alloc(self, params: &WorkloadParams) -> NodeAlloc {
        if params.node_pool {
            NodeAlloc::Pool(ts_alloc::PoolHandle::new(self.label()))
        } else {
            NodeAlloc::Global
        }
    }

    /// Builds this structure for scheme `S`, type-erased behind the
    /// [`ConcurrentSet`] trait, sized from `params` and allocating
    /// through [`Self::node_alloc`].
    ///
    /// This is the structure registry: one arm per variant. The runner
    /// instantiates it at `S =` [`ErasedSmr`]
    /// (one monomorphization per structure, any scheme at runtime);
    /// library users and the equivalence tests can instantiate it with a
    /// concrete scheme for the zero-virtual-call fast path.
    pub fn build_set<S: Smr>(self, params: &WorkloadParams) -> Arc<dyn ConcurrentSet<S>> {
        let alloc = self.node_alloc(params);
        match self {
            StructureKind::List => Arc::new(HarrisList::<S>::with_alloc(alloc)),
            StructureKind::Hash => Arc::new(LockFreeHashTable::<S>::for_expected_nodes_with_alloc(
                params.initial_size,
                alloc,
            )),
            StructureKind::Skip => Arc::new(SkipList::<S>::with_alloc(alloc)),
            StructureKind::Lazy => Arc::new(LazyList::<S>::with_alloc(alloc)),
            // Start at a quarter of the resident size: the table splits its
            // way to a sensible load factor during prefill, which is the
            // behaviour this structure exists to exercise.
            StructureKind::SplitOrdered => Arc::new(SplitOrderedSet::<S>::with_buckets_and_alloc(
                (params.initial_size / 4).max(2),
                alloc,
            )),
            StructureKind::Pq => Arc::new(PqAsSet::<S>::with_alloc(alloc)),
        }
    }

    /// Builds this structure behind the object-safe [`DynSet`] interface,
    /// pinned to [`ErasedSmr`] so every structure in a heterogeneous run
    /// can share one runtime-chosen scheme.
    ///
    /// Same sizing as [`Self::build_set`]; the arms name concrete types
    /// (rather than delegating) because `Arc<dyn ConcurrentSet<_>>`
    /// cannot be unsized again to `Arc<dyn DynSet>`.
    pub fn build_dyn(self, params: &WorkloadParams) -> Arc<dyn DynSet> {
        let alloc = self.node_alloc(params);
        match self {
            StructureKind::List => Arc::new(HarrisList::<ErasedSmr>::with_alloc(alloc)),
            StructureKind::Hash => Arc::new(
                LockFreeHashTable::<ErasedSmr>::for_expected_nodes_with_alloc(
                    params.initial_size,
                    alloc,
                ),
            ),
            StructureKind::Skip => Arc::new(SkipList::<ErasedSmr>::with_alloc(alloc)),
            StructureKind::Lazy => Arc::new(LazyList::<ErasedSmr>::with_alloc(alloc)),
            StructureKind::SplitOrdered => {
                Arc::new(SplitOrderedSet::<ErasedSmr>::with_buckets_and_alloc(
                    (params.initial_size / 4).max(2),
                    alloc,
                ))
            }
            StructureKind::Pq => Arc::new(PqAsSet::<ErasedSmr>::with_alloc(alloc)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ts_smr::dynamic::ErasedSmr;

    #[test]
    fn every_scheme_kind_builds_and_names_itself() {
        let params = WorkloadParams::fig3(StructureKind::List, 2).scaled_down(64);
        for kind in SchemeKind::EXTENDED {
            let scheme = kind.build(&params);
            assert_eq!(scheme.name(), kind.label(), "{kind:?}");
            assert_eq!(scheme.outstanding(), 0);
            scheme.quiesce(); // must be callable on a fresh scheme
        }
    }

    #[test]
    fn every_structure_kind_builds_for_an_erased_scheme() {
        let params = WorkloadParams::fig3(StructureKind::List, 2).scaled_down(64);
        let scheme = SchemeKind::Epoch.build(&params);
        let erased = ErasedSmr::new(scheme);
        let handle = erased.register();
        for kind in StructureKind::EXTENDED {
            let set = kind.build_set::<ErasedSmr>(&params);
            assert!(set.insert(&handle, 7), "{kind:?}");
            assert!(set.contains(&handle, 7));
            assert!(set.remove(&handle, 7));
            assert!(!set.contains(&handle, 7));
        }
    }

    #[test]
    fn every_structure_kind_builds_dyn_including_the_pq() {
        let params = WorkloadParams::fig3(StructureKind::List, 2).scaled_down(64);
        let scheme = SchemeKind::Epoch.build(&params);
        let erased = ErasedSmr::new(scheme);
        let handle = erased.register();
        let kinds = [
            StructureKind::List,
            StructureKind::Hash,
            StructureKind::Skip,
            StructureKind::Lazy,
            StructureKind::SplitOrdered,
            StructureKind::Pq,
        ];
        for kind in kinds {
            let set = kind.build_dyn(&params);
            assert!(set.insert(&handle, 7), "{kind:?}");
            assert!(set.contains(&handle, 7), "{kind:?}");
            assert!(set.remove(&handle, 7), "{kind:?}");
        }
        // Only the split-ordered table reports a directory size.
        assert!(StructureKind::SplitOrdered
            .build_dyn(&params)
            .bucket_count()
            .is_some());
        assert_eq!(StructureKind::Pq.build_dyn(&params).bucket_count(), None);
        assert_eq!(
            StructureKind::Pq.build_dyn(&params).kind(),
            "priority-queue"
        );
    }

    #[test]
    fn pooled_builds_route_nodes_through_per_structure_pools() {
        let params = WorkloadParams::fig3(StructureKind::List, 2)
            .scaled_down(64)
            .with_node_pool(true);
        let scheme = SchemeKind::Epoch.build(&params);
        let erased = ErasedSmr::new(scheme);
        let handle = erased.register();
        for kind in StructureKind::EXTENDED {
            let before: usize = ts_alloc::pool_stats().iter().map(|s| s.allocs).sum();
            let set = kind.build_set::<ErasedSmr>(&params);
            assert!(set.insert(&handle, 7), "{kind:?}");
            let after: usize = ts_alloc::pool_stats().iter().map(|s| s.allocs).sum();
            assert!(after > before, "{kind:?}: insert must allocate from a pool");
        }
    }

    #[test]
    fn adaptive_params_reach_the_collector_config() {
        let params = WorkloadParams::fig3(StructureKind::List, 2)
            .scaled_down(64)
            .with_node_pool(true)
            .with_ts_adaptive_collect(true)
            .with_ts_pending_watermark(128);
        let scheme = SchemeKind::ThreadScan.build(&params);
        let ts = scheme
            .as_any()
            .downcast_ref::<ThreadScanSmr<ts_sigscan::SignalPlatform>>()
            .expect("threadscan scheme");
        let cfg = ts.collector().config();
        assert_eq!(cfg.collect_policy, threadscan::CollectPolicy::Adaptive);
        assert_eq!(cfg.pending_high_watermark, 128);
        assert!(
            cfg.pressure_source.is_some(),
            "pooled adaptive runs watch the bytes-resident gauge"
        );

        // Default params must keep the paper's fixed trigger, bit for bit.
        let fixed = SchemeKind::ThreadScan
            .build(&WorkloadParams::fig3(StructureKind::List, 2).scaled_down(64));
        let fixed = fixed
            .as_any()
            .downcast_ref::<ThreadScanSmr<ts_sigscan::SignalPlatform>>()
            .unwrap();
        assert_eq!(
            fixed.collector().config().collect_policy,
            threadscan::CollectPolicy::Fixed
        );
        assert!(fixed.collector().config().pressure_source.is_none());
    }

    #[test]
    fn telemetry_param_installs_the_sink_and_default_stays_clean() {
        let params = WorkloadParams::fig3(StructureKind::List, 2)
            .scaled_down(64)
            .with_telemetry(true);
        let scheme = SchemeKind::ThreadScan.build(&params);
        let ts = scheme
            .as_any()
            .downcast_ref::<ThreadScanSmr<ts_sigscan::SignalPlatform>>()
            .expect("threadscan scheme");
        assert!(ts.collector().config().telemetry.is_some());
        // The same build also registered the pool and worker metrics.
        let page = ts_telemetry::render_prometheus();
        assert!(page.contains("threadscan_pool_bytes_resident"));
        assert!(page.contains("threadscan_worker_ops_total"));

        // Default params stay telemetry-free: no sink, no extra atomics.
        let plain = SchemeKind::ThreadScan
            .build(&WorkloadParams::fig3(StructureKind::List, 2).scaled_down(64));
        let plain = plain
            .as_any()
            .downcast_ref::<ThreadScanSmr<ts_sigscan::SignalPlatform>>()
            .unwrap();
        assert!(plain.collector().config().telemetry.is_none());
    }

    #[test]
    fn harness_slots_cover_every_structure() {
        const {
            assert!(HARNESS_HAZARD_SLOTS >= REQUIRED_SLOTS);
            assert!(HARNESS_HAZARD_SLOTS >= PQ_REQUIRED_SLOTS);
        }
        let params = WorkloadParams::fig3(StructureKind::Skip, 1).scaled_down(64);
        let scheme = SchemeKind::Hazard.build(&params);
        assert_eq!(
            scheme.register_dyn().protection_slots(),
            Some(HARNESS_HAZARD_SLOTS)
        );
    }
}
