//! Dependency-free JSON emission and parsing for result reports.
//!
//! The build environment has no registry access, so instead of
//! `serde`/`serde_json` this module provides the two things the harness
//! needs: hand-written emission of [`RunResult`](crate::runner::RunResult)
//! lines (see `runner.rs`) and a small strict parser for reading them
//! back. The [`Value`] API intentionally mirrors the `serde_json::Value`
//! subset downstream code uses (`v["field"]`, comparisons against
//! primitives) so a later move to real serde is mechanical.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, like `serde_json`'s lossy view).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted by key).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member access; missing keys or non-objects yield [`Value::Null`]
    /// (the `serde_json` convention).
    pub fn get(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

macro_rules! impl_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}
impl_eq_num!(u32, u64, usize, i32, i64, f64);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{}", fmt_number(*n)),
            Value::String(s) => f.write_str(&escape(s)),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Renders a number the way `serde_json` would: integers without a
/// fractional part, everything else via Rust's shortest-roundtrip float
/// formatting.
pub fn fmt_number(n: f64) -> String {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        format!("{}", n as i64)
    } else if n.is_finite() {
        format!("{n}")
    } else {
        // JSON has no Inf/NaN; serialize as null like serde_json's lossy mode.
        "null".to_string()
    }
}

/// Escapes a string into a quoted JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Incrementally builds one JSON object line (field order = insertion
/// order is *not* preserved on parse; readers must key by name).
#[derive(Default)]
pub struct ObjectBuilder {
    parts: Vec<String>,
}

impl ObjectBuilder {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.parts
            .push(format!("{}:{}", escape(key), escape(value)));
        self
    }

    /// Adds a numeric field.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.parts
            .push(format!("{}:{}", escape(key), fmt_number(value)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.parts.push(format!("{}:{}", escape(key), value));
        self
    }

    /// Adds an optional numeric field (`null` when `None`, matching what
    /// serde would emit for an `Option`).
    pub fn opt_num(mut self, key: &str, value: Option<f64>) -> Self {
        let rendered = match value {
            Some(v) => fmt_number(v),
            None => "null".to_string(),
        };
        self.parts.push(format!("{}:{rendered}", escape(key)));
        self
    }

    /// Adds a numeric-array field.
    pub fn arr_num(mut self, key: &str, values: impl IntoIterator<Item = f64>) -> Self {
        let items: Vec<String> = values.into_iter().map(fmt_number).collect();
        self.parts
            .push(format!("{}:[{}]", escape(key), items.join(",")));
        self
    }

    /// Adds a field holding pre-rendered JSON (nested object or `null`).
    pub fn raw(mut self, key: &str, rendered: &str) -> Self {
        self.parts.push(format!("{}:{rendered}", escape(key)));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// Parses a JSON document (strict; no trailing garbage).
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not emitted by this
                            // module's own writer; reject rather than
                            // mis-decode.
                            let c =
                                char::from_u32(code).ok_or("surrogate \\u escape unsupported")?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected ',' or ']' found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("expected ',' or '}}' found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_objects() {
        let src = r#"{"a": 1, "b": [true, null, "x\n\"y"], "c": {"d": -2.5e1}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v["a"], 1u64);
        assert_eq!(v["b"], parse(r#"[true, null, "x\n\"y"]"#).unwrap());
        assert_eq!(v["c"]["d"], -25.0);
        assert!(v["missing"].is_null());
        // Display form re-parses to the same value.
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn builder_emits_parseable_lines() {
        let line = ObjectBuilder::new()
            .str("scheme", "epoch")
            .num("threads", 100.0)
            .bool("ok", true)
            .opt_num("leaked", None)
            .raw("nested", "{\"x\":1}")
            .build();
        let v = parse(&line).unwrap();
        assert_eq!(v["scheme"], "epoch");
        assert_eq!(v["threads"], 100);
        assert_eq!(v["ok"], true);
        assert!(v["leaked"].is_null());
        assert_eq!(v["nested"]["x"], 1u64);
    }

    #[test]
    fn builder_emits_numeric_arrays() {
        let line = ObjectBuilder::new()
            .arr_num("sizes", [3.0, 1.0, 2.0])
            .arr_num("empty", [])
            .build();
        let v = parse(&line).unwrap();
        assert_eq!(
            v["sizes"],
            Value::Array(vec![
                Value::Number(3.0),
                Value::Number(1.0),
                Value::Number(2.0)
            ])
        );
        assert_eq!(v["empty"], Value::Array(Vec::new()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
