//! The load-generation layer: how operations *arrive* at the workers.
//!
//! Every pre-refactor benchmark was a closed loop — each worker issues
//! the next operation the instant the previous one returns — so the
//! offered load always equals the achieved throughput and a slow
//! operation silently delays every later one. That shape cannot observe
//! *coordinated omission*: the latency a production request would see
//! while reclamation (or anything else) stalls a worker.
//!
//! [`LoadModel`] makes the arrival process pluggable:
//!
//! * [`LoadModel::Closed`] — today's behavior, bit-for-bit: no schedule,
//!   no per-op timing, issue as fast as the structure allows.
//! * [`LoadModel::OpenPoisson`] — arrivals follow a Poisson process at a
//!   target aggregate QPS, split evenly across workers (the
//!   superposition of independent per-worker Poisson processes is itself
//!   Poisson, so per-worker generation needs no coordination).
//! * [`LoadModel::OpenBursty`] — a duty-cycled Poisson process: within
//!   each `burst` period, arrivals land only in the first `duty`
//!   fraction, at rate `qps / duty`, so the long-run average is still
//!   `qps` but load comes in square-wave bursts.
//!
//! Under an open model every operation has an **intended arrival time**
//! from a deterministic per-worker [`ArrivalSchedule`], and latency is
//! measured **from intended arrival to completion** — a worker running
//! behind schedule bills its backlog to every queued request, exactly as
//! a user would experience it (the coordinated-omission-correct
//! measurement). [`BacklogPolicy`] bounds that backlog: `Queue` serves
//! every arrival eventually, `DropAfter` sheds arrivals observed more
//! than a threshold behind schedule, counting them as drops the way a
//! deadline-bound service would.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use threadscan::hist::Hist;

use crate::json::ObjectBuilder;

/// How operations arrive at the workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadModel {
    /// Closed loop: issue back-to-back, no arrival schedule, no per-op
    /// latency (the pre-refactor runner, preserved observationally
    /// bit-for-bit).
    Closed,
    /// Open loop, Poisson arrivals at `qps` operations/second aggregate
    /// across all workers.
    OpenPoisson {
        /// Target aggregate arrival rate, operations per second.
        qps: f64,
    },
    /// Open loop, duty-cycled (bursty) Poisson arrivals: each `burst`
    /// period delivers its share of `qps` compressed into the first
    /// `duty` fraction of the period.
    OpenBursty {
        /// Target aggregate arrival rate, operations per second
        /// (long-run average; the in-burst rate is `qps / duty`).
        qps: f64,
        /// Burst period length.
        burst: Duration,
        /// Fraction of each period during which arrivals land, in
        /// `(0, 1]` (`1.0` degenerates to plain Poisson).
        duty: f64,
    },
}

impl LoadModel {
    /// Harness label for reports, e.g. `closed`, `poisson(50000)`,
    /// `bursty(50000,10ms,0.25)`.
    pub fn label(&self) -> String {
        match *self {
            Self::Closed => "closed".to_string(),
            Self::OpenPoisson { qps } => format!("poisson({qps})"),
            Self::OpenBursty { qps, burst, duty } => {
                format!("bursty({qps},{burst:?},{duty})")
            }
        }
    }

    /// Whether this model schedules arrivals (and therefore measures
    /// per-operation latency).
    pub fn is_open(&self) -> bool {
        !matches!(self, Self::Closed)
    }

    /// The target aggregate arrival rate; `None` for the closed loop.
    pub fn target_qps(&self) -> Option<f64> {
        match *self {
            Self::Closed => None,
            Self::OpenPoisson { qps } | Self::OpenBursty { qps, .. } => Some(qps),
        }
    }

    /// Panics early (at run setup, not mid-measurement) on nonsensical
    /// parameters.
    pub fn validate(&self) {
        match *self {
            Self::Closed => {}
            Self::OpenPoisson { qps } => {
                assert!(qps.is_finite() && qps > 0.0, "poisson qps must be > 0");
            }
            Self::OpenBursty { qps, burst, duty } => {
                assert!(qps.is_finite() && qps > 0.0, "bursty qps must be > 0");
                assert!(!burst.is_zero(), "burst period must be non-zero");
                assert!(
                    duty > 0.0 && duty <= 1.0,
                    "duty must be in (0, 1], got {duty}"
                );
            }
        }
    }
}

/// What to do when a worker falls behind its arrival schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BacklogPolicy {
    /// Serve every arrival eventually; backlog (and with it measured
    /// latency) grows without bound when offered load exceeds capacity.
    Queue,
    /// Shed any arrival observed more than this far behind schedule —
    /// it counts as dropped, its operation never runs, and its latency
    /// is not recorded (the drop count itself is the signal).
    DropAfter(Duration),
}

/// Deterministic per-worker stream of intended arrival times.
///
/// Yields monotonically non-decreasing nanosecond offsets from the
/// worker's window start. Two schedules built with the same `(model,
/// seed, worker, workers)` yield identical streams.
#[derive(Debug, Clone)]
pub struct ArrivalSchedule {
    rng: SmallRng,
    /// Exponential inter-arrival rate, events per nanosecond. For the
    /// bursty model this is the *in-burst* rate and `t` advances through
    /// compressed "on-time".
    rate_per_ns: f64,
    /// Duty-cycle mapping; `None` for plain Poisson.
    burst: Option<BurstWindow>,
    /// Accumulated process time, ns (on-time for bursty).
    t: f64,
}

#[derive(Debug, Clone, Copy)]
struct BurstWindow {
    period_ns: f64,
    on_ns: f64,
}

impl ArrivalSchedule {
    /// The schedule for `worker` of `workers` under `model`; `None` for
    /// the closed loop, which has no schedule. The aggregate rate is
    /// split evenly across workers, each seeded independently from
    /// `seed`.
    pub fn for_worker(
        model: &LoadModel,
        seed: u64,
        worker: usize,
        workers: usize,
    ) -> Option<ArrivalSchedule> {
        model.validate();
        assert!(workers >= 1, "need at least one worker");
        let worker_seed = seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let per_worker = |qps: f64| qps / workers as f64 / 1e9;
        match *model {
            LoadModel::Closed => None,
            LoadModel::OpenPoisson { qps } => Some(ArrivalSchedule {
                rng: SmallRng::seed_from_u64(worker_seed),
                rate_per_ns: per_worker(qps),
                burst: None,
                t: 0.0,
            }),
            LoadModel::OpenBursty { qps, burst, duty } => {
                let period_ns = burst.as_nanos() as f64;
                Some(ArrivalSchedule {
                    rng: SmallRng::seed_from_u64(worker_seed),
                    // In-burst rate: the period's arrivals compressed
                    // into its on-window.
                    rate_per_ns: per_worker(qps) / duty,
                    burst: Some(BurstWindow {
                        period_ns,
                        on_ns: period_ns * duty,
                    }),
                    t: 0.0,
                })
            }
        }
    }

    /// The next intended arrival, as a nanosecond offset from the
    /// window start.
    pub fn next_ns(&mut self) -> u64 {
        // Exponential inter-arrival: -ln(U)/rate with U in (0, 1].
        let u: f64 = 1.0 - self.rng.gen_range(0.0..1.0);
        self.t += -u.ln() / self.rate_per_ns;
        match self.burst {
            None => self.t as u64,
            // The process runs in "on-time"; wall time inserts the off
            // fraction of every elapsed period back in.
            Some(BurstWindow { period_ns, on_ns }) => {
                let periods = (self.t / on_ns).floor();
                let within = self.t - periods * on_ns;
                (periods * period_ns + within) as u64
            }
        }
    }
}

/// One worker's share of a measured window, merged across workers by
/// [`Aggregate::from_reports`].
#[derive(Debug)]
pub(crate) struct WorkerReport {
    /// Completed operations per class (class = structure index for the
    /// heterogeneous runner, always 0 otherwise).
    pub class_ops: Vec<u64>,
    /// Per-class intended-arrival-to-completion latency (open models
    /// only; empty under `Closed`).
    pub class_hist: Vec<Hist>,
    /// Worst single-op latency, ns (open models only).
    pub max_ns: u64,
    /// Arrivals whose intended time fell inside the window (served or
    /// dropped).
    pub offered: u64,
    /// Arrivals shed by the backlog policy.
    pub dropped: u64,
    /// Worst observed scheduling lag (service start minus intended
    /// arrival), ns.
    pub lag_max_ns: u64,
    /// Sum of observed lags, for the mean.
    pub lag_sum_ns: u64,
    /// Lag observations (== offered, kept separate for clarity).
    pub lag_samples: u64,
}

/// Sleep granularity guards for the arrival wait loop: sleep for long
/// waits (capped so the stop flag is re-checked), yield for medium ones,
/// spin the last few microseconds for arrival precision.
const SLEEP_FLOOR_NS: u64 = 300_000;
const SLEEP_SLACK_NS: u64 = 200_000;
const SLEEP_CAP_NS: u64 = 1_000_000;
const YIELD_FLOOR_NS: u64 = 5_000;

/// The load-generation knobs a runner hands each worker, bundled
/// ([`crate::params::WorkloadParams::load_spec`] /
/// [`crate::pq::PqParams::load_spec`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LoadSpec<'a> {
    /// How operations arrive.
    pub model: &'a LoadModel,
    /// What to do with late arrivals.
    pub backlog: BacklogPolicy,
    /// Arrival-schedule seed.
    pub arrival_seed: u64,
    /// Publish worker counters into the `ts-telemetry` registry
    /// (batched — see [`FLUSH_EVERY_OPS`]). When `false` the loops run
    /// with zero additional atomics, bit-for-bit the pre-telemetry code.
    pub telemetry: bool,
}

/// Completed operations across all telemetry-enabled workers.
static WORKER_OPS: ts_telemetry::Counter = ts_telemetry::Counter::new();
/// Open-loop arrivals observed inside measured windows.
static WORKER_OFFERED: ts_telemetry::Counter = ts_telemetry::Counter::new();
/// Open-loop arrivals shed by the backlog policy.
static WORKER_DROPPED: ts_telemetry::Counter = ts_telemetry::Counter::new();
/// Worst scheduling lag any worker has observed, ns (high-water mark).
static WORKER_LAG_MAX: ts_telemetry::Gauge = ts_telemetry::Gauge::new();

/// Telemetry-enabled workers buffer counter deltas locally and flush
/// this often, so the registry costs a handful of atomics per thousand
/// ops rather than per op.
const FLUSH_EVERY_OPS: u64 = 1024;

/// Registers the worker-loop counters with the process-wide registry.
/// Idempotent; the scheme registry calls this when a run is built with
/// telemetry enabled.
pub fn register_worker_metrics() {
    ts_telemetry::register_counter(
        "threadscan_worker_ops_total",
        "Operations completed by telemetry-enabled workload workers.",
        &[],
        &WORKER_OPS,
    );
    ts_telemetry::register_counter(
        "threadscan_worker_offered_total",
        "Open-loop arrivals observed inside measured windows.",
        &[],
        &WORKER_OFFERED,
    );
    ts_telemetry::register_counter(
        "threadscan_worker_dropped_total",
        "Open-loop arrivals shed by the backlog policy.",
        &[],
        &WORKER_DROPPED,
    );
    ts_telemetry::register_gauge(
        "threadscan_worker_sched_lag_max_ns",
        "Worst scheduling lag any worker has observed, in nanoseconds.",
        &[],
        &WORKER_LAG_MAX,
    );
}

/// A worker's local, flush-on-threshold view of the registry counters.
#[derive(Default)]
struct WorkerCounters {
    ops: u64,
    offered: u64,
    dropped: u64,
    lag_max_ns: u64,
}

impl WorkerCounters {
    fn flush(&mut self) {
        WORKER_OPS.add(self.ops);
        WORKER_OFFERED.add(self.offered);
        WORKER_DROPPED.add(self.dropped);
        WORKER_LAG_MAX.raise(self.lag_max_ns);
        *self = Self::default();
    }
}

/// Drives one worker for the measured window: the single implementation
/// of the load-generation layer that the set, priority-queue, and
/// heterogeneous runners all share.
///
/// `do_op` executes one operation and returns its class index (always
/// `< classes`). Under [`LoadModel::Closed`] this is exactly the
/// pre-refactor tight loop — a per-op relaxed stop check around
/// `do_op`, no clocks, no schedule. Under an open model each op waits
/// for its intended arrival from the worker's [`ArrivalSchedule`],
/// latency is recorded from that intended arrival to completion, and
/// the backlog policy decides whether late arrivals are served or shed.
pub(crate) fn drive_worker(
    spec: LoadSpec<'_>,
    worker: usize,
    workers: usize,
    classes: usize,
    stop: &AtomicBool,
    mut do_op: impl FnMut() -> usize,
) -> WorkerReport {
    let mut report = WorkerReport {
        class_ops: vec![0; classes],
        class_hist: Vec::new(),
        max_ns: 0,
        offered: 0,
        dropped: 0,
        lag_max_ns: 0,
        lag_sum_ns: 0,
        lag_samples: 0,
    };

    let Some(mut schedule) =
        ArrivalSchedule::for_worker(spec.model, spec.arrival_seed, worker, workers)
    else {
        if spec.telemetry {
            // Telemetry-enabled closed loop: same shape, plus a local op
            // count flushed to the registry every FLUSH_EVERY_OPS.
            let mut counters = WorkerCounters::default();
            while !stop.load(Ordering::Relaxed) {
                let class = do_op();
                report.class_ops[class] += 1;
                counters.ops += 1;
                if counters.ops >= FLUSH_EVERY_OPS {
                    counters.flush();
                }
            }
            counters.flush();
        } else {
            // Closed loop: the pre-refactor measurement loop, preserved
            // observationally — per-op stop check (see the runner's
            // post-stop regression note), no timing instrumentation, no
            // atomics beyond the stop flag.
            while !stop.load(Ordering::Relaxed) {
                let class = do_op();
                report.class_ops[class] += 1;
            }
        }
        return report;
    };

    report.class_hist = vec![Hist::new(); classes];
    let max_lag_ns = match spec.backlog {
        BacklogPolicy::Queue => u64::MAX,
        BacklogPolicy::DropAfter(d) => d.as_nanos().min(u64::MAX as u128) as u64,
    };
    // Each worker keeps its own epoch, taken right after the start
    // barrier releases it: intended arrivals and completions are
    // compared on the same clock, and cross-worker skew (microseconds
    // of barrier wake-up spread) never enters any latency.
    let epoch = Instant::now();
    let mut counters = WorkerCounters::default();
    'window: while !stop.load(Ordering::Relaxed) {
        let intended = schedule.next_ns();
        // Wait for the intended arrival (if we are not already late).
        loop {
            if stop.load(Ordering::Relaxed) {
                break 'window;
            }
            let now = epoch.elapsed().as_nanos() as u64;
            if now >= intended {
                break;
            }
            let wait = intended - now;
            if wait > SLEEP_FLOOR_NS {
                std::thread::sleep(Duration::from_nanos(
                    (wait - SLEEP_SLACK_NS).min(SLEEP_CAP_NS),
                ));
            } else if wait > YIELD_FLOOR_NS {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        report.offered += 1;
        let lag = (epoch.elapsed().as_nanos() as u64).saturating_sub(intended);
        report.lag_max_ns = report.lag_max_ns.max(lag);
        report.lag_sum_ns = report.lag_sum_ns.saturating_add(lag);
        report.lag_samples += 1;
        if spec.telemetry {
            counters.offered += 1;
            counters.lag_max_ns = counters.lag_max_ns.max(lag);
            if counters.offered >= FLUSH_EVERY_OPS {
                counters.flush();
            }
        }
        if lag > max_lag_ns {
            report.dropped += 1;
            if spec.telemetry {
                counters.dropped += 1;
            }
            continue;
        }
        let class = do_op();
        let latency = (epoch.elapsed().as_nanos() as u64).saturating_sub(intended);
        report.class_hist[class].record(latency);
        report.max_ns = report.max_ns.max(latency);
        report.class_ops[class] += 1;
        if spec.telemetry {
            counters.ops += 1;
        }
    }
    if spec.telemetry {
        counters.flush();
    }
    report
}

/// Per-operation latency summary: the tail the open-loop harness exists
/// to measure. Percentiles come from the shared log2 histogram
/// ([`threadscan::hist`]), so they are upper bounds within a factor of
/// two — the resolution that matters for "did reclamation add a
/// millisecond excursion", not nanosecond micro-ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Operations with a recorded latency.
    pub count: u64,
    /// Median intended-arrival-to-completion latency, ns.
    pub p50_ns: f64,
    /// 99th percentile latency, ns.
    pub p99_ns: f64,
    /// 99.9th percentile latency, ns.
    pub p999_ns: f64,
    /// Worst single operation, ns (exact, not bucketed).
    pub max_ns: u64,
    /// The raw log2 histogram, mergeable across runs and structures.
    pub hist: Hist,
}

impl LatencySummary {
    /// Summarizes a histogram; `None` when nothing was recorded.
    pub fn from_hist(hist: Hist, max_ns: u64) -> Option<Self> {
        if hist.is_empty() {
            return None;
        }
        Some(Self {
            count: hist.count(),
            p50_ns: hist.percentile_ns(0.50),
            p99_ns: hist.percentile_ns(0.99),
            p999_ns: hist.percentile_ns(0.999),
            max_ns,
            hist,
        })
    }

    /// Renders as one JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        ObjectBuilder::new()
            .num("count", self.count as f64)
            .num("p50_ns", self.p50_ns)
            .num("p99_ns", self.p99_ns)
            .num("p999_ns", self.p999_ns)
            .num("max_ns", self.max_ns as f64)
            .arr_num("hist", self.hist.counts().iter().map(|&c| c as f64))
            .build()
    }
}

/// Open-loop bookkeeping attached to a run: how much load was offered
/// versus served, and how far workers fell behind their schedules.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopExtras {
    /// The load model's label ([`LoadModel::label`]).
    pub model: String,
    /// Target aggregate arrival rate, ops/second.
    pub target_qps: f64,
    /// Arrivals whose intended time fell inside the window.
    pub offered: u64,
    /// Arrivals shed by the backlog policy.
    pub dropped: u64,
    /// Worst observed scheduling lag across workers, ns — how far the
    /// most backlogged worker ran behind its arrival schedule.
    pub sched_lag_max_ns: u64,
    /// Mean scheduling lag over all arrivals, ns.
    pub sched_lag_mean_ns: f64,
}

impl OpenLoopExtras {
    /// Renders as one JSON object (see [`crate::json`]).
    pub fn to_json(&self) -> String {
        ObjectBuilder::new()
            .str("model", &self.model)
            .num("target_qps", self.target_qps)
            .num("offered", self.offered as f64)
            .num("dropped", self.dropped as f64)
            .num("sched_lag_max_ns", self.sched_lag_max_ns as f64)
            .num("sched_lag_mean_ns", self.sched_lag_mean_ns)
            .build()
    }
}

/// All workers' reports folded together.
#[derive(Debug)]
pub(crate) struct Aggregate {
    /// Completed ops per class.
    pub class_ops: Vec<u64>,
    /// Completed ops across classes.
    pub total_ops: u64,
    /// Per-class latency (open models; `None` entries when a class saw
    /// no completed ops).
    pub class_latency: Vec<Option<LatencySummary>>,
    /// All-class latency.
    pub latency: Option<LatencySummary>,
    offered: u64,
    dropped: u64,
    lag_max_ns: u64,
    lag_sum_ns: u64,
    lag_samples: u64,
}

impl Aggregate {
    /// Merges per-worker reports (all sized for `classes`).
    pub fn from_reports(reports: Vec<WorkerReport>, classes: usize) -> Self {
        let mut class_ops = vec![0u64; classes];
        let mut class_hist = vec![Hist::new(); classes];
        let mut class_max = vec![0u64; classes];
        let mut offered = 0u64;
        let mut dropped = 0u64;
        let mut lag_max_ns = 0u64;
        let mut lag_sum_ns = 0u64;
        let mut lag_samples = 0u64;
        let mut max_ns = 0u64;
        for r in &reports {
            for (acc, &ops) in class_ops.iter_mut().zip(&r.class_ops) {
                *acc += ops;
            }
            for ((acc, h), m) in class_hist.iter_mut().zip(&r.class_hist).zip(&mut class_max) {
                acc.merge(h);
                // The per-class max is approximated by the worker max
                // when a worker only served one class; exact per-class
                // maxima would need per-class tracking in the hot loop.
                *m = (*m).max(r.max_ns);
            }
            offered += r.offered;
            dropped += r.dropped;
            lag_max_ns = lag_max_ns.max(r.lag_max_ns);
            lag_sum_ns = lag_sum_ns.saturating_add(r.lag_sum_ns);
            lag_samples += r.lag_samples;
            max_ns = max_ns.max(r.max_ns);
        }
        let mut total_hist = Hist::new();
        for h in &class_hist {
            total_hist.merge(h);
        }
        let class_latency = class_hist
            .into_iter()
            .zip(class_max)
            .map(|(h, m)| LatencySummary::from_hist(h, m))
            .collect();
        Self {
            total_ops: class_ops.iter().sum(),
            class_ops,
            class_latency,
            latency: LatencySummary::from_hist(total_hist, max_ns),
            offered,
            dropped,
            lag_max_ns,
            lag_sum_ns,
            lag_samples,
        }
    }

    /// The open-loop extras block; `None` for the closed model.
    pub fn open_extras(&self, model: &LoadModel) -> Option<OpenLoopExtras> {
        let target_qps = model.target_qps()?;
        Some(OpenLoopExtras {
            model: model.label(),
            target_qps,
            offered: self.offered,
            dropped: self.dropped,
            sched_lag_max_ns: self.lag_max_ns,
            sched_lag_mean_ns: if self.lag_samples == 0 {
                0.0
            } else {
                self.lag_sum_ns as f64 / self.lag_samples as f64
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_arrivals(
        model: &LoadModel,
        seed: u64,
        worker: usize,
        workers: usize,
        n: usize,
    ) -> Vec<u64> {
        let mut s = ArrivalSchedule::for_worker(model, seed, worker, workers).expect("open model");
        (0..n).map(|_| s.next_ns()).collect()
    }

    #[test]
    fn closed_model_has_no_schedule() {
        assert!(ArrivalSchedule::for_worker(&LoadModel::Closed, 1, 0, 4).is_none());
        assert!(!LoadModel::Closed.is_open());
        assert_eq!(LoadModel::Closed.target_qps(), None);
    }

    #[test]
    fn poisson_interarrival_mean_tracks_one_over_qps() {
        // One worker of four at 1M QPS aggregate: per-worker rate
        // 250k/s, mean inter-arrival 4000 ns.
        let model = LoadModel::OpenPoisson { qps: 1_000_000.0 };
        let n = 200_000;
        let a = collect_arrivals(&model, 0xA11CE, 1, 4, n);
        let mean = a[n - 1] as f64 / (n - 1) as f64;
        let expect = 4_000.0;
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean inter-arrival {mean:.1} ns vs expected {expect} ns"
        );
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals are ordered");
    }

    #[test]
    fn bursty_honors_the_duty_cycle_and_the_average_rate() {
        let burst = Duration::from_millis(10);
        let duty = 0.25;
        let model = LoadModel::OpenBursty {
            qps: 100_000.0,
            burst,
            duty,
        };
        let n = 100_000;
        let a = collect_arrivals(&model, 7, 0, 1, n);
        let period = burst.as_nanos() as u64;
        let on = (period as f64 * duty) as u64;
        // Every arrival lands in the on-window of its period. The
        // on-window edge itself is subject to float rounding; allow 1 ns.
        for &t in &a {
            assert!(
                t % period <= on + 1,
                "arrival at {t} ns is {} ns into a {period} ns period (on-window {on} ns)",
                t % period
            );
        }
        // Long-run average rate is still ~qps.
        let rate = (n - 1) as f64 / (a[n - 1] as f64 / 1e9);
        assert!(
            (rate - 100_000.0).abs() / 100_000.0 < 0.05,
            "long-run rate {rate:.0} qps vs target 100000"
        );
    }

    #[test]
    fn duty_one_is_plain_poisson() {
        let model = LoadModel::OpenBursty {
            qps: 500_000.0,
            burst: Duration::from_millis(5),
            duty: 1.0,
        };
        let n = 50_000;
        let a = collect_arrivals(&model, 3, 0, 2, n);
        // Per-worker 250k/s => mean 4000 ns.
        let mean = a[n - 1] as f64 / (n - 1) as f64;
        assert!((mean - 4_000.0).abs() / 4_000.0 < 0.05, "mean {mean:.1}");
    }

    #[test]
    fn schedules_are_deterministic_per_seed_and_worker() {
        let model = LoadModel::OpenPoisson { qps: 10_000.0 };
        let a = collect_arrivals(&model, 42, 2, 8, 1000);
        let b = collect_arrivals(&model, 42, 2, 8, 1000);
        assert_eq!(a, b, "same (seed, worker) must replay identically");
        let c = collect_arrivals(&model, 42, 3, 8, 1000);
        assert_ne!(a, c, "distinct workers draw distinct streams");
        let d = collect_arrivals(&model, 43, 2, 8, 1000);
        assert_ne!(a, d, "distinct seeds draw distinct streams");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(LoadModel::Closed.label(), "closed");
        assert_eq!(
            LoadModel::OpenPoisson { qps: 50_000.0 }.label(),
            "poisson(50000)"
        );
        assert!(LoadModel::OpenBursty {
            qps: 1000.0,
            burst: Duration::from_millis(10),
            duty: 0.5
        }
        .label()
        .starts_with("bursty(1000,"));
    }

    #[test]
    #[should_panic(expected = "duty must be in (0, 1]")]
    fn zero_duty_is_rejected() {
        LoadModel::OpenBursty {
            qps: 1000.0,
            burst: Duration::from_millis(1),
            duty: 0.0,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "qps must be > 0")]
    fn zero_qps_is_rejected() {
        LoadModel::OpenPoisson { qps: 0.0 }.validate();
    }

    #[test]
    fn drive_worker_closed_counts_every_op_and_records_no_latency() {
        let stop = AtomicBool::new(false);
        let mut n = 0u64;
        let report = drive_worker(
            LoadSpec {
                model: &LoadModel::Closed,
                backlog: BacklogPolicy::Queue,
                arrival_seed: 0,
                telemetry: false,
            },
            0,
            1,
            1,
            &stop,
            || {
                n += 1;
                if n >= 1000 {
                    stop.store(true, Ordering::Relaxed);
                }
                0
            },
        );
        assert_eq!(report.class_ops, vec![1000]);
        assert!(report.class_hist.is_empty(), "closed loop takes no clocks");
        assert_eq!(report.offered, 0);
        assert_eq!(report.dropped, 0);
    }

    #[test]
    fn drive_worker_open_measures_latency_and_lag() {
        let stop = AtomicBool::new(false);
        let mut n = 0u64;
        // 100k QPS on one worker: ~10 µs apart, a 300 ms window would be
        // far too long — stop after 200 ops instead.
        let report = drive_worker(
            LoadSpec {
                model: &LoadModel::OpenPoisson { qps: 100_000.0 },
                backlog: BacklogPolicy::Queue,
                arrival_seed: 9,
                telemetry: false,
            },
            0,
            1,
            1,
            &stop,
            || {
                n += 1;
                if n >= 200 {
                    stop.store(true, Ordering::Relaxed);
                }
                0
            },
        );
        assert_eq!(report.class_ops, vec![200]);
        assert_eq!(report.class_hist.len(), 1);
        assert_eq!(report.class_hist[0].count(), 200);
        assert!(report.max_ns > 0, "completions take nonzero time");
        assert_eq!(report.offered, 200);
        assert_eq!(report.lag_samples, 200);
    }

    #[test]
    fn drop_policy_sheds_backlogged_arrivals() {
        let stop = AtomicBool::new(false);
        let mut n = 0u64;
        // Offered 1M QPS but every op takes ~1 ms: the worker falls
        // behind immediately; with a 2 ms drop threshold, most arrivals
        // must be shed.
        let report = drive_worker(
            LoadSpec {
                model: &LoadModel::OpenPoisson { qps: 1_000_000.0 },
                backlog: BacklogPolicy::DropAfter(Duration::from_millis(2)),
                arrival_seed: 1,
                telemetry: false,
            },
            0,
            1,
            1,
            &stop,
            || {
                std::thread::sleep(Duration::from_millis(1));
                n += 1;
                if n >= 20 {
                    stop.store(true, Ordering::Relaxed);
                }
                0
            },
        );
        assert_eq!(report.class_ops, vec![20]);
        assert!(
            report.dropped > report.class_ops[0],
            "overload must shed more than it serves: dropped {} vs served {}",
            report.dropped,
            report.class_ops[0]
        );
        assert!(
            report.lag_max_ns > 2_000_000,
            "lag must exceed the drop threshold: {}",
            report.lag_max_ns
        );
    }

    #[test]
    fn aggregate_merges_reports_and_builds_extras() {
        let mut h0 = Hist::new();
        h0.record(1_000);
        h0.record(2_000);
        let mut h1 = Hist::new();
        h1.record(1_000_000);
        let reports = vec![
            WorkerReport {
                class_ops: vec![2, 0],
                class_hist: vec![h0, Hist::new()],
                max_ns: 2_000,
                offered: 2,
                dropped: 0,
                lag_max_ns: 50,
                lag_sum_ns: 60,
                lag_samples: 2,
            },
            WorkerReport {
                class_ops: vec![0, 1],
                class_hist: vec![Hist::new(), h1],
                max_ns: 1_000_000,
                offered: 2,
                dropped: 1,
                lag_max_ns: 900,
                lag_sum_ns: 940,
                lag_samples: 2,
            },
        ];
        let agg = Aggregate::from_reports(reports, 2);
        assert_eq!(agg.class_ops, vec![2, 1]);
        assert_eq!(agg.total_ops, 3);
        let lat = agg.latency.as_ref().expect("latency recorded");
        assert_eq!(lat.count, 3);
        assert_eq!(lat.max_ns, 1_000_000);
        assert!(lat.p50_ns <= lat.p99_ns && lat.p99_ns <= lat.p999_ns);
        assert!(agg.class_latency[0].is_some() && agg.class_latency[1].is_some());
        let extras = agg
            .open_extras(&LoadModel::OpenPoisson { qps: 123.0 })
            .expect("open model has extras");
        assert_eq!(extras.offered, 4);
        assert_eq!(extras.dropped, 1);
        assert_eq!(extras.sched_lag_max_ns, 900);
        assert!((extras.sched_lag_mean_ns - 250.0).abs() < 1e-9);
        assert!(agg.open_extras(&LoadModel::Closed).is_none());
    }

    #[test]
    fn empty_latency_summary_is_none() {
        assert!(LatencySummary::from_hist(Hist::new(), 0).is_none());
    }

    /// Serializes the tests that read deltas of the process-global
    /// worker counters.
    fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn telemetry_workers_flush_every_op_to_the_registry() {
        let _lock = counter_lock();
        register_worker_metrics();
        let before = WORKER_OPS.get();
        let stop = AtomicBool::new(false);
        let mut n = 0u64;
        // 2500 ops crosses the 1024-op flush threshold twice and leaves a
        // remainder only the final flush can publish.
        let report = drive_worker(
            LoadSpec {
                model: &LoadModel::Closed,
                backlog: BacklogPolicy::Queue,
                arrival_seed: 0,
                telemetry: true,
            },
            0,
            1,
            1,
            &stop,
            || {
                n += 1;
                if n >= 2500 {
                    stop.store(true, Ordering::Relaxed);
                }
                0
            },
        );
        assert_eq!(report.class_ops, vec![2500]);
        assert_eq!(
            WORKER_OPS.get() - before,
            2500,
            "batched flushes must not lose the sub-batch remainder"
        );
    }

    #[test]
    fn telemetry_open_loop_publishes_offered_and_lag() {
        let _lock = counter_lock();
        register_worker_metrics();
        let offered_before = WORKER_OFFERED.get();
        let ops_before = WORKER_OPS.get();
        let stop = AtomicBool::new(false);
        let mut n = 0u64;
        let report = drive_worker(
            LoadSpec {
                model: &LoadModel::OpenPoisson { qps: 100_000.0 },
                backlog: BacklogPolicy::Queue,
                arrival_seed: 5,
                telemetry: true,
            },
            0,
            1,
            1,
            &stop,
            || {
                n += 1;
                if n >= 100 {
                    stop.store(true, Ordering::Relaxed);
                }
                0
            },
        );
        assert_eq!(report.offered, 100);
        assert_eq!(WORKER_OFFERED.get() - offered_before, 100);
        assert_eq!(WORKER_OPS.get() - ops_before, 100);
        assert!(WORKER_LAG_MAX.get() >= report.lag_max_ns.min(WORKER_LAG_MAX.get()));
    }
}
