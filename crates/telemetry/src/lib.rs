//! # ts-telemetry — async-signal-safe observability
//!
//! Live metrics and per-collect timelines for the ThreadScan runtime,
//! built from three pillars (no external dependencies — std plus the
//! shared [`threadscan::hist`] bucket math):
//!
//! * a process-wide **metrics registry** ([`metrics`]): lock-free
//!   registration of `&'static` counters, gauges, and log2 histograms
//!   with label support, one namespace shared by the collector, the
//!   node pools, and the workload runners;
//! * **per-thread event rings** ([`ring`]): a preallocated,
//!   overwrite-oldest record path safe to call from the sigscan signal
//!   handler — no locks, no allocation, loss accounted in
//!   [`ring::dropped_events`];
//! * **exporters** ([`export`]): Prometheus text exposition and
//!   chrome://tracing span trees with one track per scanned thread.
//!
//! ## Hooking up a collector
//!
//! ```
//! use threadscan::{Collector, CollectorConfig, NullPlatform};
//!
//! let config = CollectorConfig::default().with_telemetry(ts_telemetry::sink());
//! let collector = Collector::with_config(NullPlatform, config);
//! # let _ = collector;
//! let metrics_page = ts_telemetry::render_prometheus();
//! # let _ = metrics_page;
//! ```
//!
//! Telemetry is strictly opt-in: a collector without the sink executes
//! zero additional atomic operations on its hot paths (the hook is a
//! branch on a plain `Option` field — see `threadscan::telemetry`).
//!
//! ## Naming conventions
//!
//! Metrics are `snake_case` with a subsystem prefix
//! (`threadscan_`, `threadscan_pool_`, `threadscan_worker_`,
//! `threadscan_telemetry_`); counters end in `_total`, histograms of
//! durations in `_duration_ns`. Static dimension splits use labels.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod metrics;
pub mod ring;

pub use export::{render_chrome_trace, render_chrome_trace_from, render_prometheus};
pub use metrics::{
    register_callback_gauge, register_counter, register_gauge, register_hist, AtomicHist,
    CallbackGauge, Counter, Gauge,
};
pub use ring::{drain_events, dropped_events, monotonic_ns, set_ring_capacity, EventRecord};

use threadscan::{CollectSummary, Hist, PhaseEvent, TelemetrySink};

/// Reclamation phases completed (collector wired via
/// [`sink`]); mirrors `CollectorStats::collects` summed over all
/// telemetry-enabled collectors.
static COLLECTS: Counter = Counter::new();
/// Phases initiated by the adaptive policy rather than a full buffer.
static ADAPTIVE_COLLECTS: Counter = Counter::new();
/// Nodes freed by reclaimers (distributed-free handoffs excluded).
static FREED: Counter = Counter::new();
/// Retired entries aggregated into master buffers.
static ENTRIES: Counter = Counter::new();
/// Threads that completed scans, summed over phases.
static THREADS_SCANNED: Counter = Counter::new();
/// Survivors carried out of the most recent phase.
static SURVIVORS_LAST: Gauge = Gauge::new();
/// Retired-but-unfreed backlog after the most recent phase (the adaptive
/// policy's `retired − freed` proxy).
static PENDING_LAST: Gauge = Gauge::new();
/// Whether the adaptive controller's hysteresis latch was armed after
/// the most recent phase (1) or parked below the re-arm line (0).
static ADAPTIVE_ARMED: Gauge = Gauge::new();
/// Whole-collect latency, identical bucket math to
/// `CollectorStats::collect_ns_hist`.
static COLLECT_DURATION: AtomicHist = AtomicHist::new();

static DROPPED_EVENTS_GAUGE: CallbackGauge = CallbackGauge::new(ring::dropped_events);
static RINGS_CLAIMED_GAUGE: CallbackGauge = CallbackGauge::new(ring::rings_claimed);

/// Registers the built-in collector metrics and starts the monotonic
/// clock. Idempotent; called automatically by [`sink`].
pub fn enable() {
    ring::init_clock();
    register_counter(
        "threadscan_collects_total",
        "Reclamation phases completed by telemetry-enabled collectors.",
        &[],
        &COLLECTS,
    );
    register_counter(
        "threadscan_adaptive_collects_total",
        "Phases initiated by the adaptive policy rather than a full buffer.",
        &[],
        &ADAPTIVE_COLLECTS,
    );
    register_counter(
        "threadscan_freed_total",
        "Nodes freed by reclaimers (distributed-free handoffs excluded).",
        &[],
        &FREED,
    );
    register_counter(
        "threadscan_collect_entries_total",
        "Retired entries aggregated into master buffers.",
        &[],
        &ENTRIES,
    );
    register_counter(
        "threadscan_threads_scanned_total",
        "Threads that completed scans, summed over phases.",
        &[],
        &THREADS_SCANNED,
    );
    register_gauge(
        "threadscan_survivors",
        "Marked nodes carried out of the most recent phase.",
        &[],
        &SURVIVORS_LAST,
    );
    register_gauge(
        "threadscan_pending_nodes",
        "Retired-but-unfreed backlog after the most recent phase.",
        &[],
        &PENDING_LAST,
    );
    register_gauge(
        "threadscan_adaptive_armed",
        "Adaptive-policy hysteresis latch: 1 armed, 0 parked.",
        &[],
        &ADAPTIVE_ARMED,
    );
    register_hist(
        "threadscan_collect_duration_ns",
        "Whole-collect latency (same log2 buckets as CollectorStats).",
        &[],
        &COLLECT_DURATION,
    );
    register_callback_gauge(
        "threadscan_telemetry_dropped_events",
        "Phase events lost to ring overwrites, torn reads, or slot exhaustion.",
        &[],
        &DROPPED_EVENTS_GAUGE,
    );
    register_callback_gauge(
        "threadscan_telemetry_rings",
        "Event ring slots claimed by threads so far.",
        &[],
        &RINGS_CLAIMED_GAUGE,
    );
}

/// The async-signal-safe record path: one ring write, nothing else.
fn record_impl(ev: PhaseEvent) {
    ring::record(ev);
}

/// End-of-collect roll-up into the registry (reclaimer context — atomics
/// only, but free to be several of them).
fn summary_impl(s: &CollectSummary) {
    COLLECTS.inc();
    if s.adaptive {
        ADAPTIVE_COLLECTS.inc();
    }
    FREED.add(s.freed as u64);
    ENTRIES.add(s.entries as u64);
    THREADS_SCANNED.add(s.threads_scanned as u64);
    SURVIVORS_LAST.set(s.survivors as u64);
    PENDING_LAST.set(s.pending as u64);
    ADAPTIVE_ARMED.set(u64::from(s.armed));
    COLLECT_DURATION.record(s.ns);
}

/// The telemetry sink to install via
/// `CollectorConfig::with_telemetry`. Also performs [`enable`], so the
/// built-in metrics exist by the time the first phase reports.
pub fn sink() -> TelemetrySink {
    enable();
    TelemetrySink {
        record: record_impl,
        collect_summary: summary_impl,
    }
}

/// Snapshot of the registry's collect-latency histogram (the registry
/// twin of `StatsSnapshot::collect_ns_hist`).
pub fn collect_duration_hist() -> Hist {
    COLLECT_DURATION.snapshot()
}

/// Serializes tests that touch the process-global registry, rings, or
/// built-in counters.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use threadscan::hist::BUCKETS;
    use threadscan::{Collector, CollectorConfig, NullPlatform};

    #[test]
    fn sink_feeds_builtin_metrics_through_a_real_collector() {
        let _lock = test_lock();
        let collects_before = COLLECTS.get();
        let freed_before = FREED.get();
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                .with_buffer_capacity(8)
                .with_telemetry(sink()),
        );
        let handle = collector.register();
        for _ in 0..16 {
            let p = Box::into_raw(Box::new([0u8; 64]));
            unsafe { handle.retire(p) };
        }
        drop(handle);
        assert_eq!(COLLECTS.get() - collects_before, 2, "two full buffers");
        assert_eq!(FREED.get() - freed_before, 16);
        let page = render_prometheus();
        assert!(page.contains("# TYPE threadscan_collects_total counter"));
        assert!(page.contains("threadscan_collect_duration_ns_count"));
    }

    #[test]
    fn registry_collect_hist_equals_stats_snapshot_hist() {
        // Satellite pin: the collect-latency histogram published into the
        // registry must be bucket-for-bucket equal to the one in
        // `CollectorStats` — `/metrics` and JSON reports can never
        // disagree. Both sides record the same `ns` through the same
        // `threadscan::hist::bucket`, so the delta across this collector's
        // lifetime must match its snapshot exactly.
        let _lock = test_lock();
        let before = collect_duration_hist();
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                .with_buffer_capacity(4)
                .with_telemetry(sink()),
        );
        let handle = collector.register();
        for _ in 0..64 {
            let p = Box::into_raw(Box::new([0u8; 64]));
            unsafe { handle.retire(p) };
        }
        drop(handle);
        let snap = collector.stats();
        assert!(snap.collects >= 16);
        let after = collect_duration_hist();
        for i in 0..BUCKETS {
            let delta = after.counts()[i] - before.counts()[i];
            assert_eq!(
                delta, snap.collect_ns_hist[i] as u64,
                "bucket {i}: registry delta must equal the stats histogram"
            );
        }
        // Old snapshot API is unchanged and still self-consistent.
        assert_eq!(
            snap.collect_ns_hist.iter().sum::<usize>(),
            snap.collects,
            "snapshot histogram still covers every phase"
        );
    }

    #[test]
    fn phase_events_flow_to_rings_via_collector() {
        let _lock = test_lock();
        ring::reset_rings_for_test();
        ring::set_ring_capacity(ring::RING_CAP);
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                .with_buffer_capacity(8)
                .with_telemetry(sink()),
        );
        let handle = collector.register();
        for _ in 0..8 {
            let p = Box::into_raw(Box::new([0u8; 64]));
            unsafe { handle.retire(p) };
        }
        drop(handle);
        let events = drain_events();
        use threadscan::PhaseKind::*;
        for kind in [
            CollectBegin,
            SortBegin,
            SortEnd,
            FreeBegin,
            FreeEnd,
            CollectEnd,
        ] {
            assert!(
                events.iter().any(|e| e.kind == kind),
                "phase {kind:?} must be stamped"
            );
        }
        // All events of one collect share a collect id, and the trace
        // renderer can reconstruct the span tree from them.
        let id = events
            .iter()
            .find(|e| e.kind == CollectBegin)
            .map(|e| e.collect_id)
            .unwrap();
        let of_collect: Vec<EventRecord> = events
            .iter()
            .copied()
            .filter(|e| e.collect_id == id)
            .collect();
        let json = render_chrome_trace_from(&of_collect);
        assert!(json.contains("\"name\":\"collect\""));
        assert!(json.contains("\"name\":\"sort\""));
        assert!(json.contains("\"name\":\"free\""));
    }
}
