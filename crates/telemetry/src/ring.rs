//! Per-thread event ring buffers with an async-signal-safe record path.
//!
//! Storage is fully preallocated: a fixed array of [`MAX_RINGS`] rings,
//! each a power-of-two array of cells, all in BSS. A thread claims a
//! ring slot on its first record (one `fetch_add` on a global counter,
//! cached in const-initialized, `Drop`-free TLS) and keeps it for the
//! process lifetime. Recording is then:
//!
//! 1. `head.fetch_add(1)` — reserves an absolute sequence number. A
//!    signal handler interrupting mid-record reserves a *different*
//!    number, so same-thread reentrancy lands in a different cell;
//! 2. invalidate the cell (`stamp ← 0`), store timestamp/kind/arg;
//! 3. publish (`stamp ← seq + 1`, `Release`).
//!
//! No locks, no allocation, no panics — safe from a signal handler. The
//! ring overwrites oldest on overflow; the reader accounts every
//! overwritten or torn cell in [`dropped_events`], so loss is visible
//! rather than silent.
//!
//! Readers ([`drain_events`]) serialize on a std mutex (they are never
//! in signal context) and validate each cell with a seqlock-style
//! stamp / payload / stamp-recheck read.

use std::cell::Cell as StdCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use threadscan::{PhaseEvent, PhaseKind};

/// Maximum threads that can own a ring; later threads drop events (and
/// are counted in [`dropped_events`]).
pub const MAX_RINGS: usize = 256;

/// Cells per ring — the compile-time maximum (and default) capacity.
pub const RING_CAP: usize = 1024;

/// One published event cell. `stamp` is the absolute sequence number
/// plus one (0 = never written / mid-write), stored last with `Release`.
struct Cell {
    stamp: AtomicU64,
    ts_ns: AtomicU64,
    /// `collect_id << 8 | kind_code`.
    code: AtomicU64,
    arg: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_CELL: Cell = Cell {
    stamp: AtomicU64::new(0),
    ts_ns: AtomicU64::new(0),
    code: AtomicU64::new(0),
    arg: AtomicU64::new(0),
};

struct EventRing {
    /// Next absolute sequence number to write.
    head: AtomicU64,
    /// First absolute sequence number not yet drained.
    tail: AtomicU64,
    /// Events lost from this ring (overwritten before a drain, or torn
    /// by an overwrite during one). Maintained by the reader.
    dropped: AtomicU64,
    cells: [Cell; RING_CAP],
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_RING: EventRing = EventRing {
    head: AtomicU64::new(0),
    tail: AtomicU64::new(0),
    dropped: AtomicU64::new(0),
    cells: [EMPTY_CELL; RING_CAP],
};

static RINGS: [EventRing; MAX_RINGS] = [EMPTY_RING; MAX_RINGS];

/// Next unclaimed ring slot.
static NEXT_RING: AtomicUsize = AtomicUsize::new(0);

/// Events dropped because every ring slot was already claimed.
static SLOT_EXHAUSTED: AtomicU64 = AtomicU64::new(0);

/// Runtime ring capacity minus one. Defaults to the full `RING_CAP`;
/// shrinkable (to a smaller power of two) so overflow accounting can be
/// exercised without recording thousands of events.
static CAP_MASK: AtomicUsize = AtomicUsize::new(RING_CAP - 1);

/// Serializes drains (readers only — never signal context).
static DRAIN_LOCK: Mutex<()> = Mutex::new(());

/// TLS slot values: `usize::MAX` = not yet claimed, `NO_SLOT` = tried
/// and found every ring taken.
const UNCLAIMED: usize = usize::MAX;
const NO_SLOT: usize = usize::MAX - 1;

thread_local! {
    /// This thread's ring index. Const-initialized and `Drop`-free, so
    /// reading it from a signal handler neither allocates nor runs TLS
    /// destructors — the same pattern as sigscan's handler context.
    static RING_SLOT: StdCell<usize> = const { StdCell::new(UNCLAIMED) };
}

/// Monotonic clock anchor. `OnceLock::get` is one atomic load;
/// `Instant::elapsed` is a vDSO `clock_gettime` — both fine in signal
/// context. Initialized by [`init_clock`] (from `enable`/`sink`), so the
/// anchor is set before any sink can be installed.
static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Sets the monotonic-ns epoch to "now" (first call wins). Idempotent.
pub(crate) fn init_clock() {
    let _ = ANCHOR.set(Instant::now());
}

/// Nanoseconds since `init_clock`; 0 if it never ran.
#[inline]
pub fn monotonic_ns() -> u64 {
    match ANCHOR.get() {
        Some(anchor) => anchor.elapsed().as_nanos() as u64,
        None => 0,
    }
}

/// Shrinks (or restores) the per-ring capacity. Testing hook for
/// overflow accounting: `cap` must be a power of two `<= RING_CAP`.
/// Not synchronized with in-flight writers — call only around quiesced
/// rings (tests hold the crate's global test lock).
pub fn set_ring_capacity(cap: usize) {
    assert!(
        cap.is_power_of_two() && cap <= RING_CAP,
        "ring capacity must be a power of two <= {RING_CAP}"
    );
    CAP_MASK.store(cap - 1, Ordering::Relaxed);
}

/// The current per-ring capacity in events.
pub fn ring_capacity() -> usize {
    CAP_MASK.load(Ordering::Relaxed) + 1
}

/// The calling thread's ring slot, claiming one on first use.
/// Async-signal-safe: a const-init TLS read plus (first time only) one
/// `fetch_add`. Returns `None` when all [`MAX_RINGS`] slots are taken.
#[inline]
fn my_slot() -> Option<usize> {
    RING_SLOT.with(|slot| {
        let cur = slot.get();
        match cur {
            UNCLAIMED => {
                let claimed = NEXT_RING.fetch_add(1, Ordering::Relaxed);
                if claimed < MAX_RINGS {
                    slot.set(claimed);
                    Some(claimed)
                } else {
                    slot.set(NO_SLOT);
                    None
                }
            }
            NO_SLOT => None,
            s => Some(s),
        }
    })
}

/// Records one phase event into the calling thread's ring.
/// Async-signal-safe: no locks, no allocation, overwrite-oldest.
#[inline]
pub fn record(ev: PhaseEvent) {
    let Some(slot) = my_slot() else {
        SLOT_EXHAUSTED.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let ring = &RINGS[slot];
    let mask = CAP_MASK.load(Ordering::Relaxed) as u64;
    let seq = ring.head.fetch_add(1, Ordering::Relaxed);
    let cell = &ring.cells[(seq & mask) as usize];
    // Invalidate first so a concurrent reader can never pair the old
    // stamp with new payload words.
    cell.stamp.store(0, Ordering::Release);
    cell.ts_ns.store(monotonic_ns(), Ordering::Relaxed);
    cell.code
        .store((ev.collect_id << 8) | ev.kind.code(), Ordering::Relaxed);
    cell.arg.store(ev.arg, Ordering::Relaxed);
    cell.stamp.store(seq + 1, Ordering::Release);
}

/// One event read back out of a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Ring (thread) the event was recorded on.
    pub ring: usize,
    /// Absolute per-ring sequence number.
    pub seq: u64,
    /// Monotonic nanoseconds since `init_clock`.
    pub ts_ns: u64,
    /// Phase boundary kind.
    pub kind: PhaseKind,
    /// Collect the event belongs to.
    pub collect_id: u64,
    /// Kind-specific payload.
    pub arg: u64,
}

/// Drains every ring: returns all readable events (ring-major, sequence
/// ascending) and advances the read cursors. Events overwritten before
/// this drain — or torn by an overwrite during it — are counted into
/// [`dropped_events`] instead of returned.
pub fn drain_events() -> Vec<EventRecord> {
    let _guard = DRAIN_LOCK.lock().unwrap();
    let cap = ring_capacity() as u64;
    let mut out = Vec::new();
    for (ring_idx, ring) in RINGS.iter().enumerate() {
        let head = ring.head.load(Ordering::Acquire);
        let tail = ring.tail.load(Ordering::Relaxed);
        if head == tail {
            continue;
        }
        // Anything older than one capacity behind the writer is gone.
        let lo = tail.max(head.saturating_sub(cap));
        if lo > tail {
            ring.dropped.fetch_add(lo - tail, Ordering::Relaxed);
        }
        for seq in lo..head {
            let cell = &ring.cells[(seq % cap) as usize];
            if cell.stamp.load(Ordering::Acquire) != seq + 1 {
                // Mid-write or already overwritten by a racing writer.
                ring.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let ts_ns = cell.ts_ns.load(Ordering::Relaxed);
            let code = cell.code.load(Ordering::Relaxed);
            let arg = cell.arg.load(Ordering::Relaxed);
            if cell.stamp.load(Ordering::Acquire) != seq + 1 {
                ring.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match PhaseKind::from_code(code & 0xff) {
                Some(kind) => out.push(EventRecord {
                    ring: ring_idx,
                    seq,
                    ts_ns,
                    kind,
                    collect_id: code >> 8,
                    arg,
                }),
                None => {
                    ring.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        ring.tail.store(head, Ordering::Relaxed);
    }
    out
}

/// Total events lost so far: ring overwrites, torn reads, and records
/// from threads that found every ring slot taken. Only drains move the
/// overwrite component, so call [`drain_events`] first for an up-to-date
/// figure.
pub fn dropped_events() -> u64 {
    RINGS
        .iter()
        .map(|r| r.dropped.load(Ordering::Relaxed))
        .sum::<u64>()
        + SLOT_EXHAUSTED.load(Ordering::Relaxed)
}

/// Ring slots claimed so far (diagnostic; feeds a registry gauge).
pub fn rings_claimed() -> u64 {
    NEXT_RING.load(Ordering::Relaxed).min(MAX_RINGS) as u64
}

/// Testing hook: empties every ring and zeroes cursors and drop
/// counters. Claimed TLS slots stay claimed (threads keep their rings).
/// Not synchronized with writers — callers quiesce first.
pub fn reset_rings_for_test() {
    let _guard = DRAIN_LOCK.lock().unwrap();
    for ring in &RINGS {
        ring.head.store(0, Ordering::Relaxed);
        ring.tail.store(0, Ordering::Relaxed);
        ring.dropped.store(0, Ordering::Relaxed);
        for cell in &ring.cells {
            cell.stamp.store(0, Ordering::Relaxed);
        }
    }
    SLOT_EXHAUSTED.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn ev(kind: PhaseKind, collect_id: u64, arg: u64) -> PhaseEvent {
        PhaseEvent {
            kind,
            collect_id,
            arg,
        }
    }

    #[test]
    fn record_and_drain_round_trip() {
        let _lock = test_lock();
        reset_rings_for_test();
        set_ring_capacity(RING_CAP);
        init_clock();
        record(ev(PhaseKind::CollectBegin, 42, 7));
        record(ev(PhaseKind::CollectEnd, 42, 1));
        let mine: Vec<EventRecord> = drain_events()
            .into_iter()
            .filter(|e| e.collect_id == 42)
            .collect();
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].kind, PhaseKind::CollectBegin);
        assert_eq!(mine[0].arg, 7);
        assert_eq!(mine[1].kind, PhaseKind::CollectEnd);
        assert!(mine[1].ts_ns >= mine[0].ts_ns, "timestamps are monotonic");
        assert_eq!(mine[0].ring, mine[1].ring, "same thread, same ring");
    }

    #[test]
    fn tiny_ring_overflow_is_counted_not_silent() {
        let _lock = test_lock();
        reset_rings_for_test();
        set_ring_capacity(8);
        init_clock();
        for i in 0..20 {
            record(ev(PhaseKind::SignalSent, 77, i));
        }
        let mine: Vec<EventRecord> = drain_events()
            .into_iter()
            .filter(|e| e.collect_id == 77)
            .collect();
        assert_eq!(mine.len(), 8, "ring keeps the newest capacity-many");
        assert_eq!(mine.last().unwrap().arg, 19, "newest survives");
        assert_eq!(mine.first().unwrap().arg, 12, "oldest kept is head - cap");
        assert_eq!(dropped_events(), 12, "12 overwritten events accounted");
        set_ring_capacity(RING_CAP);
    }

    #[test]
    fn distinct_threads_get_distinct_rings() {
        let _lock = test_lock();
        reset_rings_for_test();
        set_ring_capacity(RING_CAP);
        init_clock();
        record(ev(PhaseKind::Announce, 99, 0));
        std::thread::spawn(|| record(ev(PhaseKind::ScanBegin, 99, 0)))
            .join()
            .unwrap();
        let mine: Vec<EventRecord> = drain_events()
            .into_iter()
            .filter(|e| e.collect_id == 99)
            .collect();
        assert_eq!(mine.len(), 2);
        assert_ne!(mine[0].ring, mine[1].ring);
    }

    #[test]
    fn drain_is_consuming() {
        let _lock = test_lock();
        reset_rings_for_test();
        record(ev(PhaseKind::SortBegin, 55, 0));
        assert_eq!(
            drain_events().iter().filter(|e| e.collect_id == 55).count(),
            1
        );
        assert_eq!(
            drain_events().iter().filter(|e| e.collect_id == 55).count(),
            0,
            "second drain sees nothing new"
        );
    }
}
