//! Exporters: Prometheus text exposition and chrome://tracing JSON.
//!
//! Both render from the same two sources — the metrics registry
//! ([`crate::metrics`]) and the per-thread event rings
//! ([`crate::ring`]) — with no external dependencies: the Prometheus
//! format is plain text, and trace-event JSON is simple enough to emit
//! by hand.

use std::fmt::Write as _;

use threadscan::hist::{bucket_bound_ns, BUCKETS};
use threadscan::PhaseKind;

use crate::metrics::{entries, Instrument, Labels, MetricEntry};
use crate::ring::{drain_events, dropped_events, EventRecord};

/// Renders every registered metric in Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers, then one sample line
/// per series — histograms as cumulative `_bucket{le=...}` series plus
/// `_sum` and `_count`. Metrics with zero recorded samples still render
/// (all-zero but valid — scrapers must never 500 on a fresh process).
pub fn render_prometheus() -> String {
    let mut out = String::new();
    let mut last_name = "";
    for entry in entries() {
        if entry.name != last_name {
            let kind = match entry.instrument {
                Instrument::Counter(_) => "counter",
                Instrument::Gauge(_) | Instrument::CallbackGauge(_) => "gauge",
                Instrument::Hist(_) => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", entry.name, entry.help);
            let _ = writeln!(out, "# TYPE {} {}", entry.name, kind);
            last_name = entry.name;
        }
        render_sample(&mut out, &entry);
    }
    out
}

fn render_sample(out: &mut String, entry: &MetricEntry) {
    match entry.instrument {
        Instrument::Counter(c) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                entry.name,
                label_block(entry.labels, None),
                c.get()
            );
        }
        Instrument::Gauge(g) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                entry.name,
                label_block(entry.labels, None),
                g.get()
            );
        }
        Instrument::CallbackGauge(g) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                entry.name,
                label_block(entry.labels, None),
                g.get()
            );
        }
        Instrument::Hist(h) => {
            let snapshot = h.snapshot();
            let counts = snapshot.counts();
            let mut cumulative = 0u64;
            for (i, &count) in counts.iter().enumerate().take(BUCKETS) {
                cumulative += count;
                let le = format!("{}", bucket_bound_ns(i));
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    entry.name,
                    label_block(entry.labels, Some(&le)),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                entry.name,
                label_block(entry.labels, Some("+Inf")),
                cumulative
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                entry.name,
                label_block(entry.labels, None),
                h.sum()
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                entry.name,
                label_block(entry.labels, None),
                h.count()
            );
        }
    }
}

/// `{k="v",...}` with an optional trailing `le` label; empty string when
/// there are no labels at all.
fn label_block(labels: Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape(v));
        first = false;
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escapes a Prometheus label value / JSON string (shared subset:
/// backslash, double quote, newline).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Drains the event rings and renders a chrome://tracing /
/// Perfetto-loadable trace (JSON object format, `"traceEvents"` array).
///
/// Layout: one track (`tid`) per event ring — i.e. per recording thread.
/// Paired begin/end kinds become complete (`"X"`) spans on the ring they
/// were recorded on: the reclaimer's ring carries the `collect` span
/// with `sort` and `free` nested inside, and every scanned thread's ring
/// carries its own `scan` span, so a straggler's signal-delivery latency
/// is visible as the gap between the reclaimer's `announce` instant and
/// that thread's `scan` span. Unpaired kinds (`announce`, `signal_sent`,
/// `all_acked`) render as instant (`"i"`) events. A begin without an end
/// (ring overwrote the end, or the process stopped mid-collect) is
/// dropped rather than inventing a duration.
pub fn render_chrome_trace() -> String {
    let events = drain_events();
    render_chrome_trace_from(&events)
}

/// [`render_chrome_trace`] over an explicit event list (testable without
/// touching the global rings).
pub fn render_chrome_trace_from(events: &[EventRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push_str(&s);
        *first = false;
    };

    // Thread-name metadata for every ring that recorded anything.
    let mut rings: Vec<usize> = events.iter().map(|e| e.ring).collect();
    rings.sort_unstable();
    rings.dedup();
    for ring in &rings {
        emit(
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{ring},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"ring-{ring}\"}}}}"
            ),
            &mut first,
        );
    }

    // Pair spans per (ring, collect_id, kind-pair). Events arrive
    // ring-major and sequence-ascending from the drain, so a linear scan
    // with a small open-span table is enough.
    let mut open: Vec<(usize, u64, PhaseKind, u64, u64)> = Vec::new(); // ring, collect, begin-kind, ts, arg
    for e in events {
        match e.kind {
            PhaseKind::CollectBegin
            | PhaseKind::SortBegin
            | PhaseKind::FreeBegin
            | PhaseKind::ScanBegin => {
                open.push((e.ring, e.collect_id, e.kind, e.ts_ns, e.arg));
            }
            PhaseKind::CollectEnd
            | PhaseKind::SortEnd
            | PhaseKind::FreeEnd
            | PhaseKind::ScanEnd => {
                let want = match e.kind {
                    PhaseKind::CollectEnd => PhaseKind::CollectBegin,
                    PhaseKind::SortEnd => PhaseKind::SortBegin,
                    PhaseKind::FreeEnd => PhaseKind::FreeBegin,
                    _ => PhaseKind::ScanBegin,
                };
                if let Some(pos) = open
                    .iter()
                    .rposition(|&(r, c, k, _, _)| r == e.ring && c == e.collect_id && k == want)
                {
                    let (_, _, _, begin_ts, begin_arg) = open.remove(pos);
                    let dur_ns = e.ts_ns.saturating_sub(begin_ts);
                    emit(
                        format!(
                            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                             \"ts\":{},\"dur\":{},\"args\":{{\"collect\":{},\
                             \"begin_arg\":{},\"end_arg\":{}}}}}",
                            want.label(),
                            e.ring,
                            us(begin_ts),
                            us(dur_ns),
                            e.collect_id,
                            begin_arg,
                            e.arg
                        ),
                        &mut first,
                    );
                }
                // An end with no surviving begin: overwritten — skip.
            }
            PhaseKind::Announce | PhaseKind::SignalSent | PhaseKind::AllAcked => {
                emit(
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\
                         \"ts\":{},\"args\":{{\"collect\":{},\"arg\":{}}}}}",
                        e.kind.label(),
                        e.ring,
                        us(e.ts_ns),
                        e.collect_id,
                        e.arg
                    ),
                    &mut first,
                );
            }
        }
    }

    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{}}}}}",
        dropped_events()
    );
    out
}

/// Trace-event timestamps are microseconds; emit three decimals so
/// sub-microsecond spans stay visible.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{register_counter, register_hist, AtomicHist, Counter};
    use crate::test_lock;

    #[test]
    fn empty_histogram_renders_valid_prometheus_text() {
        // Satellite: 0 recorded events must render, not panic — all-zero
        // buckets, `+Inf`, `_sum 0`, `_count 0`.
        let _lock = test_lock();
        static EMPTY: AtomicHist = AtomicHist::new();
        register_hist("ts_test_empty_duration_ns", "always empty", &[], &EMPTY);
        let text = render_prometheus();
        assert!(text.contains("# TYPE ts_test_empty_duration_ns histogram"));
        assert!(text.contains("ts_test_empty_duration_ns_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("ts_test_empty_duration_ns_sum 0"));
        assert!(text.contains("ts_test_empty_duration_ns_count 0"));
        // And the percentile read on the empty histogram is 0, not NaN.
        assert_eq!(EMPTY.snapshot().percentile_ns(0.999), 0.0);
    }

    #[test]
    fn histogram_buckets_render_cumulative() {
        let _lock = test_lock();
        static H: AtomicHist = AtomicHist::new();
        register_hist("ts_test_cum_ns", "cumulative check", &[], &H);
        H.record(1); // bucket 0 (le 2)
        H.record(3); // bucket 1 (le 4)
        H.record(3);
        let text = render_prometheus();
        assert!(text.contains("ts_test_cum_ns_bucket{le=\"2\"} 1"));
        assert!(text.contains("ts_test_cum_ns_bucket{le=\"4\"} 3"));
        assert!(text.contains("ts_test_cum_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("ts_test_cum_ns_sum 7"));
        assert!(text.contains("ts_test_cum_ns_count 3"));
    }

    #[test]
    fn counters_render_with_labels_and_one_header() {
        let _lock = test_lock();
        static A: Counter = Counter::new();
        static B: Counter = Counter::new();
        register_counter("ts_test_ops_total", "ops", &[("cls", "read")], &A);
        register_counter("ts_test_ops_total", "ops", &[("cls", "write")], &B);
        A.add(3);
        B.add(4);
        let text = render_prometheus();
        assert_eq!(
            text.matches("# TYPE ts_test_ops_total counter").count(),
            1,
            "one TYPE header per metric name, not per series"
        );
        assert!(text.contains("ts_test_ops_total{cls=\"read\"} 3"));
        assert!(text.contains("ts_test_ops_total{cls=\"write\"} 4"));
    }

    #[test]
    fn chrome_trace_pairs_spans_and_handles_empty() {
        let ev = |ring, kind, collect_id, ts_ns, arg| EventRecord {
            ring,
            seq: ts_ns, // unused by the renderer
            ts_ns,
            kind,
            collect_id,
            arg,
        };
        // Reclaimer on ring 0; one scanned thread on ring 1.
        let events = [
            ev(0, PhaseKind::CollectBegin, 5, 1_000, 128),
            ev(0, PhaseKind::SortBegin, 5, 1_100, 0),
            ev(0, PhaseKind::SortEnd, 5, 2_100, 4),
            ev(0, PhaseKind::Announce, 5, 2_200, 2),
            ev(0, PhaseKind::SignalSent, 5, 2_300, 0),
            ev(0, PhaseKind::AllAcked, 5, 9_000, 1),
            ev(0, PhaseKind::FreeBegin, 5, 9_100, 100),
            ev(0, PhaseKind::FreeEnd, 5, 9_900, 100),
            ev(0, PhaseKind::CollectEnd, 5, 10_000, 28),
            ev(1, PhaseKind::ScanBegin, 5, 4_000, 0),
            ev(1, PhaseKind::ScanEnd, 5, 8_000, 640),
        ];
        let json = render_chrome_trace_from(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"collect\""));
        assert!(json.contains("\"name\":\"sort\""));
        assert!(json.contains("\"name\":\"free\""));
        assert!(json.contains("\"name\":\"announce\""));
        assert!(json.contains("\"name\":\"signal_sent\""));
        assert!(json.contains("\"name\":\"all_acked\""));
        // The scan span lives on the scanned thread's own track with the
        // right duration (8000 - 4000 ns = 4 µs).
        assert!(json.contains(
            "\"name\":\"scan\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":4.000,\"dur\":4.000"
        ));
        // The collect span covers the whole phase (9 µs from ts 1 µs).
        assert!(json.contains("\"ts\":1.000,\"dur\":9.000"));

        // A begin whose end was overwritten renders no bogus span.
        let truncated = [ev(0, PhaseKind::CollectBegin, 6, 0, 1)];
        let json = render_chrome_trace_from(&truncated);
        assert!(!json.contains("\"name\":\"collect\""));

        // Zero events: still a valid, loadable document.
        let json = render_chrome_trace_from(&[]);
        assert!(json.starts_with("{\"traceEvents\":[]"));
        assert!(json.ends_with('}'));
    }
}
