//! Process-wide metrics registry.
//!
//! One lock-free namespace for every subsystem's counters, gauges, and
//! histograms, so `/metrics` can render the collector, the node pools,
//! and the workload runners without knowing about any of them.
//!
//! The registry is a Treiber push list of leaked nodes: registration is
//! a single CAS, readers walk plain `Acquire` loads, and nothing is ever
//! unregistered (metrics are `&'static` by contract — process-lifetime
//! instruments, like Prometheus client libraries model them). Each
//! instrument carries a `registered` latch so registration is idempotent:
//! calling a `register_*` function twice (or from racing threads) inserts
//! exactly one node.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

use threadscan::hist::{bucket, BUCKETS};
use threadscan::Hist;

/// Static key/value label pairs attached to a metric at registration.
pub type Labels = &'static [(&'static str, &'static str)];

/// A monotonically increasing counter (`_total` metrics).
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A zeroed, unregistered counter (usable in `static` items).
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A gauge: a value that can move both ways (or track a maximum).
#[derive(Debug)]
pub struct Gauge {
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    /// A zeroed, unregistered gauge (usable in `static` items).
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if it is currently lower (max-tracking).
    #[inline]
    pub fn raise(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A gauge whose value is computed at scrape time by a plain function —
/// how an existing subsystem counter (e.g. the node pools'
/// bytes-resident total) joins the namespace without double bookkeeping.
#[derive(Debug)]
pub struct CallbackGauge {
    read: fn() -> u64,
    registered: AtomicBool,
}

impl CallbackGauge {
    /// Wraps `read` (usable in `static` items).
    pub const fn new(read: fn() -> u64) -> Self {
        Self {
            read,
            registered: AtomicBool::new(false),
        }
    }

    /// Reads the underlying source.
    #[inline]
    pub fn get(&self) -> u64 {
        (self.read)()
    }
}

/// A thread-safe log2 histogram with the exact bucket layout of
/// [`threadscan::Hist`] — the same `floor(log2(ns))` math, so counts
/// recorded here and counts recorded into a `CollectorStats` snapshot
/// from the same durations are bucket-for-bucket equal.
#[derive(Debug)]
pub struct AtomicHist {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    registered: AtomicBool,
}

impl AtomicHist {
    /// An empty, unregistered histogram (usable in `static` items).
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one duration (or any non-negative sample), in nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A plain-histogram copy of the current bucket counts, for merging
    /// and percentile reads through the shared [`threadscan::Hist`] API.
    pub fn snapshot(&self) -> Hist {
        let mut h = Hist::new();
        let counts: Vec<usize> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed) as usize)
            .collect();
        h.add_counts(&counts);
        h
    }
}

impl Default for AtomicHist {
    fn default() -> Self {
        Self::new()
    }
}

/// What kind of instrument a registry entry points at.
#[derive(Debug, Clone, Copy)]
pub enum Instrument {
    /// A monotonic counter.
    Counter(&'static Counter),
    /// A settable gauge.
    Gauge(&'static Gauge),
    /// A scrape-time computed gauge.
    CallbackGauge(&'static CallbackGauge),
    /// A log2 histogram.
    Hist(&'static AtomicHist),
}

/// One registered metric: name, help text, labels, instrument.
#[derive(Debug, Clone, Copy)]
pub struct MetricEntry {
    /// Prometheus metric name (`snake_case`, `threadscan_` prefix by
    /// convention; counters end in `_total`).
    pub name: &'static str,
    /// One-line help text (`# HELP`).
    pub help: &'static str,
    /// Static label pairs rendered on every sample of this metric.
    pub labels: Labels,
    /// The instrument behind the name.
    pub instrument: Instrument,
}

struct RegNode {
    entry: MetricEntry,
    next: *const RegNode,
}

/// Head of the registry list. Nodes are pushed once and leaked; the list
/// only grows, so readers need no reclamation protocol (fitting, given
/// the repository).
static REGISTRY_HEAD: AtomicPtr<RegNode> = AtomicPtr::new(std::ptr::null_mut());

fn push_entry(entry: MetricEntry) {
    let node = Box::leak(Box::new(RegNode {
        entry,
        next: std::ptr::null(),
    }));
    let mut head = REGISTRY_HEAD.load(Ordering::Acquire);
    loop {
        node.next = head;
        match REGISTRY_HEAD.compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return,
            Err(cur) => head = cur,
        }
    }
}

/// Claims an instrument's `registered` latch; `true` exactly once.
fn claim(flag: &AtomicBool) -> bool {
    flag.compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
}

/// Registers a counter. Idempotent: repeat calls (any thread) are no-ops.
pub fn register_counter(
    name: &'static str,
    help: &'static str,
    labels: Labels,
    c: &'static Counter,
) {
    if claim(&c.registered) {
        push_entry(MetricEntry {
            name,
            help,
            labels,
            instrument: Instrument::Counter(c),
        });
    }
}

/// Registers a gauge. Idempotent.
pub fn register_gauge(name: &'static str, help: &'static str, labels: Labels, g: &'static Gauge) {
    if claim(&g.registered) {
        push_entry(MetricEntry {
            name,
            help,
            labels,
            instrument: Instrument::Gauge(g),
        });
    }
}

/// Registers a scrape-time computed gauge. Idempotent.
pub fn register_callback_gauge(
    name: &'static str,
    help: &'static str,
    labels: Labels,
    g: &'static CallbackGauge,
) {
    if claim(&g.registered) {
        push_entry(MetricEntry {
            name,
            help,
            labels,
            instrument: Instrument::CallbackGauge(g),
        });
    }
}

/// Registers a histogram. Idempotent.
pub fn register_hist(
    name: &'static str,
    help: &'static str,
    labels: Labels,
    h: &'static AtomicHist,
) {
    if claim(&h.registered) {
        push_entry(MetricEntry {
            name,
            help,
            labels,
            instrument: Instrument::Hist(h),
        });
    }
}

/// All registered metrics, sorted by name then labels for deterministic
/// rendering. Allocates; not for signal contexts.
pub fn entries() -> Vec<MetricEntry> {
    let mut out = Vec::new();
    let mut cur = REGISTRY_HEAD.load(Ordering::Acquire) as *const RegNode;
    while !cur.is_null() {
        // SAFETY: nodes are leaked at registration and never freed.
        let node = unsafe { &*cur };
        out.push(node.entry);
        cur = node.next;
    }
    out.sort_by(|a, b| a.name.cmp(b.name).then_with(|| a.labels.cmp(b.labels)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_hist_basic_arithmetic() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(7);
        g.raise(3);
        assert_eq!(g.get(), 7, "raise below current is a no-op");
        g.raise(11);
        assert_eq!(g.get(), 11);

        let h = AtomicHist::new();
        h.record(1000);
        h.record(1000);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 2000);
        assert_eq!(h.snapshot().counts()[bucket(1000)], 2);
    }

    #[test]
    fn atomic_hist_buckets_match_plain_hist() {
        // The satellite contract's foundation: identical bucket math means
        // a registry histogram and a `CollectorStats` histogram fed the
        // same durations can never disagree.
        let atomic = AtomicHist::new();
        let mut plain = Hist::new();
        for ns in [0u64, 1, 2, 999, 1024, 1_000_000, u64::MAX] {
            atomic.record(ns);
            plain.record(ns);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn registration_is_idempotent_and_concurrent_safe() {
        static C: Counter = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    register_counter("ts_test_idempotent_total", "test", &[], &C);
                });
            }
        });
        let hits = entries()
            .iter()
            .filter(|e| e.name == "ts_test_idempotent_total")
            .count();
        assert_eq!(hits, 1, "eight racing registrations, one entry");
    }

    #[test]
    fn entries_sort_by_name_then_labels() {
        static A: Counter = Counter::new();
        static B: Counter = Counter::new();
        register_counter(
            "ts_test_sorted_total",
            "test",
            &[("scheme", "threadscan")],
            &A,
        );
        register_counter("ts_test_sorted_total", "test", &[("scheme", "epoch")], &B);
        let found: Vec<MetricEntry> = entries()
            .into_iter()
            .filter(|e| e.name == "ts_test_sorted_total")
            .collect();
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].labels[0].1, "epoch");
        assert_eq!(found[1].labels[0].1, "threadscan");
    }

    #[test]
    fn callback_gauge_reads_at_scrape_time() {
        use std::sync::atomic::AtomicU64;
        static SOURCE: AtomicU64 = AtomicU64::new(0);
        fn read() -> u64 {
            SOURCE.load(Ordering::Relaxed)
        }
        static G: CallbackGauge = CallbackGauge::new(read);
        register_callback_gauge("ts_test_cb_gauge", "test", &[], &G);
        SOURCE.store(42, Ordering::Relaxed);
        assert_eq!(G.get(), 42);
        SOURCE.store(7, Ordering::Relaxed);
        assert_eq!(G.get(), 7, "value is computed per read, not cached");
    }
}
