//! A [`Retired`] record describes one allocation handed to the collector.
//!
//! ThreadScan's delete buffers hold *type-erased* descriptions of retired
//! nodes: the address (used for sorting and conservative matching), the
//! allocation size (used for interior-pointer range matching, see
//! [`crate::config::MatchMode`]), and a drop function that reconstructs the
//! original `Box<T>` and runs its destructor.

use core::fmt;

/// Type-erased destructor for a retired allocation.
///
/// # Safety
///
/// Must only be invoked once, with the address the record was created from.
pub type DropFn = unsafe fn(*mut u8);

/// Drops a `Box<T>` recovered from a raw pointer.
///
/// # Safety
///
/// `p` must have been produced by `Box::<T>::into_raw` and not freed since.
pub unsafe fn drop_box<T>(p: *mut u8) {
    drop(Box::from_raw(p.cast::<T>()));
}

/// A no-op destructor, useful for arenas and tests that manage memory
/// elsewhere and only want tracking/marking behaviour.
pub fn noop_drop(_p: *mut u8) {}

/// One retired allocation: `[addr, addr + size)` plus its destructor.
#[derive(Clone, Copy)]
pub struct Retired {
    addr: usize,
    size: usize,
    drop_fn: DropFn,
}

impl Retired {
    /// Describes a `Box<T>` that was leaked via [`Box::into_raw`].
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Box::<T>::into_raw` and must not be freed by
    /// anyone other than the collector from now on.
    pub unsafe fn of_box<T>(ptr: *mut T) -> Self {
        Self {
            addr: ptr as usize,
            size: core::mem::size_of::<T>().max(1),
            drop_fn: drop_box::<T>,
        }
    }

    /// Builds a record from raw parts.
    ///
    /// # Safety
    ///
    /// `drop_fn(addr as *mut u8)` must be sound to call exactly once.
    pub unsafe fn from_raw_parts(addr: usize, size: usize, drop_fn: DropFn) -> Self {
        Self {
            addr,
            size: size.max(1),
            drop_fn,
        }
    }

    /// Base address of the allocation.
    #[inline]
    pub fn addr(&self) -> usize {
        self.addr
    }

    /// Size of the allocation in bytes (always at least 1, so that the
    /// half-open range `[addr, end)` is never empty).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// One past the last byte of the allocation.
    #[inline]
    pub fn end(&self) -> usize {
        self.addr.saturating_add(self.size)
    }

    /// Runs the destructor, deallocating the node.
    ///
    /// # Safety
    ///
    /// Callable at most once per retired allocation; no thread may still
    /// hold a reference to the allocation.
    #[inline]
    pub unsafe fn reclaim(self) {
        (self.drop_fn)(self.addr as *mut u8);
    }
}

impl fmt::Debug for Retired {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Retired")
            .field("addr", &(self.addr as *const u8))
            .field("size", &self.size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Test helper: a heap node that counts drops.
    pub(crate) struct DropCounter {
        pub counter: Arc<AtomicUsize>,
        /// Payload so the allocation is bigger than a pointer.
        pub _payload: [u64; 4],
    }

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.counter.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn of_box_reclaims_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let node = Box::new(DropCounter {
            counter: counter.clone(),
            _payload: [0; 4],
        });
        let raw = Box::into_raw(node);
        let retired = unsafe { Retired::of_box(raw) };
        assert_eq!(retired.addr(), raw as usize);
        assert_eq!(retired.size(), core::mem::size_of::<DropCounter>());
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        unsafe { retired.reclaim() };
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn range_is_half_open_and_nonempty() {
        let retired = unsafe { Retired::from_raw_parts(0x1000, 0, noop_drop) };
        assert_eq!(retired.size(), 1, "zero-size is clamped to 1");
        assert_eq!(retired.end(), 0x1001);
    }

    #[test]
    fn end_saturates_at_usize_max() {
        let retired = unsafe { Retired::from_raw_parts(usize::MAX - 4, 64, noop_drop) };
        assert_eq!(retired.end(), usize::MAX);
    }

    #[test]
    fn debug_format_mentions_addr() {
        let retired = unsafe { Retired::from_raw_parts(0xdead0, 16, noop_drop) };
        let s = format!("{retired:?}");
        assert!(s.contains("dead0"), "{s}");
    }
}
