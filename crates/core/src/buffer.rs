//! Per-thread delete buffers.
//!
//! The paper (§4.2, "Reclamation") replaces the single shared delete buffer
//! of the pseudocode with one circular buffer per thread, "guaranteed to be
//! single-reader, single-writer, so concurrent accesses are simple and
//! inexpensive". The owning thread is the single writer; the single reader
//! at any moment is whichever thread currently holds the reclaimer lock and
//! drains all buffers into the master buffer.

use core::cell::UnsafeCell;
use core::mem::MaybeUninit;
use core::sync::atomic::{AtomicUsize, Ordering};
use crossbeam_utils::CachePadded;

use crate::retired::Retired;

/// A single-producer, single-consumer circular buffer of [`Retired`] records.
///
/// * `push` may only be called by the owning thread.
/// * `drain_into` may only be called while holding the collector's reclaimer
///   lock (which serializes readers), or by the owner itself.
///
/// Indices grow monotonically and wrap around `usize`; the slot for index
/// `i` is `i % capacity`, so the capacity is always a power of two (see
/// [`LocalBuffer::new`]).
pub struct LocalBuffer {
    slots: Box<[UnsafeCell<MaybeUninit<Retired>>]>,
    /// Next index to write (owner-only writes, reader loads).
    head: CachePadded<AtomicUsize>,
    /// Next index to read (reader-only writes, owner loads).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the SPSC discipline documented above makes the UnsafeCell slots
// data-race free: a slot is written before `head` is released and read after
// `head` is acquired, and never rewritten before `tail` passes it.
unsafe impl Send for LocalBuffer {}
unsafe impl Sync for LocalBuffer {}

impl LocalBuffer {
    /// Creates a buffer holding up to `capacity` retired nodes, rounded
    /// **up** to the next power of two.
    ///
    /// The rounding is load-bearing, not an optimization: head/tail are
    /// monotonically increasing `usize` indices mapped to slots by
    /// `i % capacity`, and that mapping is only continuous across the
    /// `usize::MAX` wraparound when the capacity divides `usize::MAX + 1`
    /// — i.e. when it is a power of two. A non-power-of-two capacity
    /// would silently scramble FIFO order (and the SPSC slot-disjointness
    /// argument) after ~2^64 pushes.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "buffer capacity must be at least 2");
        let capacity = capacity.next_power_of_two();
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Capacity in retired nodes.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of records currently buffered (approximate under concurrency;
    /// exact when called by the owner with no concurrent drain).
    ///
    /// Relaxed from `Acquire`/`Acquire` (scenarios:
    /// `lemma1_acquire_release_vs_retire_2threads`,
    /// `lemma1_scan_free_handshake_3threads`): this is a pure occupancy
    /// probe — no slot contents are read on its strength. Both indices
    /// are monotonic, so a stale `head` or `tail` only misreports the
    /// *count*: the owner sees its own `head` exactly (same-thread
    /// coherence) and at worst a stale `tail` that over-estimates
    /// occupancy, triggering a spurious collect that re-checks under the
    /// reclaimer lock (`collect_for` skips if the buffer is no longer
    /// full); cross-thread readers (`pending_estimate`) are documented
    /// racy diagnostics. Slot hand-off ordering lives entirely in
    /// `push`/`drain_into`.
    #[inline]
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        head.wrapping_sub(tail)
    }

    /// Whether the buffer holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the buffer is at capacity, i.e. the next `push` would fail
    /// and the owner should trigger a collect.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity()
    }

    /// Appends one record. Returns `Err(record)` when full.
    ///
    /// # Safety
    ///
    /// Must only be called by the buffer's owning thread (single producer).
    pub unsafe fn push(&self, record: Retired) -> Result<(), Retired> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.capacity() {
            return Err(record);
        }
        // Power-of-two capacity (see `new`) makes the modulo a mask and
        // keeps it continuous across usize wraparound.
        let slot = &self.slots[head & (self.capacity() - 1)];
        // SAFETY: slot is outside [tail, head), so no reader touches it.
        unsafe { (*slot.get()).write(record) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Moves every buffered record into `out`, emptying the buffer.
    ///
    /// # Safety
    ///
    /// Must only be called by the current single reader (the reclaimer-lock
    /// holder, or the owning thread itself).
    pub unsafe fn drain_into(&self, out: &mut Vec<Retired>) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        let drained = head.wrapping_sub(tail);
        out.reserve(drained);
        while tail != head {
            let slot = &self.slots[tail & (self.capacity() - 1)];
            // SAFETY: [tail, head) slots were fully written before `head`
            // was released by the producer.
            out.push(unsafe { (*slot.get()).assume_init_read() });
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retired::noop_drop;
    use std::sync::Arc;

    fn rec(addr: usize) -> Retired {
        unsafe { Retired::from_raw_parts(addr, 8, noop_drop) }
    }

    #[test]
    fn push_then_drain_roundtrips() {
        let buf = LocalBuffer::new(8);
        for i in 0..5 {
            unsafe { buf.push(rec(0x1000 + i * 8)).unwrap() };
        }
        assert_eq!(buf.len(), 5);
        let mut out = Vec::new();
        let n = unsafe { buf.drain_into(&mut out) };
        assert_eq!(n, 5);
        assert!(buf.is_empty());
        let addrs: Vec<usize> = out.iter().map(|r| r.addr()).collect();
        assert_eq!(addrs, vec![0x1000, 0x1008, 0x1010, 0x1018, 0x1020]);
    }

    #[test]
    fn push_fails_when_full() {
        let buf = LocalBuffer::new(2);
        unsafe {
            buf.push(rec(0x10)).unwrap();
            assert!(!buf.is_full());
            buf.push(rec(0x20)).unwrap();
            assert!(buf.is_full());
            let rejected = buf.push(rec(0x30)).unwrap_err();
            assert_eq!(rejected.addr(), 0x30);
        }
    }

    #[test]
    fn wraparound_preserves_fifo_order() {
        let buf = LocalBuffer::new(4);
        let mut out = Vec::new();
        let mut next = 0usize;
        // Push/drain enough to wrap the indices several times.
        for round in 0..10 {
            let burst = 1 + (round % 4);
            for _ in 0..burst {
                unsafe { buf.push(rec(next)).unwrap() };
                next += 1;
            }
            out.clear();
            unsafe { buf.drain_into(&mut out) };
            let got: Vec<usize> = out.iter().map(|r| r.addr()).collect();
            let expect: Vec<usize> = (next - burst..next).collect();
            assert_eq!(got, expect, "round {round}");
        }
    }

    #[test]
    fn concurrent_producer_and_drainer_lose_nothing() {
        const TOTAL: usize = 100_000;
        let buf = Arc::new(LocalBuffer::new(64));
        let producer = {
            let buf = Arc::clone(&buf);
            std::thread::spawn(move || {
                let mut i = 1usize; // 0 is not a valid "address" for the check below
                while i <= TOTAL {
                    // SAFETY: this thread is the sole producer.
                    if unsafe { buf.push(rec(i)) }.is_ok() {
                        i += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let mut seen = Vec::with_capacity(TOTAL);
        while seen.len() < TOTAL {
            // SAFETY: this thread is the sole consumer.
            unsafe { buf.drain_into(&mut seen) };
        }
        producer.join().unwrap();
        for (i, r) in seen.iter().enumerate() {
            assert_eq!(r.addr(), i + 1, "FIFO order must hold across the ring");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn capacity_one_rejected() {
        let _ = LocalBuffer::new(1);
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        // Regression: with a non-power-of-two capacity the `i % capacity`
        // slot mapping is discontinuous at the usize::MAX index wrap and
        // would corrupt FIFO order; `new` must round up.
        assert_eq!(LocalBuffer::new(2).capacity(), 2);
        assert_eq!(LocalBuffer::new(3).capacity(), 4);
        assert_eq!(LocalBuffer::new(5).capacity(), 8);
        assert_eq!(LocalBuffer::new(1000).capacity(), 1024);
        assert_eq!(LocalBuffer::new(1024).capacity(), 1024);
    }

    #[test]
    fn rounded_capacity_still_fills_and_drains() {
        let buf = LocalBuffer::new(7); // rounds to 8
        for i in 0..8 {
            unsafe { buf.push(rec(0x100 + i * 8)).unwrap() };
        }
        assert!(buf.is_full());
        let mut out = Vec::new();
        assert_eq!(unsafe { buf.drain_into(&mut out) }, 8);
    }
}
