//! The platform abstraction: how scans reach every thread.
//!
//! The paper's mechanism is OS signaling (§4.2). This crate keeps the
//! collect protocol (buffers, sorting, marking, sweeping) platform-neutral
//! behind [`Platform`]; the `ts-sigscan` crate implements it with real
//! POSIX signals and raw stack/register scanning, and `ts-simthread`
//! implements it with shadow stacks and a deterministic virtual-signal
//! handshake for model testing.

use std::sync::Arc;

use crate::roots::ThreadRoots;
use crate::selfscan::SelfScanContext;
use crate::session::ScanSession;

/// Outcome of one scan round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Threads that scanned (including the reclaimer itself).
    pub threads_scanned: usize,
}

/// A mechanism for making every registered thread scan its private roots.
///
/// # Safety
///
/// Implementations must guarantee that when [`Platform::scan_all`] returns:
///
/// 1. every thread registered with this platform at the start of the call
///    has scanned **all** of its private root locations — its stack and
///    register state as of some point during the call, plus every heap
///    block in its [`ThreadRoots`] — against `session`, and
/// 2. each such thread has called [`ScanSession::ack`] *after* finishing
///    its scan.
///
/// Violating this allows the collector to free memory that a thread still
/// references (the protocol's Lemma 1 depends on it).
pub unsafe trait Platform: Send + Sync + 'static {
    /// Per-thread registration guard. Dropping it unregisters the thread.
    type ThreadToken;

    /// Registers the calling thread for future scan rounds. `roots` carries
    /// the thread's extra scan roots (§4.3 heap blocks); the platform adds
    /// the stack and registers itself.
    fn register_current(&self, roots: Arc<ThreadRoots>) -> Self::ThreadToken;

    /// Runs one scan round on behalf of the calling (reclaimer) thread:
    /// every registered thread — including the caller — scans and acks.
    /// Returns how many threads participated.
    ///
    /// `reclaimer` is the caller's application/collector boundary snapshot
    /// (see [`SelfScanContext`]): platforms that scan real stacks must
    /// scan the caller's stack from `reclaimer.floor` upward plus
    /// `reclaimer.regs()`, **not** the caller's live stack at scan time —
    /// the collect machinery's dead frames below the floor contain copies
    /// of every aggregated node address and would pin everything.
    ///
    /// The collector calls this while holding its reclaimer lock, so
    /// implementations may assume rounds do not overlap *for one
    /// collector*; rounds from different collectors sharing process-global
    /// state (e.g. a signal handler) must be serialized internally.
    fn scan_all(&self, session: &ScanSession<'_>, reclaimer: &SelfScanContext) -> ScanOutcome;
}

/// A platform with no threads to scan: only the reclaimer itself scans
/// nothing and every unmarked node is freed immediately.
///
/// Useful as a baseline ("what if scans were free and found nothing") and
/// for tests of the buffering/sweeping machinery in isolation. **Not safe
/// for real concurrent use**: it never looks at anyone's stack, so it
/// reclaims everything unconditionally.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullPlatform;

// SAFETY: trivially satisfies the contract because no thread is ever
// considered registered; there are no roots to miss. (The *collector-level*
// safety for real programs comes from not using this platform with shared
// data structures.)
unsafe impl Platform for NullPlatform {
    type ThreadToken = ();

    fn register_current(&self, _roots: Arc<ThreadRoots>) -> Self::ThreadToken {}

    fn scan_all(&self, session: &ScanSession<'_>, _reclaimer: &SelfScanContext) -> ScanOutcome {
        session.ack(); // the reclaimer "scans" (nothing) and acks
        ScanOutcome { threads_scanned: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CollectorConfig;
    use crate::master::MasterBuffer;
    use crate::retired::{noop_drop, Retired};

    #[test]
    fn null_platform_acks_once_and_marks_nothing() {
        let mb = MasterBuffer::new(
            vec![unsafe { Retired::from_raw_parts(0x100, 8, noop_drop) }],
            &CollectorConfig::default(),
        );
        let session = mb.session();
        let outcome = NullPlatform.scan_all(&session, &SelfScanContext::empty());
        assert_eq!(outcome.threads_scanned, 1);
        assert_eq!(session.acks_received(), 1);
        drop(session);
        assert!(!mb.is_marked(0));
    }
}
