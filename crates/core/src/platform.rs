//! The platform abstraction: how scans reach every thread.
//!
//! The paper's mechanism is OS signaling (§4.2). This crate keeps the
//! collect protocol (buffers, sorting, marking, sweeping) platform-neutral
//! behind [`Platform`]; the `ts-sigscan` crate implements it with real
//! POSIX signals and raw stack/register scanning, and `ts-simthread`
//! implements it with shadow stacks and a deterministic virtual-signal
//! handshake for model testing.

use std::sync::{Arc, OnceLock};

use crate::roots::ThreadRoots;
use crate::selfscan::SelfScanContext;
use crate::session::ScanSession;

/// One NUMA node: its sysfs id and the CPUs it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyNode {
    /// The node's index (`/sys/devices/system/node/node<id>`).
    pub id: usize,
    /// CPU ids belonging to this node, ascending. Never empty.
    pub cpus: Vec<usize>,
}

/// The machine's CPU/NUMA layout, as probed once per process by
/// [`topology`]. The collector uses it to spread sort workers across
/// memory domains and to size the sharded master buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// NUMA nodes with at least one CPU, ascending by id. Never empty.
    pub nodes: Vec<TopologyNode>,
}

impl Topology {
    /// Number of NUMA nodes (>= 1).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total CPUs across all nodes (>= 1).
    pub fn total_cpus(&self) -> usize {
        self.nodes.iter().map(|n| n.cpus.len()).sum()
    }

    /// CPU assignments for `n` workers, round-robin **across nodes**
    /// first and within each node second — worker `i` lands on node
    /// `i % node_count`, so any prefix of the workers is spread as
    /// evenly over the memory domains as possible.
    pub fn round_robin_cpus(&self, n: usize) -> Vec<usize> {
        let mut next = vec![0usize; self.nodes.len()];
        (0..n)
            .map(|i| {
                let slot = i % self.nodes.len();
                let node = &self.nodes[slot];
                let cpu = node.cpus[next[slot] % node.cpus.len()];
                next[slot] += 1;
                cpu
            })
            .collect()
    }

    /// The portable fallback: one node owning CPUs
    /// `0..available_parallelism`.
    fn single_node() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            nodes: vec![TopologyNode {
                id: 0,
                cpus: (0..cpus).collect(),
            }],
        }
    }

    /// Probes `/sys/devices/system/node/node*/cpulist`. `None` when the
    /// tree is absent (non-Linux, sysfs unmounted) or yields no node
    /// with a CPU.
    fn from_sysfs() -> Option<Self> {
        let mut nodes = Vec::new();
        for entry in std::fs::read_dir("/sys/devices/system/node").ok()? {
            let name = entry.ok()?.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("node"))
                .and_then(|n| n.parse::<usize>().ok())
            else {
                continue;
            };
            let path = format!("/sys/devices/system/node/node{id}/cpulist");
            let Ok(raw) = std::fs::read_to_string(path) else {
                continue;
            };
            let cpus = parse_cpulist(raw.trim())?;
            if !cpus.is_empty() {
                nodes.push(TopologyNode { id, cpus });
            }
        }
        if nodes.is_empty() {
            return None;
        }
        nodes.sort_by_key(|n| n.id);
        Some(Self { nodes })
    }
}

/// Parses the kernel's cpulist format — comma-separated single CPUs and
/// inclusive ranges, e.g. `"0-3,8-11"` or `"0"`. `None` on malformed
/// input (the probe then falls back rather than trusting a partial
/// parse).
fn parse_cpulist(s: &str) -> Option<Vec<usize>> {
    let mut cpus = Vec::new();
    for part in s.split(',').filter(|p| !p.is_empty()) {
        match part.split_once('-') {
            Some((lo, hi)) => {
                let (lo, hi): (usize, usize) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
                if lo > hi {
                    return None;
                }
                cpus.extend(lo..=hi);
            }
            None => cpus.push(part.trim().parse().ok()?),
        }
    }
    Some(cpus)
}

/// The machine's topology, probed from sysfs on first use and cached for
/// the process lifetime. Falls back to a single node holding
/// `available_parallelism` CPUs when sysfs is unavailable — so callers
/// can rely on at least one node with at least one CPU, but should treat
/// the layout as a scheduling *hint* (cpusets/containers may mask CPUs
/// the probe reports).
pub fn topology() -> &'static Topology {
    static TOPOLOGY: OnceLock<Topology> = OnceLock::new();
    TOPOLOGY.get_or_init(|| Topology::from_sysfs().unwrap_or_else(Topology::single_node))
}

/// Outcome of one scan round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Threads that scanned (including the reclaimer itself).
    pub threads_scanned: usize,
}

/// A mechanism for making every registered thread scan its private roots.
///
/// # Safety
///
/// Implementations must guarantee that when [`Platform::scan_all`] returns:
///
/// 1. every thread registered with this platform at the start of the call
///    has scanned **all** of its private root locations — its stack and
///    register state as of some point during the call, plus every heap
///    block in its [`ThreadRoots`] — against `session`, and
/// 2. each such thread has called [`ScanSession::ack`] *after* finishing
///    its scan.
///
/// Violating this allows the collector to free memory that a thread still
/// references (the protocol's Lemma 1 depends on it).
pub unsafe trait Platform: Send + Sync + 'static {
    /// Per-thread registration guard. Dropping it unregisters the thread.
    type ThreadToken;

    /// Registers the calling thread for future scan rounds. `roots` carries
    /// the thread's extra scan roots (§4.3 heap blocks); the platform adds
    /// the stack and registers itself.
    fn register_current(&self, roots: Arc<ThreadRoots>) -> Self::ThreadToken;

    /// Runs one scan round on behalf of the calling (reclaimer) thread:
    /// every registered thread — including the caller — scans and acks.
    /// Returns how many threads participated.
    ///
    /// `reclaimer` is the caller's application/collector boundary snapshot
    /// (see [`SelfScanContext`]): platforms that scan real stacks must
    /// scan the caller's stack from `reclaimer.floor` upward plus
    /// `reclaimer.regs()`, **not** the caller's live stack at scan time —
    /// the collect machinery's dead frames below the floor contain copies
    /// of every aggregated node address and would pin everything.
    ///
    /// The collector calls this while holding its reclaimer lock, so
    /// implementations may assume rounds do not overlap *for one
    /// collector*; rounds from different collectors sharing process-global
    /// state (e.g. a signal handler) must be serialized internally.
    fn scan_all(&self, session: &ScanSession<'_>, reclaimer: &SelfScanContext) -> ScanOutcome;
}

/// A platform with no threads to scan: only the reclaimer itself scans
/// nothing and every unmarked node is freed immediately.
///
/// Useful as a baseline ("what if scans were free and found nothing") and
/// for tests of the buffering/sweeping machinery in isolation. **Not safe
/// for real concurrent use**: it never looks at anyone's stack, so it
/// reclaims everything unconditionally.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullPlatform;

// SAFETY: trivially satisfies the contract because no thread is ever
// considered registered; there are no roots to miss. (The *collector-level*
// safety for real programs comes from not using this platform with shared
// data structures.)
unsafe impl Platform for NullPlatform {
    type ThreadToken = ();

    fn register_current(&self, _roots: Arc<ThreadRoots>) -> Self::ThreadToken {}

    fn scan_all(&self, session: &ScanSession<'_>, _reclaimer: &SelfScanContext) -> ScanOutcome {
        session.ack(); // the reclaimer "scans" (nothing) and acks
        ScanOutcome { threads_scanned: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CollectorConfig;
    use crate::master::MasterBuffer;
    use crate::retired::{noop_drop, Retired};

    #[test]
    fn cpulist_parses_kernel_formats() {
        assert_eq!(parse_cpulist("0"), Some(vec![0]));
        assert_eq!(parse_cpulist("0-3"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_cpulist("0-2,8-9,15"), Some(vec![0, 1, 2, 8, 9, 15]));
        assert_eq!(parse_cpulist(""), Some(vec![]), "offline node");
        assert_eq!(parse_cpulist("3-1"), None, "inverted range is malformed");
        assert_eq!(parse_cpulist("x"), None);
    }

    #[test]
    fn probed_topology_is_nonempty_and_cached() {
        let topo = topology();
        assert!(topo.node_count() >= 1);
        assert!(topo.total_cpus() >= 1);
        for node in &topo.nodes {
            assert!(!node.cpus.is_empty());
        }
        assert!(std::ptr::eq(topo, topology()), "one probe per process");
    }

    #[test]
    fn round_robin_interleaves_nodes_before_cpus() {
        let topo = Topology {
            nodes: vec![
                TopologyNode {
                    id: 0,
                    cpus: vec![0, 1],
                },
                TopologyNode {
                    id: 1,
                    cpus: vec![4, 5],
                },
            ],
        };
        // Alternate nodes; wrap within a node once its CPUs are used.
        assert_eq!(topo.round_robin_cpus(6), vec![0, 4, 1, 5, 0, 4]);
        // A prefix of the assignment is as balanced as possible.
        assert_eq!(topo.round_robin_cpus(3), vec![0, 4, 1]);
        assert!(topo.round_robin_cpus(0).is_empty());
    }

    #[test]
    fn single_node_fallback_covers_all_parallelism() {
        let topo = Topology::single_node();
        assert_eq!(topo.node_count(), 1);
        assert_eq!(
            topo.total_cpus(),
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        );
    }

    #[test]
    fn null_platform_acks_once_and_marks_nothing() {
        let mb = MasterBuffer::new(
            vec![unsafe { Retired::from_raw_parts(0x100, 8, noop_drop) }],
            &CollectorConfig::default(),
        );
        let session = mb.session();
        let outcome = NullPlatform.scan_all(&session, &SelfScanContext::empty());
        assert_eq!(outcome.threads_scanned, 1);
        assert_eq!(session.acks_received(), 1);
        drop(session);
        assert!(!mb.is_marked(0));
    }
}
