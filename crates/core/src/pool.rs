//! A small scoped worker pool for the reclaimer's shard sorts.
//!
//! The paper's §7 future work singles out reclaimer-side latency as the
//! cost to attack. The sharded master buffer (PR 2) made the per-phase
//! sort embarrassingly parallel — each address-range bucket sorts
//! independently — and this pool supplies the threads to exploit that:
//! a handful of persistent workers, owned by the
//! [`Collector`](crate::Collector) and handed to
//! [`MasterBuffer::build`](crate::master::MasterBuffer::build).
//!
//! Deliberately minimal (std threads, a mutex, a condvar — no external
//! dependencies): tasks are closures pushed to a shared queue; a batch
//! submitter blocks until all of its tasks report back through a channel.
//! Pool workers never register with the collector's
//! [`Platform`](crate::Platform), so they are never signaled, never
//! scanned, and never
//! interact with the reclaimer lock — a reclaimer waiting for its sort
//! batch cannot deadlock against its own collect.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Queue state shared between submitters and workers.
struct PoolState {
    queue: VecDeque<Task>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signaled when a task is queued or shutdown is requested.
    available: Condvar,
}

/// A fixed-size pool of persistent worker threads executing queued
/// closures.
///
/// Workers are spawned once, at construction, and parked on a condvar
/// between batches — a reclamation phase pays a wakeup, not a
/// `thread::spawn`, per shard. Dropping the pool signals shutdown and
/// joins every worker (queued tasks still run first).
pub struct SortPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SortPool {
    /// Spawns a pool of `workers` persistent threads (at least 1),
    /// panicking if the OS refuses. Use [`Self::try_new`] where a
    /// graceful fallback exists.
    pub fn new(workers: usize) -> Self {
        Self::try_new(workers).expect("failed to spawn sort worker")
    }

    /// Spawns a pool of `workers` persistent threads (at least 1),
    /// returning the OS error if any spawn fails (thread limits are real
    /// under heavy oversubscription — the caller can fall back to the
    /// sequential sort instead of panicking mid-reclamation). Workers
    /// spawned before the failure are shut down and joined.
    pub fn try_new(workers: usize) -> std::io::Result<Self> {
        assert!(workers >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        // Build incrementally so an error drops `pool`, whose Drop joins
        // whatever already spawned.
        let mut pool = Self {
            shared,
            workers: Vec::with_capacity(workers),
        };
        // On multi-socket machines, pin workers round-robin across NUMA
        // nodes: each shard sort streams its entries from memory, so
        // spreading sorters over the domains spreads the bandwidth too.
        // Single-node machines get unpinned workers, exactly as before —
        // pinning there can only fight the scheduler.
        let topo = crate::platform::topology();
        let cpus: Vec<Option<usize>> = if topo.node_count() > 1 {
            topo.round_robin_cpus(workers)
                .into_iter()
                .map(Some)
                .collect()
        } else {
            vec![None; workers]
        };
        for (i, cpu) in cpus.into_iter().enumerate() {
            let shared = Arc::clone(&pool.shared);
            let handle = std::thread::Builder::new()
                .name(format!("ts-sort-{i}"))
                .spawn(move || {
                    if let Some(cpu) = cpu {
                        pin_to_cpu(cpu);
                    }
                    worker_loop(&shared)
                })?;
            pool.workers.push(handle);
        }
        Ok(pool)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one fire-and-forget task.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock().unwrap();
        state.queue.push_back(Box::new(task));
        drop(state);
        self.shared.available.notify_one();
    }

    /// Runs every task on the pool and returns their results **in task
    /// order**, blocking the caller until the whole batch is done.
    ///
    /// The calling thread only waits — it executes no tasks itself — so a
    /// batch's critical path is `ceil(tasks / workers)` rounds of the
    /// slowest task. Panics if any task panicked (the worker itself
    /// survives for later batches).
    pub fn run<T: Send + 'static>(
        &self,
        tasks: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = tasks.len();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                // A send can only fail if the submitter gave up, which it
                // never does below; ignore the error to keep workers alive.
                let _ = tx.send((i, task()));
            });
        }
        drop(tx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        while let Ok((i, value)) = rx.recv() {
            out[i] = Some(value);
        }
        // recv() errors out once every sender is gone; a missing slot
        // means a task's closure panicked before sending.
        out.into_iter()
            .map(|slot| slot.expect("a pooled sort task panicked"))
            .collect()
    }
}

impl Drop for SortPool {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Best-effort affinity: binds the calling thread to `cpu`. The vendored
/// libc surface exposes only the raw variadic `syscall`, so the CPU mask
/// is built by hand and handed to `sched_setaffinity(0, ...)` directly.
/// Failure (masked CPU under a cpuset, exotic kernel) leaves the worker
/// unpinned — the pool works either way, pinning is purely a locality
/// optimization.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn pin_to_cpu(cpu: usize) {
    const SYS_SCHED_SETAFFINITY: libc::c_long = 203;
    let mut mask = [0u64; 16]; // cpu_set_t-sized: up to 1024 CPUs
    if cpu >= mask.len() * 64 {
        return;
    }
    mask[cpu / 64] = 1u64 << (cpu % 64);
    // SAFETY: sched_setaffinity reads `size_of(mask)` bytes from a valid,
    // live mask and touches nothing else; 0 means the calling thread.
    unsafe {
        let _ = libc::syscall(
            SYS_SCHED_SETAFFINITY,
            0usize,
            core::mem::size_of_val(&mask),
            mask.as_ptr(),
        );
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn pin_to_cpu(_cpu: usize) {}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(task) = state.queue.pop_front() {
                    break task;
                }
                if state.shutdown {
                    return;
                }
                state = shared.available.wait(state).unwrap();
            }
        };
        // Contain a panicking task to that task: `run` detects the missing
        // result; the worker stays available for the next batch.
        let _ = catch_unwind(AssertUnwindSafe(task));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_returns_results_in_task_order() {
        let pool = SortPool::new(3);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..17usize)
            .map(|i| {
                Box::new(move || {
                    // Stagger so completion order differs from task order.
                    std::thread::sleep(std::time::Duration::from_millis(((17 - i) % 5) as u64));
                    i * i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let results = pool.run(tasks);
        let expect: Vec<usize> = (0..17).map(|i| i * i).collect();
        assert_eq!(results, expect);
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = SortPool::new(2);
        for round in 0..5 {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4)
                .map(|i| Box::new(move || round * 10 + i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            assert_eq!(
                pool.run(tasks),
                vec![round * 10, round * 10 + 1, round * 10 + 2, round * 10 + 3]
            );
        }
    }

    #[test]
    fn empty_batch_completes_immediately() {
        let pool = SortPool::new(1);
        let none: Vec<Box<dyn FnOnce() -> usize + Send>> = Vec::new();
        assert!(pool.run(none).is_empty());
    }

    #[test]
    fn drop_joins_after_queued_tasks_finish() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = SortPool::new(2);
            for _ in 0..8 {
                let done = Arc::clone(&done);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop: shutdown only takes effect once the queue is empty
        assert_eq!(done.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panicking_task_fails_the_batch_but_not_the_pool() {
        let pool = SortPool::new(2);
        let bad: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| panic!("boom")), Box::new(|| 7)];
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(bad)));
        assert!(result.is_err(), "batch with a panicking task must fail");
        // The worker that caught the panic still serves later batches.
        let ok: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| 1), Box::new(|| 2), Box::new(|| 3)];
        assert_eq!(pool.run(ok), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = SortPool::new(0);
    }
}
