//! Telemetry hook points: how a collector publishes phase events.
//!
//! The protocol core stays dependency-free, so this module defines only
//! the *shape* of telemetry — a [`TelemetrySink`] of plain function
//! pointers — and leaves the implementation (per-thread ring buffers, a
//! metrics registry, exporters) to the `ts-telemetry` crate, which hands
//! a sink to [`CollectorConfig::with_telemetry`](crate::CollectorConfig::with_telemetry).
//!
//! Two contracts matter:
//!
//! 1. **Async-signal-safety.** [`TelemetrySink::record`] is called from
//!    the sigscan signal handler (for [`PhaseKind::ScanBegin`] /
//!    [`PhaseKind::ScanEnd`]). An implementation must not allocate,
//!    lock, or panic on that path.
//! 2. **Zero cost when off.** The sink travels as
//!    `Option<TelemetrySink>` in plain (non-atomic) fields — config,
//!    scan session. When it is `None`, the hot paths execute no extra
//!    atomic operations at all; the check is one branch on a plain load.

use core::sync::atomic::{AtomicU64, Ordering};

/// What a [`PhaseEvent`] marks within a reclamation phase.
///
/// Paired `*Begin`/`*End` kinds bracket spans; the rest are instants.
/// Discriminants are stable and public so sinks can pack a kind into a
/// ring-buffer word via [`PhaseKind::code`] and recover it with
/// [`PhaseKind::from_code`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum PhaseKind {
    /// Reclaimer entered `collect`: buffers drained, master build next.
    /// `arg` = number of retired entries aggregated this phase.
    CollectBegin = 1,
    /// Master-buffer build (shard partition + sorts) started.
    SortBegin = 2,
    /// Master-buffer build finished. `arg` = shard count.
    SortEnd = 3,
    /// Scan round opened; signals are about to be broadcast.
    /// `arg` = number of threads expected to acknowledge.
    Announce = 4,
    /// One signal was delivered to a peer thread. `arg` = target ordinal
    /// within this round's broadcast (0-based).
    SignalSent = 5,
    /// A thread (handler or self-scan) began scanning its roots.
    /// Recorded *inside the signal handler* — the sink must be
    /// async-signal-safe.
    ScanBegin = 6,
    /// A thread finished scanning, immediately before its ACK.
    /// `arg` = words scanned so far session-wide (approximate attribution).
    ScanEnd = 7,
    /// Every expected acknowledgment arrived. `arg` = acks counted.
    AllAcked = 8,
    /// Sweep started: unmarked nodes are about to be freed (or queued
    /// for distributed frees). `arg` = candidate node count.
    FreeBegin = 9,
    /// Sweep finished. `arg` = nodes actually freed by the reclaimer.
    FreeEnd = 10,
    /// Reclaimer left `collect`. `arg` = survivor count.
    CollectEnd = 11,
}

/// All kinds, in discriminant order (handy for exporters and tests).
pub const PHASE_KINDS: [PhaseKind; 11] = [
    PhaseKind::CollectBegin,
    PhaseKind::SortBegin,
    PhaseKind::SortEnd,
    PhaseKind::Announce,
    PhaseKind::SignalSent,
    PhaseKind::ScanBegin,
    PhaseKind::ScanEnd,
    PhaseKind::AllAcked,
    PhaseKind::FreeBegin,
    PhaseKind::FreeEnd,
    PhaseKind::CollectEnd,
];

impl PhaseKind {
    /// Stable wire code for ring-buffer packing. Never 0, so a zeroed
    /// ring cell cannot alias a real event.
    #[inline]
    pub const fn code(self) -> u64 {
        self as u64
    }

    /// Inverse of [`PhaseKind::code`]; `None` for unknown codes.
    pub const fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(Self::CollectBegin),
            2 => Some(Self::SortBegin),
            3 => Some(Self::SortEnd),
            4 => Some(Self::Announce),
            5 => Some(Self::SignalSent),
            6 => Some(Self::ScanBegin),
            7 => Some(Self::ScanEnd),
            8 => Some(Self::AllAcked),
            9 => Some(Self::FreeBegin),
            10 => Some(Self::FreeEnd),
            11 => Some(Self::CollectEnd),
            _ => None,
        }
    }

    /// Human/trace-facing name (`snake_case`, stable).
    pub const fn label(self) -> &'static str {
        match self {
            Self::CollectBegin => "collect",
            Self::SortBegin => "sort",
            Self::SortEnd => "sort_end",
            Self::Announce => "announce",
            Self::SignalSent => "signal_sent",
            Self::ScanBegin => "scan",
            Self::ScanEnd => "scan_end",
            Self::AllAcked => "all_acked",
            Self::FreeBegin => "free",
            Self::FreeEnd => "free_end",
            Self::CollectEnd => "collect_end",
        }
    }
}

/// One phase event, as handed to [`TelemetrySink::record`].
///
/// Deliberately timestamp-free: the sink stamps monotonic nanoseconds at
/// record time, so the core never takes a clock reading on behalf of a
/// sink that may not want one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseEvent {
    /// Which phase boundary this is.
    pub kind: PhaseKind,
    /// Which collect it belongs to. Monotonic per process (from
    /// [`next_collect_id`]); lets exporters group events from concurrent
    /// collectors and interleaved rings into per-collect span trees.
    pub collect_id: u64,
    /// Kind-specific payload; see each [`PhaseKind`] variant.
    pub arg: u64,
}

/// End-of-collect roll-up, handed to [`TelemetrySink::collect_summary`]
/// from the reclaimer (a normal thread context — summaries, unlike
/// [`PhaseEvent`]s, may take locks or allocate in the sink).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollectSummary {
    /// The collect these totals describe.
    pub collect_id: u64,
    /// Wall-clock duration of the whole collect, in nanoseconds. Covers
    /// exactly what `CollectorStats::record_collect_ns` records, so a
    /// registry histogram fed from here stays equal to the snapshot's.
    pub ns: u64,
    /// Retired entries aggregated into the master buffer.
    pub entries: usize,
    /// Nodes freed by the reclaimer (excludes distributed-free handoffs).
    pub freed: usize,
    /// Marked nodes carried over to the next phase.
    pub survivors: usize,
    /// Threads that completed a scan this phase (including the reclaimer).
    pub threads_scanned: usize,
    /// True when the adaptive policy (not a full buffer) initiated this
    /// collect.
    pub adaptive: bool,
    /// Retired-but-unfreed backlog after this collect (the adaptive
    /// policy's cheap `retired − freed` proxy).
    pub pending: usize,
    /// Whether the adaptive controller's hysteresis latch is armed
    /// (able to fire) after this collect. Always `true` under
    /// [`CollectPolicy::Fixed`](crate::CollectPolicy::Fixed).
    pub armed: bool,
}

/// Telemetry callbacks, as installed via
/// [`CollectorConfig::with_telemetry`](crate::CollectorConfig::with_telemetry).
///
/// A sink is a `Copy` bundle of plain `fn` pointers — no allocation, no
/// vtable indirection through fat pointers on the signal path, and a
/// cheap plain-field `Option` check when disabled.
#[derive(Clone, Copy)]
pub struct TelemetrySink {
    /// Records one phase event. **Must be async-signal-safe**: called
    /// from the sigscan signal handler for scan events. No allocation,
    /// no locks, no panics.
    pub record: fn(PhaseEvent),
    /// Records an end-of-collect roll-up. Called from the reclaimer
    /// thread only; may allocate or lock.
    pub collect_summary: fn(&CollectSummary),
}

impl TelemetrySink {
    /// Convenience wrapper: stamp one phase event.
    #[inline]
    pub fn event(&self, kind: PhaseKind, collect_id: u64, arg: u64) {
        (self.record)(PhaseEvent {
            kind,
            collect_id,
            arg,
        });
    }
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TelemetrySink(..)")
    }
}

/// Process-wide collect-id source. Only called when telemetry is
/// enabled, so the disabled hot path never touches this atomic. Starts
/// at 1: id 0 is reserved as "no collect" for ring cells.
pub fn next_collect_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_never_zero() {
        for k in PHASE_KINDS {
            assert_ne!(k.code(), 0, "{k:?} must not alias an empty ring cell");
            assert_eq!(PhaseKind::from_code(k.code()), Some(k));
        }
        assert_eq!(PhaseKind::from_code(0), None);
        assert_eq!(PhaseKind::from_code(255), None);
    }

    #[test]
    fn collect_ids_are_monotonic_and_nonzero() {
        let a = next_collect_id();
        let b = next_collect_id();
        assert!(a >= 1);
        assert!(b > a);
    }

    #[test]
    fn sink_is_copy_debug_and_dispatches() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static HITS: AtomicU64 = AtomicU64::new(0);
        fn rec(ev: PhaseEvent) {
            HITS.fetch_add(ev.arg, Ordering::Relaxed);
        }
        fn sum(_: &CollectSummary) {}
        let sink = TelemetrySink {
            record: rec,
            collect_summary: sum,
        };
        let copy = sink; // Copy
        copy.event(PhaseKind::Announce, 7, 5);
        assert_eq!(HITS.load(Ordering::Relaxed), 5);
        assert_eq!(format!("{sink:?}"), "TelemetrySink(..)");
    }
}
