//! Collector statistics.
//!
//! The paper's discussion (§6 Results) attributes ThreadScan's overhead to
//! stack scans and signal traffic, amortized "across threads and against
//! reclaimed nodes". These counters expose exactly those quantities so the
//! benchmark harness (and users) can verify the amortization claim.

use core::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Monotonic counters describing a collector's lifetime activity.
#[derive(Default)]
pub struct CollectorStats {
    /// Completed reclamation phases (`TS-Collect` calls that scanned).
    pub collects: AtomicUsize,
    /// Collect attempts that found an already-drained buffer and returned
    /// to work without scanning (§4.2: "it can go back to work").
    pub collects_skipped: AtomicUsize,
    /// Completed phases initiated by the adaptive controller (pending
    /// watermark or heap pressure) rather than by a full buffer. A subset
    /// of [`Self::collects`]; always zero under
    /// [`CollectPolicy::Fixed`](crate::CollectPolicy::Fixed).
    pub adaptive_collects: AtomicUsize,
    /// Nodes handed to `retire`.
    pub retired: AtomicUsize,
    /// Nodes whose destructor ran.
    pub freed: AtomicUsize,
    /// Marked nodes carried into a later phase (summed over phases).
    pub survivors: AtomicUsize,
    /// Threads that scanned, summed over phases (== signals sent + self-scans).
    pub threads_scanned: AtomicUsize,
    /// Words examined by all scans.
    pub words_scanned: AtomicUsize,
    /// Words that matched a retired node.
    pub mark_hits: AtomicUsize,
    /// Nodes freed through the distributed-free queue by non-reclaimers.
    pub distributed_frees: AtomicUsize,
    /// Nanoseconds the reclaimer spent inside collect phases, summed.
    /// With `collects`, gives the mean reclaimer latency the paper's §7
    /// "Future Work" worries about.
    pub collect_ns_total: AtomicUsize,
    /// Longest single collect phase, in nanoseconds.
    pub collect_ns_max: AtomicUsize,
    /// Nanoseconds spent partitioning and sorting the sharded master
    /// buffer, summed over phases — the component of reclaimer latency
    /// the sharded layout attacks directly. Measures the reclaimer's
    /// *critical path*: with parallel shard sorts this is the span from
    /// dispatch to the last shard's completion, not the work done.
    pub sort_ns_total: AtomicUsize,
    /// Longest single partition-and-sort, in nanoseconds (critical path).
    pub sort_ns_max: AtomicUsize,
    /// CPU nanoseconds spent inside per-shard sort-and-build work, summed
    /// over phases *and* over every thread that sorted. Compare with
    /// [`Self::sort_ns_total`]: the ratio is the sort's effective
    /// parallel speedup.
    pub sort_cpu_ns_total: AtomicUsize,
    /// Largest single master-buffer shard seen in any phase (entries).
    pub max_shard_len: AtomicUsize,
    /// Log2-bucketed histogram of per-phase collect latency:
    /// `collect_ns_hist[i]` counts phases whose reclaimer-side latency
    /// was in `[2^i, 2^(i+1))` nanoseconds (the last bucket saturates).
    /// Coarse on purpose — one relaxed increment per phase keeps it off
    /// any hot path while still supporting p50/p95/p99 estimates
    /// ([`StatsSnapshot::collect_us_percentile`]).
    pub collect_ns_hist: [AtomicUsize; HIST_BUCKETS],
    /// Per-shard entry counts of the most recent reclamation phase
    /// (not part of the `Copy` snapshot; see [`Self::last_shard_sizes`]).
    last_shard_sizes: Mutex<Vec<usize>>,
}

/// Number of log2 latency-histogram buckets (re-exported from the shared
/// histogram module — collector and workload histograms share one shape
/// so they can be merged; see [`crate::hist`]).
pub const HIST_BUCKETS: usize = crate::hist::BUCKETS;

/// A point-in-time copy of [`CollectorStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(missing_docs)] // field meanings documented on `CollectorStats`
pub struct StatsSnapshot {
    pub collects: usize,
    pub collects_skipped: usize,
    pub adaptive_collects: usize,
    pub retired: usize,
    pub freed: usize,
    pub survivors: usize,
    pub threads_scanned: usize,
    pub words_scanned: usize,
    pub mark_hits: usize,
    pub distributed_frees: usize,
    pub collect_ns_total: usize,
    pub collect_ns_max: usize,
    pub sort_ns_total: usize,
    pub sort_ns_max: usize,
    pub sort_cpu_ns_total: usize,
    pub max_shard_len: usize,
    pub collect_ns_hist: [usize; HIST_BUCKETS],
}

impl CollectorStats {
    /// Takes a relaxed snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            collects: self.collects.load(Ordering::Relaxed),
            collects_skipped: self.collects_skipped.load(Ordering::Relaxed),
            adaptive_collects: self.adaptive_collects.load(Ordering::Relaxed),
            retired: self.retired.load(Ordering::Relaxed),
            freed: self.freed.load(Ordering::Relaxed),
            survivors: self.survivors.load(Ordering::Relaxed),
            threads_scanned: self.threads_scanned.load(Ordering::Relaxed),
            words_scanned: self.words_scanned.load(Ordering::Relaxed),
            mark_hits: self.mark_hits.load(Ordering::Relaxed),
            distributed_frees: self.distributed_frees.load(Ordering::Relaxed),
            collect_ns_total: self.collect_ns_total.load(Ordering::Relaxed),
            collect_ns_max: self.collect_ns_max.load(Ordering::Relaxed),
            sort_ns_total: self.sort_ns_total.load(Ordering::Relaxed),
            sort_ns_max: self.sort_ns_max.load(Ordering::Relaxed),
            sort_cpu_ns_total: self.sort_cpu_ns_total.load(Ordering::Relaxed),
            max_shard_len: self.max_shard_len.load(Ordering::Relaxed),
            collect_ns_hist: core::array::from_fn(|i| {
                self.collect_ns_hist[i].load(Ordering::Relaxed)
            }),
        }
    }

    /// Records one phase's reclaimer-side latency into the histogram.
    pub(crate) fn record_collect_ns(&self, ns: usize) {
        self.collect_ns_hist[crate::hist::bucket(ns as u64)].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-shard entry counts of the most recent reclamation phase (empty
    /// before the first phase).
    pub fn last_shard_sizes(&self) -> Vec<usize> {
        self.last_shard_sizes.lock().clone()
    }

    /// Records the shard layout of a completed phase.
    pub(crate) fn record_shard_sizes(&self, sizes: Vec<usize>) {
        if let Some(&largest) = sizes.iter().max() {
            self.raise(&self.max_shard_len, largest);
        }
        *self.last_shard_sizes.lock() = sizes;
    }

    #[inline]
    pub(crate) fn add(&self, field: &AtomicUsize, n: usize) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises `field` to at least `n` (for maxima; racy-but-monotonic).
    #[inline]
    pub(crate) fn raise(&self, field: &AtomicUsize, n: usize) {
        let mut cur = field.load(Ordering::Relaxed);
        while cur < n {
            match field.compare_exchange_weak(cur, n, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
}

impl StatsSnapshot {
    /// Nodes still tracked: retired but not yet freed. This *includes*
    /// nodes sitting in the distributed-free queue (proven reclaimable
    /// but whose destructor has not run) — `freed` only counts completed
    /// destructors, so `retired - freed` counts the queue as
    /// outstanding, exactly like
    /// [`Collector::pending_estimate`](crate::Collector::pending_estimate)
    /// does.
    pub fn outstanding(&self) -> usize {
        self.retired.saturating_sub(self.freed)
    }

    /// Average words scanned per completed collect (the per-phase scan cost
    /// the paper identifies as the main overhead).
    pub fn words_per_collect(&self) -> f64 {
        if self.collects == 0 {
            0.0
        } else {
            self.words_scanned as f64 / self.collects as f64
        }
    }

    /// Mean reclaimer-side collect latency in microseconds (§7's
    /// responsiveness concern).
    pub fn mean_collect_us(&self) -> f64 {
        if self.collects == 0 {
            0.0
        } else {
            self.collect_ns_total as f64 / self.collects as f64 / 1e3
        }
    }

    /// Worst-case collect latency in microseconds.
    pub fn max_collect_us(&self) -> f64 {
        self.collect_ns_max as f64 / 1e3
    }

    /// Mean per-phase partition-and-sort time in microseconds — the share
    /// of [`Self::mean_collect_us`] the sharded master buffer targets.
    /// Critical-path time: see [`CollectorStats::sort_ns_total`].
    pub fn mean_sort_us(&self) -> f64 {
        if self.collects == 0 {
            0.0
        } else {
            self.sort_ns_total as f64 / self.collects as f64 / 1e3
        }
    }

    /// Mean per-phase sort *CPU* time in microseconds, summed across
    /// sorting threads. `mean_sort_cpu_us / mean_sort_us` is the
    /// effective speedup the parallel shard sorts achieved.
    pub fn mean_sort_cpu_us(&self) -> f64 {
        if self.collects == 0 {
            0.0
        } else {
            self.sort_cpu_ns_total as f64 / self.collects as f64 / 1e3
        }
    }

    /// Approximate collect-latency percentile in microseconds, from the
    /// log2 histogram: the smallest bucket upper bound below which at
    /// least `q` (in `0.0..=1.0`) of all phases completed. Zero when no
    /// phase has run. Coarse by design — buckets are powers of two, so
    /// the value is an upper bound within a factor of two.
    pub fn collect_us_percentile(&self, q: f64) -> f64 {
        self.collect_hist().percentile_ns(q) / 1e3
    }

    /// The collect-latency histogram as a shared mergeable
    /// [`Hist`](crate::hist::Hist) — fold several repeats' snapshots
    /// together with [`Hist::merge`](crate::hist::Hist::merge) (or
    /// [`Hist::add_counts`](crate::hist::Hist::add_counts)) before
    /// computing percentiles.
    pub fn collect_hist(&self) -> crate::hist::Hist {
        let mut h = crate::hist::Hist::new();
        h.add_counts(&self.collect_ns_hist);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let stats = CollectorStats::default();
        stats.add(&stats.retired, 10);
        stats.add(&stats.freed, 4);
        stats.add(&stats.collects, 2);
        stats.add(&stats.words_scanned, 1000);
        let snap = stats.snapshot();
        assert_eq!(snap.retired, 10);
        assert_eq!(snap.freed, 4);
        assert_eq!(snap.outstanding(), 6);
        assert_eq!(snap.words_per_collect(), 500.0);
    }

    #[test]
    fn words_per_collect_handles_zero_collects() {
        assert_eq!(StatsSnapshot::default().words_per_collect(), 0.0);
        assert_eq!(StatsSnapshot::default().mean_collect_us(), 0.0);
    }

    #[test]
    fn raise_is_monotonic_max() {
        let stats = CollectorStats::default();
        stats.raise(&stats.collect_ns_max, 500);
        stats.raise(&stats.collect_ns_max, 200); // lower: no effect
        stats.raise(&stats.collect_ns_max, 900);
        assert_eq!(stats.snapshot().collect_ns_max, 900);
    }

    #[test]
    fn collect_latency_snapshot_and_means() {
        let stats = CollectorStats::default();
        stats.add(&stats.collects, 4);
        stats.add(&stats.collect_ns_total, 8_000);
        stats.raise(&stats.collect_ns_max, 3_000);
        let snap = stats.snapshot();
        assert_eq!(snap.mean_collect_us(), 2.0);
        assert_eq!(snap.max_collect_us(), 3.0);
    }

    #[test]
    fn shard_sizes_record_last_phase_and_running_max() {
        let stats = CollectorStats::default();
        assert!(stats.last_shard_sizes().is_empty());
        stats.record_shard_sizes(vec![3, 9, 4]);
        stats.record_shard_sizes(vec![5, 5]);
        assert_eq!(stats.last_shard_sizes(), vec![5, 5]);
        assert_eq!(stats.snapshot().max_shard_len, 9);
    }

    #[test]
    fn mean_sort_us_amortizes_over_collects() {
        let stats = CollectorStats::default();
        stats.add(&stats.collects, 2);
        stats.add(&stats.sort_ns_total, 6_000);
        assert_eq!(stats.snapshot().mean_sort_us(), 3.0);
        assert_eq!(StatsSnapshot::default().mean_sort_us(), 0.0);
    }

    #[test]
    fn sort_cpu_mean_amortizes_like_sort_mean() {
        let stats = CollectorStats::default();
        stats.add(&stats.collects, 2);
        stats.add(&stats.sort_ns_total, 4_000);
        stats.add(&stats.sort_cpu_ns_total, 12_000);
        let snap = stats.snapshot();
        assert_eq!(snap.mean_sort_us(), 2.0);
        assert_eq!(snap.mean_sort_cpu_us(), 6.0);
    }

    #[test]
    fn latency_histogram_buckets_by_log2() {
        let stats = CollectorStats::default();
        stats.record_collect_ns(0); // clamps to bucket 0
        stats.record_collect_ns(1);
        stats.record_collect_ns(1023); // [512, 1024) -> bucket 9
        stats.record_collect_ns(1024); // bucket 10
        stats.record_collect_ns(usize::MAX); // saturates into the last bucket
        let snap = stats.snapshot();
        assert_eq!(snap.collect_ns_hist[0], 2);
        assert_eq!(snap.collect_ns_hist[9], 1);
        assert_eq!(snap.collect_ns_hist[10], 1);
        assert_eq!(snap.collect_ns_hist[HIST_BUCKETS - 1], 1);
        assert_eq!(snap.collect_ns_hist.iter().sum::<usize>(), 5);
    }

    #[test]
    fn percentile_of_saturated_last_bucket_is_its_bound() {
        // Regression (satellite of the explorer PR): with only the
        // saturation bucket populated, q=1.0 must return the last
        // bucket's upper bound — 2^HIST_BUCKETS ns in µs — and keep
        // doing so if HIST_BUCKETS ever changes. The old fallback
        // expressed this as `2^len`, which equals the last bucket's
        // bound only by coincidence of the current bound formula.
        let stats = CollectorStats::default();
        stats.record_collect_ns(usize::MAX); // saturates into bucket 31
        let snap = stats.snapshot();
        let expect = 2f64.powi(HIST_BUCKETS as i32) / 1e3;
        assert_eq!(snap.collect_us_percentile(1.0), expect);
        assert_eq!(snap.collect_us_percentile(0.5), expect);
    }

    #[test]
    fn percentiles_walk_the_histogram() {
        let stats = CollectorStats::default();
        // 90 fast phases (~1 µs), 10 slow ones (~1 ms).
        for _ in 0..90 {
            stats.record_collect_ns(1_000); // bucket 9, upper bound 1024 ns
        }
        for _ in 0..10 {
            stats.record_collect_ns(1_000_000); // bucket 19
        }
        let snap = stats.snapshot();
        let p50 = snap.collect_us_percentile(0.50);
        let p95 = snap.collect_us_percentile(0.95);
        let p99 = snap.collect_us_percentile(0.99);
        assert_eq!(p50, 1.024, "p50 lands in the fast bucket");
        assert_eq!(p95, 1048.576, "p95 lands in the slow bucket");
        assert!(p50 <= p95 && p95 <= p99, "percentiles are monotone");
        assert_eq!(StatsSnapshot::default().collect_us_percentile(0.99), 0.0);
    }

    #[test]
    fn outstanding_saturates() {
        let snap = StatsSnapshot {
            retired: 3,
            freed: 5,
            ..Default::default()
        };
        assert_eq!(snap.outstanding(), 0);
    }
}
