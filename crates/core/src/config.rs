//! Collector configuration.
//!
//! Defaults follow the paper's experimental setup (§6): 1024 pointers per
//! thread, with the hash-table experiments in Figure 4 tuned to 4096.

use std::sync::Arc;

use crate::telemetry::TelemetrySink;

/// When the collector initiates reclamation phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CollectPolicy {
    /// The paper's trigger, bit for bit: a thread collects exactly when
    /// its own delete buffer fills. No other signal is consulted, so the
    /// trigger points — and the resulting `collects` count — are
    /// identical to the pre-policy collector.
    #[default]
    Fixed,
    /// Fixed's full-buffer trigger **plus** a pending-garbage controller:
    /// a retire also initiates a collect when the process-wide count of
    /// retired-but-unfreed nodes crosses
    /// [`CollectorConfig::pending_high_watermark`], or when the external
    /// pressure source (typically the node pools' bytes-resident gauge)
    /// crosses [`CollectorConfig::pressure_high_watermark`]. Hysteresis:
    /// after firing, the controller re-arms only once pending drops below
    /// half the watermark, so oversubscribed runs — where survivors keep
    /// pending permanently high — cannot collect-storm.
    Adaptive,
}

/// An externally supplied heap-pressure gauge for the adaptive policy —
/// bytes of allocator memory currently resident, polled (relaxed, cheap)
/// on the retire path. Typically wraps
/// `ts_alloc::pool_bytes_resident`; injected as a closure so the
/// collector stays allocator-agnostic.
#[derive(Clone)]
pub struct PressureSource(Arc<dyn Fn() -> usize + Send + Sync>);

impl PressureSource {
    /// Wraps a bytes-resident gauge.
    pub fn new(f: impl Fn() -> usize + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }

    /// Reads the gauge.
    #[inline]
    pub fn bytes(&self) -> usize {
        (self.0)()
    }
}

impl std::fmt::Debug for PressureSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PressureSource(..)")
    }
}

/// How a scanned word is matched against the sorted delete buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchMode {
    /// Mark node `i` when a scanned word `w` satisfies
    /// `addr[i] <= w < addr[i] + size[i]`.
    ///
    /// This subsumes exact matching and additionally catches *interior*
    /// pointers (`&node.next`, skip-tower levels, …), which Rust code holds
    /// routinely. Strictly more conservative than the paper: it never frees
    /// anything the paper's exact match would retain.
    Range,
    /// Mark node `i` only when `w & !low_bit_mask == addr[i]`, the paper's
    /// §4.2 behaviour ("masks off the low-order bits"). Exposed for the
    /// matching-mode ablation; unsafe to combine with data structures that
    /// hold interior pointers.
    Exact,
}

/// Tuning knobs for a [`crate::Collector`].
#[derive(Clone, Debug)]
pub struct CollectorConfig {
    /// Capacity of each per-thread delete buffer, in retired nodes,
    /// rounded **up** to the next power of two at buffer creation (the
    /// SPSC ring's index arithmetic requires it; see
    /// [`LocalBuffer::new`](crate::buffer::LocalBuffer::new)). Paper
    /// default: 1024 ("configured to store up to 1024 pointers per
    /// thread"); Figure 4's tuned hash-table line uses 4096.
    pub buffer_capacity: usize,
    /// Word-matching strategy for the conservative scan.
    pub match_mode: MatchMode,
    /// Low-order bits ignored during exact matching, to tolerate tag bits
    /// such as Harris-list deletion marks. The paper masks low-order bits;
    /// 0b111 tolerates any tagging in the low three bits of 8-byte-aligned
    /// nodes. Must be a contiguous low-bit mask (`2^k - 1`): exact
    /// matching pre-masks the sorted buffer keys, and only a contiguous
    /// mask preserves their order (checked in debug builds when a master
    /// buffer is built in Exact mode).
    pub low_bit_mask: usize,
    /// §7 future-work extension: when `true`, the reclaimer does not free
    /// unmarked nodes itself. Instead they are published to a shared free
    /// queue, and every thread drains a bounded batch of that queue at its
    /// next interaction with the collector (its next `retire` call), sharing
    /// the reclamation overhead.
    pub distribute_frees: bool,
    /// Batch size for the distributed-free drain.
    pub distributed_free_batch: usize,
    /// Maximum number of registered per-thread heap blocks (§4.3 extension).
    pub max_heap_blocks: usize,
    /// Number of address-range shards the master buffer is partitioned
    /// into per reclamation phase. Shards sort independently, so reclaimer
    /// latency stops growing with one global sort, and scans binary-search
    /// one shard after a fence lookup. `1` reproduces the paper's single
    /// sorted delete buffer exactly; the default scales with available
    /// parallelism. Small phases use fewer shards automatically.
    pub shards: usize,
    /// Number of threads the reclaimer uses to sort the master buffer's
    /// address-range shards. `1` reproduces the sequential sort exactly
    /// and never creates (or touches) the worker pool, so forced collects
    /// from signal-free contexts stay deadlock-safe by construction. With
    /// more than one, the collector lazily spawns a persistent
    /// [`SortPool`](crate::pool::SortPool) of this many workers on the
    /// first reclamation phase that can profitably use it — one
    /// targeting more than one shard with at least a few thousand
    /// entries (smaller phases sort inline: cross-thread dispatch would
    /// cost more than the sort). Defaults to
    /// `min(shards, available_parallelism)` — more sorters than shards
    /// (or than cores) cannot shorten the critical path.
    pub sort_threads: usize,
    /// When collects are initiated (see [`CollectPolicy`]). Default:
    /// [`CollectPolicy::Fixed`], the paper's full-buffer trigger.
    pub collect_policy: CollectPolicy,
    /// Adaptive only: pending retired-node count (the cheap
    /// `retired − freed` proxy for
    /// [`pending_estimate`](crate::Collector::pending_estimate)) above
    /// which a retire initiates a collect even though every local buffer
    /// is still below capacity. `0` (default) auto-sizes to half the
    /// aggregate buffer capacity of the currently registered threads —
    /// i.e. collect when the backlog reaches what the Fixed policy would
    /// accumulate across half the fleet.
    pub pending_high_watermark: usize,
    /// Adaptive only: allocator bytes-resident level (read from
    /// [`Self::pressure_source`]) above which a retire initiates a
    /// collect. `0` (default) disables the heap-pressure trigger.
    pub pressure_high_watermark: usize,
    /// Adaptive only: the bytes-resident gauge backing the heap-pressure
    /// trigger; `None` (default) disables it.
    pub pressure_source: Option<PressureSource>,
    /// Phase-event sink (see [`crate::telemetry`]). `None` (default)
    /// means telemetry is off and the collect/scan hot paths execute no
    /// additional atomic operations — the check is a branch on a plain
    /// field.
    pub telemetry: Option<TelemetrySink>,
}

/// Default shard count: the number of hardware threads, rounded up to a
/// power of two and capped — the reclaimer aggregates one delete buffer
/// per thread, so this keeps per-shard sort work roughly one buffer's
/// worth at full load. On multi-socket machines the count is scaled by
/// the NUMA node count (from [`crate::platform::topology`]): sorts are
/// memory-bound, so finer shards give each node's pinned sorters
/// node-sized chunks. Single-node machines — the common case — get
/// exactly the old value.
fn default_shards() -> usize {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let nodes = crate::platform::topology().node_count().max(1);
    (threads * nodes).next_power_of_two().min(64)
}

/// Default sort-thread count: one sorter per shard, but never more than
/// the hardware can run concurrently (extra sorters would only queue).
fn default_sort_threads(shards: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(shards)
        .max(1)
}

impl Default for CollectorConfig {
    fn default() -> Self {
        let shards = default_shards();
        Self {
            buffer_capacity: 1024,
            match_mode: MatchMode::Range,
            low_bit_mask: 0b111,
            distribute_frees: false,
            distributed_free_batch: 64,
            max_heap_blocks: 16,
            shards,
            sort_threads: default_sort_threads(shards),
            collect_policy: CollectPolicy::default(),
            pending_high_watermark: 0,
            pressure_high_watermark: 0,
            pressure_source: None,
            telemetry: None,
        }
    }
}

impl CollectorConfig {
    /// The paper's stock configuration (Figure 3).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The tuned configuration used for the hash table in Figure 4
    /// ("increasing the length of the per-thread delete buffer length to
    /// 4096").
    pub fn paper_oversubscribed_hash() -> Self {
        Self {
            buffer_capacity: 4096,
            ..Self::default()
        }
    }

    /// Builder-style override of the buffer capacity. Non-power-of-two
    /// values are rounded up when each buffer is created.
    pub fn with_buffer_capacity(mut self, cap: usize) -> Self {
        assert!(cap >= 2, "buffer capacity must be at least 2");
        self.buffer_capacity = cap;
        self
    }

    /// Builder-style override of the match mode.
    pub fn with_match_mode(mut self, mode: MatchMode) -> Self {
        self.match_mode = mode;
        self
    }

    /// Builder-style enabling of the distributed-free extension.
    pub fn with_distributed_frees(mut self, on: bool) -> Self {
        self.distribute_frees = on;
        self
    }

    /// Builder-style override of the master-buffer shard count.
    /// `1` restores the original single-sorted-array behavior.
    ///
    /// Also clamps `sort_threads` down to the new shard count (more
    /// sorters than shards can only idle); call
    /// [`Self::with_sort_threads`] *after* this to set an explicit
    /// sort-thread count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(
            (1..=4096).contains(&shards),
            "shard count must be in 1..=4096"
        );
        self.shards = shards;
        self.sort_threads = self.sort_threads.min(shards);
        self
    }

    /// Builder-style override of the reclaimer's sort-thread count.
    /// `1` restores the sequential (pool-free) sort exactly.
    pub fn with_sort_threads(mut self, sort_threads: usize) -> Self {
        assert!(
            (1..=256).contains(&sort_threads),
            "sort_threads must be in 1..=256"
        );
        self.sort_threads = sort_threads;
        self
    }

    /// Builder-style override of the collect policy.
    pub fn with_collect_policy(mut self, policy: CollectPolicy) -> Self {
        self.collect_policy = policy;
        self
    }

    /// Builder-style override of the adaptive pending watermark
    /// (`0` = auto-size from the registered buffers).
    pub fn with_pending_high_watermark(mut self, watermark: usize) -> Self {
        self.pending_high_watermark = watermark;
        self
    }

    /// Builder-style heap-pressure trigger: initiate a collect when
    /// `source` reports at least `bytes_high_watermark` resident bytes.
    /// Only consulted under [`CollectPolicy::Adaptive`].
    pub fn with_pressure_source(
        mut self,
        source: PressureSource,
        bytes_high_watermark: usize,
    ) -> Self {
        assert!(
            bytes_high_watermark > 0,
            "pressure watermark must be positive"
        );
        self.pressure_source = Some(source);
        self.pressure_high_watermark = bytes_high_watermark;
        self
    }

    /// Builder-style telemetry hookup: phase events and collect
    /// summaries flow into `sink` (typically `ts_telemetry::sink()`).
    /// See [`crate::telemetry`] for the sink's safety contract.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = Some(sink);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = CollectorConfig::default();
        assert_eq!(cfg.buffer_capacity, 1024);
        assert_eq!(cfg.match_mode, MatchMode::Range);
        assert!(!cfg.distribute_frees);
        assert_eq!(
            cfg.collect_policy,
            CollectPolicy::Fixed,
            "the paper's fixed full-buffer trigger must stay the default"
        );
        assert_eq!(cfg.pending_high_watermark, 0);
        assert_eq!(cfg.pressure_high_watermark, 0);
        assert!(cfg.pressure_source.is_none());
        assert!(cfg.telemetry.is_none(), "telemetry must be opt-in");
        assert!(cfg.shards >= 1, "default shards derive from parallelism");
        assert!(cfg.shards <= 64);
        assert!(cfg.sort_threads >= 1, "sort_threads defaults to >= 1");
        assert!(
            cfg.sort_threads <= cfg.shards,
            "more sorters than shards cannot help"
        );
    }

    #[test]
    fn sort_threads_builder_round_trips() {
        assert_eq!(
            CollectorConfig::default().with_sort_threads(1).sort_threads,
            1
        );
        assert_eq!(
            CollectorConfig::default().with_sort_threads(8).sort_threads,
            8
        );
    }

    #[test]
    #[should_panic(expected = "1..=256")]
    fn zero_sort_threads_rejected() {
        let _ = CollectorConfig::default().with_sort_threads(0);
    }

    #[test]
    fn shard_builder_round_trips() {
        assert_eq!(CollectorConfig::default().with_shards(1).shards, 1);
        assert_eq!(CollectorConfig::default().with_shards(8).shards, 8);
    }

    #[test]
    fn with_shards_clamps_sort_threads_down() {
        // The sort_threads <= shards invariant must survive a shards
        // override, not just the all-default construction.
        let cfg = CollectorConfig::default()
            .with_sort_threads(16)
            .with_shards(2);
        assert_eq!(cfg.sort_threads, 2);
        // An explicit request *after* with_shards wins.
        let cfg = CollectorConfig::default()
            .with_shards(2)
            .with_sort_threads(8);
        assert_eq!(cfg.sort_threads, 8);
    }

    #[test]
    #[should_panic(expected = "1..=4096")]
    fn zero_shards_rejected() {
        let _ = CollectorConfig::default().with_shards(0);
    }

    #[test]
    fn oversubscribed_hash_preset_uses_4096() {
        assert_eq!(
            CollectorConfig::paper_oversubscribed_hash().buffer_capacity,
            4096
        );
    }

    #[test]
    fn builder_overrides_compose() {
        let cfg = CollectorConfig::default()
            .with_buffer_capacity(256)
            .with_match_mode(MatchMode::Exact)
            .with_distributed_frees(true);
        assert_eq!(cfg.buffer_capacity, 256);
        assert_eq!(cfg.match_mode, MatchMode::Exact);
        assert!(cfg.distribute_frees);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_buffer_rejected() {
        let _ = CollectorConfig::default().with_buffer_capacity(1);
    }

    #[test]
    fn policy_builders_compose_and_stay_clonable() {
        let gauge = PressureSource::new(|| 4096);
        let cfg = CollectorConfig::default()
            .with_collect_policy(CollectPolicy::Adaptive)
            .with_pending_high_watermark(512)
            .with_pressure_source(gauge, 1 << 20);
        assert_eq!(cfg.collect_policy, CollectPolicy::Adaptive);
        assert_eq!(cfg.pending_high_watermark, 512);
        assert_eq!(cfg.pressure_high_watermark, 1 << 20);
        // Config must remain Clone + Debug with a live gauge attached.
        let copy = cfg.clone();
        assert_eq!(copy.pressure_source.as_ref().unwrap().bytes(), 4096);
        assert!(format!("{copy:?}").contains("PressureSource"));
    }

    #[test]
    fn telemetry_builder_installs_sink_and_stays_clonable() {
        fn rec(_: crate::telemetry::PhaseEvent) {}
        fn sum(_: &crate::telemetry::CollectSummary) {}
        let cfg = CollectorConfig::default().with_telemetry(TelemetrySink {
            record: rec,
            collect_summary: sum,
        });
        assert!(cfg.telemetry.is_some());
        let copy = cfg.clone();
        assert!(format!("{copy:?}").contains("TelemetrySink"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pressure_watermark_rejected() {
        let _ = CollectorConfig::default().with_pressure_source(PressureSource::new(|| 0), 0);
    }
}
