//! Error types for the collector public API.

use core::fmt;

/// Errors from the §4.3 heap-block extension API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapBlockError {
    /// `len == 0` blocks cannot hold references.
    EmptyBlock,
    /// The block starting at this address is already registered.
    AlreadyRegistered,
    /// The block was never registered (or already removed).
    NotRegistered,
    /// All heap-block slots (the contained capacity) are in use; raise
    /// `CollectorConfig::max_heap_blocks`.
    TooManyBlocks(usize),
}

impl fmt::Display for HeapBlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyBlock => write!(f, "heap block must have non-zero length"),
            Self::AlreadyRegistered => write!(f, "heap block already registered"),
            Self::NotRegistered => write!(f, "heap block was not registered"),
            Self::TooManyBlocks(cap) => {
                write!(
                    f,
                    "all {cap} heap-block slots in use (see CollectorConfig::max_heap_blocks)"
                )
            }
        }
    }
}

impl std::error::Error for HeapBlockError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(HeapBlockError::TooManyBlocks(16).to_string().contains("16"));
        assert!(!HeapBlockError::EmptyBlock.to_string().is_empty());
        assert!(!HeapBlockError::AlreadyRegistered.to_string().is_empty());
        assert!(!HeapBlockError::NotRegistered.to_string().is_empty());
    }
}
