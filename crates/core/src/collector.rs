//! The collector: retire buffering, the reclaimer lock, and `TS-Collect`.
//!
//! Mirrors §4 of the paper:
//!
//! * each registered thread owns a circular delete buffer
//!   ([`crate::buffer::LocalBuffer`]);
//! * the thread that fills its buffer becomes the **reclaimer**, serialized
//!   by a lock ("we ensure that there is always at most a single active
//!   reclaimer in the system via a lock");
//! * the reclaimer aggregates every thread's buffer into a master buffer
//!   (partitioned by address into [`CollectorConfig::shards`] independently
//!   sorted shards, all under the reclaimer lock), has every thread scan
//!   (via the [`Platform`]), then frees unmarked nodes and carries marked
//!   survivors into the next phase;
//! * a thread that blocked on the reclaimer lock re-checks its buffer and
//!   "will probably discover that its buffer has been drained ... and that
//!   it can go back to work".

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::buffer::LocalBuffer;
use crate::config::{CollectPolicy, CollectorConfig};
use crate::errors::HeapBlockError;
use crate::master::MasterBuffer;
use crate::platform::Platform;
use crate::pool::SortPool;
use crate::retired::{DropFn, Retired};
use crate::roots::ThreadRoots;
use crate::selfscan::{capture_context, SelfScanContext};
use crate::stats::{CollectorStats, StatsSnapshot};

/// State protected by the reclaimer lock.
struct ReclaimState {
    /// Marked nodes from the previous phase, re-examined next phase.
    survivors: Vec<Retired>,
}

/// A ThreadScan collector.
///
/// Create one per logical region of shared data (typically one per data
/// structure or one per process), register every thread that accesses the
/// data, and hand unlinked nodes to [`ThreadHandle::retire`].
pub struct Collector<P: Platform> {
    platform: Arc<P>,
    config: CollectorConfig,
    reclaim: Mutex<ReclaimState>,
    /// All live per-thread buffers (drained by the reclaimer under the
    /// reclaimer lock, which serializes readers).
    buffers: Mutex<Vec<Arc<LocalBuffer>>>,
    /// Records left behind by unregistered threads; folded into the next
    /// phase.
    orphans: Mutex<Vec<Retired>>,
    /// §7 distributed-free extension: reclaimable nodes awaiting a free by
    /// whichever thread next interacts with the collector.
    free_queue: Mutex<VecDeque<Retired>>,
    /// Persistent workers for the reclaimer's parallel shard sorts,
    /// spawned lazily by the first phase that can actually use them —
    /// one targeting more than one shard. Never populated when
    /// `config.sort_threads <= 1`, or while every phase stays
    /// single-bucket: the sequential path must not touch (or create)
    /// the pool, so single-threaded collectors keep exactly the old
    /// behaviour with zero extra threads. The inner `Option` is `None`
    /// when worker spawn failed: the collector then falls back to the
    /// sequential sort permanently rather than panicking
    /// mid-reclamation (or retrying a hopeless spawn every phase).
    sort_pool: OnceLock<Option<SortPool>>,
    /// Registered thread count (mirror of `buffers.len()`), readable
    /// without the registry lock: sizes the adaptive policy's automatic
    /// pending watermark on the retire fast path.
    thread_count: AtomicUsize,
    /// Adaptive-policy hysteresis latch: `true` while the controller may
    /// fire. Cleared when an adaptive collect fires; set again only once
    /// pending falls below half the watermark, so a workload whose
    /// pending level hovers at the watermark (e.g. pinned survivors that
    /// no phase can free) cannot collect-storm.
    adaptive_armed: AtomicBool,
    stats: CollectorStats,
}

impl<P: Platform> Collector<P> {
    /// Creates a collector with the paper-default configuration.
    pub fn new(platform: P) -> Arc<Self> {
        Self::with_config(platform, CollectorConfig::default())
    }

    /// Creates a collector with an explicit configuration.
    pub fn with_config(platform: P, config: CollectorConfig) -> Arc<Self> {
        Arc::new(Self {
            platform: Arc::new(platform),
            config,
            reclaim: Mutex::new(ReclaimState {
                survivors: Vec::new(),
            }),
            buffers: Mutex::new(Vec::new()),
            orphans: Mutex::new(Vec::new()),
            free_queue: Mutex::new(VecDeque::new()),
            sort_pool: OnceLock::new(),
            thread_count: AtomicUsize::new(0),
            adaptive_armed: AtomicBool::new(true),
            stats: CollectorStats::default(),
        })
    }

    /// The worker pool for parallel shard sorts, or `None` when a phase
    /// of `phase_len` entries cannot profitably use one — sequential
    /// configuration, too few entries to form more than one shard or to
    /// amortize cross-thread dispatch
    /// ([`MIN_PARALLEL_SORT_LEN`](crate::master::MIN_PARALLEL_SORT_LEN)),
    /// or worker spawn failed (sequential fallback). Spawns the workers
    /// on the first phase that actually wants them (under the reclaimer
    /// lock, so exactly once).
    fn sort_pool(&self, phase_len: usize) -> Option<&SortPool> {
        if self.config.sort_threads <= 1
            || phase_len < crate::master::MIN_PARALLEL_SORT_LEN
            || crate::master::shard_target(phase_len, &self.config) <= 1
        {
            return None;
        }
        self.sort_pool
            .get_or_init(|| SortPool::try_new(self.config.sort_threads).ok())
            .as_ref()
    }

    /// Registers the calling thread. All threads that read or mutate the
    /// protected data structure must hold a handle while doing so.
    pub fn register(self: &Arc<Self>) -> ThreadHandle<P> {
        let buffer = Arc::new(LocalBuffer::new(self.config.buffer_capacity));
        let roots = Arc::new(ThreadRoots::new(self.config.max_heap_blocks));
        self.buffers.lock().push(Arc::clone(&buffer));
        self.thread_count.fetch_add(1, Ordering::Relaxed);
        let token = self.platform.register_current(Arc::clone(&roots));
        ThreadHandle {
            collector: Arc::clone(self),
            buffer,
            roots,
            token: Some(token),
            _not_send: PhantomData,
        }
    }

    /// The collector's configuration.
    pub fn config(&self) -> &CollectorConfig {
        &self.config
    }

    /// The underlying platform.
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// A snapshot of lifetime statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Per-shard entry counts of the most recent reclamation phase
    /// (empty before the first phase).
    pub fn last_shard_sizes(&self) -> Vec<usize> {
        self.stats.last_shard_sizes()
    }

    /// Nodes currently awaiting a later phase (marked survivors), orphaned
    /// records, records still sitting in live per-thread delete buffers,
    /// and queued distributed frees — everything retired but not yet
    /// freed. A record occupies exactly one of those four places at any
    /// time: a collect *moves* buffered records into the master buffer
    /// and from there into either the survivor list or the free queue
    /// (never copying), and unregistration moves a buffer's records to
    /// the orphan list under the same reclaimer lock. The sum therefore
    /// counts every pending node exactly once — pinned by
    /// `pending_estimate_counts_each_source_exactly_once`. Diagnostic;
    /// racy by nature (retires and drains race the four lock
    /// acquisitions, so the value may be momentarily stale, but never
    /// double-counts).
    pub fn pending_estimate(&self) -> usize {
        self.reclaim.lock().survivors.len()
            + self.orphans.lock().len()
            + self.free_queue.lock().len()
            + self.buffers.lock().iter().map(|b| b.len()).sum::<usize>()
    }

    /// Forces a full reclamation phase now, regardless of buffer fullness,
    /// and drains the distributed-free queue. Useful at quiescent points
    /// and in tests.
    pub fn collect_now(&self) {
        // Boundary snapshot: the caller's frames (above this call) are
        // application memory; everything below is collector machinery.
        let ctx = capture_context();
        let mut state = self.reclaim.lock();
        self.collect_locked(&mut state, &ctx, false);
        drop(state);
        // Forced path: block for the queue instead of `try_lock`, so a
        // caller of `flush()` never returns with proven-reclaimable nodes
        // still queued just because another thread's drain was in flight.
        let batch: Vec<Retired> = self.free_queue.lock().drain(..).collect();
        self.reclaim_free_batch(batch);
    }

    /// Triggered collect: called when `trigger`'s owner found it full.
    /// `ctx` was captured at the retire boundary.
    fn collect_for(&self, trigger: &LocalBuffer, ctx: &SelfScanContext) {
        let mut state = self.reclaim.lock();
        if !trigger.is_full() {
            // Another reclaimer drained us while we waited for the lock —
            // back to work (paper §4.2, "Reclamation").
            self.stats.add(&self.stats.collects_skipped, 1);
            return;
        }
        self.collect_locked(&mut state, ctx, false);
    }

    /// The adaptive policy's pending watermark: the configured value, or —
    /// when configured `0` — half the aggregate buffer capacity of the
    /// currently registered threads (i.e. collect once the backlog
    /// reaches what the Fixed policy would accumulate across half the
    /// fleet).
    fn adaptive_pending_watermark(&self) -> usize {
        match self.config.pending_high_watermark {
            0 => {
                let threads = self.thread_count.load(Ordering::Relaxed).max(1);
                (self.config.buffer_capacity * threads / 2).max(1)
            }
            hw => hw,
        }
    }

    /// Cheap retire-path proxy for [`Self::pending_estimate`]: two
    /// relaxed loads instead of four lock acquisitions. Counts the same
    /// population — retired but not yet destructed, wherever the record
    /// currently sits (buffered, surviving, orphaned, or queued).
    fn outstanding_proxy(&self) -> usize {
        self.stats
            .retired
            .load(Ordering::Relaxed)
            .saturating_sub(self.stats.freed.load(Ordering::Relaxed))
    }

    /// Whether either adaptive signal is at or above its watermark.
    fn adaptive_over_watermark(&self) -> bool {
        if self.outstanding_proxy() >= self.adaptive_pending_watermark() {
            return true;
        }
        match (
            &self.config.pressure_source,
            self.config.pressure_high_watermark,
        ) {
            (Some(src), hw) if hw > 0 => src.bytes() >= hw,
            _ => false,
        }
    }

    /// Whether every adaptive signal has fallen below half its watermark
    /// — the hysteresis re-arm threshold.
    fn adaptive_below_rearm(&self) -> bool {
        if self.outstanding_proxy() >= self.adaptive_pending_watermark() / 2 {
            return false;
        }
        match (
            &self.config.pressure_source,
            self.config.pressure_high_watermark,
        ) {
            (Some(src), hw) if hw > 0 => src.bytes() < hw / 2,
            _ => true,
        }
    }

    /// Retire-path check for [`CollectPolicy::Adaptive`]: `true` at most
    /// once per excursion above a watermark. Relaxed atomics only; the
    /// Fixed policy never reaches this.
    fn adaptive_should_collect(&self) -> bool {
        if self.adaptive_over_watermark() {
            // `swap` makes exactly one of the racing retirers the
            // initiator; everyone else keeps working.
            self.adaptive_armed.swap(false, Ordering::Relaxed)
        } else {
            if !self.adaptive_armed.load(Ordering::Relaxed) && self.adaptive_below_rearm() {
                self.adaptive_armed.store(true, Ordering::Relaxed);
            }
            false
        }
    }

    /// Adaptive-policy collect: like [`Self::collect_for`], but the
    /// under-lock re-check is the watermark predicate rather than buffer
    /// fullness — if a reclaimer ran while we waited for the lock it has
    /// already relieved the pressure, so go back to work (the §4.2 move,
    /// applied to the controller).
    fn collect_adaptive(&self, ctx: &SelfScanContext) {
        let mut state = self.reclaim.lock();
        if !self.adaptive_over_watermark() {
            self.stats.add(&self.stats.collects_skipped, 1);
            return;
        }
        self.stats.add(&self.stats.adaptive_collects, 1);
        self.collect_locked(&mut state, ctx, true);
    }

    /// One reclamation phase. Caller holds the reclaimer lock.
    /// `adaptive` is true when the adaptive controller (not a full
    /// buffer or a forced flush) initiated this phase — telemetry only.
    fn collect_locked(&self, state: &mut ReclaimState, ctx: &SelfScanContext, adaptive: bool) {
        use crate::telemetry::PhaseKind;

        let mut entries = std::mem::take(&mut state.survivors);
        entries.append(&mut self.orphans.lock());
        let buffers: Vec<Arc<LocalBuffer>> = self.buffers.lock().clone();
        for buf in &buffers {
            // SAFETY: the reclaimer lock makes this thread the single
            // reader of every registered buffer.
            unsafe { buf.drain_into(&mut entries) };
        }
        if entries.is_empty() {
            return;
        }
        let phase_start = std::time::Instant::now();
        // Telemetry off (`None`) costs exactly this one plain-field
        // branch; ids and clock reads happen only when a sink is set.
        let telemetry = self
            .config
            .telemetry
            .map(|sink| (sink, crate::telemetry::next_collect_id()));
        let entry_count = entries.len();
        if let Some((sink, id)) = telemetry {
            sink.event(PhaseKind::CollectBegin, id, entry_count as u64);
            sink.event(PhaseKind::SortBegin, id, 0);
        }

        let pool = self.sort_pool(entries.len());
        let master = MasterBuffer::build(entries, &self.config, pool);
        self.stats.add(&self.stats.sort_ns_total, master.sort_ns());
        self.stats.raise(&self.stats.sort_ns_max, master.sort_ns());
        self.stats
            .add(&self.stats.sort_cpu_ns_total, master.sort_cpu_ns());
        self.stats.record_shard_sizes(master.shard_sizes());
        if let Some((sink, id)) = telemetry {
            sink.event(PhaseKind::SortEnd, id, master.shard_sizes().len() as u64);
        }
        let mut session = master.session();
        session.set_telemetry(telemetry);
        let session = session;
        #[cfg(not(ts_mutate_ordering))]
        let outcome = self.platform.scan_all(&session, ctx);
        // Mutation check (`RUSTFLAGS="--cfg ts_mutate_ordering"`, CI's
        // explorer job): sever the scan→free ordering edge — the phase
        // frees without waiting for any thread to scan and mark, exactly
        // what a too-weak ordering on the scan handshake would permit.
        // The exhaustive Lemma 1 scenarios must catch this; if they stop
        // doing so, the explorer has lost its teeth.
        #[cfg(ts_mutate_ordering)]
        let outcome = {
            let _ = ctx;
            crate::platform::ScanOutcome { threads_scanned: 0 }
        };

        self.stats.add(&self.stats.collects, 1);
        self.stats
            .add(&self.stats.threads_scanned, outcome.threads_scanned);
        self.stats
            .add(&self.stats.words_scanned, session.words_scanned());
        self.stats.add(&self.stats.mark_hits, session.hits());
        drop(session);

        let (reclaimable, survivors) = master.partition();
        let survivor_count = survivors.len();
        self.stats.add(&self.stats.survivors, survivor_count);
        state.survivors = survivors;

        if let Some((sink, id)) = telemetry {
            sink.event(PhaseKind::FreeBegin, id, reclaimable.len() as u64);
        }
        let freed = if self.config.distribute_frees {
            self.free_queue.lock().extend(reclaimable);
            0
        } else {
            let n = reclaimable.len();
            for r in reclaimable {
                // SAFETY: the scan protocol established that no registered
                // thread holds a reference (Lemma 1).
                unsafe { r.reclaim() };
            }
            self.stats.add(&self.stats.freed, n);
            n
        };
        if let Some((sink, id)) = telemetry {
            sink.event(PhaseKind::FreeEnd, id, freed as u64);
        }

        // Reclaimer-side latency (sort + broadcast + ack wait + sweep):
        // the §7 responsiveness number, measured where the paper's future
        // work proposes to attack it.
        let ns = crate::master::elapsed_ns(phase_start);
        self.stats.add(&self.stats.collect_ns_total, ns);
        self.stats.raise(&self.stats.collect_ns_max, ns);
        self.stats.record_collect_ns(ns);
        if let Some((sink, id)) = telemetry {
            sink.event(PhaseKind::CollectEnd, id, survivor_count as u64);
            (sink.collect_summary)(&crate::telemetry::CollectSummary {
                collect_id: id,
                ns: ns as u64,
                entries: entry_count,
                freed,
                survivors: survivor_count,
                threads_scanned: outcome.threads_scanned,
                adaptive,
                pending: self.outstanding_proxy(),
                armed: self.adaptive_armed.load(Ordering::Relaxed),
            });
        }
    }

    /// Frees up to `max` queued nodes from the distributed-free queue.
    /// Returns how many were freed.
    ///
    /// Best-effort: `try_lock` keeps the `retire` fast path
    /// contention-free, so under contention this may free nothing. The
    /// forced path ([`Self::collect_now`] / `ThreadHandle::flush`) takes a
    /// blocking lock instead and always drains.
    pub fn drain_free_queue(&self, max: usize) -> usize {
        let batch: Vec<Retired> = match self.free_queue.try_lock() {
            Some(mut q) => {
                let n = q.len().min(max);
                q.drain(..n).collect()
            }
            None => return 0,
        };
        self.reclaim_free_batch(batch)
    }

    /// Reclaims a batch popped off the free queue, updating the counters.
    fn reclaim_free_batch(&self, batch: Vec<Retired>) -> usize {
        let n = batch.len();
        for r in batch {
            // SAFETY: nodes only enter the queue after a completed scan
            // phase proved them unreferenced.
            unsafe { r.reclaim() };
        }
        if n > 0 {
            self.stats.add(&self.stats.freed, n);
            self.stats.add(&self.stats.distributed_frees, n);
        }
        n
    }

    fn unregister_buffer(&self, buffer: &Arc<LocalBuffer>) {
        // Serialize with any in-flight collect so that draining our buffer
        // into `orphans` has a single reader.
        let _state = self.reclaim.lock();
        let mut orphans = self.orphans.lock();
        // SAFETY: holding the reclaimer lock makes us the sole reader.
        unsafe { buffer.drain_into(&mut orphans) };
        drop(orphans);
        self.buffers.lock().retain(|b| !Arc::ptr_eq(b, buffer));
        self.thread_count.fetch_sub(1, Ordering::Relaxed);
    }
}

impl<P: Platform> Drop for Collector<P> {
    fn drop(&mut self) {
        // No handles can exist (they hold an Arc to us), so no thread can
        // still reference any retired node: reclaim everything outstanding.
        let state = self.reclaim.get_mut();
        let mut leftovers = std::mem::take(&mut state.survivors);
        leftovers.append(self.orphans.get_mut());
        for buf in self.buffers.get_mut().drain(..) {
            debug_assert!(
                buf.is_empty(),
                "live buffer at collector drop: a ThreadHandle outlived its Collector Arc?"
            );
            // SAFETY: exclusive access via &mut self.
            unsafe { buf.drain_into(&mut leftovers) };
        }
        leftovers.extend(self.free_queue.get_mut().drain(..));
        let n = leftovers.len();
        for r in leftovers {
            // SAFETY: see above — no handle, hence no referencing thread.
            unsafe { r.reclaim() };
        }
        self.stats.add(&self.stats.freed, n);
    }
}

/// Per-thread access to a [`Collector`]. Not `Send`: it is bound to the
/// thread that called [`Collector::register`] (its stack is what gets
/// scanned on this thread's behalf).
pub struct ThreadHandle<P: Platform> {
    collector: Arc<Collector<P>>,
    buffer: Arc<LocalBuffer>,
    roots: Arc<ThreadRoots>,
    token: Option<P::ThreadToken>,
    _not_send: PhantomData<*mut ()>,
}

impl<P: Platform> ThreadHandle<P> {
    /// Retires a node previously allocated as `Box<T>` and since unlinked
    /// from all shared references. The collector will drop the box once no
    /// registered thread's private memory can reach it.
    ///
    /// This is the entire integration surface of ThreadScan: "the
    /// programmer just needs to pass nodes to its interface".
    ///
    /// # Safety
    ///
    /// * `ptr` came from `Box::<T>::into_raw` and is retired at most once.
    /// * The node is unreachable from shared memory (Assumption 1.1).
    /// * Threads that may still hold private references are registered with
    ///   this collector and do not hide pointers (Assumption 1.3).
    pub unsafe fn retire<T>(&self, ptr: *mut T) {
        self.retire_record(Retired::of_box(ptr));
    }

    /// Retires an allocation described by raw parts; see
    /// [`Retired::from_raw_parts`].
    ///
    /// # Safety
    ///
    /// Same as [`Self::retire`], with `drop_fn(addr as *mut u8)` sound to
    /// call exactly once.
    pub unsafe fn retire_raw(&self, addr: usize, size: usize, drop_fn: DropFn) {
        self.retire_record(Retired::from_raw_parts(addr, size, drop_fn));
    }

    fn retire_record(&self, record: Retired) {
        self.collector.stats.add(&self.collector.stats.retired, 1);
        if self.collector.config.distribute_frees {
            self.collector
                .drain_free_queue(self.collector.config.distributed_free_batch);
        }
        let mut record = record;
        loop {
            // SAFETY: this handle's thread is the buffer's only producer.
            match unsafe { self.buffer.push(record) } {
                Ok(()) => {
                    if self.buffer.is_full() {
                        // We inserted the last node: we become the
                        // reclaimer. Snapshot the application boundary
                        // before entering the machinery.
                        let ctx = capture_context();
                        self.collector.collect_for(&self.buffer, &ctx);
                    } else if self.collector.config.collect_policy == CollectPolicy::Adaptive
                        && self.collector.adaptive_should_collect()
                    {
                        // Pending garbage (or allocator pressure) crossed
                        // the watermark while every buffer is still below
                        // capacity: collect early rather than letting the
                        // backlog grow to the fixed trigger.
                        let ctx = capture_context();
                        self.collector.collect_adaptive(&ctx);
                    }
                    return;
                }
                Err(rejected) => {
                    record = rejected;
                    let ctx = capture_context();
                    self.collector.collect_for(&self.buffer, &ctx);
                }
            }
        }
    }

    /// Registers a heap block holding private references
    /// (`TS_add_heap_block`, §4.3). The block is scanned as part of this
    /// thread's roots until removed.
    ///
    /// The block must stay allocated until [`Self::remove_heap_block`] or
    /// until this handle is dropped.
    pub fn add_heap_block(&self, start: *const u8, len: usize) -> Result<(), HeapBlockError> {
        self.roots.add_heap_block(start, len)
    }

    /// Unregisters a heap block (`TS_remove_heap_block`, §4.3).
    pub fn remove_heap_block(&self, start: *const u8) -> Result<(), HeapBlockError> {
        self.roots.remove_heap_block(start)
    }

    /// The collector this handle belongs to.
    pub fn collector(&self) -> &Arc<Collector<P>> {
        &self.collector
    }

    /// Number of nodes currently waiting in this thread's delete buffer.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Forces a reclamation phase (including this thread's buffered nodes).
    pub fn flush(&self) {
        self.collector.collect_now();
    }
}

impl<P: Platform> Drop for ThreadHandle<P> {
    fn drop(&mut self) {
        self.collector.unregister_buffer(&self.buffer);
        // Unregister from the platform only after the buffer is out of the
        // registry; the reclaimer lock acquired above has been released, but
        // any *new* collect will simply no longer signal us — and we no
        // longer contribute roots, which is sound because this thread can
        // only lose references by returning from the code that held them.
        drop(self.token.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{NullPlatform, ScanOutcome};
    use crate::session::ScanSession;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Counts drops so tests can observe reclamation.
    struct Node {
        counter: Arc<AtomicUsize>,
        _pad: [u8; 24],
    }
    impl Drop for Node {
        fn drop(&mut self) {
            self.counter.fetch_add(1, Ordering::SeqCst);
        }
    }
    fn node(counter: &Arc<AtomicUsize>) -> *mut Node {
        Box::into_raw(Box::new(Node {
            counter: Arc::clone(counter),
            _pad: [0; 24],
        }))
    }

    /// A platform whose "threads" report a configurable set of rooted
    /// words: lets tests pin specific nodes as still-referenced.
    #[derive(Default)]
    struct PinPlatform {
        rooted: Mutex<Vec<usize>>,
        rounds: AtomicUsize,
    }
    // SAFETY (test double): the only "registered thread" root set is
    // `rooted`, which scan_all scans in full before acking.
    unsafe impl Platform for PinPlatform {
        type ThreadToken = ();
        fn register_current(&self, _roots: Arc<ThreadRoots>) -> Self::ThreadToken {}
        fn scan_all(&self, session: &ScanSession<'_>, _ctx: &SelfScanContext) -> ScanOutcome {
            self.rounds.fetch_add(1, Ordering::SeqCst);
            session.scan_words(&self.rooted.lock());
            session.ack();
            ScanOutcome { threads_scanned: 1 }
        }
    }

    #[test]
    fn buffer_fill_triggers_collect_and_frees_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default().with_buffer_capacity(8),
        );
        let handle = collector.register();
        for _ in 0..8 {
            unsafe { handle.retire(node(&counter)) };
        }
        // Inserting the 8th node made this thread the reclaimer.
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        let snap = collector.stats();
        assert_eq!(snap.collects, 1);
        assert_eq!(snap.retired, 8);
        assert_eq!(snap.freed, 8);
        drop(handle);
    }

    #[test]
    fn pinned_nodes_survive_and_are_freed_once_unpinned() {
        let counter = Arc::new(AtomicUsize::new(0));
        let platform = PinPlatform::default();
        let pinned = node(&counter);
        platform.rooted.lock().push(pinned as usize);
        let collector =
            Collector::with_config(platform, CollectorConfig::default().with_buffer_capacity(4));
        let handle = collector.register();

        unsafe { handle.retire(pinned) };
        for _ in 0..3 {
            unsafe { handle.retire(node(&counter)) };
        }
        // First phase: 3 freed, the pinned one survives.
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        assert_eq!(collector.pending_estimate(), 1);

        // Drop the "reference" and force another phase.
        collector.platform().rooted.lock().clear();
        collector.collect_now();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert_eq!(collector.pending_estimate(), 0);
        drop(handle);
    }

    #[test]
    fn interior_pointer_pins_node_in_range_mode() {
        let counter = Arc::new(AtomicUsize::new(0));
        let platform = PinPlatform::default();
        let pinned = node(&counter);
        // Point 8 bytes into the allocation.
        platform.rooted.lock().push(pinned as usize + 8);
        let collector =
            Collector::with_config(platform, CollectorConfig::default().with_buffer_capacity(2));
        let handle = collector.register();
        unsafe { handle.retire(pinned) };
        unsafe { handle.retire(node(&counter)) };
        assert_eq!(counter.load(Ordering::SeqCst), 1, "interior ref must pin");
        drop(handle);
        drop(collector);
        assert_eq!(
            counter.load(Ordering::SeqCst),
            2,
            "collector drop reclaims survivors"
        );
    }

    #[test]
    fn collect_now_on_empty_collector_is_a_noop() {
        let collector = Collector::new(NullPlatform);
        collector.collect_now();
        assert_eq!(collector.stats().collects, 0);
    }

    #[test]
    fn handle_drop_orphans_are_reclaimed_by_next_collect() {
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default().with_buffer_capacity(64),
        );
        let handle = collector.register();
        for _ in 0..5 {
            unsafe { handle.retire(node(&counter)) };
        }
        drop(handle); // 5 records become orphans
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        collector.collect_now();
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn distributed_frees_are_performed_by_retiring_threads() {
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                .with_buffer_capacity(4)
                .with_distributed_frees(true),
        );
        let handle = collector.register();
        for _ in 0..4 {
            unsafe { handle.retire(node(&counter)) };
        }
        // The collect published 4 nodes to the queue instead of freeing.
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        assert_eq!(collector.pending_estimate(), 4);
        // The next retire drains a batch.
        unsafe { handle.retire(node(&counter)) };
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        let snap = collector.stats();
        assert_eq!(snap.distributed_frees, 4);
        drop(handle);
        drop(collector);
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn pending_estimate_counts_live_thread_buffers() {
        // Regression: records sitting in a live per-thread buffer used to
        // be invisible to the estimate, so "everything not yet freed" read
        // as zero right after a retire.
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default().with_buffer_capacity(64),
        );
        let handle = collector.register();
        for _ in 0..3 {
            unsafe { handle.retire(node(&counter)) };
        }
        assert_eq!(counter.load(Ordering::SeqCst), 0, "buffer not full yet");
        assert_eq!(
            collector.pending_estimate(),
            3,
            "buffered records are pending"
        );
        handle.flush();
        assert_eq!(collector.pending_estimate(), 0);
        drop(handle);
    }

    #[test]
    fn forced_flush_drains_free_queue_despite_contention() {
        // Regression: `collect_now` used to drain the distributed-free
        // queue with `try_lock`, so a forced flush racing any other drain
        // returned with proven-reclaimable nodes still queued.
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                .with_buffer_capacity(4)
                .with_distributed_frees(true),
        );
        let handle = collector.register();
        for _ in 0..4 {
            unsafe { handle.retire(node(&counter)) };
        }
        assert_eq!(counter.load(Ordering::SeqCst), 0, "queued, not yet freed");

        // Hold the free-queue lock while another thread runs the forced
        // path; with `try_lock` it would bail and leave the queue full.
        let guard = collector.free_queue.lock();
        let flusher = {
            let collector = Arc::clone(&collector);
            std::thread::spawn(move || collector.collect_now())
        };
        std::thread::sleep(std::time::Duration::from_millis(200));
        drop(guard);
        flusher.join().unwrap();

        assert_eq!(
            counter.load(Ordering::SeqCst),
            4,
            "forced flush must block for the queue and free everything"
        );
        assert_eq!(collector.pending_estimate(), 0);
        drop(handle);
    }

    #[test]
    fn outstanding_counts_queued_distributed_frees_like_pending_estimate() {
        // Pins `StatsSnapshot::outstanding` semantics: nodes in the
        // distributed-free queue are proven reclaimable but not yet
        // freed, so both the snapshot arithmetic and `pending_estimate`
        // must count them as outstanding.
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                .with_buffer_capacity(4)
                .with_distributed_frees(true),
        );
        let handle = collector.register();
        for _ in 0..4 {
            unsafe { handle.retire(node(&counter)) };
        }
        // A phase ran; all 4 nodes sit in the free queue, destructors
        // not yet executed.
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        assert_eq!(collector.free_queue.lock().len(), 4);
        assert_eq!(collector.stats().outstanding(), 4);
        assert_eq!(collector.pending_estimate(), 4);
        collector.collect_now(); // forced path drains the queue
        assert_eq!(collector.stats().outstanding(), 0);
        assert_eq!(collector.pending_estimate(), 0);
        drop(handle);
    }

    #[test]
    fn parallel_shard_sorts_reclaim_everything() {
        // End-to-end through the collector: multi-shard phases sorted on
        // the lazily spawned pool must free exactly what the sequential
        // path frees.
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                // Phases must clear MIN_PARALLEL_SORT_LEN or the
                // collector (correctly) sorts them inline.
                .with_buffer_capacity(crate::master::MIN_PARALLEL_SORT_LEN)
                .with_shards(8)
                .with_sort_threads(4),
        );
        assert!(collector.sort_pool.get().is_none(), "pool spawns lazily");
        let handle = collector.register();
        let total = 2 * crate::master::MIN_PARALLEL_SORT_LEN;
        for _ in 0..total {
            unsafe { handle.retire(node(&counter)) };
        }
        assert_eq!(counter.load(Ordering::SeqCst), total);
        assert!(
            collector.sort_pool.get().and_then(Option::as_ref).is_some(),
            "phases used the pool"
        );
        let snap = collector.stats();
        assert_eq!(snap.freed, total);
        assert!(snap.sort_cpu_ns_total > 0, "pooled work must be counted");
        assert!(snap.sort_ns_total > 0);
        drop(handle);
    }

    #[test]
    fn sequential_config_never_creates_the_pool() {
        // `sort_threads = 1` must not touch the pool at all — that is
        // what keeps `collect_now` safe from any signal-free context.
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                .with_buffer_capacity(64)
                .with_shards(8)
                .with_sort_threads(1),
        );
        let handle = collector.register();
        for _ in 0..256 {
            unsafe { handle.retire(node(&counter)) };
        }
        collector.collect_now();
        assert_eq!(counter.load(Ordering::SeqCst), 256);
        assert!(collector.sort_pool.get().is_none(), "no pool, ever");
        drop(handle);
    }

    #[test]
    fn single_bucket_phases_never_create_the_pool() {
        // A parallel-sort configuration whose phases are all too small
        // to split into multiple shards must not spawn workers: the
        // pool would only ever sit idle.
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                .with_buffer_capacity(8) // phases far below MIN_SHARD_LEN * 2
                .with_shards(8)
                .with_sort_threads(4),
        );
        let handle = collector.register();
        for _ in 0..64 {
            unsafe { handle.retire(node(&counter)) };
        }
        collector.collect_now();
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert!(
            collector.sort_pool.get().is_none(),
            "single-bucket phases must not spawn the pool"
        );
        drop(handle);
    }

    #[test]
    fn collect_latency_histogram_covers_every_phase() {
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default().with_buffer_capacity(8),
        );
        let handle = collector.register();
        for _ in 0..32 {
            unsafe { handle.retire(node(&counter)) };
        }
        let snap = collector.stats();
        assert!(snap.collects >= 4);
        assert_eq!(
            snap.collect_ns_hist.iter().sum::<usize>(),
            snap.collects,
            "each phase lands in exactly one latency bucket"
        );
        assert!(snap.collect_us_percentile(0.5) > 0.0);
        drop(handle);
    }

    #[test]
    fn multithreaded_retire_reclaims_all_nodes() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2000;
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default().with_buffer_capacity(32),
        );
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let collector = Arc::clone(&collector);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    let handle = collector.register();
                    for _ in 0..PER_THREAD {
                        unsafe { handle.retire(node(&counter)) };
                    }
                });
            }
        });
        collector.collect_now();
        assert_eq!(counter.load(Ordering::SeqCst), THREADS * PER_THREAD);
        let snap = collector.stats();
        assert_eq!(snap.retired, THREADS * PER_THREAD);
        assert_eq!(snap.freed, THREADS * PER_THREAD);
        assert!(snap.collects >= THREADS * PER_THREAD / 32 / 2);
    }

    #[test]
    fn stats_track_scan_volume() {
        let platform = PinPlatform::default();
        platform.rooted.lock().extend([1usize, 2, 3]);
        let collector =
            Collector::with_config(platform, CollectorConfig::default().with_buffer_capacity(2));
        let handle = collector.register();
        let counter = Arc::new(AtomicUsize::new(0));
        unsafe { handle.retire(node(&counter)) };
        unsafe { handle.retire(node(&counter)) };
        let snap = collector.stats();
        assert_eq!(snap.collects, 1);
        assert_eq!(snap.threads_scanned, 1);
        assert_eq!(snap.words_scanned, 3);
        drop(handle);
    }

    #[test]
    fn adaptive_policy_collects_on_pending_watermark_below_capacity() {
        // The adaptive controller's whole point: a collect fires when the
        // pending backlog crosses the watermark even though every local
        // buffer is far below capacity (the fixed trigger would wait for
        // 64 retires here).
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                .with_buffer_capacity(64)
                .with_collect_policy(CollectPolicy::Adaptive)
                .with_pending_high_watermark(8),
        );
        let handle = collector.register();
        for _ in 0..7 {
            unsafe { handle.retire(node(&counter)) };
        }
        assert_eq!(counter.load(Ordering::SeqCst), 0, "below watermark: idle");
        assert_eq!(collector.stats().collects, 0);
        unsafe { handle.retire(node(&counter)) };
        assert_eq!(counter.load(Ordering::SeqCst), 8, "8th retire hit the mark");
        let snap = collector.stats();
        assert_eq!(snap.collects, 1);
        assert_eq!(snap.adaptive_collects, 1);
        assert!(handle.buffered() < 64, "buffer never filled");
        drop(handle);
    }

    #[test]
    fn adaptive_heap_pressure_fires_with_buffers_below_capacity() {
        // Satellite regression: the heap-pressure leg alone must initiate
        // a collect while every local buffer is below capacity and the
        // pending count is nowhere near its watermark.
        let gauge = Arc::new(AtomicUsize::new(0));
        let source = {
            let gauge = Arc::clone(&gauge);
            crate::config::PressureSource::new(move || gauge.load(Ordering::Relaxed))
        };
        let counter = Arc::new(AtomicUsize::new(0));
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default()
                .with_buffer_capacity(64)
                .with_collect_policy(CollectPolicy::Adaptive)
                .with_pending_high_watermark(1_000_000)
                .with_pressure_source(source, 1 << 20),
        );
        let handle = collector.register();
        for _ in 0..3 {
            unsafe { handle.retire(node(&counter)) };
        }
        assert_eq!(counter.load(Ordering::SeqCst), 0, "no pressure: idle");
        gauge.store(2 << 20, Ordering::Relaxed); // allocator reports 2 MiB
        unsafe { handle.retire(node(&counter)) };
        assert_eq!(
            counter.load(Ordering::SeqCst),
            4,
            "pressure alone must trigger the phase"
        );
        let snap = collector.stats();
        assert_eq!(snap.adaptive_collects, 1);
        assert!(handle.buffered() < 64, "buffer stayed below capacity");
        drop(handle);
    }

    #[test]
    fn fixed_policy_matches_legacy_trigger_points_exactly() {
        // Acceptance pin: `CollectPolicy::Fixed` must be observationally
        // identical to the pre-policy collector — same trigger points,
        // equal `collects` counts — even with adaptive knobs set, since
        // the policy gate is checked before any watermark is consulted.
        let run = |config: CollectorConfig| {
            let counter = Arc::new(AtomicUsize::new(0));
            let collector = Collector::with_config(NullPlatform, config);
            let handle = collector.register();
            let mut collect_points = Vec::new();
            for i in 1..=32usize {
                unsafe { handle.retire(node(&counter)) };
                if counter.load(Ordering::SeqCst) == i {
                    collect_points.push(i);
                }
            }
            drop(handle);
            (collect_points, collector.stats().collects)
        };
        let legacy = CollectorConfig::default().with_buffer_capacity(8);
        let fixed_with_knobs = CollectorConfig::default()
            .with_buffer_capacity(8)
            .with_pending_high_watermark(1); // ignored: policy stays Fixed
        let (legacy_points, legacy_collects) = run(legacy);
        let (fixed_points, fixed_collects) = run(fixed_with_knobs);
        assert_eq!(legacy_points, vec![8, 16, 24, 32], "full-buffer multiples");
        assert_eq!(fixed_points, legacy_points);
        assert_eq!(fixed_collects, legacy_collects);
        assert_eq!(fixed_collects, 4);
    }

    #[test]
    fn adaptive_hysteresis_fires_once_per_excursion() {
        // Survivors a phase cannot free keep the pending proxy above the
        // watermark; without the armed latch every subsequent retire
        // would initiate another phase (a collect storm).
        let counter = Arc::new(AtomicUsize::new(0));
        let platform = PinPlatform::default();
        let pinned: Vec<*mut Node> = (0..4).map(|_| node(&counter)).collect();
        platform
            .rooted
            .lock()
            .extend(pinned.iter().map(|&p| p as usize));
        let collector = Collector::with_config(
            platform,
            CollectorConfig::default()
                .with_buffer_capacity(64)
                .with_collect_policy(CollectPolicy::Adaptive)
                .with_pending_high_watermark(4),
        );
        let handle = collector.register();
        for &p in &pinned {
            unsafe { handle.retire(p) };
        }
        // The 4th retire fired; every node was marked, so all survive.
        let snap = collector.stats();
        assert_eq!(snap.adaptive_collects, 1);
        assert_eq!(snap.survivors, 4);
        assert_eq!(counter.load(Ordering::SeqCst), 0);
        // Pending stays >= the watermark, but the controller is disarmed:
        // further retires must NOT trigger more adaptive phases.
        for _ in 0..8 {
            unsafe { handle.retire(node(&counter)) };
        }
        let snap = collector.stats();
        assert_eq!(snap.adaptive_collects, 1, "disarmed: no collect storm");
        assert_eq!(snap.collects, 1);

        // Unpin, drain, and let pending fall below half the watermark:
        // the controller re-arms and a fresh excursion fires again.
        collector.platform().rooted.lock().clear();
        collector.collect_now();
        assert_eq!(counter.load(Ordering::SeqCst), 12, "everything freed");
        for _ in 0..4 {
            unsafe { handle.retire(node(&counter)) };
        }
        assert_eq!(collector.stats().adaptive_collects, 2, "re-armed and fired");
        drop(handle);
    }

    #[test]
    fn pending_estimate_counts_each_source_exactly_once() {
        // Regression pin for the estimate's no-double-counting contract:
        // survivors, the distributed-free queue, live buffers, and
        // orphans each hold a record exclusively, so the estimate equals
        // `retired - freed` at every step.
        let counter = Arc::new(AtomicUsize::new(0));
        let platform = PinPlatform::default();
        let pinned = node(&counter);
        platform.rooted.lock().push(pinned as usize);
        let collector = Collector::with_config(
            platform,
            CollectorConfig {
                // Batch 0: retires never drain the queue behind our back.
                distributed_free_batch: 0,
                ..CollectorConfig::default()
            }
            .with_buffer_capacity(4)
            .with_distributed_frees(true),
        );
        let handle = collector.register();
        unsafe { handle.retire(pinned) };
        for _ in 0..3 {
            unsafe { handle.retire(node(&counter)) };
        }
        // Phase ran: 1 survivor (pinned), 3 queued frees, empty buffer.
        assert_eq!(collector.reclaim.lock().survivors.len(), 1);
        assert_eq!(collector.free_queue.lock().len(), 3);
        assert_eq!(collector.pending_estimate(), 4);
        assert_eq!(collector.stats().outstanding(), 4);

        // Two more sit in the live buffer: 1 + 3 + 2, no double counts.
        for _ in 0..2 {
            unsafe { handle.retire(node(&counter)) };
        }
        assert_eq!(handle.buffered(), 2);
        assert_eq!(collector.pending_estimate(), 6);
        assert_eq!(collector.stats().outstanding(), 6);

        // Unregistering moves the 2 buffered records to the orphan list —
        // moved, not copied: the estimate must not change.
        drop(handle);
        assert_eq!(collector.orphans.lock().len(), 2);
        assert_eq!(collector.pending_estimate(), 6);

        // A forced phase frees everything except the pinned survivor.
        collector.collect_now();
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        assert_eq!(collector.pending_estimate(), 1);
        assert_eq!(collector.stats().outstanding(), 1);
    }
}
