//! Shared log2 latency histogram.
//!
//! One histogram shape serves every latency surface in the workspace:
//! the collector's per-phase reclaim latency ([`crate::stats`]) and the
//! workload harness's per-operation service latency both bucket
//! nanosecond durations by `floor(log2(ns))`. Keeping the bucket math,
//! merge, and percentile walk here means a histogram recorded anywhere
//! (a worker thread, a collector, a bench repeat) can be merged with any
//! other and summarized with identical semantics.
//!
//! Buckets are coarse on purpose: recording is one array increment, so
//! it is cheap enough for per-operation hot paths, and a percentile read
//! is an upper bound within a factor of two — adequate for the
//! p50/p99/p999 tail claims the harness makes, where the interesting
//! signals are order-of-magnitude excursions, not single nanoseconds.

/// Number of log2 buckets. 32 buckets span 1 ns to ~4.3 s; anything
/// slower saturates into the last bucket.
pub const BUCKETS: usize = 32;

/// Bucket index for a duration of `ns` nanoseconds: `floor(log2(ns))`,
/// with 0 ns clamped into bucket 0 and the last bucket saturating.
#[inline]
pub fn bucket(ns: u64) -> usize {
    (u64::BITS - 1 - ns.max(1).leading_zeros()).min(BUCKETS as u32 - 1) as usize
}

/// Upper bound of bucket `i`, in nanoseconds (`2^(i+1)`). Percentile
/// reads report this bound: the true value lies within a factor of two
/// below it.
#[inline]
pub fn bucket_bound_ns(i: usize) -> f64 {
    2f64.powi(i as i32 + 1)
}

/// A plain (non-atomic) log2 histogram of nanosecond durations.
///
/// Cheap to record into from a single thread; merge per-thread instances
/// after the fact with [`Hist::merge`] (or fold foreign count arrays in
/// with [`Hist::add_counts`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    counts: [u64; BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

impl Hist {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
        }
    }

    /// Records one duration.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket(ns)] += 1;
    }

    /// Folds `other`'s counts into this histogram.
    pub fn merge(&mut self, other: &Hist) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// Folds a foreign bucket-count slice (e.g. a
    /// [`StatsSnapshot::collect_ns_hist`](crate::stats::StatsSnapshot)
    /// array) into this histogram. Slices longer than [`BUCKETS`] are
    /// rejected by debug assertion; shorter ones fold into the prefix.
    pub fn add_counts(&mut self, counts: &[usize]) {
        debug_assert!(counts.len() <= BUCKETS, "foreign histogram too wide");
        for (mine, &theirs) in self.counts.iter_mut().zip(counts) {
            *mine += theirs as u64;
        }
    }

    /// Total recorded durations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The raw bucket counts (`[i]` counts durations in
    /// `[2^i, 2^(i+1))` ns; the last bucket saturates).
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Approximate percentile in nanoseconds: the smallest bucket upper
    /// bound below which at least `q` (in `0.0..=1.0`) of recorded
    /// durations fall. Zero when empty; an upper bound within a factor
    /// of two otherwise (the last bucket's bound when it saturated).
    pub fn percentile_ns(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_bound_ns(i);
            }
        }
        // Unreachable while `rank <= total`, but stated as what it is:
        // the last bucket's bound.
        bucket_bound_ns(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_is_log2_with_clamps() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(1023), 9);
        assert_eq!(bucket(1024), 10);
        assert_eq!(bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_double() {
        assert_eq!(bucket_bound_ns(0), 2.0);
        assert_eq!(bucket_bound_ns(9), 1024.0);
        assert_eq!(bucket_bound_ns(10), 2048.0);
    }

    #[test]
    fn record_and_count() {
        let mut h = Hist::new();
        assert!(h.is_empty());
        h.record(1);
        h.record(1000);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[BUCKETS - 1], 1);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        a.record(10);
        b.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.counts()[3], 2, "both 10 ns records share bucket 3");
    }

    #[test]
    fn add_counts_folds_foreign_arrays() {
        let mut h = Hist::new();
        let mut foreign = [0usize; BUCKETS];
        foreign[5] = 7;
        foreign[BUCKETS - 1] = 2;
        h.add_counts(&foreign);
        h.record(40); // bucket 5
        assert_eq!(h.counts()[5], 8);
        assert_eq!(h.counts()[BUCKETS - 1], 2);
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let mut h = Hist::new();
        for _ in 0..90 {
            h.record(1_000); // bucket 9, bound 1024
        }
        for _ in 0..10 {
            h.record(1_000_000); // bucket 19
        }
        assert_eq!(h.percentile_ns(0.50), 1024.0);
        assert_eq!(h.percentile_ns(0.95), bucket_bound_ns(19));
        let p50 = h.percentile_ns(0.50);
        let p99 = h.percentile_ns(0.99);
        let p999 = h.percentile_ns(0.999);
        assert!(p50 <= p99 && p99 <= p999, "percentiles are monotone");
    }

    #[test]
    fn empty_percentile_is_zero_and_saturated_is_last_bound() {
        assert_eq!(Hist::new().percentile_ns(0.99), 0.0);
        let mut h = Hist::new();
        h.record(u64::MAX);
        assert_eq!(h.percentile_ns(0.5), bucket_bound_ns(BUCKETS - 1));
        assert_eq!(h.percentile_ns(1.0), bucket_bound_ns(BUCKETS - 1));
    }
}
