//! Conservative matching kernels.
//!
//! These are the innermost loops of `TS-Scan` (Algorithm 1, lines 19-24):
//! for each word of a thread's private memory, decide whether it (possibly)
//! refers to a node in the sorted delete buffer. Everything here is
//! panic-free and allocation-free: it runs inside POSIX signal handlers.

/// Index of the buffer entry whose range `[addrs[i], ends[i])` contains `w`,
/// if any. `addrs` must be sorted ascending; `ends` is parallel to it.
///
/// Range matching catches interior pointers (`w` pointing *into* a node),
/// which exact matching misses; see `DESIGN.md` §4.
#[inline]
pub fn find_range(addrs: &[usize], ends: &[usize], w: usize) -> Option<usize> {
    debug_assert_eq!(addrs.len(), ends.len());
    // Greatest i with addrs[i] <= w.
    let idx = addrs.partition_point(|&a| a <= w);
    if idx == 0 {
        return None;
    }
    let i = idx - 1;
    if w < ends[i] {
        Some(i)
    } else {
        None
    }
}

/// Index of the buffer entry equal to `w` with its low-order bits masked
/// off, if any. This is the paper's §4.2 behaviour: "The scanning process
/// masks off the low-order bits of memory it reads on a stack chunk".
/// Tolerates tag bits (e.g. Harris-list deletion marks) up to `mask`.
///
/// `addrs` must hold *pre-masked* keys (`addr & !mask`), sorted ascending —
/// the master buffer masks entry addresses when it is built. Masking both
/// sides is what makes a node retired at a tagged address matchable; with
/// raw buffer addresses, a probe masked to the aligned base could never
/// equal the tagged entry and a stably held reference would be missed.
#[inline]
pub fn find_exact(addrs: &[usize], w: usize, mask: usize) -> Option<usize> {
    let target = w & !mask;
    addrs.binary_search(&target).ok()
}

/// Linear-scan oracle for [`find_range`], used by tests and kept here so the
/// property tests in several crates can share it.
pub fn find_range_linear(addrs: &[usize], ends: &[usize], w: usize) -> Option<usize> {
    addrs
        .iter()
        .zip(ends.iter())
        .position(|(&a, &e)| a <= w && w < e)
}

/// Linear-scan oracle for [`find_exact`]. Unlike the binary-search kernel,
/// this accepts raw (unmasked) entry addresses: both sides are masked here,
/// which is the semantics the master buffer implements by pre-masking.
pub fn find_exact_linear(addrs: &[usize], w: usize, mask: usize) -> Option<usize> {
    let target = w & !mask;
    addrs.iter().position(|&a| a & !mask == target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fixture() -> (Vec<usize>, Vec<usize>) {
        // Three nodes: [100,120), [200,264), [300,301).
        (vec![100, 200, 300], vec![120, 264, 301])
    }

    #[test]
    fn range_hits_base_interior_and_misses_end() {
        let (addrs, ends) = fixture();
        assert_eq!(find_range(&addrs, &ends, 100), Some(0), "base pointer");
        assert_eq!(find_range(&addrs, &ends, 119), Some(0), "interior");
        assert_eq!(find_range(&addrs, &ends, 120), None, "one-past-end");
        assert_eq!(find_range(&addrs, &ends, 199), None, "gap");
        assert_eq!(find_range(&addrs, &ends, 263), Some(1));
        assert_eq!(find_range(&addrs, &ends, 300), Some(2), "1-byte node");
        assert_eq!(find_range(&addrs, &ends, 99), None, "below first");
        assert_eq!(find_range(&addrs, &ends, usize::MAX), None);
    }

    #[test]
    fn range_on_empty_buffer_never_matches() {
        assert_eq!(find_range(&[], &[], 0), None);
        assert_eq!(find_range(&[], &[], usize::MAX), None);
    }

    #[test]
    fn exact_matches_only_masked_base() {
        let addrs = vec![0x1000, 0x2000, 0x3000];
        assert_eq!(find_exact(&addrs, 0x2000, 0b111), Some(1));
        assert_eq!(find_exact(&addrs, 0x2001, 0b111), Some(1), "tag bit");
        assert_eq!(find_exact(&addrs, 0x2007, 0b111), Some(1), "all tags");
        assert_eq!(find_exact(&addrs, 0x2008, 0b111), None, "interior word");
        assert_eq!(find_exact(&addrs, 0x1fff, 0b111), None);
    }

    proptest! {
        /// Binary-search range matching agrees with the linear oracle on
        /// arbitrary disjoint sorted node sets and probe words.
        #[test]
        fn range_matches_linear_oracle(
            // Build disjoint sorted ranges from positive gaps and sizes.
            gaps in proptest::collection::vec((1usize..1000, 1usize..512), 0..64),
            probes in proptest::collection::vec(any::<usize>(), 0..64),
        ) {
            let mut addrs = Vec::new();
            let mut ends = Vec::new();
            let mut cursor = 0usize;
            for (gap, size) in gaps {
                cursor = cursor.saturating_add(gap);
                addrs.push(cursor);
                cursor = cursor.saturating_add(size);
                ends.push(cursor);
            }
            // Probe both arbitrary words and words near the ranges.
            let mut all_probes = probes;
            for (&a, &e) in addrs.iter().zip(ends.iter()) {
                all_probes.extend_from_slice(&[a, a.wrapping_sub(1), e - 1, e]);
            }
            for w in all_probes {
                prop_assert_eq!(
                    find_range(&addrs, &ends, w),
                    find_range_linear(&addrs, &ends, w),
                    "probe {}", w
                );
            }
        }

        #[test]
        fn exact_matches_linear_oracle(
            mut addrs in proptest::collection::vec(any::<usize>().prop_map(|a| a & !0b111), 0..64),
            probes in proptest::collection::vec(any::<usize>(), 0..64),
            mask in prop_oneof![Just(0usize), Just(0b1), Just(0b111)],
        ) {
            addrs.sort_unstable();
            addrs.dedup();
            let mut all_probes = probes;
            for &a in &addrs {
                all_probes.extend_from_slice(&[a, a | 1, a | mask, a.wrapping_add(8)]);
            }
            for w in all_probes {
                prop_assert_eq!(
                    find_exact(&addrs, w, mask),
                    find_exact_linear(&addrs, w, mask),
                    "probe {}", w
                );
            }
        }
    }
}
