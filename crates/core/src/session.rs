//! The scan session: what a signal handler sees.
//!
//! A [`ScanSession`] is the read-mostly view of one reclamation phase's
//! master buffer, plus the acknowledgment counter. Everything reachable from
//! it is async-signal-safe to use: plain loads, a binary search over two
//! slices, atomic stores for marks, and one atomic increment for the ACK.
//! No allocation, no locks, no unwinding on the scan path.

use core::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use crate::config::MatchMode;
use crate::scan::{find_exact, find_range};

/// Handler-facing view of the current reclamation phase.
///
/// Borrowed from a [`crate::master::MasterBuffer`]; the collect protocol
/// guarantees that every handler finishes (acknowledges) before the buffer
/// is swept, so the borrow never dangles while a scan is in flight.
pub struct ScanSession<'a> {
    addrs: &'a [usize],
    ends: &'a [usize],
    marks: &'a [AtomicU8],
    mode: MatchMode,
    low_bit_mask: usize,
    /// Counts *up*: each participating thread increments exactly once after
    /// completing its scan. Counting up (rather than down from an expected
    /// total) means the counter needs no initialization handshake with the
    /// broadcast step.
    acks: AtomicUsize,
    words_scanned: AtomicUsize,
    hits: AtomicUsize,
}

impl<'a> ScanSession<'a> {
    pub(crate) fn new(
        addrs: &'a [usize],
        ends: &'a [usize],
        marks: &'a [AtomicU8],
        mode: MatchMode,
        low_bit_mask: usize,
    ) -> Self {
        debug_assert_eq!(addrs.len(), ends.len());
        debug_assert_eq!(addrs.len(), marks.len());
        Self {
            addrs,
            ends,
            marks,
            mode,
            low_bit_mask,
            acks: AtomicUsize::new(0),
            words_scanned: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
        }
    }

    /// Number of retired nodes being considered this phase.
    #[inline]
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when there is nothing to scan for.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Tests one word against the delete buffer, marking on a hit.
    /// Returns whether the word matched a retired node.
    #[inline]
    pub fn scan_word(&self, w: usize) -> bool {
        let idx = match self.mode {
            MatchMode::Range => find_range(self.addrs, self.ends, w),
            MatchMode::Exact => find_exact(self.addrs, w, self.low_bit_mask),
        };
        if let Some(i) = idx {
            // A plain store is enough: marking is idempotent and only ever
            // sets the flag; `fetch_or` would cost an RMW per hit.
            self.marks[i].store(1, Ordering::Release);
            self.hits.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Scans a slice of already-captured words (e.g. saved registers).
    pub fn scan_words(&self, words: &[usize]) {
        for &w in words {
            self.scan_word(w);
        }
        self.words_scanned.fetch_add(words.len(), Ordering::Relaxed);
    }

    /// Conservatively scans raw memory `[lo, hi)` word-by-word.
    ///
    /// `lo` is rounded up and `hi` down to word alignment. Reads are
    /// volatile: the scanned memory (a live stack) may be concurrently
    /// mutated, and any torn/stale value is acceptable — conservatism only
    /// requires that a *stably held* reference is seen (paper §2: "we
    /// exploit a weaker property ... a non-atomic scan of the threads'
    /// memory").
    ///
    /// # Safety
    ///
    /// Every word-aligned address in `[lo, hi)` must be readable for the
    /// duration of the call (e.g. the caller's own stack).
    pub unsafe fn scan_region(&self, lo: *const u8, hi: *const u8) {
        const WORD: usize = core::mem::size_of::<usize>();
        let mut cur = (lo as usize).wrapping_add(WORD - 1) & !(WORD - 1);
        let end = (hi as usize) & !(WORD - 1);
        let mut n = 0usize;
        while cur < end {
            // SAFETY: cur is word-aligned and inside the caller-guaranteed
            // readable range.
            let w = unsafe { core::ptr::read_volatile(cur as *const usize) };
            self.scan_word(w);
            cur += WORD;
            n += 1;
        }
        self.words_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records this thread's acknowledgment. Must be the very last session
    /// operation a scanning thread performs.
    #[inline]
    pub fn ack(&self) {
        self.acks.fetch_add(1, Ordering::Release);
    }

    /// Number of acknowledgments received so far.
    #[inline]
    pub fn acks_received(&self) -> usize {
        self.acks.load(Ordering::Acquire)
    }

    /// Total words examined across all scanning threads (statistic).
    pub fn words_scanned(&self) -> usize {
        self.words_scanned.load(Ordering::Relaxed)
    }

    /// Total matching words across all scanning threads (statistic).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::CollectorConfig;
    use crate::master::MasterBuffer;
    use crate::retired::{noop_drop, Retired};

    fn master(nodes: &[(usize, usize)]) -> MasterBuffer {
        let entries = nodes
            .iter()
            .map(|&(a, s)| unsafe { Retired::from_raw_parts(a, s, noop_drop) })
            .collect();
        MasterBuffer::new(entries, &CollectorConfig::default())
    }

    #[test]
    fn scan_words_marks_hits_and_counts() {
        let mb = master(&[(0x1000, 64), (0x2000, 64)]);
        let s = mb.session();
        s.scan_words(&[0x0, 0x1010, 0xffff, 0x2000]);
        assert_eq!(s.words_scanned(), 4);
        assert_eq!(s.hits(), 2);
        drop(s);
        assert!(mb.is_marked(0) && mb.is_marked(1));
    }

    #[test]
    fn scan_region_finds_reference_in_local_memory() {
        let mb = master(&[(0xabcd00, 64)]);
        let s = mb.session();
        // A "stack frame" holding one disguised reference among noise.
        let frame: [usize; 8] = [1, 2, 0xabcd10, 3, 4, 5, 6, 7];
        unsafe {
            s.scan_region(
                frame.as_ptr().cast(),
                frame.as_ptr().add(frame.len()).cast(),
            );
        }
        assert_eq!(s.hits(), 1);
        drop(s);
        assert!(mb.is_marked(0));
    }

    #[test]
    fn scan_region_handles_unaligned_bounds() {
        let mb = master(&[(0x5000, 8)]);
        let s = mb.session();
        let frame: [usize; 4] = [0x5000, 0x5000, 0x5000, 0x5000];
        let base = frame.as_ptr() as *const u8;
        // Start 3 bytes in: first word skipped; end 2 bytes short: last
        // word skipped. Two aligned words remain.
        unsafe { s.scan_region(base.add(3), base.add(4 * 8 - 2)) };
        assert_eq!(s.words_scanned(), 2);
    }

    #[test]
    fn empty_region_scans_nothing() {
        let mb = master(&[(0x5000, 8)]);
        let s = mb.session();
        let x = 0usize;
        let p = (&x as *const usize).cast::<u8>();
        unsafe { s.scan_region(p, p) };
        assert_eq!(s.words_scanned(), 0);
    }

    #[test]
    fn acks_accumulate() {
        let mb = master(&[(0x1000, 8)]);
        let s = mb.session();
        assert_eq!(s.acks_received(), 0);
        s.ack();
        s.ack();
        assert_eq!(s.acks_received(), 2);
    }

    #[test]
    fn concurrent_scans_mark_consistently() {
        use std::sync::Arc;
        let nodes: Vec<(usize, usize)> = (0..512).map(|i| (0x10_0000 + i * 128, 128)).collect();
        let mb = Arc::new(master(&nodes));
        let session = mb.session();
        std::thread::scope(|scope| {
            let session = &session;
            for t in 0..8 {
                scope.spawn(move || {
                    // Each thread marks a strided subset via interior words.
                    for i in (t..512).step_by(8) {
                        session.scan_word(0x10_0000 + i * 128 + 64);
                    }
                    session.ack();
                });
            }
            while session.acks_received() < 8 {
                std::hint::spin_loop();
            }
        });
        drop(session);
        for i in 0..512 {
            assert!(mb.is_marked(i), "entry {i} must be marked");
        }
    }
}
