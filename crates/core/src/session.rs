//! The scan session: what a signal handler sees.
//!
//! A [`ScanSession`] is the read-mostly view of one reclamation phase's
//! sharded master buffer, plus the acknowledgment counter. Everything
//! reachable from it is async-signal-safe to use: plain loads, a fence
//! lookup plus one binary search over two slices, atomic stores for marks,
//! and one atomic increment for the ACK. No allocation, no locks, no
//! unwinding on the scan path (the shard views are allocated once, by the
//! reclaimer, when the session is created).

use core::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use crate::config::MatchMode;
use crate::scan::{find_exact, find_range};
use crate::telemetry::TelemetrySink;

/// Read-only view of one master-buffer shard: sorted search keys, node
/// ends, and the mark bytes, all parallel.
pub(crate) struct ShardView<'a> {
    addrs: &'a [usize],
    ends: &'a [usize],
    marks: &'a [AtomicU8],
}

impl<'a> ShardView<'a> {
    pub(crate) fn new(addrs: &'a [usize], ends: &'a [usize], marks: &'a [AtomicU8]) -> Self {
        debug_assert_eq!(addrs.len(), ends.len());
        debug_assert_eq!(addrs.len(), marks.len());
        Self { addrs, ends, marks }
    }
}

/// Handler-facing view of the current reclamation phase.
///
/// Borrowed from a [`crate::master::MasterBuffer`]; the collect protocol
/// guarantees that every handler finishes (acknowledges) before the buffer
/// is swept, so the borrow never dangles while a scan is in flight.
pub struct ScanSession<'a> {
    /// Address-partitioned shards, ascending; never empty.
    shards: Box<[ShardView<'a>]>,
    /// `fences[k]` is the first search key of shard `k + 1`
    /// (`fences.len() == shards.len() - 1`).
    fences: &'a [usize],
    mode: MatchMode,
    low_bit_mask: usize,
    /// Counts *up*: each participating thread increments exactly once after
    /// completing its scan. Counting up (rather than down from an expected
    /// total) means the counter needs no initialization handshake with the
    /// broadcast step.
    acks: AtomicUsize,
    words_scanned: AtomicUsize,
    hits: AtomicUsize,
    /// `(sink, collect_id)` when the owning collector has telemetry
    /// enabled. A plain field: scanning threads (including signal
    /// handlers) read it with no atomics, and when `None` the scan path
    /// is byte-for-byte the telemetry-free one.
    telemetry: Option<(TelemetrySink, u64)>,
}

impl<'a> ScanSession<'a> {
    pub(crate) fn new(
        shards: Vec<ShardView<'a>>,
        fences: &'a [usize],
        mode: MatchMode,
        low_bit_mask: usize,
    ) -> Self {
        debug_assert!(!shards.is_empty());
        debug_assert_eq!(fences.len(), shards.len() - 1);
        Self {
            shards: shards.into_boxed_slice(),
            fences,
            mode,
            low_bit_mask,
            acks: AtomicUsize::new(0),
            words_scanned: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            telemetry: None,
        }
    }

    /// Attaches the collector's telemetry sink (and the id of the collect
    /// this session belongs to) so scanning threads can stamp
    /// scan-begin/scan-end events. Set once by the reclaimer before the
    /// session is published to the platform.
    pub(crate) fn set_telemetry(&mut self, telemetry: Option<(TelemetrySink, u64)>) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry sink and collect id, if any. Read from
    /// signal handlers: a plain (non-atomic) load, safe because the
    /// field is written before the session is shared.
    #[inline]
    pub fn telemetry(&self) -> Option<(TelemetrySink, u64)> {
        self.telemetry
    }

    /// Number of retired nodes being considered this phase.
    #[inline]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.addrs.len()).sum()
    }

    /// True when there is nothing to scan for.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Matching kernel shared by all scan entry points: fence lookup to
    /// the one shard whose address range covers the word, then a binary
    /// search there, marking on a hit. Because every shard's first key is
    /// a fence, this finds exactly what a single sorted array would. Does
    /// *not* touch `words_scanned` — every public entry point accounts
    /// for its own words exactly once (the batch paths with one batched
    /// add, to keep a shared-counter RMW per word off the scan hot path).
    #[inline]
    fn probe_word(&self, w: usize) -> bool {
        // Fences live in search-key space: masked in Exact mode, raw in
        // Range mode (where find_range keys on the raw base address).
        let key = match self.mode {
            MatchMode::Range => w,
            MatchMode::Exact => w & !self.low_bit_mask,
        };
        let shard = &self.shards[self.fences.partition_point(|&f| f <= key)];
        let idx = match self.mode {
            MatchMode::Range => find_range(shard.addrs, shard.ends, w),
            MatchMode::Exact => find_exact(shard.addrs, w, self.low_bit_mask),
        };
        if let Some(i) = idx {
            // A plain store is enough: marking is idempotent and only ever
            // sets the flag; `fetch_or` would cost an RMW per hit.
            shard.marks[i].store(1, Ordering::Release);
            self.hits.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Tests one word against the delete buffer, marking on a hit.
    /// Returns whether the word matched a retired node.
    #[inline]
    pub fn scan_word(&self, w: usize) -> bool {
        self.words_scanned.fetch_add(1, Ordering::Relaxed);
        self.probe_word(w)
    }

    /// Scans a slice of already-captured words (e.g. saved registers).
    pub fn scan_words(&self, words: &[usize]) {
        for &w in words {
            self.probe_word(w);
        }
        self.words_scanned.fetch_add(words.len(), Ordering::Relaxed);
    }

    /// Conservatively scans raw memory `[lo, hi)` word-by-word.
    ///
    /// `lo` is rounded up and `hi` down to word alignment. Reads are
    /// volatile: the scanned memory (a live stack) may be concurrently
    /// mutated, and any torn/stale value is acceptable — conservatism only
    /// requires that a *stably held* reference is seen (paper §2: "we
    /// exploit a weaker property ... a non-atomic scan of the threads'
    /// memory").
    ///
    /// # Safety
    ///
    /// Every word-aligned address in `[lo, hi)` must be readable for the
    /// duration of the call (e.g. the caller's own stack).
    pub unsafe fn scan_region(&self, lo: *const u8, hi: *const u8) {
        const WORD: usize = core::mem::size_of::<usize>();
        let mut cur = (lo as usize).wrapping_add(WORD - 1) & !(WORD - 1);
        let end = (hi as usize) & !(WORD - 1);
        let mut n = 0usize;
        while cur < end {
            // SAFETY: cur is word-aligned and inside the caller-guaranteed
            // readable range.
            let w = unsafe { core::ptr::read_volatile(cur as *const usize) };
            self.probe_word(w);
            cur += WORD;
            n += 1;
        }
        self.words_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Records this thread's acknowledgment. Must be the very last session
    /// operation a scanning thread performs.
    #[inline]
    pub fn ack(&self) {
        self.acks.fetch_add(1, Ordering::Release);
    }

    /// Number of acknowledgments received so far.
    #[inline]
    pub fn acks_received(&self) -> usize {
        self.acks.load(Ordering::Acquire)
    }

    /// Total words examined across all scanning threads (statistic).
    pub fn words_scanned(&self) -> usize {
        self.words_scanned.load(Ordering::Relaxed)
    }

    /// Total matching words across all scanning threads (statistic).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::CollectorConfig;
    use crate::master::MasterBuffer;
    use crate::retired::{noop_drop, Retired};

    fn master(nodes: &[(usize, usize)]) -> MasterBuffer {
        master_sharded(nodes, 1)
    }

    fn master_sharded(nodes: &[(usize, usize)], shards: usize) -> MasterBuffer {
        let entries = nodes
            .iter()
            .map(|&(a, s)| unsafe { Retired::from_raw_parts(a, s, noop_drop) })
            .collect();
        MasterBuffer::new(entries, &CollectorConfig::default().with_shards(shards))
    }

    #[test]
    fn scan_words_marks_hits_and_counts() {
        let mb = master(&[(0x1000, 64), (0x2000, 64)]);
        let s = mb.session();
        s.scan_words(&[0x0, 0x1010, 0xffff, 0x2000]);
        assert_eq!(s.words_scanned(), 4);
        assert_eq!(s.hits(), 2);
        drop(s);
        assert!(mb.is_marked(0) && mb.is_marked(1));
    }

    #[test]
    fn scan_word_counts_direct_calls() {
        // Regression (stats undercount): `scan_word` is public and used
        // directly by roots/heap-block scanning; it must count the word
        // itself, and the batch paths must not double-count.
        let mb = master(&[(0x1000, 64)]);
        let s = mb.session();
        assert!(s.scan_word(0x1000));
        assert!(!s.scan_word(0x9999));
        assert_eq!(s.words_scanned(), 2, "direct scan_word calls must count");
        s.scan_words(&[0x1, 0x2, 0x3]);
        assert_eq!(s.words_scanned(), 5, "batch path must count once per word");
    }

    #[test]
    fn sharded_session_routes_words_across_fences() {
        let nodes: Vec<(usize, usize)> = (0..256).map(|i| (0x10_0000 + i * 128, 64)).collect();
        let mb = master_sharded(&nodes, 8);
        assert!(mb.shard_count() > 1, "must exercise the fence lookup");
        let s = mb.session();
        for (i, &(a, _)) in nodes.iter().enumerate() {
            // Interior words and misses, spread over every shard.
            assert!(s.scan_word(a + 32), "node {i}");
            assert!(!s.scan_word(a + 100), "gap after node {i}");
        }
        drop(s);
        for i in 0..nodes.len() {
            assert!(mb.is_marked(i), "entry {i} must be marked");
        }
    }

    #[test]
    fn scan_region_finds_reference_in_local_memory() {
        let mb = master(&[(0xabcd00, 64)]);
        let s = mb.session();
        // A "stack frame" holding one disguised reference among noise.
        let frame: [usize; 8] = [1, 2, 0xabcd10, 3, 4, 5, 6, 7];
        unsafe {
            s.scan_region(
                frame.as_ptr().cast(),
                frame.as_ptr().add(frame.len()).cast(),
            );
        }
        assert_eq!(s.hits(), 1);
        drop(s);
        assert!(mb.is_marked(0));
    }

    #[test]
    fn scan_region_handles_unaligned_bounds() {
        let mb = master(&[(0x5000, 8)]);
        let s = mb.session();
        let frame: [usize; 4] = [0x5000, 0x5000, 0x5000, 0x5000];
        let base = frame.as_ptr() as *const u8;
        // Start 3 bytes in: first word skipped; end 2 bytes short: last
        // word skipped. Two aligned words remain.
        unsafe { s.scan_region(base.add(3), base.add(4 * 8 - 2)) };
        assert_eq!(s.words_scanned(), 2);
    }

    #[test]
    fn empty_region_scans_nothing() {
        let mb = master(&[(0x5000, 8)]);
        let s = mb.session();
        let x = 0usize;
        let p = (&x as *const usize).cast::<u8>();
        unsafe { s.scan_region(p, p) };
        assert_eq!(s.words_scanned(), 0);
    }

    #[test]
    fn acks_accumulate() {
        let mb = master(&[(0x1000, 8)]);
        let s = mb.session();
        assert_eq!(s.acks_received(), 0);
        s.ack();
        s.ack();
        assert_eq!(s.acks_received(), 2);
    }

    #[test]
    fn concurrent_scans_mark_consistently() {
        use std::sync::Arc;
        let nodes: Vec<(usize, usize)> = (0..512).map(|i| (0x10_0000 + i * 128, 128)).collect();
        let mb = Arc::new(master_sharded(&nodes, 4));
        let session = mb.session();
        std::thread::scope(|scope| {
            let session = &session;
            for t in 0..8 {
                scope.spawn(move || {
                    // Each thread marks a strided subset via interior words.
                    for i in (t..512).step_by(8) {
                        session.scan_word(0x10_0000 + i * 128 + 64);
                    }
                    session.ack();
                });
            }
            while session.acks_received() < 8 {
                std::hint::spin_loop();
            }
        });
        drop(session);
        for i in 0..512 {
            assert!(mb.is_marked(i), "entry {i} must be marked");
        }
    }
}
