//! The master buffer: the sorted aggregation every scan runs against.
//!
//! `TS-Collect` (Algorithm 1, line 2) sorts the delete buffer "to speed up
//! the scan process"; scanning threads binary-search it and set mark bits.
//! After all acknowledgments, unmarked entries are reclaimed and marked
//! entries survive into the next reclamation phase.

use core::sync::atomic::{AtomicU8, Ordering};

use crate::config::{CollectorConfig, MatchMode};
use crate::retired::Retired;
use crate::session::ScanSession;

/// Sorted, markable aggregation of retired nodes for one reclamation phase.
pub struct MasterBuffer {
    /// Entries sorted ascending by address.
    entries: Vec<Retired>,
    /// `entries[i].addr()`, kept separately for cache-dense binary search.
    addrs: Vec<usize>,
    /// `entries[i].end()`, parallel to `addrs`.
    ends: Vec<usize>,
    /// `marks[i] != 0` means entry `i` may still be referenced.
    marks: Vec<AtomicU8>,
    mode: MatchMode,
    low_bit_mask: usize,
}

impl MasterBuffer {
    /// Sorts `entries` by address and prepares the mark array.
    ///
    /// Duplicate addresses indicate a double `retire` in application code;
    /// this is rejected in debug builds.
    pub fn new(mut entries: Vec<Retired>, config: &CollectorConfig) -> Self {
        entries.sort_unstable_by_key(Retired::addr);
        debug_assert!(
            entries.windows(2).all(|w| w[0].addr() != w[1].addr()),
            "double-retire detected: duplicate address in the delete buffer"
        );
        let addrs: Vec<usize> = entries.iter().map(Retired::addr).collect();
        let ends: Vec<usize> = entries.iter().map(Retired::end).collect();
        let marks = (0..entries.len()).map(|_| AtomicU8::new(0)).collect();
        Self {
            entries,
            addrs,
            ends,
            marks,
            mode: config.match_mode,
            low_bit_mask: config.low_bit_mask,
        }
    }

    /// Number of retired nodes in this phase.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether this phase has nothing to reclaim.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Creates the signal-handler-facing view of this buffer.
    ///
    /// The returned session borrows `self`; the borrow checker guarantees
    /// the master buffer outlives every scan that uses the session, and the
    /// collect protocol guarantees handlers are done before the session is
    /// dropped (the last thing a handler does is acknowledge).
    pub fn session(&self) -> ScanSession<'_> {
        ScanSession::new(
            &self.addrs,
            &self.ends,
            &self.marks,
            self.mode,
            self.low_bit_mask,
        )
    }

    /// Marks entry `i` directly (used by the reclaimer for roots it can see
    /// without a scan, and by tests).
    pub fn mark(&self, i: usize) {
        self.marks[i].store(1, Ordering::Release);
    }

    /// Whether entry `i` has been marked.
    pub fn is_marked(&self, i: usize) -> bool {
        self.marks[i].load(Ordering::Acquire) != 0
    }

    /// Consumes the phase: returns `(reclaimable, survivors)` —
    /// Algorithm 1 lines 11-15 split into "free now" and "carry over".
    pub fn partition(self) -> (Vec<Retired>, Vec<Retired>) {
        let mut reclaimable = Vec::new();
        let mut survivors = Vec::new();
        for (entry, mark) in self.entries.into_iter().zip(self.marks.iter()) {
            if mark.load(Ordering::Acquire) == 0 {
                reclaimable.push(entry);
            } else {
                survivors.push(entry);
            }
        }
        (reclaimable, survivors)
    }

    /// Read-only view of the sorted entries (diagnostics/tests).
    pub fn entries(&self) -> &[Retired] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retired::noop_drop;
    use proptest::prelude::*;

    fn rec(addr: usize, size: usize) -> Retired {
        unsafe { Retired::from_raw_parts(addr, size, noop_drop) }
    }

    fn cfg() -> CollectorConfig {
        CollectorConfig::default()
    }

    #[test]
    fn new_sorts_by_address() {
        let mb = MasterBuffer::new(vec![rec(0x300, 8), rec(0x100, 8), rec(0x200, 8)], &cfg());
        let addrs: Vec<usize> = mb.entries().iter().map(Retired::addr).collect();
        assert_eq!(addrs, vec![0x100, 0x200, 0x300]);
    }

    #[test]
    fn unmarked_entries_are_reclaimable() {
        let mb = MasterBuffer::new(vec![rec(0x100, 8), rec(0x200, 8), rec(0x300, 8)], &cfg());
        mb.mark(1);
        let (reclaimable, survivors) = mb.partition();
        let free: Vec<usize> = reclaimable.iter().map(Retired::addr).collect();
        let keep: Vec<usize> = survivors.iter().map(Retired::addr).collect();
        assert_eq!(free, vec![0x100, 0x300]);
        assert_eq!(keep, vec![0x200]);
    }

    #[test]
    fn session_scan_marks_via_range_match() {
        let mb = MasterBuffer::new(vec![rec(0x1000, 64), rec(0x2000, 64)], &cfg());
        let session = mb.session();
        // Interior pointer into the first node; nothing touching the second.
        session.scan_word(0x1020);
        session.scan_word(0x3000);
        drop(session);
        assert!(mb.is_marked(0));
        assert!(!mb.is_marked(1));
    }

    #[test]
    fn session_scan_exact_mode_ignores_interior() {
        let config = CollectorConfig::default().with_match_mode(MatchMode::Exact);
        let mb = MasterBuffer::new(vec![rec(0x1000, 64)], &config);
        let session = mb.session();
        session.scan_word(0x1020); // interior: not a match in exact mode
        session.scan_word(0x1001); // tagged base pointer: match
        drop(session);
        assert!(mb.is_marked(0));
    }

    #[test]
    fn empty_master_buffer_partitions_to_nothing() {
        let mb = MasterBuffer::new(Vec::new(), &cfg());
        assert!(mb.is_empty());
        let (reclaimable, survivors) = mb.partition();
        assert!(reclaimable.is_empty());
        assert!(survivors.is_empty());
    }

    proptest! {
        /// Partition conserves the retired multiset: every entry comes out
        /// exactly once, on the side its mark dictates.
        #[test]
        fn partition_conserves_entries(
            addrs in proptest::collection::btree_set(1usize..1_000_000, 0..128),
            mark_bits in proptest::collection::vec(any::<bool>(), 128),
        ) {
            let entries: Vec<Retired> =
                addrs.iter().map(|&a| rec(a * 8, 8)).collect();
            let n = entries.len();
            let mb = MasterBuffer::new(entries, &cfg());
            let mut expect_keep = Vec::new();
            let mut expect_free = Vec::new();
            for (i, &bit) in mark_bits.iter().enumerate().take(n) {
                if bit {
                    mb.mark(i);
                    expect_keep.push(mb.entries()[i].addr());
                } else {
                    expect_free.push(mb.entries()[i].addr());
                }
            }
            let (reclaimable, survivors) = mb.partition();
            let free: Vec<usize> = reclaimable.iter().map(Retired::addr).collect();
            let keep: Vec<usize> = survivors.iter().map(Retired::addr).collect();
            prop_assert_eq!(free, expect_free);
            prop_assert_eq!(keep, expect_keep);
        }
    }
}
