//! The master buffer: the sorted aggregation every scan runs against.
//!
//! `TS-Collect` (Algorithm 1, line 2) sorts the delete buffer "to speed up
//! the scan process"; scanning threads binary-search it and set mark bits.
//! After all acknowledgments, unmarked entries are reclaimed and marked
//! entries survive into the next reclamation phase.
//!
//! This implementation *shards* the master buffer: entries are partitioned
//! by address into `CollectorConfig::shards` contiguous address ranges, and
//! each shard is sorted independently (partition-then-sort-locally, the
//! standard cure for single-array aggregation bottlenecks). A scan does a
//! fence lookup (binary search over at most `S - 1` shard-boundary
//! addresses) followed by a binary search inside one shard, so handler-side
//! work is O(log S + log(n/S)) and stays async-signal-safe. With
//! `shards = 1` the construction degenerates to the original single sorted
//! array, bit for bit.

use core::sync::atomic::{AtomicU8, Ordering};

use crate::config::{CollectorConfig, MatchMode};
use crate::pool::SortPool;
use crate::retired::Retired;
use crate::session::{ScanSession, ShardView};

/// Minimum entries per shard worth splitting for: below this, fence
/// overhead outweighs the smaller per-shard searches, so the builder uses
/// fewer shards than configured.
const MIN_SHARD_LEN: usize = 16;

/// Minimum phase size worth engaging the worker pool for: below this,
/// per-bucket dispatch (boxed closure, queue mutex, channel round-trip —
/// microseconds) rivals or exceeds the sort work itself (tens of
/// nanoseconds per entry), and the pooled path would *inflate* the very
/// collect latency it exists to cut. The collector sorts smaller phases
/// inline regardless of `sort_threads`.
pub(crate) const MIN_PARALLEL_SORT_LEN: usize = 4096;

/// One address-contiguous shard: entries sorted ascending by address, with
/// the search-key / end / mark arrays kept separate for cache-dense binary
/// search from signal handlers.
struct Shard {
    entries: Vec<Retired>,
    /// Search keys, parallel to `entries`: the entry address, with the
    /// low-order bits already masked off in [`MatchMode::Exact`] (matching
    /// happens in masked-key space on *both* sides — see `find_exact`).
    addrs: Vec<usize>,
    /// `entries[i].end()`, parallel to `addrs`.
    ends: Vec<usize>,
    /// `marks[i] != 0` means entry `i` may still be referenced.
    marks: Vec<AtomicU8>,
}

impl Shard {
    /// Builds one shard from entries pre-sorted by raw address.
    fn from_sorted(entries: Vec<Retired>, key_mask: usize) -> Self {
        let addrs: Vec<usize> = entries.iter().map(|e| e.addr() & key_mask).collect();
        let ends: Vec<usize> = entries.iter().map(Retired::end).collect();
        let marks = (0..entries.len()).map(|_| AtomicU8::new(0)).collect();
        Self {
            entries,
            addrs,
            ends,
            marks,
        }
    }
}

/// Sharded, markable aggregation of retired nodes for one reclamation
/// phase. Shards partition the address space contiguously, so the
/// concatenation of the shards is globally sorted; the public index-based
/// API (`mark`, `is_marked`, `partition`) operates on that global order.
pub struct MasterBuffer {
    /// Non-empty address-partitioned shards (exactly one — possibly empty —
    /// shard when there is nothing to split).
    shards: Vec<Shard>,
    /// `fences[k]` is the first search key of shard `k + 1`; a scanned key
    /// `w` belongs to shard `partition_point(fences, |f| f <= w)`.
    fences: Vec<usize>,
    /// `offsets[k]` is the global index of shard `k`'s first entry
    /// (`offsets.len() == shards.len() + 1`).
    offsets: Vec<usize>,
    mode: MatchMode,
    low_bit_mask: usize,
    /// Wall time spent partitioning and sorting, in nanoseconds. With a
    /// [`SortPool`] this is the *critical path* — the span from the first
    /// bucket dispatched to the last shard received.
    sort_ns: usize,
    /// Total CPU time spent inside per-shard sort-and-build work, summed
    /// over all sorting threads, in nanoseconds. Equals roughly `sort_ns`
    /// for a sequential build; the gap between `sort_cpu_ns` and
    /// `sort_ns` is what parallel sorting bought.
    sort_cpu_ns: usize,
}

/// Whether an (already non-decreasing) key sequence has no duplicates,
/// i.e. no adjacent equal elements. Backs the build-time `debug_assert!`s
/// (whose conditions still type-check in release, so no `cfg` gate here).
fn all_adjacent_distinct(mut keys: impl Iterator<Item = usize>) -> bool {
    let mut prev: Option<usize> = None;
    keys.all(|k| {
        let ok = prev != Some(k);
        prev = Some(k);
        ok
    })
}

/// Picks `shards - 1` pivot addresses from a sorted sample of the input so
/// the address-range buckets come out roughly balanced even under skew.
fn select_pivots(entries: &[Retired], shards: usize) -> Vec<usize> {
    let step = (entries.len() / (shards * 8)).max(1);
    let mut sample: Vec<usize> = entries.iter().step_by(step).map(Retired::addr).collect();
    sample.sort_unstable();
    (1..shards)
        .map(|k| sample[k * sample.len() / shards])
        .collect()
}

/// Number of shards [`MasterBuffer::build`] will target for a phase of
/// `len` entries: the configured count, but never so many that shards
/// drop below [`MIN_SHARD_LEN`] entries. The collector consults this
/// before a phase to decide whether a [`SortPool`] is worth creating —
/// a single-bucket phase cannot use one.
pub(crate) fn shard_target(len: usize, config: &CollectorConfig) -> usize {
    config.shards.max(1).min((len / MIN_SHARD_LEN).max(1))
}

/// Nanoseconds elapsed since `start`, clamped into a `usize`.
pub(crate) fn elapsed_ns(start: std::time::Instant) -> usize {
    start.elapsed().as_nanos().min(usize::MAX as u128) as usize
}

/// Sorts one address-range bucket and builds its shard, returning the
/// shard plus the CPU nanoseconds the work took. The unit both the
/// sequential loop and the pooled tasks execute — parallelism changes
/// scheduling, never the per-bucket computation.
fn sort_bucket(mut bucket: Vec<Retired>, key_mask: usize) -> (Shard, usize) {
    let start = std::time::Instant::now();
    // Each bucket covers a disjoint address range, so the locally sorted
    // shards concatenate globally sorted.
    bucket.sort_unstable_by_key(Retired::addr);
    let shard = Shard::from_sorted(bucket, key_mask);
    let ns = elapsed_ns(start);
    (shard, ns)
}

impl MasterBuffer {
    /// Partitions `entries` by address into shards and sorts each shard
    /// sequentially, on the calling thread. Equivalent to
    /// [`Self::build`] with no pool.
    ///
    /// Duplicate addresses indicate a double `retire` in application code;
    /// this is rejected in debug builds.
    pub fn new(entries: Vec<Retired>, config: &CollectorConfig) -> Self {
        Self::build(entries, config, None)
    }

    /// Partitions `entries` by address into shards and sorts each shard,
    /// spreading the per-shard sorts over `pool`'s workers when one is
    /// given.
    ///
    /// The pooled build is deterministic: buckets are reassembled in
    /// address order regardless of which worker finished first, so the
    /// result is bit-for-bit the sequential build's. With `pool` `None`
    /// (or a single bucket) nothing outside the calling thread is
    /// touched — that is the path a `sort_threads = 1` collector always
    /// takes, keeping forced collects safe to run from any context.
    pub fn build(entries: Vec<Retired>, config: &CollectorConfig, pool: Option<&SortPool>) -> Self {
        let start = std::time::Instant::now();
        // In Exact mode both the buffer keys and the probe words are
        // masked, so a node retired at a tagged/unaligned address still
        // matches a stably held (tagged) reference to it.
        // Masking must preserve address order, or the pre-masked key
        // arrays (and the fences derived from them) would not be sorted
        // and both binary searches would silently miss present keys.
        // Clearing bits preserves order exactly when the mask is a
        // contiguous low-bit run (2^k - 1).
        debug_assert!(
            config.match_mode != MatchMode::Exact
                || config.low_bit_mask.wrapping_add(1).is_power_of_two(),
            "low_bit_mask must be a contiguous low-bit mask (2^k - 1)"
        );
        let key_mask = match config.match_mode {
            MatchMode::Range => usize::MAX,
            MatchMode::Exact => !config.low_bit_mask,
        };
        let shard_target = shard_target(entries.len(), config);

        let (shards, sort_cpu_ns): (Vec<Shard>, usize) = if shard_target <= 1 {
            let (shard, ns) = sort_bucket(entries, key_mask);
            (vec![shard], ns)
        } else {
            let pivots = select_pivots(&entries, shard_target);
            let mut buckets: Vec<Vec<Retired>> = (0..shard_target).map(|_| Vec::new()).collect();
            for e in entries {
                buckets[pivots.partition_point(|&p| p <= e.addr())].push(e);
            }
            buckets.retain(|b| !b.is_empty());
            match pool {
                // One occupied bucket sorts as fast inline as on a worker.
                Some(pool) if buckets.len() > 1 => {
                    let tasks: Vec<Box<dyn FnOnce() -> (Shard, usize) + Send>> = buckets
                        .into_iter()
                        .map(|bucket| {
                            Box::new(move || sort_bucket(bucket, key_mask))
                                as Box<dyn FnOnce() -> (Shard, usize) + Send>
                        })
                        .collect();
                    // `run` preserves task order, and the buckets were
                    // produced in address order: the concatenation is
                    // globally sorted exactly as in the sequential branch.
                    let results = pool.run(tasks);
                    let cpu = results.iter().map(|(_, ns)| ns).sum();
                    (results.into_iter().map(|(s, _)| s).collect(), cpu)
                }
                _ => {
                    let mut cpu = 0usize;
                    let shards = buckets
                        .into_iter()
                        .map(|bucket| {
                            let (shard, ns) = sort_bucket(bucket, key_mask);
                            cpu += ns;
                            shard
                        })
                        .collect();
                    (shards, cpu)
                }
            }
        };

        debug_assert!(
            all_adjacent_distinct(
                shards
                    .iter()
                    .flat_map(|s| s.entries.iter().map(Retired::addr))
            ),
            "double-retire detected: duplicate address in the delete buffer"
        );
        // In Exact mode, matching happens on masked keys: two nodes
        // retired within one low_bit_mask-aligned granule would alias, a
        // probe would mark only one of them, and the other would be freed
        // while possibly still referenced. Catch the contract violation
        // (README: retire addresses must be distinct after masking) here
        // rather than as a silent use-after-free.
        debug_assert!(
            config.match_mode != MatchMode::Exact
                || all_adjacent_distinct(shards.iter().flat_map(|s| s.addrs.iter().copied())),
            "Exact-mode aliasing: two retired nodes share a masked key \
             (addresses must be distinct after masking off low_bit_mask)"
        );

        let mut offsets = Vec::with_capacity(shards.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for s in &shards {
            total += s.entries.len();
            offsets.push(total);
        }
        let fences: Vec<usize> = shards.iter().skip(1).map(|s| s.addrs[0]).collect();
        let sort_ns = elapsed_ns(start);

        Self {
            shards,
            fences,
            offsets,
            mode: config.match_mode,
            low_bit_mask: config.low_bit_mask,
            sort_ns,
            sort_cpu_ns,
        }
    }

    /// Number of retired nodes in this phase.
    pub fn len(&self) -> usize {
        *self.offsets.last().unwrap_or(&0)
    }

    /// Whether this phase has nothing to reclaim.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of (non-empty) shards the entries were partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Entry count of each shard, shard order (per-phase load diagnostic).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.entries.len()).collect()
    }

    /// Nanoseconds spent partitioning and sorting in [`Self::build`] —
    /// the reclaimer-observed critical path when a pool was used.
    pub fn sort_ns(&self) -> usize {
        self.sort_ns
    }

    /// Total CPU nanoseconds spent in per-shard sort-and-build work,
    /// summed across all threads that participated.
    pub fn sort_cpu_ns(&self) -> usize {
        self.sort_cpu_ns
    }

    /// Creates the signal-handler-facing view of this buffer.
    ///
    /// The returned session borrows `self`; the borrow checker guarantees
    /// the master buffer outlives every scan that uses the session, and the
    /// collect protocol guarantees handlers are done before the session is
    /// dropped (the last thing a handler does is acknowledge).
    pub fn session(&self) -> ScanSession<'_> {
        let views: Vec<ShardView<'_>> = self
            .shards
            .iter()
            .map(|s| ShardView::new(&s.addrs, &s.ends, &s.marks))
            .collect();
        ScanSession::new(views, &self.fences, self.mode, self.low_bit_mask)
    }

    /// Maps a global entry index to its shard and in-shard index.
    fn locate(&self, i: usize) -> (usize, usize) {
        let shard = self.offsets.partition_point(|&o| o <= i) - 1;
        (shard, i - self.offsets[shard])
    }

    /// Marks entry `i` (global sorted order) directly — used by the
    /// reclaimer for roots it can see without a scan, and by tests.
    pub fn mark(&self, i: usize) {
        let (s, j) = self.locate(i);
        self.shards[s].marks[j].store(1, Ordering::Release);
    }

    /// Whether entry `i` (global sorted order) has been marked.
    pub fn is_marked(&self, i: usize) -> bool {
        let (s, j) = self.locate(i);
        self.shards[s].marks[j].load(Ordering::Acquire) != 0
    }

    /// Consumes the phase: returns `(reclaimable, survivors)` —
    /// Algorithm 1 lines 11-15 split into "free now" and "carry over".
    pub fn partition(self) -> (Vec<Retired>, Vec<Retired>) {
        let mut reclaimable = Vec::new();
        let mut survivors = Vec::new();
        for shard in self.shards {
            for (entry, mark) in shard.entries.into_iter().zip(shard.marks.iter()) {
                if mark.load(Ordering::Acquire) == 0 {
                    reclaimable.push(entry);
                } else {
                    survivors.push(entry);
                }
            }
        }
        (reclaimable, survivors)
    }

    /// The entries in global sorted order (diagnostics/tests).
    pub fn entries(&self) -> Vec<&Retired> {
        self.shards.iter().flat_map(|s| s.entries.iter()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retired::noop_drop;
    use proptest::prelude::*;

    fn rec(addr: usize, size: usize) -> Retired {
        unsafe { Retired::from_raw_parts(addr, size, noop_drop) }
    }

    fn cfg() -> CollectorConfig {
        CollectorConfig::default()
    }

    fn cfg_sharded(shards: usize) -> CollectorConfig {
        CollectorConfig::default().with_shards(shards)
    }

    #[test]
    fn new_sorts_by_address() {
        let mb = MasterBuffer::new(vec![rec(0x300, 8), rec(0x100, 8), rec(0x200, 8)], &cfg());
        let addrs: Vec<usize> = mb.entries().iter().map(|e| e.addr()).collect();
        assert_eq!(addrs, vec![0x100, 0x200, 0x300]);
    }

    #[test]
    fn sharded_concatenation_is_globally_sorted() {
        let entries: Vec<Retired> = (0..256).rev().map(|i| rec(0x1000 + i * 64, 32)).collect();
        let mb = MasterBuffer::new(entries, &cfg_sharded(4));
        assert!(mb.shard_count() > 1, "256 entries must actually shard");
        assert_eq!(mb.shard_sizes().iter().sum::<usize>(), 256);
        let addrs: Vec<usize> = mb.entries().iter().map(|e| e.addr()).collect();
        assert!(addrs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tiny_phases_collapse_to_one_shard() {
        let mb = MasterBuffer::new(vec![rec(0x100, 8), rec(0x200, 8)], &cfg_sharded(8));
        assert_eq!(mb.shard_count(), 1);
    }

    #[test]
    fn unmarked_entries_are_reclaimable() {
        let mb = MasterBuffer::new(vec![rec(0x100, 8), rec(0x200, 8), rec(0x300, 8)], &cfg());
        mb.mark(1);
        let (reclaimable, survivors) = mb.partition();
        let free: Vec<usize> = reclaimable.iter().map(Retired::addr).collect();
        let keep: Vec<usize> = survivors.iter().map(Retired::addr).collect();
        assert_eq!(free, vec![0x100, 0x300]);
        assert_eq!(keep, vec![0x200]);
    }

    #[test]
    fn global_mark_indices_cross_shard_boundaries() {
        let entries: Vec<Retired> = (0..128).map(|i| rec(0x1000 + i * 64, 32)).collect();
        let mb = MasterBuffer::new(entries, &cfg_sharded(4));
        assert!(mb.shard_count() > 1);
        for i in (0..128).step_by(3) {
            mb.mark(i);
        }
        for i in 0..128 {
            assert_eq!(mb.is_marked(i), i % 3 == 0, "entry {i}");
        }
    }

    #[test]
    fn session_scan_marks_via_range_match() {
        let mb = MasterBuffer::new(vec![rec(0x1000, 64), rec(0x2000, 64)], &cfg());
        let session = mb.session();
        // Interior pointer into the first node; nothing touching the second.
        session.scan_word(0x1020);
        session.scan_word(0x3000);
        drop(session);
        assert!(mb.is_marked(0));
        assert!(!mb.is_marked(1));
    }

    #[test]
    fn session_scan_exact_mode_ignores_interior() {
        let config = CollectorConfig::default().with_match_mode(MatchMode::Exact);
        let mb = MasterBuffer::new(vec![rec(0x1000, 64)], &config);
        let session = mb.session();
        session.scan_word(0x1020); // interior: not a match in exact mode
        session.scan_word(0x1001); // tagged base pointer: match
        drop(session);
        assert!(mb.is_marked(0));
    }

    #[test]
    fn exact_mode_masks_buffer_addresses_too() {
        // Regression (Exact-mode mask asymmetry): a node retired at an
        // address carrying tag bits used to be unmatchable, because only
        // the probe word was masked. Both sides are masked now.
        let config = CollectorConfig::default().with_match_mode(MatchMode::Exact);
        let mb = MasterBuffer::new(vec![rec(0x1001, 64)], &config);
        let session = mb.session();
        assert!(session.scan_word(0x1003), "masked keys must meet");
        drop(session);
        assert!(mb.is_marked(0));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "contiguous low-bit mask")]
    fn non_contiguous_mask_rejected_in_debug() {
        let mut config = CollectorConfig::default().with_match_mode(MatchMode::Exact);
        config.low_bit_mask = 0b100; // would reorder masked keys
        let _ = MasterBuffer::new(vec![rec(0x1003, 2)], &config);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "Exact-mode aliasing")]
    fn exact_mode_masked_alias_rejected_in_debug() {
        let config = CollectorConfig::default().with_match_mode(MatchMode::Exact);
        // 0x1001 and 0x1004 share masked key 0x1000 under the 0b111 mask.
        let _ = MasterBuffer::new(vec![rec(0x1001, 2), rec(0x1004, 2)], &config);
    }

    #[test]
    fn pooled_build_is_bit_for_bit_the_sequential_build() {
        use crate::pool::SortPool;
        let pool = SortPool::new(3);
        // Scrambled addresses across a wide range so multiple buckets form.
        let nodes: Vec<usize> = (0..512).map(|i| 0x4000 + (i * 7919 % 512) * 64).collect();
        let mk = |addrs: &[usize]| -> Vec<Retired> { addrs.iter().map(|&a| rec(a, 32)).collect() };
        let config = cfg_sharded(8);
        let seq = MasterBuffer::new(mk(&nodes), &config);
        let par = MasterBuffer::build(mk(&nodes), &config, Some(&pool));
        assert!(seq.shard_count() > 1, "must exercise multiple buckets");
        assert_eq!(seq.shard_sizes(), par.shard_sizes());
        let addrs =
            |mb: &MasterBuffer| -> Vec<usize> { mb.entries().iter().map(|e| e.addr()).collect() };
        assert_eq!(addrs(&seq), addrs(&par));
        assert!(par.sort_cpu_ns() > 0, "per-shard work must be accounted");
        assert!(seq.sort_cpu_ns() > 0);
    }

    #[test]
    fn empty_master_buffer_partitions_to_nothing() {
        let mb = MasterBuffer::new(Vec::new(), &cfg());
        assert!(mb.is_empty());
        let (reclaimable, survivors) = mb.partition();
        assert!(reclaimable.is_empty());
        assert!(survivors.is_empty());
    }

    proptest! {
        /// Partition conserves the retired multiset: every entry comes out
        /// exactly once, on the side its mark dictates — at every shard
        /// count, against the global sorted order.
        #[test]
        fn partition_conserves_entries(
            addrs in proptest::collection::btree_set(1usize..1_000_000, 0..128),
            mark_bits in proptest::collection::vec(any::<bool>(), 128),
            shards in 1usize..9,
        ) {
            let entries: Vec<Retired> =
                addrs.iter().map(|&a| rec(a * 8, 8)).collect();
            let n = entries.len();
            let mb = MasterBuffer::new(entries, &cfg_sharded(shards));
            let mut expect_keep = Vec::new();
            let mut expect_free = Vec::new();
            for (i, &bit) in mark_bits.iter().enumerate().take(n) {
                if bit {
                    mb.mark(i);
                    expect_keep.push(mb.entries()[i].addr());
                } else {
                    expect_free.push(mb.entries()[i].addr());
                }
            }
            let (reclaimable, survivors) = mb.partition();
            let free: Vec<usize> = reclaimable.iter().map(Retired::addr).collect();
            let keep: Vec<usize> = survivors.iter().map(Retired::addr).collect();
            prop_assert_eq!(free, expect_free);
            prop_assert_eq!(keep, expect_keep);
        }
    }
}
