//! Per-thread root descriptions beyond the stack and registers.
//!
//! §4.3 of the paper extends ThreadScan with
//! `TS_add_heap_block(start, len)` / `TS_remove_heap_block(start, len)`:
//! a thread may pre-allocate a heap block to hold *private* references, and
//! registering it makes the signal handler include that block in the scan.
//! This is the one semi-automatic part of the interface.

use core::sync::atomic::{AtomicUsize, Ordering};

use crate::errors::HeapBlockError;
use crate::session::ScanSession;

/// One registered heap block. `len == 0` marks a free slot. Publication
/// order (start first, then len) makes a concurrently scanning handler see
/// either nothing or a fully published block.
struct HeapBlock {
    start: AtomicUsize,
    len: AtomicUsize,
}

/// The set of extra scan roots for one thread: registered heap blocks.
///
/// Owned by the thread's collector handle and shared with the platform so
/// the signal handler (which runs *on the owning thread*) can walk it.
/// All mutation happens on the owning thread; the handler interrupting the
/// owner mid-update observes each block either absent or fully published.
pub struct ThreadRoots {
    blocks: Box<[HeapBlock]>,
}

impl ThreadRoots {
    /// Creates a root set with capacity for `max_heap_blocks` blocks.
    pub fn new(max_heap_blocks: usize) -> Self {
        let blocks = (0..max_heap_blocks)
            .map(|_| HeapBlock {
                start: AtomicUsize::new(0),
                len: AtomicUsize::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { blocks }
    }

    /// Registers `[start, start + len)` for scanning (`TS_add_heap_block`).
    pub fn add_heap_block(&self, start: *const u8, len: usize) -> Result<(), HeapBlockError> {
        if len == 0 {
            return Err(HeapBlockError::EmptyBlock);
        }
        let addr = start as usize;
        for b in self.blocks.iter() {
            if b.len.load(Ordering::Relaxed) != 0 && b.start.load(Ordering::Relaxed) == addr {
                return Err(HeapBlockError::AlreadyRegistered);
            }
        }
        for b in self.blocks.iter() {
            if b.len.load(Ordering::Relaxed) == 0 {
                b.start.store(addr, Ordering::Relaxed);
                // Publishing len second makes the block visible atomically
                // to a handler interrupting this thread between the stores.
                b.len.store(len, Ordering::Release);
                return Ok(());
            }
        }
        Err(HeapBlockError::TooManyBlocks(self.blocks.len()))
    }

    /// Unregisters the block starting at `start` (`TS_remove_heap_block`).
    pub fn remove_heap_block(&self, start: *const u8) -> Result<(), HeapBlockError> {
        let addr = start as usize;
        for b in self.blocks.iter() {
            if b.len.load(Ordering::Relaxed) != 0 && b.start.load(Ordering::Relaxed) == addr {
                // Retract len first so a handler never scans a half-removed
                // block.
                b.len.store(0, Ordering::Release);
                b.start.store(0, Ordering::Relaxed);
                return Ok(());
            }
        }
        Err(HeapBlockError::NotRegistered)
    }

    /// Number of currently registered blocks.
    pub fn block_count(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.len.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// Scans every registered block against `session`.
    ///
    /// Async-signal-safe; called from the owning thread's handler (and, in
    /// the simulated platform, possibly by the reclaimer force-scanning a
    /// stalled thread).
    pub fn scan(&self, session: &ScanSession<'_>) {
        for b in self.blocks.iter() {
            let len = b.len.load(Ordering::Acquire);
            if len == 0 {
                continue;
            }
            let start = b.start.load(Ordering::Relaxed);
            // SAFETY: the owner registered [start, start+len) and the API
            // contract requires removal before the block is deallocated.
            unsafe {
                session.scan_region(start as *const u8, (start + len) as *const u8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CollectorConfig;
    use crate::master::MasterBuffer;
    use crate::retired::{noop_drop, Retired};

    fn master_with(addr: usize, size: usize) -> MasterBuffer {
        MasterBuffer::new(
            vec![unsafe { Retired::from_raw_parts(addr, size, noop_drop) }],
            &CollectorConfig::default(),
        )
    }

    #[test]
    fn add_scan_remove_lifecycle() {
        let roots = ThreadRoots::new(4);
        let block: Box<[usize; 16]> = Box::new([0; 16]);
        let target = 0x7000_0000usize;
        let mut block = block;
        block[7] = target + 16; // a private reference stored on the heap

        roots.add_heap_block(block.as_ptr().cast(), 16 * 8).unwrap();
        assert_eq!(roots.block_count(), 1);

        let mb = master_with(target, 64);
        let s = mb.session();
        roots.scan(&s);
        drop(s);
        assert!(mb.is_marked(0), "heap-block reference must be found");

        roots.remove_heap_block(block.as_ptr().cast()).unwrap();
        assert_eq!(roots.block_count(), 0);

        let mb2 = master_with(target, 64);
        let s2 = mb2.session();
        roots.scan(&s2);
        drop(s2);
        assert!(!mb2.is_marked(0), "removed block must not be scanned");
    }

    #[test]
    fn slot_exhaustion_reports_capacity() {
        let roots = ThreadRoots::new(2);
        let a = [0usize; 2];
        let b = [0usize; 2];
        let c = [0usize; 2];
        roots.add_heap_block(a.as_ptr().cast(), 16).unwrap();
        roots.add_heap_block(b.as_ptr().cast(), 16).unwrap();
        assert_eq!(
            roots.add_heap_block(c.as_ptr().cast(), 16),
            Err(HeapBlockError::TooManyBlocks(2))
        );
    }

    #[test]
    fn duplicate_and_missing_blocks_rejected() {
        let roots = ThreadRoots::new(2);
        let a = [0usize; 2];
        roots.add_heap_block(a.as_ptr().cast(), 16).unwrap();
        assert_eq!(
            roots.add_heap_block(a.as_ptr().cast(), 16),
            Err(HeapBlockError::AlreadyRegistered)
        );
        let other = [0usize; 2];
        assert_eq!(
            roots.remove_heap_block(other.as_ptr().cast()),
            Err(HeapBlockError::NotRegistered)
        );
    }

    #[test]
    fn zero_length_block_rejected() {
        let roots = ThreadRoots::new(2);
        let a = [0usize; 2];
        assert_eq!(
            roots.add_heap_block(a.as_ptr().cast(), 0),
            Err(HeapBlockError::EmptyBlock)
        );
    }

    #[test]
    fn removed_slot_is_reusable() {
        let roots = ThreadRoots::new(1);
        let a = [0usize; 2];
        let b = [0usize; 2];
        roots.add_heap_block(a.as_ptr().cast(), 16).unwrap();
        roots.remove_heap_block(a.as_ptr().cast()).unwrap();
        roots.add_heap_block(b.as_ptr().cast(), 16).unwrap();
        assert_eq!(roots.block_count(), 1);
    }
}
