//! The reclaimer's self-scan context.
//!
//! The reclaimer must scan its own stack and registers like everyone else
//! (Algorithm 1 line 7). But scanning *at scan time* would be wrong in a
//! subtle way: by then, the collect machinery (buffer draining, sorting)
//! has copied every retired node's address through its own stack frames,
//! and a conservative scan of those dead frames would mark every node as
//! referenced — the collector would never free anything it aggregated.
//!
//! The fix is to capture the reclaimer's scan context at the *boundary*
//! between application code and the collector: a stack **floor** (frames
//! above it are application frames and must be scanned; frames below are
//! collector machinery and must not be) plus the **callee-saved
//! registers** at that instant (caller-saved registers holding live
//! references were already spilled into the scanned frames by the ABI;
//! callee-saved ones might only be spilled *below* the floor, so they are
//! captured explicitly).

/// Maximum callee-saved registers across supported targets.
pub const MAX_SELF_REGS: usize = 12;

/// Snapshot of the reclaimer's application-visible private memory
/// boundary, taken on entry to the collector.
#[derive(Debug, Clone, Copy)]
pub struct SelfScanContext {
    /// Lowest application-frame stack address; the platform scans
    /// `[floor, stack_top)` on the reclaimer's behalf.
    pub floor: usize,
    regs: [usize; MAX_SELF_REGS],
    nregs: usize,
}

impl SelfScanContext {
    /// Callee-saved register values captured at the boundary.
    pub fn regs(&self) -> &[usize] {
        &self.regs[..self.nregs]
    }

    /// A context that scans nothing (for platforms that do not scan the
    /// reclaimer's real stack, e.g. simulations, or for unregistered
    /// callers).
    pub fn empty() -> Self {
        Self {
            floor: usize::MAX,
            regs: [0; MAX_SELF_REGS],
            nregs: 0,
        }
    }
}

/// Captures the calling frame's scan context. Must be called directly from
/// the application/collector boundary (e.g. the top of a retire that
/// triggers a collect): everything above the returned floor is treated as
/// application memory.
#[inline(never)]
pub fn capture_context() -> SelfScanContext {
    let mut regs = [0usize; MAX_SELF_REGS];
    let nregs = arch::capture(&mut regs);
    // The address of a local in THIS frame: strictly below every caller
    // frame, so `[floor, top)` covers the caller and everything above it.
    let marker = 0u8;
    let floor = std::hint::black_box(&marker as *const u8 as usize);
    SelfScanContext { floor, regs, nregs }
}

#[cfg(target_arch = "x86_64")]
mod arch {
    use super::MAX_SELF_REGS;

    /// System V AMD64 callee-saved: rbx, rbp, r12–r15.
    pub fn capture(out: &mut [usize; MAX_SELF_REGS]) -> usize {
        let (rbx, rbp, r12, r13, r14, r15): (usize, usize, usize, usize, usize, usize);
        unsafe {
            core::arch::asm!(
                "mov {0}, rbx",
                "mov {1}, rbp",
                "mov {2}, r12",
                "mov {3}, r13",
                "mov {4}, r14",
                "mov {5}, r15",
                out(reg) rbx,
                out(reg) rbp,
                out(reg) r12,
                out(reg) r13,
                out(reg) r14,
                out(reg) r15,
                options(nomem, nostack, preserves_flags),
            );
        }
        out[..6].copy_from_slice(&[rbx, rbp, r12, r13, r14, r15]);
        6
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    use super::MAX_SELF_REGS;

    /// AAPCS64 callee-saved: x19–x28, plus the frame pointer x29.
    pub fn capture(out: &mut [usize; MAX_SELF_REGS]) -> usize {
        let mut v = [0usize; 11];
        unsafe {
            core::arch::asm!(
                "mov {0}, x19", "mov {1}, x20", "mov {2}, x21", "mov {3}, x22",
                "mov {4}, x23", "mov {5}, x24", "mov {6}, x25", "mov {7}, x26",
                "mov {8}, x27", "mov {9}, x28", "mov {10}, x29",
                out(reg) v[0], out(reg) v[1], out(reg) v[2], out(reg) v[3],
                out(reg) v[4], out(reg) v[5], out(reg) v[6], out(reg) v[7],
                out(reg) v[8], out(reg) v[9], out(reg) v[10],
                options(nomem, nostack, preserves_flags),
            );
        }
        out[..11].copy_from_slice(&v);
        11
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod arch {
    use super::MAX_SELF_REGS;

    /// Unknown ABI: no register capture. Conservatism then relies on the
    /// stack scan alone (callee-saved registers of the caller might be
    /// missed; see module docs).
    pub fn capture(_out: &mut [usize; MAX_SELF_REGS]) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_is_below_caller_locals() {
        let local = 5u64;
        let ctx = capture_context();
        assert!(
            ctx.floor <= &local as *const u64 as usize,
            "caller locals must sit above the floor"
        );
    }

    #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
    #[test]
    fn capture_returns_callee_saved_registers() {
        let ctx = capture_context();
        assert!(ctx.regs().len() >= 6);
    }

    #[test]
    fn empty_context_scans_nothing() {
        let ctx = SelfScanContext::empty();
        assert_eq!(ctx.regs().len(), 0);
        assert_eq!(ctx.floor, usize::MAX);
    }

    /// A value kept live across the capture in a callee-saved register or
    /// a stack slot above the floor must be visible to the combined scan.
    #[test]
    fn live_reference_is_visible_above_floor_or_in_regs() {
        let node = Box::new([0xabu8; 64]);
        let addr = std::hint::black_box(node.as_ref() as *const [u8; 64] as usize);
        let ctx = capture_context();
        // Search the register capture and our own frame's plausible range.
        let in_regs = ctx.regs().contains(&addr);
        let mut in_stack = false;
        let here = &addr as *const usize as usize;
        // Scan a window of our frame region above the floor.
        let lo = ctx.floor;
        let hi = here + 4096;
        let mut cur = (lo + 7) & !7;
        while cur < hi {
            let w = unsafe { std::ptr::read_volatile(cur as *const usize) };
            if w == addr {
                in_stack = true;
                break;
            }
            cur += 8;
        }
        assert!(
            in_regs || in_stack,
            "live reference must be observable at the boundary"
        );
        drop(node);
    }
}
