//! # threadscan — automatic and scalable memory reclamation
//!
//! A from-scratch Rust implementation of **ThreadScan** (Alistarh,
//! Leiserson, Matveev, Shavit — SPAA 2015): concurrent memory reclamation
//! that is *automatic* — no per-read hazard publication, no epoch
//! discipline. Threads hand unlinked nodes to [`ThreadHandle::retire`];
//! when a per-thread delete buffer fills, that thread becomes the reclaimer,
//! aggregates all buffers, and asks every registered thread (via the
//! [`Platform`], normally OS signals) to conservatively scan its own stack
//! and registers for references. Unreferenced nodes are freed; referenced
//! ones survive to the next phase.
//!
//! This crate is the platform-neutral protocol core. Pair it with:
//!
//! * [`ts-sigscan`](../ts_sigscan/index.html) — the real thing: POSIX
//!   signals, stack-bounds discovery, `ucontext` register capture;
//! * [`ts-simthread`](../ts_simthread/index.html) — a deterministic
//!   simulated platform (shadow stacks, virtual signals) for protocol
//!   testing and model checking.
//!
//! ## Quick start
//!
//! ```
//! use threadscan::{Collector, NullPlatform};
//!
//! // NullPlatform frees everything unconditionally — fine for a
//! // single-threaded demo; use ts-sigscan's SignalPlatform in real code.
//! let collector = Collector::new(NullPlatform);
//! let handle = collector.register();
//!
//! let node = Box::into_raw(Box::new([0u8; 64]));
//! // ... unlink `node` from your data structure, then:
//! unsafe { handle.retire(node) };
//! handle.flush(); // normally happens automatically when the buffer fills
//! assert_eq!(collector.stats().freed, 1);
//! ```
//!
//! ## Assumptions (paper §3.2, Assumption 1)
//!
//! 1. Retired nodes are already unreachable from shared memory.
//! 2. Reclamation events per method call are bounded (deletes are batched).
//! 3. References are visible to a conservative word scan: word-aligned
//!    (low-order tag bits allowed), not hidden by XOR-style obfuscation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod collector;
pub mod config;
pub mod errors;
pub mod hist;
pub mod master;
pub mod platform;
pub mod pool;
pub mod retired;
pub mod roots;
pub mod scan;
pub mod selfscan;
pub mod session;
pub mod stats;
pub mod telemetry;

pub use collector::{Collector, ThreadHandle};
pub use config::{CollectPolicy, CollectorConfig, MatchMode, PressureSource};
pub use errors::HeapBlockError;
pub use hist::Hist;
pub use platform::{NullPlatform, Platform, ScanOutcome};
pub use pool::SortPool;
pub use retired::{DropFn, Retired};
pub use roots::ThreadRoots;
pub use selfscan::{capture_context, SelfScanContext};
pub use session::ScanSession;
pub use stats::{CollectorStats, StatsSnapshot};
pub use telemetry::{CollectSummary, PhaseEvent, PhaseKind, TelemetrySink};
