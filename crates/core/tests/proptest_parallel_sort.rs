//! Observational equivalence of the pooled (parallel) master-buffer
//! build.
//!
//! `MasterBuffer::build` with a `SortPool` must be indistinguishable from
//! the `sort_threads = 1` sequential build for every entry set, shard
//! count, pool width, and match mode: same global entry order, same shard
//! layout and fences (observed through scans), same per-word hit/miss,
//! same marks, same `(reclaimable, survivors)` partition. The pooled
//! build is deterministic by construction — buckets are reassembled in
//! address order no matter which worker finishes first — and this suite
//! is the executable form of that claim.

use proptest::prelude::*;
use threadscan::master::MasterBuffer;
use threadscan::pool::SortPool;
use threadscan::retired::{noop_drop, Retired};
use threadscan::{CollectorConfig, MatchMode};

/// Builds disjoint nodes from (gap, size) pairs, 8-aligned so Exact-mode
/// masked keys stay distinct (same generator as `proptest_sharded.rs`).
fn build_nodes(gaps: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut cursor = 0x1000usize;
    let mut nodes = Vec::new();
    for &(gap, size) in gaps {
        cursor += gap * 8;
        nodes.push((cursor, size));
        cursor += size.next_multiple_of(8);
    }
    nodes
}

fn entries_of(nodes: &[(usize, usize)]) -> Vec<Retired> {
    nodes
        .iter()
        .map(|&(a, s)| unsafe { Retired::from_raw_parts(a, s, noop_drop) })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pooled build ≡ sequential build, observed through every public
    /// surface: entry order, shard sizes, sort accounting sanity, scans,
    /// and the final partition.
    #[test]
    fn parallel_build_is_observationally_equivalent_to_sequential(
        gaps in proptest::collection::vec((1usize..200, 1usize..256), 0..128),
        probes in proptest::collection::vec(any::<usize>(), 0..32),
        shards in 1usize..17,
        sort_threads in 2usize..5,
        mode in prop_oneof![Just(MatchMode::Range), Just(MatchMode::Exact)],
    ) {
        let nodes = build_nodes(&gaps);
        let config = CollectorConfig::default()
            .with_shards(shards)
            .with_match_mode(mode);
        let pool = SortPool::new(sort_threads);

        let seq = MasterBuffer::new(entries_of(&nodes), &config);
        let par = MasterBuffer::build(entries_of(&nodes), &config, Some(&pool));

        // Identical layout.
        prop_assert_eq!(seq.len(), par.len());
        prop_assert_eq!(seq.shard_count(), par.shard_count());
        prop_assert_eq!(seq.shard_sizes(), par.shard_sizes());
        let addrs = |mb: &MasterBuffer| -> Vec<usize> {
            mb.entries().iter().map(|e| e.addr()).collect()
        };
        prop_assert_eq!(addrs(&seq), addrs(&par));

        // Identical scan behaviour: arbitrary probes plus words aimed at
        // every node (base, tagged base, interior, one-past-end).
        let mut words = probes;
        for &(a, s) in &nodes {
            words.extend_from_slice(&[a, a | 0b101, a + s / 2, a + s]);
        }
        let s_seq = seq.session();
        let s_par = par.session();
        for &w in &words {
            prop_assert_eq!(
                s_seq.scan_word(w),
                s_par.scan_word(w),
                "hit/miss must agree on word {:#x}", w
            );
        }
        drop(s_seq);
        drop(s_par);

        // Identical partition: the scans above marked the same entries.
        let key = |v: &[Retired]| v.iter().map(Retired::addr).collect::<Vec<_>>();
        let (free_seq, keep_seq) = seq.partition();
        let (free_par, keep_par) = par.partition();
        prop_assert_eq!(key(&free_seq), key(&free_par));
        prop_assert_eq!(key(&keep_seq), key(&keep_par));
    }

    /// The sort accounting is sane in both modes: the critical path never
    /// exceeds the CPU total by more than measurement noise allows, and
    /// both are populated for non-trivial phases.
    #[test]
    fn sort_accounting_is_populated(
        gaps in proptest::collection::vec((1usize..50, 8usize..64), 32..96),
        shards in 2usize..9,
    ) {
        let nodes = build_nodes(&gaps);
        let config = CollectorConfig::default().with_shards(shards);
        let pool = SortPool::new(3);
        let par = MasterBuffer::build(entries_of(&nodes), &config, Some(&pool));
        prop_assert!(par.sort_ns() > 0);
        prop_assert!(par.sort_cpu_ns() > 0);
    }
}
