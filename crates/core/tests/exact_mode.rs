//! End-to-end behaviour of the paper's §4.2 exact matching mode (masked
//! base-pointer comparison), exercised through a full collector with a
//! scripted platform — the ablation counterpart of the default range mode.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use threadscan::{
    Collector, CollectorConfig, MatchMode, Platform, ScanOutcome, ScanSession, SelfScanContext,
    ThreadRoots,
};

/// A platform whose single simulated thread "holds" a configurable word
/// list.
#[derive(Default)]
struct WordPlatform {
    words: Mutex<Vec<usize>>,
}

// SAFETY (test double): the full simulated root set is `words`, which is
// scanned in its entirety before the ack.
unsafe impl Platform for WordPlatform {
    type ThreadToken = ();
    fn register_current(&self, _roots: Arc<ThreadRoots>) -> Self::ThreadToken {}
    fn scan_all(&self, session: &ScanSession<'_>, _ctx: &SelfScanContext) -> ScanOutcome {
        session.scan_words(&self.words.lock());
        session.ack();
        ScanOutcome { threads_scanned: 1 }
    }
}

struct Probe {
    drops: Arc<AtomicUsize>,
    _pad: [u64; 8],
}
impl Drop for Probe {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

fn probe(drops: &Arc<AtomicUsize>) -> *mut Probe {
    Box::into_raw(Box::new(Probe {
        drops: Arc::clone(drops),
        _pad: [0; 8],
    }))
}

#[test]
fn exact_mode_pins_tagged_base_pointers_only() {
    let drops = Arc::new(AtomicUsize::new(0));
    let platform = WordPlatform::default();
    let a = probe(&drops);
    let b = probe(&drops);
    // Hold: a's base with a Harris-style tag bit, and an *interior* word
    // of b. Exact mode must pin a but NOT b.
    platform.words.lock().push(a as usize | 1);
    platform.words.lock().push(b as usize + 16);

    let collector = Collector::with_config(
        platform,
        CollectorConfig::default()
            .with_buffer_capacity(2)
            .with_match_mode(MatchMode::Exact),
    );
    let handle = collector.register();
    unsafe { handle.retire(a) };
    unsafe { handle.retire(b) }; // triggers the phase
    assert_eq!(
        drops.load(Ordering::SeqCst),
        1,
        "exact mode: tagged base pins a; interior word does not pin b"
    );
    assert_eq!(collector.pending_estimate(), 1);

    collector.platform().words.lock().clear();
    collector.collect_now();
    assert_eq!(drops.load(Ordering::SeqCst), 2);
    drop(handle);
}

#[test]
fn range_mode_pins_both_base_and_interior() {
    let drops = Arc::new(AtomicUsize::new(0));
    let platform = WordPlatform::default();
    let a = probe(&drops);
    let b = probe(&drops);
    platform.words.lock().push(a as usize | 1);
    platform.words.lock().push(b as usize + 16);

    let collector = Collector::with_config(
        platform,
        CollectorConfig::default()
            .with_buffer_capacity(2)
            .with_match_mode(MatchMode::Range),
    );
    let handle = collector.register();
    unsafe { handle.retire(a) };
    unsafe { handle.retire(b) };
    assert_eq!(
        drops.load(Ordering::SeqCst),
        0,
        "range mode: both references pin"
    );
    collector.platform().words.lock().clear();
    collector.collect_now();
    assert_eq!(drops.load(Ordering::SeqCst), 2);
    drop(handle);
}

#[test]
fn exact_mode_pins_nodes_retired_at_tagged_addresses() {
    // Regression (mask asymmetry): only the probe word used to be masked,
    // so a node retired at an address with low bits inside `low_bit_mask`
    // (e.g. a tagged pointer passed straight to retire) could never be
    // matched — a stably held reference would be reclaimed out from under
    // the thread. Entry addresses are masked too now.
    use std::sync::atomic::AtomicUsize as Count;
    static FREED: Count = Count::new(0);
    fn counting_drop(_p: *mut u8) {
        FREED.fetch_add(1, Ordering::SeqCst);
    }

    let platform = WordPlatform::default();
    let odd_addr = 0x7000_1001usize; // low bits set: inside the 0b111 mask
    platform.words.lock().push(odd_addr); // the thread's stable reference

    let collector = Collector::with_config(
        platform,
        CollectorConfig::default()
            .with_buffer_capacity(2)
            .with_match_mode(MatchMode::Exact),
    );
    let handle = collector.register();
    unsafe { handle.retire_raw(odd_addr, 64, counting_drop) };
    unsafe { handle.retire_raw(0x7000_2000, 64, counting_drop) }; // filler, triggers the phase
    assert_eq!(
        FREED.load(Ordering::SeqCst),
        1,
        "only the unreferenced filler may be freed; the odd-address node is held"
    );
    assert_eq!(collector.pending_estimate(), 1, "held node survives");

    collector.platform().words.lock().clear();
    collector.collect_now();
    assert_eq!(
        FREED.load(Ordering::SeqCst),
        2,
        "released once unreferenced"
    );
    drop(handle);
}

#[test]
fn survivors_are_rescanned_every_phase_until_released() {
    let drops = Arc::new(AtomicUsize::new(0));
    let platform = WordPlatform::default();
    let pinned = probe(&drops);
    platform.words.lock().push(pinned as usize);

    let collector =
        Collector::with_config(platform, CollectorConfig::default().with_buffer_capacity(4));
    let handle = collector.register();
    unsafe { handle.retire(pinned) };
    for round in 0..5 {
        collector.collect_now();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "round {round}: still referenced"
        );
    }
    let st = collector.stats();
    assert!(st.survivors >= 5, "survivor carried through each phase");
    collector.platform().words.lock().clear();
    collector.collect_now();
    assert_eq!(drops.load(Ordering::SeqCst), 1);
    drop(handle);
}
