//! Property tests for the §4.3 heap-block root registry and the scan
//! session's word/region semantics, plus collector stats invariants.

use std::collections::HashSet;

use proptest::prelude::*;
use threadscan::master::MasterBuffer;
use threadscan::retired::{noop_drop, Retired};
use threadscan::{Collector, CollectorConfig, HeapBlockError, NullPlatform, ThreadRoots};

/// A master buffer over one synthetic node, for driving sessions.
fn one_node_master(addr: usize, size: usize, config: &CollectorConfig) -> MasterBuffer {
    // SAFETY: noop_drop never dereferences; the address is synthetic.
    let entries = vec![unsafe { Retired::from_raw_parts(addr, size, noop_drop) }];
    MasterBuffer::new(entries, config)
}

#[derive(Debug, Clone)]
enum RootOp {
    Add { idx: usize, len: usize },
    Remove { idx: usize },
}

proptest! {
    // Cap the case count so `cargo test -q` stays fast; PROPTEST_CASES
    // can raise it for soak runs.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The root registry behaves like a capacity-bounded set keyed by
    /// start address, with exactly the documented error cases.
    #[test]
    fn heap_block_registry_matches_set_model(
        capacity in 0usize..8,
        ops in proptest::collection::vec(
            prop_oneof![
                (0usize..12, 0usize..64).prop_map(|(idx, len)| RootOp::Add { idx, len }),
                (0usize..12).prop_map(|idx| RootOp::Remove { idx }),
            ],
            0..64,
        ),
    ) {
        // Twelve candidate block addresses (synthetic, never dereferenced
        // by the registry itself).
        let base = 0x10_000usize;
        let addr_of = |idx: usize| (base + idx * 0x1000) as *const u8;

        let roots = ThreadRoots::new(capacity);
        let mut model: HashSet<usize> = HashSet::new();

        for op in ops {
            match op {
                RootOp::Add { idx, len } => {
                    let got = roots.add_heap_block(addr_of(idx), len);
                    if len == 0 {
                        prop_assert_eq!(got, Err(HeapBlockError::EmptyBlock));
                    } else if model.contains(&idx) {
                        prop_assert_eq!(got, Err(HeapBlockError::AlreadyRegistered));
                    } else if model.len() == capacity {
                        prop_assert_eq!(got, Err(HeapBlockError::TooManyBlocks(capacity)));
                    } else {
                        prop_assert_eq!(got, Ok(()));
                        model.insert(idx);
                    }
                }
                RootOp::Remove { idx } => {
                    let got = roots.remove_heap_block(addr_of(idx));
                    if model.remove(&idx) {
                        prop_assert_eq!(got, Ok(()));
                    } else {
                        prop_assert_eq!(got, Err(HeapBlockError::NotRegistered));
                    }
                }
            }
            prop_assert_eq!(roots.block_count(), model.len());
        }
    }

    /// `scan_region` visits exactly the word-aligned words in `[lo, hi)`,
    /// for arbitrary (mis)alignment of both bounds, and finds a planted
    /// reference wherever it lies.
    #[test]
    fn scan_region_alignment_and_coverage(
        lo_misalign in 0usize..8,
        hi_misalign in 0usize..8,
        words in 1usize..64,
        plant_at in 0usize..64,
    ) {
        let plant_at = plant_at % words;
        let node_addr = 0xDEAD_0000usize;
        let config = CollectorConfig::default();
        let master = one_node_master(node_addr, 64, &config);
        let session = master.session();

        // A backing region with one planted reference word.
        let mut region = vec![0usize; words + 2];
        region[1 + plant_at] = node_addr;
        let base = region.as_ptr() as usize + 8; // first candidate word
        let lo = base - lo_misalign.min(7);      // may reach into region[0]
        let hi = base + words * 8 + hi_misalign.min(7);

        let before = session.words_scanned();
        // SAFETY: [lo, hi) stays within the `region` allocation.
        unsafe { session.scan_region(lo as *const u8, hi as *const u8) };
        let scanned = session.words_scanned() - before;

        // Expected words: aligned addresses in [round_up(lo), round_down(hi)).
        let first = (lo + 7) & !7;
        let last = hi & !7;
        let expect = (last.saturating_sub(first)) / 8;
        prop_assert_eq!(scanned, expect);
        prop_assert!(session.hits() >= 1, "planted reference must be found");

        drop(session);
        let (freed, survivors) = master.partition();
        prop_assert_eq!(freed.len(), 0);
        prop_assert_eq!(survivors.len(), 1);
    }

    /// Interior pointers pin under range matching for any offset within
    /// the node, and never one byte past the end.
    #[test]
    fn range_matching_covers_exactly_the_node(
        size in 8usize..512,
        offset in 0usize..520,
    ) {
        let node_addr = 0xBEEF_0000usize;
        let config = CollectorConfig::default();
        let master = one_node_master(node_addr, size, &config);
        let session = master.session();
        session.scan_words(&[node_addr + offset]);
        let hit = offset < size;
        prop_assert_eq!(session.hits() == 1, hit);
        drop(session);
        let (freed, survivors) = master.partition();
        prop_assert_eq!(survivors.len(), usize::from(hit));
        prop_assert_eq!(freed.len(), usize::from(!hit));
    }

    /// Collector stats stay internally consistent across arbitrary
    /// retire/flush interleavings (NullPlatform: everything frees).
    #[test]
    fn stats_account_for_every_retired_node(
        batches in proptest::collection::vec(1usize..40, 1..12),
        buffer_capacity in 2usize..64,
    ) {
        let collector = Collector::with_config(
            NullPlatform,
            CollectorConfig::default().with_buffer_capacity(buffer_capacity),
        );
        let handle = collector.register();
        let mut retired_total = 0usize;
        for batch in batches {
            for _ in 0..batch {
                let p = Box::into_raw(Box::new([0u64; 4]));
                // SAFETY: fresh private allocation, retired once.
                unsafe { handle.retire(p) };
                retired_total += 1;
            }
            let s = collector.stats();
            prop_assert!(s.freed <= s.retired);
            prop_assert_eq!(s.retired, retired_total);
        }
        handle.flush();
        let s = collector.stats();
        prop_assert_eq!(s.retired, retired_total);
        prop_assert_eq!(s.freed, retired_total, "NullPlatform frees everything");
        prop_assert_eq!(collector.pending_estimate(), 0);
    }
}

/// Acks from many real threads sum exactly (the reclaimer's wait loop
/// depends on never over- or under-counting).
#[test]
fn acks_sum_exactly_across_threads() {
    let config = CollectorConfig::default();
    let master = one_node_master(0x1234_0000, 64, &config);
    let session = master.session();
    let threads = 8;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                session.scan_words(&[1, 2, 3]);
                session.ack();
            });
        }
    });
    assert_eq!(session.acks_received(), threads);
    assert_eq!(session.words_scanned(), threads * 3);
    assert_eq!(session.hits(), 0);
}

/// An empty region scan is a no-op, including inverted bounds.
#[test]
fn degenerate_regions_scan_nothing() {
    let config = CollectorConfig::default();
    let master = one_node_master(0x4444_0000, 64, &config);
    let session = master.session();
    let buf = [0u8; 64];
    let p = buf.as_ptr();
    // SAFETY: empty/degenerate ranges never read.
    unsafe {
        session.scan_region(p, p);
        session.scan_region(p.add(8), p); // inverted
        session.scan_region(p.add(1), p.add(7)); // no aligned word inside
    }
    assert_eq!(session.words_scanned(), 0);
}
