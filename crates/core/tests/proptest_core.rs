//! Property tests over the collector core's data-plane pieces.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use threadscan::buffer::LocalBuffer;
use threadscan::master::MasterBuffer;
use threadscan::retired::{noop_drop, Retired};
use threadscan::scan::{find_exact_linear, find_range_linear};
use threadscan::{CollectorConfig, MatchMode};

#[derive(Debug, Clone)]
enum BufOp {
    Push(usize),
    Drain,
}

proptest! {
    // Cap the case count so `cargo test -q` stays fast; PROPTEST_CASES
    // can raise it for soak runs.
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SPSC ring behaves exactly like a bounded FIFO queue.
    #[test]
    fn local_buffer_is_a_bounded_fifo(
        cap in 2usize..32,
        ops in proptest::collection::vec(
            prop_oneof![
                (1usize..1_000_000).prop_map(BufOp::Push),
                Just(BufOp::Drain),
            ],
            0..200,
        ),
    ) {
        let buf = LocalBuffer::new(cap);
        // The ring rounds the requested capacity up to a power of two
        // (wrap-safe `i % capacity` mapping); the model is a queue
        // bounded by the *effective* capacity.
        let cap = buf.capacity();
        prop_assert!(cap.is_power_of_two());
        let mut model: VecDeque<usize> = VecDeque::new();
        let mut out = Vec::new();
        for op in ops {
            match op {
                BufOp::Push(addr) => {
                    // SAFETY: single-threaded test — sole producer.
                    let pushed = unsafe {
                        buf.push(Retired::from_raw_parts(addr, 8, noop_drop)).is_ok()
                    };
                    let model_ok = model.len() < cap;
                    prop_assert_eq!(pushed, model_ok, "fullness must match model");
                    if model_ok {
                        model.push_back(addr);
                    }
                }
                BufOp::Drain => {
                    out.clear();
                    // SAFETY: sole consumer.
                    unsafe { buf.drain_into(&mut out) };
                    let got: Vec<usize> = out.iter().map(Retired::addr).collect();
                    let want: Vec<usize> = model.drain(..).collect();
                    prop_assert_eq!(got, want, "drain must be FIFO-complete");
                }
            }
            prop_assert_eq!(buf.len(), model.len());
            prop_assert_eq!(buf.is_empty(), model.is_empty());
            prop_assert_eq!(buf.is_full(), model.len() == cap);
        }
    }

    /// End-to-end marking: for arbitrary node sets and scanned words, a
    /// session + master buffer must free exactly the nodes no word hits
    /// (range mode) — checked against the linear-scan oracle.
    #[test]
    fn session_marks_agree_with_linear_oracle(
        gaps in proptest::collection::vec((1usize..512, 8usize..256), 1..48),
        words in proptest::collection::vec(any::<usize>(), 0..64),
        mode in prop_oneof![Just(MatchMode::Range), Just(MatchMode::Exact)],
    ) {
        // Build disjoint nodes.
        let mut cursor = 0x1000usize;
        let mut nodes = Vec::new();
        for (gap, size) in gaps {
            cursor += gap;
            nodes.push((cursor, size));
            cursor += size;
        }
        // Mix in words guaranteed to hit.
        let mut all_words = words;
        for (i, &(a, s)) in nodes.iter().enumerate() {
            match i % 3 {
                0 => all_words.push(a),          // base
                1 => all_words.push(a + s / 2),  // interior
                _ => {}
            }
        }

        let config = CollectorConfig::default().with_match_mode(mode);
        let entries: Vec<Retired> = nodes
            .iter()
            .map(|&(a, s)| unsafe { Retired::from_raw_parts(a, s, noop_drop) })
            .collect();
        let master = MasterBuffer::new(entries, &config);
        let session = master.session();
        session.scan_words(&all_words);
        drop(session);

        // Oracle: sorted node arrays.
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        let addrs: Vec<usize> = sorted.iter().map(|&(a, _)| a).collect();
        let ends: Vec<usize> = sorted.iter().map(|&(a, s)| a + s).collect();
        let mut expect_marked = vec![false; sorted.len()];
        for &w in &all_words {
            let hit = match mode {
                MatchMode::Range => find_range_linear(&addrs, &ends, w),
                MatchMode::Exact => find_exact_linear(&addrs, w, config.low_bit_mask),
            };
            if let Some(i) = hit {
                expect_marked[i] = true;
            }
        }

        let (freed, survivors) = master.partition();
        let freed_addrs: Vec<usize> = freed.iter().map(Retired::addr).collect();
        let kept_addrs: Vec<usize> = survivors.iter().map(Retired::addr).collect();
        let expect_kept: Vec<usize> = sorted
            .iter()
            .zip(&expect_marked)
            .filter(|(_, &m)| m)
            .map(|(&(a, _), _)| a)
            .collect();
        let expect_freed: Vec<usize> = sorted
            .iter()
            .zip(&expect_marked)
            .filter(|(_, &m)| !m)
            .map(|(&(a, _), _)| a)
            .collect();
        prop_assert_eq!(kept_addrs, expect_kept);
        prop_assert_eq!(freed_addrs, expect_freed);
    }
}

/// Concurrent SPSC torture with randomized production bursts: nothing is
/// lost, duplicated, or reordered.
#[test]
fn concurrent_spsc_random_bursts() {
    use rand::{Rng, SeedableRng};
    const TOTAL: usize = 50_000;
    let buf = Arc::new(LocalBuffer::new(32));
    let produced = Arc::new(AtomicUsize::new(0));

    let producer = {
        let buf = Arc::clone(&buf);
        let produced = Arc::clone(&produced);
        std::thread::spawn(move || {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
            let mut next = 1usize;
            while next <= TOTAL {
                let burst = rng.gen_range(1..16);
                for _ in 0..burst {
                    if next > TOTAL {
                        break;
                    }
                    // SAFETY: sole producer.
                    if unsafe { buf.push(Retired::from_raw_parts(next, 8, noop_drop)) }.is_ok() {
                        produced.fetch_add(1, Ordering::Relaxed);
                        next += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        })
    };

    let mut seen = Vec::with_capacity(TOTAL);
    while seen.len() < TOTAL {
        // SAFETY: sole consumer.
        unsafe { buf.drain_into(&mut seen) };
        std::hint::spin_loop();
    }
    producer.join().unwrap();
    for (i, r) in seen.iter().enumerate() {
        assert_eq!(r.addr(), i + 1);
    }
}
