//! Observational equivalence of the sharded master buffer.
//!
//! The sharded layout (fence lookup + per-shard binary search) must be
//! indistinguishable from the legacy single sorted array for every entry
//! set, probe word, shard count, and match mode: same hit/miss per word,
//! same marks, same `(reclaimable, survivors)` partition. Checked both
//! against an explicit 1-shard buffer and against the linear-scan oracles
//! from `threadscan::scan` (the `find_range_linear` pattern).

use proptest::prelude::*;
use threadscan::master::MasterBuffer;
use threadscan::retired::{noop_drop, Retired};
use threadscan::scan::{find_exact_linear, find_range_linear};
use threadscan::{CollectorConfig, MatchMode};

/// Builds disjoint nodes from (gap, size) pairs. Addresses are multiples
/// of 8 so Exact-mode masked keys stay distinct (masked collisions would
/// make "which duplicate gets marked" ambiguous — a non-goal here; the
/// unit tests cover tagged/unaligned retire addresses).
fn build_nodes(gaps: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut cursor = 0x1000usize;
    let mut nodes = Vec::new();
    for &(gap, size) in gaps {
        cursor += gap * 8;
        nodes.push((cursor, size));
        cursor += size.next_multiple_of(8);
    }
    nodes
}

fn entries_of(nodes: &[(usize, usize)]) -> Vec<Retired> {
    nodes
        .iter()
        .map(|&(a, s)| unsafe { Retired::from_raw_parts(a, s, noop_drop) })
        .collect()
}

/// Runs one full phase (build, scan all words, partition) and returns the
/// freed and surviving address lists.
fn run_phase(
    nodes: &[(usize, usize)],
    words: &[usize],
    shards: usize,
    mode: MatchMode,
) -> (Vec<usize>, Vec<usize>, usize) {
    let config = CollectorConfig::default()
        .with_shards(shards)
        .with_match_mode(mode);
    let master = MasterBuffer::new(entries_of(nodes), &config);
    let session = master.session();
    let mut hits = 0usize;
    for &w in words {
        if session.scan_word(w) {
            hits += 1;
        }
    }
    drop(session);
    let (freed, kept) = master.partition();
    (
        freed.iter().map(Retired::addr).collect(),
        kept.iter().map(Retired::addr).collect(),
        hits,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded scan ≡ 1-shard (legacy) scan, and both agree with the
    /// linear oracle, for arbitrary entry sets / probes / shard counts
    /// and both match modes.
    #[test]
    fn sharded_scan_is_observationally_equivalent_to_one_shard(
        gaps in proptest::collection::vec((1usize..200, 1usize..256), 0..96),
        probes in proptest::collection::vec(any::<usize>(), 0..48),
        shards in 2usize..17,
        mode in prop_oneof![Just(MatchMode::Range), Just(MatchMode::Exact)],
    ) {
        let nodes = build_nodes(&gaps);

        // Probe arbitrary words plus words aimed at every node: base,
        // tagged base, interior, one-past-end.
        let mut words = probes;
        for &(a, s) in &nodes {
            words.extend_from_slice(&[a, a | 0b101, a + s / 2, a + s]);
        }

        let (freed_1, kept_1, hits_1) = run_phase(&nodes, &words, 1, mode);
        let (freed_s, kept_s, hits_s) = run_phase(&nodes, &words, shards, mode);
        prop_assert_eq!(&freed_s, &freed_1, "freed sets must match legacy");
        prop_assert_eq!(&kept_s, &kept_1, "survivor sets must match legacy");
        prop_assert_eq!(hits_s, hits_1, "per-word hit counts must match");

        // Oracle cross-check (the find_range_linear pattern): a node
        // survives iff some word hits it per the linear kernels.
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        let addrs: Vec<usize> = sorted.iter().map(|&(a, _)| a).collect();
        let ends: Vec<usize> = sorted.iter().map(|&(a, s)| a + s).collect();
        let mask = CollectorConfig::default().low_bit_mask;
        let mut marked = vec![false; sorted.len()];
        for &w in &words {
            let hit = match mode {
                MatchMode::Range => find_range_linear(&addrs, &ends, w),
                MatchMode::Exact => find_exact_linear(&addrs, w, mask),
            };
            if let Some(i) = hit {
                marked[i] = true;
            }
        }
        let expect_kept: Vec<usize> = sorted
            .iter()
            .zip(&marked)
            .filter(|(_, &m)| m)
            .map(|(&(a, _), _)| a)
            .collect();
        prop_assert_eq!(kept_s, expect_kept, "survivors must match the oracle");
    }

    /// Direct-mark equivalence: global mark indices address the same
    /// entries regardless of shard count.
    #[test]
    fn global_mark_indices_are_shard_invariant(
        gaps in proptest::collection::vec((1usize..100, 8usize..64), 1..64),
        mark_bits in proptest::collection::vec(any::<bool>(), 64),
        shards in 2usize..9,
    ) {
        let nodes = build_nodes(&gaps);
        let config_1 = CollectorConfig::default().with_shards(1);
        let config_s = CollectorConfig::default().with_shards(shards);
        let mb_1 = MasterBuffer::new(entries_of(&nodes), &config_1);
        let mb_s = MasterBuffer::new(entries_of(&nodes), &config_s);
        prop_assert_eq!(mb_1.len(), mb_s.len());
        for (i, &bit) in mark_bits.iter().enumerate().take(nodes.len()) {
            if bit {
                mb_1.mark(i);
                mb_s.mark(i);
            }
            prop_assert_eq!(mb_1.is_marked(i), mb_s.is_marked(i), "index {}", i);
        }
        let (f1, k1) = mb_1.partition();
        let (fs, ks) = mb_s.partition();
        let key = |v: &[Retired]| v.iter().map(Retired::addr).collect::<Vec<_>>();
        prop_assert_eq!(key(&f1), key(&fs));
        prop_assert_eq!(key(&k1), key(&ks));
    }
}
