//! Hazard pointers (Michael, 2004) — §6 "Techniques" #2.
//!
//! Each thread owns `K` hazard slots. Before dereferencing a shared
//! pointer, a reader publishes its (untagged) address to a slot, executes a
//! **full fence**, and re-validates the source — the per-traversal-step
//! barrier that the paper identifies as hazard pointers' scalability cost
//! ("all threads must synchronize with the reclaiming thread by executing a
//! memory fence for each new hazard pointer").
//!
//! Retired nodes collect in a per-thread list; when it reaches the scan
//! threshold the thread snapshots every thread's hazard slots and frees the
//! retired nodes no hazard protects.

use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::api::{DropFn, Smr, SmrHandle};

/// Tag bits ignored when publishing/validating hazards (Harris-style mark
/// bits live in the low bits of next pointers).
const TAG_MASK: usize = 0b111;

struct RetiredRec {
    addr: usize,
    drop_fn: DropFn,
}

struct HpThreadRec {
    hazards: Box<[AtomicUsize]>,
    /// Still owned by a live handle? Records of dropped handles are
    /// retained in the registry until their hazards are provably clear,
    /// then pruned lazily.
    active: AtomicBool,
}

struct HpInner {
    slots_per_thread: usize,
    scan_threshold: usize,
    threads: Mutex<Vec<Arc<HpThreadRec>>>,
    /// Retired lists inherited from exited threads.
    orphans: Mutex<Vec<RetiredRec>>,
    outstanding: AtomicUsize,
}

/// The hazard-pointer scheme.
pub struct HazardPointers {
    inner: Arc<HpInner>,
}

impl HazardPointers {
    /// `K = 8` slots per thread, scan threshold 64 — comfortable for the
    /// three evaluation structures (≤ 3 simultaneous references).
    pub fn new() -> Self {
        Self::with_params(8, 64)
    }

    /// Custom slot count and retired-list scan threshold.
    pub fn with_params(slots_per_thread: usize, scan_threshold: usize) -> Self {
        assert!(slots_per_thread >= 1);
        assert!(scan_threshold >= 1);
        Self {
            inner: Arc::new(HpInner {
                slots_per_thread,
                scan_threshold,
                threads: Mutex::new(Vec::new()),
                orphans: Mutex::new(Vec::new()),
                outstanding: AtomicUsize::new(0),
            }),
        }
    }
}

impl Default for HazardPointers {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-thread hazard-pointer handle.
pub struct HpHandle {
    inner: Arc<HpInner>,
    rec: Arc<HpThreadRec>,
    retired: RefCell<Vec<RetiredRec>>,
}

impl Smr for HazardPointers {
    type Handle = HpHandle;

    fn register(&self) -> HpHandle {
        let rec = Arc::new(HpThreadRec {
            hazards: (0..self.inner.slots_per_thread)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            active: AtomicBool::new(true),
        });
        self.inner.threads.lock().push(Arc::clone(&rec));
        HpHandle {
            inner: Arc::clone(&self.inner),
            rec,
            retired: RefCell::new(Vec::new()),
        }
    }

    fn name(&self) -> &'static str {
        "hazard"
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    fn quiesce(&self) {
        // Free whatever the orphan list holds that no hazard protects.
        scan_and_free(&self.inner, &mut Vec::new());
    }
}

/// Snapshot all hazards, then split `retired` + the orphan list into
/// freed-now vs still-protected (which go back to the orphan list).
fn scan_and_free(inner: &HpInner, retired: &mut Vec<RetiredRec>) {
    let mut protected: Vec<usize> = Vec::new();
    {
        let mut threads = inner.threads.lock();
        // Prune records of exited threads whose hazards are clear.
        threads.retain(|rec| {
            let live = rec.active.load(Ordering::Acquire)
                || rec.hazards.iter().any(|h| h.load(Ordering::Acquire) != 0);
            live
        });
        for rec in threads.iter() {
            for h in rec.hazards.iter() {
                let v = h.load(Ordering::Acquire);
                if v != 0 {
                    protected.push(v);
                }
            }
        }
    }
    protected.sort_unstable();

    let mut work = std::mem::take(retired);
    work.append(&mut inner.orphans.lock());
    let mut kept = Vec::new();
    let mut freed = 0usize;
    for rec in work {
        if protected.binary_search(&rec.addr).is_ok() {
            kept.push(rec);
        } else {
            // SAFETY: the node is unlinked (retire contract) and no thread
            // currently publishes a hazard for it; Michael's argument
            // guarantees no thread can regain access.
            unsafe { (rec.drop_fn)(rec.addr as *mut u8) };
            freed += 1;
        }
    }
    inner.outstanding.fetch_sub(freed, Ordering::Relaxed);
    inner.orphans.lock().append(&mut kept);
}

impl SmrHandle for HpHandle {
    #[inline]
    fn end_op(&self) {
        // Releasing all protections at operation end keeps the paper's
        // cost model: protection is per-reference during traversal.
        for h in self.rec.hazards.iter() {
            if h.load(Ordering::Relaxed) != 0 {
                h.store(0, Ordering::Release);
            }
        }
    }

    #[inline]
    fn load_protected(&self, slot: usize, src: &AtomicPtr<u8>) -> *mut u8 {
        // Structures must budget their slots against `protection_slots()`
        // up front; an out-of-range slot is a caller bug, never a cue to
        // grow the (fixed, scanned-by-reclaimers) hazard array.
        debug_assert!(
            slot < self.inner.slots_per_thread,
            "hazard slot {slot} out of range: this handle has {} protection slots",
            self.inner.slots_per_thread
        );
        let hazard = &self.rec.hazards[slot];
        loop {
            let p = src.load(Ordering::Acquire);
            let clean = (p as usize) & !TAG_MASK;
            if clean == 0 {
                hazard.store(0, Ordering::Release);
                return p;
            }
            // Relaxed from `Release` (scenario: `hazard_protect_vs_retire`,
            // crates/simthread/tests/exhaustive.rs): the slot carries no
            // payload anyone reads through — reclaimers only compare the
            // address — so there is nothing for `Release` to publish. The
            // ordering that matters is publication-before-revalidation,
            // and that is exactly what the `SeqCst` fence below provides
            // (the store cannot sink past it, the validating load cannot
            // hoist above it).
            hazard.store(clean, Ordering::Relaxed);
            // The fence the paper charges hazard pointers for: makes the
            // hazard publication visible before the validating re-read.
            fence(Ordering::SeqCst);
            if src.load(Ordering::Acquire) == p {
                return p;
            }
            // Source changed: retry (the node we protected may already be
            // unlinked; protecting it is harmless, using it is not).
        }
    }

    unsafe fn retire(&self, addr: usize, _size: usize, drop_fn: DropFn) {
        debug_assert_eq!(addr & TAG_MASK, 0, "retired addresses must be untagged");
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        let mut retired = self.retired.borrow_mut();
        retired.push(RetiredRec { addr, drop_fn });
        if retired.len() >= self.inner.scan_threshold {
            scan_and_free(&self.inner, &mut retired);
        }
    }

    fn protection_slots(&self) -> Option<usize> {
        Some(self.inner.slots_per_thread)
    }
}

impl Drop for HpHandle {
    fn drop(&mut self) {
        for h in self.rec.hazards.iter() {
            h.store(0, Ordering::Release);
        }
        self.rec.active.store(false, Ordering::Release);
        // Bequeath the retired list (Michael's "thread exit" case).
        let mut retired = self.retired.borrow_mut();
        scan_and_free(&self.inner, &mut retired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::retire_box;
    use std::sync::atomic::AtomicUsize as Counter;

    struct Probe {
        drops: Arc<Counter>,
    }
    impl Drop for Probe {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }
    fn probe(drops: &Arc<Counter>) -> *mut Probe {
        Box::into_raw(Box::new(Probe {
            drops: Arc::clone(drops),
        }))
    }

    #[test]
    fn unprotected_nodes_free_at_threshold() {
        let drops = Arc::new(Counter::new(0));
        let scheme = HazardPointers::with_params(4, 8);
        let handle = scheme.register();
        for _ in 0..8 {
            unsafe { retire_box(&handle, probe(&drops)) };
        }
        assert_eq!(drops.load(Ordering::SeqCst), 8);
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn hazard_protects_node_across_scan() {
        let drops = Arc::new(Counter::new(0));
        let scheme = HazardPointers::with_params(4, 4);
        let writer = scheme.register();
        let reader = scheme.register();

        let p = probe(&drops);
        let shared = AtomicPtr::new(p.cast::<u8>());
        // Reader protects the node.
        let got = reader.load_protected(0, &shared);
        assert_eq!(got, p.cast::<u8>());

        // Writer unlinks and retires it plus filler to force two scans
        // (threshold 4: pinned+3 fillers scan once, 4 more scan again).
        shared.store(std::ptr::null_mut(), Ordering::Release);
        unsafe { retire_box(&writer, p) };
        for _ in 0..7 {
            unsafe { retire_box(&writer, probe(&drops)) };
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            7,
            "only unprotected nodes may be freed"
        );
        assert_eq!(scheme.outstanding(), 1);

        // Reader finishes its operation: protection released.
        reader.end_op();
        for _ in 0..4 {
            unsafe { retire_box(&writer, probe(&drops)) };
        }
        assert_eq!(drops.load(Ordering::SeqCst), 12);
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn tagged_pointer_protection_uses_untagged_address() {
        let drops = Arc::new(Counter::new(0));
        let scheme = HazardPointers::with_params(2, 2);
        let reader = scheme.register();
        let p = probe(&drops);
        // Publish a tagged pointer (simulating a Harris mark bit).
        let tagged = ((p as usize) | 1) as *mut u8;
        let shared = AtomicPtr::new(tagged);
        let got = reader.load_protected(0, &shared);
        assert_eq!(got as usize, p as usize | 1, "tag preserved for caller");
        assert_eq!(
            reader.rec.hazards[0].load(Ordering::SeqCst),
            p as usize,
            "hazard slot holds the untagged address"
        );
        unsafe { drop(Box::from_raw(p)) };
    }

    #[test]
    fn handle_drop_bequeaths_retired_nodes() {
        let drops = Arc::new(Counter::new(0));
        let scheme = HazardPointers::with_params(2, 1000);
        let reader = scheme.register();
        {
            let writer = scheme.register();
            let pinned = probe(&drops);
            let shared = AtomicPtr::new(pinned.cast::<u8>());
            let _ = reader.load_protected(0, &shared);
            unsafe { retire_box(&writer, pinned) };
            unsafe { retire_box(&writer, probe(&drops)) };
            // writer exits with 2 retired nodes; the pinned one survives.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        reader.end_op();
        scheme.quiesce();
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn concurrent_traffic_frees_everything_eventually() {
        let drops = Arc::new(Counter::new(0));
        let scheme = Arc::new(HazardPointers::with_params(4, 16));
        let total = Arc::new(Counter::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let scheme = Arc::clone(&scheme);
                let drops = Arc::clone(&drops);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    let handle = scheme.register();
                    for _ in 0..500 {
                        unsafe { retire_box(&handle, probe(&drops)) };
                        total.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        scheme.quiesce();
        assert_eq!(drops.load(Ordering::SeqCst), total.load(Ordering::SeqCst));
        assert_eq!(scheme.outstanding(), 0);
    }
}
