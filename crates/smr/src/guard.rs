//! RAII operation guards — the safe face of the reclamation hooks.
//!
//! Data-structure code used to call [`SmrHandle::begin_op`] /
//! [`SmrHandle::end_op`] by hand, which made a missing or doubled
//! `end_op` a silent protection bug in every caller. [`Guard`] makes the
//! bracket un-forgettable: [`SmrHandle::pin`] opens the operation and the
//! guard's `Drop` closes it, so every early `return`, `?`, `break`, or
//! panic unwinds through `end_op` automatically. All per-reference work
//! ([`Guard::load`]) and retirement ([`Guard::retire`],
//! [`Guard::retire_box`]) goes through the guard, which proves by
//! construction that it happens inside an open operation.
//!
//! The guard layer is zero-cost in release builds: [`Guard`] is a
//! `&Handle` wrapper whose methods forward straight to the scheme hooks
//! (debug builds additionally track pin nesting, see below).
//!
//! # Nesting
//!
//! Nested pins of the *same* handle are a programming error: schemes like
//! epoch-based reclamation clear their "active" announcement in `end_op`,
//! so an inner guard's drop would strip protection from the still-running
//! outer operation. Debug builds detect this and **panic** with a clear
//! message; release builds omit the check (the structures in this
//! workspace pin exactly once per operation). Pinning two *different*
//! handles on one thread is fine.
//!
//! # Leaks
//!
//! `mem::forget`-ing a guard never causes unsoundness — the operation
//! simply stays open forever. For epoch-style schemes that pins the
//! global epoch and stalls all reclamation (see the
//! `leaked_guard_keeps_the_epoch_pinned` test), which is the conservative
//! failure direction: memory is withheld, never freed early.

use core::marker::PhantomData;
use core::sync::atomic::AtomicPtr;

use crate::api::{DropFn, SmrHandle};

#[cfg(debug_assertions)]
mod nesting {
    use std::cell::RefCell;

    thread_local! {
        /// Addresses of the handles currently pinned by this thread.
        static ACTIVE_PINS: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn enter(handle_addr: usize) {
        ACTIVE_PINS.with(|pins| {
            let mut pins = pins.borrow_mut();
            assert!(
                !pins.contains(&handle_addr),
                "nested pin() on the same SmrHandle: the inner guard's drop would \
                 end the outer operation's protection; pin once per operation \
                 (or use a second handle)"
            );
            pins.push(handle_addr);
        });
    }

    pub(super) fn exit(handle_addr: usize) {
        ACTIVE_PINS.with(|pins| {
            let mut pins = pins.borrow_mut();
            if let Some(i) = pins.iter().rposition(|&a| a == handle_addr) {
                pins.swap_remove(i);
            }
        });
    }
}

/// An open data-structure operation on one [`SmrHandle`].
///
/// Created by [`SmrHandle::pin`]; calls the scheme's `begin_op` hook on
/// creation and `end_op` on drop. While the guard lives, pointers loaded
/// through [`Guard::load`] stay valid per the scheme's contract.
///
/// Not `Send`: like the handle it borrows, a guard is bound to the
/// registering thread (schemes publish per-thread state in `begin_op`).
///
/// ```
/// use ts_smr::{Leaky, Smr, SmrHandle};
/// use std::sync::atomic::AtomicPtr;
///
/// let scheme = Leaky::new();
/// let handle = scheme.register();
/// let slot = AtomicPtr::new(Box::into_raw(Box::new(7u64)));
///
/// let guard = handle.pin();            // begin_op
/// let p = guard.load(0, &slot);        // protected load
/// assert_eq!(unsafe { *p }, 7);
/// drop(guard);                         // end_op — protection released
/// # unsafe { drop(Box::from_raw(slot.into_inner())) };
/// ```
///
/// A guard cannot cross threads:
///
/// ```compile_fail
/// use ts_smr::{Leaky, Smr, SmrHandle};
/// fn assert_send<T: Send>(_: T) {}
/// let scheme = Leaky::new();
/// let handle = scheme.register();
/// assert_send(handle.pin()); // ERROR: `Guard` is `!Send`
/// ```
#[must_use = "dropping the guard immediately ends the operation; bind it for the operation's duration"]
pub struct Guard<'h, H: SmrHandle + ?Sized> {
    handle: &'h H,
    /// `*mut ()` strips `Send`/`Sync`: the guard is thread-bound.
    _not_send: PhantomData<*mut ()>,
}

impl<'h, H: SmrHandle + ?Sized> Guard<'h, H> {
    /// Opens an operation: calls `begin_op` and arms the drop bracket.
    /// Prefer the [`SmrHandle::pin`] method.
    pub fn enter(handle: &'h H) -> Self {
        #[cfg(debug_assertions)]
        nesting::enter((handle as *const H).cast::<()>() as usize);
        handle.begin_op();
        Self {
            handle,
            _not_send: PhantomData,
        }
    }

    /// Loads `src` as a protected reference, valid until the guard drops
    /// (or until the next `load` on the same `slot` under hazard-style
    /// schemes). See [`SmrHandle::load_protected`] for the slot contract;
    /// the pointer type is generic so callers need no casts.
    #[inline]
    pub fn load<T>(&self, slot: usize, src: &AtomicPtr<T>) -> *mut T {
        // SAFETY: `AtomicPtr<T>` and `AtomicPtr<u8>` are both transparent
        // wrappers over a thin raw pointer; reinterpreting the *reference*
        // only erases the pointee type, which `load_protected` never
        // dereferences.
        let erased = unsafe { &*(src as *const AtomicPtr<T>).cast::<AtomicPtr<u8>>() };
        self.handle.load_protected(slot, erased).cast::<T>()
    }

    /// Retires an unlinked allocation through the scheme. Contract as in
    /// [`SmrHandle::retire`].
    ///
    /// # Safety
    ///
    /// * `addr` points to a live allocation of `size` bytes, unreachable
    ///   from shared memory, retired at most once (across all handles).
    /// * `drop_fn(addr as *mut u8)` is sound to call exactly once.
    #[inline]
    pub unsafe fn retire(&self, addr: usize, size: usize, drop_fn: DropFn) {
        self.handle.retire(addr, size, drop_fn);
    }

    /// Retires a `Box<T>` allocation through the scheme.
    ///
    /// # Safety
    ///
    /// `ptr` came from `Box::into_raw`, is unreachable from shared memory,
    /// and is retired at most once.
    #[inline]
    pub unsafe fn retire_box<T>(&self, ptr: *mut T) {
        crate::api::retire_box(self.handle, ptr);
    }

    /// The handle's protection-slot budget (see
    /// [`SmrHandle::protection_slots`]).
    #[inline]
    pub fn protection_slots(&self) -> Option<usize> {
        self.handle.protection_slots()
    }

    /// The underlying handle (scheme-specific extensions).
    #[inline]
    pub fn handle(&self) -> &H {
        self.handle
    }
}

impl<H: SmrHandle + ?Sized> Drop for Guard<'_, H> {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        nesting::exit((self.handle as *const H).cast::<()>() as usize);
        self.handle.end_op();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Smr;
    use crate::epoch::EpochScheme;
    use crate::leaky::Leaky;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct Probe(Arc<AtomicUsize>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn guard_brackets_the_operation() {
        // Epoch announces "active" in begin_op and clears it in end_op;
        // observe both transitions through the guard. Threshold 2: every
        // other retire attempts an epoch advance + expiry.
        let scheme = EpochScheme::with_threshold(2);
        let observer = scheme.register();
        let worker = scheme.register();
        let drops = Arc::new(AtomicUsize::new(0));

        let pin = worker.pin(); // worker announces an epoch and stays active
        for _ in 0..8 {
            let g = observer.pin();
            unsafe { g.retire_box(Box::into_raw(Box::new(Probe(Arc::clone(&drops))))) };
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "an open guard must pin the epoch"
        );
        drop(pin); // end_op: worker goes inactive
        drop(observer); // bequeath the local bag so quiesce can drain it
        scheme.quiesce();
        assert_eq!(drops.load(Ordering::SeqCst), 8, "drop released the pin");
    }

    #[test]
    fn load_is_typed() {
        let scheme = Leaky::new();
        let h = scheme.register();
        let b = Box::into_raw(Box::new(41u64));
        let slot = AtomicPtr::new(b);
        let g = h.pin();
        let p: *mut u64 = g.load(0, &slot);
        assert_eq!(unsafe { *p }, 41);
        drop(g);
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn sequential_pins_on_one_handle_are_fine() {
        let scheme = Leaky::new();
        let h = scheme.register();
        for _ in 0..3 {
            let _g = h.pin();
        }
    }

    #[test]
    fn two_handles_may_pin_concurrently_on_one_thread() {
        let scheme = Leaky::new();
        let a = scheme.register();
        let b = scheme.register();
        let _ga = a.pin();
        let _gb = b.pin(); // distinct handle: allowed
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "nested pin() on the same SmrHandle")]
    fn nested_pin_on_one_handle_panics_in_debug() {
        let scheme = Leaky::new();
        let h = scheme.register();
        let _outer = h.pin();
        let _inner = h.pin(); // panics
    }

    #[test]
    fn leaked_guard_keeps_the_epoch_pinned() {
        let scheme = EpochScheme::with_threshold(4);
        let pinner = scheme.register();
        let worker = scheme.register();
        let drops = Arc::new(AtomicUsize::new(0));

        // Leak the guard: the operation never ends.
        std::mem::forget(pinner.pin());

        for _ in 0..32 {
            let g = worker.pin();
            unsafe { g.retire_box(Box::into_raw(Box::new(Probe(Arc::clone(&drops))))) };
        }
        scheme.quiesce();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "a leaked guard must keep the epoch pinned: nothing may free"
        );
        // The conservative failure mode is a leak, never a premature free.
        assert_eq!(scheme.outstanding(), 32);
        // (The 32 nodes are intentionally leaked: the forgotten guard pins
        // them forever. Keep the count small.)
    }
}
