//! Object-safe, type-erased view of the reclamation API.
//!
//! The generic [`Smr`]/[`SmrHandle`] pair is what data structures
//! monomorphize against — zero-cost, but each (scheme × structure)
//! combination is a distinct concrete type, which forces harness code
//! into nested dispatch matches. This module erases the scheme behind
//! trait objects so a harness can hold *any* scheme as one type:
//!
//! * [`DynSmr`] / [`DynHandle`] — object-safe mirrors of
//!   [`Smr`]/[`SmrHandle`]. Every `S: Smr` implements `DynSmr` through a
//!   blanket impl (the associated `Handle` type is erased behind
//!   `Box<dyn DynHandle>`), so `Arc<dyn DynSmr>` can name any scheme.
//! * [`ErasedSmr`] — an adapter *back* to [`Smr`], so generic structures
//!   (`HarrisList<S>`, …) can be driven through an `Arc<dyn DynSmr>`
//!   chosen at runtime. Its hooks cost one virtual call each, which is
//!   why the erased layer is meant for harness/registry plumbing; code
//!   that cares about per-read cost should stay generic.
//! * [`DynSmr::as_any`] — downcast access to the concrete scheme, for
//!   scheme-specific reporting (e.g. ThreadScan collector statistics)
//!   without reintroducing a scheme match at every call site.
//!
//! ```
//! use std::sync::Arc;
//! use ts_smr::dynamic::{DynSmr, ErasedSmr};
//! use ts_smr::{EpochScheme, Leaky, Smr, SmrHandle};
//!
//! // A runtime-chosen scheme, one static type:
//! let schemes: Vec<Arc<dyn DynSmr>> = vec![
//!     Arc::new(Leaky::new()),
//!     Arc::new(EpochScheme::new()),
//! ];
//! for scheme in schemes {
//!     let erased = ErasedSmr::new(Arc::clone(&scheme));
//!     let handle = erased.register(); // Box<dyn DynHandle> inside
//!     let guard = handle.pin();       // the guard API works unchanged
//!     drop(guard);
//!     assert_eq!(Smr::name(&erased), scheme.name());
//! }
//! ```

use std::any::Any;
use std::sync::atomic::AtomicPtr;
use std::sync::Arc;

use crate::api::{DropFn, Smr, SmrHandle};

/// Object-safe mirror of [`SmrHandle`]: per-thread reclamation hooks
/// behind a vtable.
///
/// Implemented for every [`SmrHandle`] by a blanket impl; user code never
/// implements this directly.
pub trait DynHandle {
    /// See [`SmrHandle::begin_op`].
    fn begin_op(&self);
    /// See [`SmrHandle::end_op`].
    fn end_op(&self);
    /// See [`SmrHandle::load_protected`].
    fn load_protected(&self, slot: usize, src: &AtomicPtr<u8>) -> *mut u8;
    /// See [`SmrHandle::retire`].
    ///
    /// # Safety
    ///
    /// Same contract as [`SmrHandle::retire`].
    unsafe fn retire(&self, addr: usize, size: usize, drop_fn: DropFn);
    /// See [`SmrHandle::protection_slots`].
    fn protection_slots(&self) -> Option<usize>;
}

impl<H: SmrHandle> DynHandle for H {
    fn begin_op(&self) {
        SmrHandle::begin_op(self);
    }
    fn end_op(&self) {
        SmrHandle::end_op(self);
    }
    fn load_protected(&self, slot: usize, src: &AtomicPtr<u8>) -> *mut u8 {
        SmrHandle::load_protected(self, slot, src)
    }
    unsafe fn retire(&self, addr: usize, size: usize, drop_fn: DropFn) {
        SmrHandle::retire(self, addr, size, drop_fn);
    }
    fn protection_slots(&self) -> Option<usize> {
        SmrHandle::protection_slots(self)
    }
}

/// Object-safe mirror of [`Smr`]: a reclamation scheme behind a vtable.
///
/// Implemented for every [`Smr`] by a blanket impl, so any scheme can be
/// held as `Arc<dyn DynSmr>` — the registry currency of benchmark
/// harnesses. To drive *generic* data structures with one, wrap it in
/// [`ErasedSmr`].
pub trait DynSmr: Send + Sync {
    /// Registers the calling thread; the handle is type-erased.
    fn register_dyn(&self) -> Box<dyn DynHandle>;
    /// See [`Smr::name`].
    fn name(&self) -> &'static str;
    /// See [`Smr::outstanding`].
    fn outstanding(&self) -> usize;
    /// See [`Smr::quiesce`].
    fn quiesce(&self);
    /// The concrete scheme, for downcast-based scheme-specific reporting
    /// (`scheme.as_any().downcast_ref::<ThreadScanSmr<_>>()`).
    fn as_any(&self) -> &dyn Any;
}

impl<S: Smr> DynSmr for S {
    fn register_dyn(&self) -> Box<dyn DynHandle> {
        Box::new(self.register())
    }
    fn name(&self) -> &'static str {
        Smr::name(self)
    }
    fn outstanding(&self) -> usize {
        Smr::outstanding(self)
    }
    fn quiesce(&self) {
        Smr::quiesce(self);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A runtime-chosen scheme adapted back to the generic [`Smr`] interface.
///
/// `HarrisList<ErasedSmr>` (or any `T<S: Smr>`) monomorphizes *once* and
/// then runs under whichever scheme the wrapped `Arc<dyn DynSmr>` holds;
/// each hook pays one virtual call. This is the type harness registries
/// drive — the cross product of schemes and structures collapses to one
/// instantiation per structure.
pub struct ErasedSmr {
    inner: Arc<dyn DynSmr>,
}

impl ErasedSmr {
    /// Wraps a type-erased scheme.
    pub fn new(inner: Arc<dyn DynSmr>) -> Self {
        Self { inner }
    }

    /// The wrapped scheme.
    pub fn inner(&self) -> &Arc<dyn DynSmr> {
        &self.inner
    }
}

/// Type-erased per-thread handle used by [`ErasedSmr`].
pub struct ErasedHandle {
    inner: Box<dyn DynHandle>,
}

impl Smr for ErasedSmr {
    type Handle = ErasedHandle;

    fn register(&self) -> ErasedHandle {
        ErasedHandle {
            inner: self.inner.register_dyn(),
        }
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding()
    }

    fn quiesce(&self) {
        self.inner.quiesce();
    }
}

impl SmrHandle for ErasedHandle {
    #[inline]
    fn begin_op(&self) {
        self.inner.begin_op();
    }
    #[inline]
    fn end_op(&self) {
        self.inner.end_op();
    }
    #[inline]
    fn load_protected(&self, slot: usize, src: &AtomicPtr<u8>) -> *mut u8 {
        self.inner.load_protected(slot, src)
    }
    #[inline]
    unsafe fn retire(&self, addr: usize, size: usize, drop_fn: DropFn) {
        self.inner.retire(addr, size, drop_fn);
    }
    #[inline]
    fn protection_slots(&self) -> Option<usize> {
        self.inner.protection_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochScheme;
    use crate::hazard::HazardPointers;
    use crate::leaky::Leaky;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Probe(Arc<AtomicUsize>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn blanket_impl_erases_any_scheme() {
        let schemes: Vec<Arc<dyn DynSmr>> = vec![
            Arc::new(Leaky::new()),
            Arc::new(EpochScheme::with_threshold(4)),
            Arc::new(HazardPointers::with_params(4, 4)),
        ];
        assert_eq!(
            schemes.iter().map(|s| s.name()).collect::<Vec<_>>(),
            ["leaky", "epoch", "hazard"]
        );
    }

    #[test]
    fn erased_scheme_reclaims_like_the_concrete_one() {
        let drops = Arc::new(AtomicUsize::new(0));
        let erased = ErasedSmr::new(Arc::new(EpochScheme::with_threshold(4)));
        {
            let h = erased.register();
            for _ in 0..16 {
                let g = h.pin();
                unsafe { g.retire_box(Box::into_raw(Box::new(Probe(Arc::clone(&drops))))) };
            }
        }
        // UFCS: `ErasedSmr` implements both `Smr` and (via the blanket
        // impl) `DynSmr`, whose methods share names.
        Smr::quiesce(&erased);
        assert_eq!(drops.load(Ordering::SeqCst), 16);
        assert_eq!(Smr::outstanding(&erased), 0);
    }

    #[test]
    fn erased_handle_reports_real_protection_slots() {
        let erased = ErasedSmr::new(Arc::new(HazardPointers::with_params(6, 8)));
        assert_eq!(
            SmrHandle::protection_slots(&erased.register()),
            Some(6),
            "the hazard scheme's real slot budget survives erasure"
        );
        let unbounded = ErasedSmr::new(Arc::new(Leaky::new()));
        assert_eq!(SmrHandle::protection_slots(&unbounded.register()), None);
    }

    #[test]
    fn as_any_downcasts_to_the_concrete_scheme() {
        let scheme: Arc<dyn DynSmr> = Arc::new(Leaky::new());
        let leaky = scheme
            .as_any()
            .downcast_ref::<Leaky>()
            .expect("downcast to Leaky");
        assert_eq!(leaky.leaked(), 0);
        assert!(scheme.as_any().downcast_ref::<EpochScheme>().is_none());
    }
}
