//! # ts-smr — the reclamation schemes from the ThreadScan evaluation
//!
//! One trait ([`Smr`] / [`SmrHandle`]) and the five schemes of §6
//! "Techniques", each faithful to the cost model the paper assigns it:
//!
//! | scheme | per-read cost | per-op cost | retire cost |
//! |---|---|---|---|
//! | [`Leaky`] | none | none | counter bump (leak) |
//! | [`HazardPointers`] | publish + SeqCst fence + validate | clear slots | list push; scan at threshold |
//! | [`EpochScheme`] | none | two counter writes | bag push; advance at threshold |
//! | `EpochScheme::slow` | none | two writes (+40 ms stall for one errant thread) | as epoch |
//! | [`ThreadScanSmr`] | none | none | buffer push; signal round when full |
//! | [`StackTrackSim`] | release store into a window ring (no fence) | none | list push; asymmetric-fence scan at threshold |
//!
//! [`StackTrackSim`] is the §6-mentioned StackTrack comparator, emulated
//! without HTM (see its module docs and DESIGN.md §6).
//!
//! Data structures in `ts-structures` are written once against the trait
//! and get all five schemes for free — which is how the paper's Figure 3
//! and Figure 4 comparisons are produced.
//!
//! Operations are bracketed by the RAII [`Guard`] returned from
//! [`SmrHandle::pin`] (see [`guard`]); harnesses that pick schemes at
//! runtime hold them as `Arc<dyn DynSmr>` via the object-safe [`dynamic`]
//! layer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod dynamic;
pub mod epoch;
pub mod guard;
pub mod hazard;
pub mod leaky;
pub mod stacktrack;
pub mod threadscan_smr;

pub use api::{retire_box, DropFn, Smr, SmrHandle};
pub use dynamic::{DynHandle, DynSmr, ErasedHandle, ErasedSmr};
pub use epoch::{EpochHandle, EpochScheme};
pub use guard::Guard;
pub use hazard::{HazardPointers, HpHandle};
pub use leaky::{Leaky, LeakyHandle};
pub use stacktrack::{StHandle, StackTrackSim};
pub use threadscan_smr::{ThreadScanHandle, ThreadScanSmr};
