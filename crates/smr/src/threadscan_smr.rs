//! ThreadScan as an [`Smr`] scheme — §6 "Techniques" #5.
//!
//! The adapter makes the paper's headline property concrete in the type
//! system: **every per-read and per-operation hook is the trait's default
//! no-op**. Readers are invisible; the only instrumented call is `retire`,
//! which hands the node to the collector. All scanning happens inside
//! signal handlers, invisible to the data-structure code.

use std::sync::Arc;

use threadscan::{Collector, CollectorConfig, Platform, StatsSnapshot, ThreadHandle};

use crate::api::{DropFn, Smr, SmrHandle};

/// ThreadScan wrapped as a generic [`Smr`] scheme.
///
/// Generic over the collector [`Platform`]; benchmarks use
/// `ts_sigscan::SignalPlatform`, protocol tests can plug the simulated
/// platform in.
pub struct ThreadScanSmr<P: Platform> {
    collector: Arc<Collector<P>>,
}

impl<P: Platform> ThreadScanSmr<P> {
    /// Wraps a platform with the paper-default configuration.
    pub fn new(platform: P) -> Self {
        Self::with_config(platform, CollectorConfig::default())
    }

    /// Wraps a platform with an explicit collector configuration.
    pub fn with_config(platform: P, config: CollectorConfig) -> Self {
        Self {
            collector: Collector::with_config(platform, config),
        }
    }

    /// The underlying collector (statistics, forced collects).
    pub fn collector(&self) -> &Arc<Collector<P>> {
        &self.collector
    }

    /// Collector statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.collector.stats()
    }
}

/// Per-thread ThreadScan handle.
pub struct ThreadScanHandle<P: Platform> {
    handle: ThreadHandle<P>,
}

impl<P: Platform> ThreadScanHandle<P> {
    /// Access to the underlying collector handle (heap-block extension).
    pub fn inner(&self) -> &ThreadHandle<P> {
        &self.handle
    }
}

impl<P: Platform> Smr for ThreadScanSmr<P> {
    type Handle = ThreadScanHandle<P>;

    fn register(&self) -> ThreadScanHandle<P> {
        ThreadScanHandle {
            handle: self.collector.register(),
        }
    }

    fn name(&self) -> &'static str {
        "threadscan"
    }

    fn outstanding(&self) -> usize {
        let s = self.collector.stats();
        s.retired.saturating_sub(s.freed)
    }

    fn quiesce(&self) {
        // Two phases: one to sweep, one to re-examine survivors whose
        // references died since the previous scan.
        self.collector.collect_now();
        self.collector.collect_now();
    }
}

impl<P: Platform> SmrHandle for ThreadScanHandle<P> {
    // begin_op / end_op / load_protected: the trait defaults — no-ops and a
    // plain Acquire load. That IS the contribution of the paper.

    unsafe fn retire(&self, addr: usize, size: usize, drop_fn: DropFn) {
        self.handle.retire_raw(addr, size, drop_fn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::retire_box;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use threadscan::NullPlatform;

    struct Probe(Arc<AtomicUsize>);
    impl Drop for Probe {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn adapter_routes_retires_to_the_collector() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = ThreadScanSmr::with_config(
            NullPlatform,
            CollectorConfig::default().with_buffer_capacity(4),
        );
        let handle = scheme.register();
        for _ in 0..4 {
            let p = Box::into_raw(Box::new(Probe(Arc::clone(&drops))));
            unsafe { retire_box(&handle, p) };
        }
        assert_eq!(drops.load(Ordering::SeqCst), 4, "buffer fill collected");
        assert_eq!(scheme.outstanding(), 0);
        assert_eq!(scheme.stats().collects, 1);
        assert_eq!(scheme.name(), "threadscan");
    }

    #[test]
    fn quiesce_flushes_partial_buffers() {
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = ThreadScanSmr::new(NullPlatform);
        let handle = scheme.register();
        let p = Box::into_raw(Box::new(Probe(Arc::clone(&drops))));
        unsafe { retire_box(&handle, p) };
        assert_eq!(drops.load(Ordering::SeqCst), 0, "buffer not yet full");
        scheme.quiesce();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }
}
