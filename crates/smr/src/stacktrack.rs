//! StackTrack-style precise tracking (Alistarh et al., EuroSys 2014) —
//! the fourth comparator mentioned in the paper's §6 text.
//!
//! Real StackTrack wraps operation segments in **hardware transactions**:
//! readers track the nodes they touch with plain writes, and the HTM
//! machinery guarantees the reclaimer observes a consistent view — the
//! *reclaimer* pays for synchronization, readers stay cheap. HTM is not
//! available here (neither on this hardware nor in stable Rust), so this
//! emulation preserves the property with a different mechanism
//! (substitution documented in DESIGN.md):
//!
//! * each thread records every traversed node in a fixed **window ring**
//!   with plain release stores — no fences, no validation loop re-fencing;
//! * the reclaimer, before scanning the rings, executes a process-wide
//!   `membarrier(2)` (asymmetric fence): every reader's pending ring
//!   stores become visible before the scan reads them, restoring the
//!   HP-style publication guarantee without per-read fences (the same
//!   trick production hazard-pointer implementations use);
//! * when `membarrier` is unavailable the per-read path falls back to a
//!   SeqCst fence (degrading to hazard-pointer cost).
//!
//! The window emulates StackTrack's transaction *segments*: only a
//! bounded suffix of touched nodes is considered live, exactly like a
//! committed segment dropping its dead references. The evaluation
//! structures hold at most a handful of simultaneous references, far
//! below the default window of 128.

use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::api::{DropFn, Smr, SmrHandle};

const TAG_MASK: usize = 0b111;

// Linux membarrier commands (not exposed as libc constants everywhere).
const MEMBARRIER_CMD_PRIVATE_EXPEDITED: libc::c_int = 1 << 3;
const MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED: libc::c_int = 1 << 4;

fn membarrier(cmd: libc::c_int) -> bool {
    // SAFETY: plain syscall with integer args.
    unsafe { libc::syscall(libc::SYS_membarrier, cmd, 0, 0) == 0 }
}

struct RetiredRec {
    addr: usize,
    drop_fn: DropFn,
}

struct StRec {
    /// Window ring of recently traversed node addresses.
    ring: Box<[AtomicUsize]>,
    /// Monotonic write position (slot = head % window).
    head: AtomicUsize,
    /// Owner handle still alive?
    live: std::sync::atomic::AtomicBool,
}

struct StInner {
    window: usize,
    scan_threshold: usize,
    threads: Mutex<Vec<Arc<StRec>>>,
    orphans: Mutex<Vec<RetiredRec>>,
    outstanding: AtomicUsize,
    /// Asymmetric fences available?
    membarrier_ok: bool,
}

/// The StackTrack-style scheme.
pub struct StackTrackSim {
    inner: Arc<StInner>,
}

impl StackTrackSim {
    /// Window 128, scan threshold 128.
    pub fn new() -> Self {
        Self::with_params(128, 128)
    }

    /// Custom window (segment size) and retired-list scan threshold.
    pub fn with_params(window: usize, scan_threshold: usize) -> Self {
        assert!(window >= 4);
        assert!(scan_threshold >= 1);
        let membarrier_ok = membarrier(MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED);
        Self {
            inner: Arc::new(StInner {
                window,
                scan_threshold,
                threads: Mutex::new(Vec::new()),
                orphans: Mutex::new(Vec::new()),
                outstanding: AtomicUsize::new(0),
                membarrier_ok,
            }),
        }
    }

    /// Whether the asymmetric-fence fast path is active.
    pub fn uses_membarrier(&self) -> bool {
        self.inner.membarrier_ok
    }
}

impl Default for StackTrackSim {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-thread StackTrack handle.
pub struct StHandle {
    inner: Arc<StInner>,
    rec: Arc<StRec>,
    retired: RefCell<Vec<RetiredRec>>,
}

impl Smr for StackTrackSim {
    type Handle = StHandle;

    fn register(&self) -> StHandle {
        let rec = Arc::new(StRec {
            ring: (0..self.inner.window)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            head: AtomicUsize::new(0),
            live: std::sync::atomic::AtomicBool::new(true),
        });
        self.inner.threads.lock().push(Arc::clone(&rec));
        StHandle {
            inner: Arc::clone(&self.inner),
            rec,
            retired: RefCell::new(Vec::new()),
        }
    }

    fn name(&self) -> &'static str {
        "stacktrack"
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    fn quiesce(&self) {
        scan_and_free(&self.inner, &mut Vec::new());
    }
}

/// Reclaimer-side scan: asymmetric fence, snapshot every ring, free
/// retired nodes that appear in no window.
fn scan_and_free(inner: &StInner, retired: &mut Vec<RetiredRec>) {
    // The reclaimer pays for consistency (the StackTrack property): make
    // every reader's ring stores visible before reading the rings.
    if inner.membarrier_ok {
        membarrier(MEMBARRIER_CMD_PRIVATE_EXPEDITED);
    }
    fence(Ordering::SeqCst);

    let mut protected: Vec<usize> = Vec::new();
    {
        let mut threads = inner.threads.lock();
        threads.retain(|r| r.live.load(Ordering::Acquire) || Arc::strong_count(r) > 1);
        for rec in threads.iter() {
            for w in rec.ring.iter() {
                let v = w.load(Ordering::Acquire);
                if v != 0 {
                    protected.push(v);
                }
            }
        }
    }
    protected.sort_unstable();
    protected.dedup();

    let mut work = std::mem::take(retired);
    work.append(&mut inner.orphans.lock());
    let mut kept = Vec::new();
    let mut freed = 0usize;
    for rec in work {
        if protected.binary_search(&rec.addr).is_ok() {
            kept.push(rec);
        } else {
            // SAFETY: unlinked (retire contract) and in no thread's
            // tracked window after the asymmetric fence.
            unsafe { (rec.drop_fn)(rec.addr as *mut u8) };
            freed += 1;
        }
    }
    inner.outstanding.fetch_sub(freed, Ordering::Relaxed);
    inner.orphans.lock().append(&mut kept);
}

impl SmrHandle for StHandle {
    #[inline]
    fn load_protected(&self, _slot: usize, src: &std::sync::atomic::AtomicPtr<u8>) -> *mut u8 {
        loop {
            let p = src.load(Ordering::Acquire);
            let clean = (p as usize) & !TAG_MASK;
            if clean == 0 {
                return p;
            }
            // Record in the window ring: a release store, no fence — the
            // reclaimer's membarrier makes it visible in time.
            let h = self.rec.head.load(Ordering::Relaxed);
            self.rec.ring[h % self.inner.window].store(clean, Ordering::Release);
            self.rec.head.store(h.wrapping_add(1), Ordering::Release);
            if !self.inner.membarrier_ok {
                // Fallback: no asymmetric fence available; pay the
                // hazard-pointer price.
                fence(Ordering::SeqCst);
            }
            if src.load(Ordering::Acquire) == p {
                return p;
            }
        }
    }

    unsafe fn retire(&self, addr: usize, _size: usize, drop_fn: DropFn) {
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        let mut retired = self.retired.borrow_mut();
        retired.push(RetiredRec { addr, drop_fn });
        if retired.len() >= self.inner.scan_threshold {
            scan_and_free(&self.inner, &mut retired);
        }
    }

    fn protection_slots(&self) -> Option<usize> {
        // The window is shared; "slots" are effectively the window size.
        Some(self.inner.window)
    }
}

impl Drop for StHandle {
    fn drop(&mut self) {
        for w in self.rec.ring.iter() {
            w.store(0, Ordering::Release);
        }
        self.rec.live.store(false, Ordering::Release);
        let mut retired = self.retired.borrow_mut();
        scan_and_free(&self.inner, &mut retired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::retire_box;
    use std::sync::atomic::{AtomicPtr, AtomicUsize as Counter};

    struct Probe {
        drops: Arc<Counter>,
    }
    impl Drop for Probe {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }
    fn probe(drops: &Arc<Counter>) -> *mut Probe {
        Box::into_raw(Box::new(Probe {
            drops: Arc::clone(drops),
        }))
    }

    #[test]
    fn reports_membarrier_status() {
        let s = StackTrackSim::new();
        // Either path must work; just exercise the probe.
        let _ = s.uses_membarrier();
    }

    #[test]
    fn unprotected_nodes_free_at_threshold() {
        let drops = Arc::new(Counter::new(0));
        let s = StackTrackSim::with_params(16, 8);
        let h = s.register();
        for _ in 0..8 {
            unsafe { retire_box(&h, probe(&drops)) };
        }
        assert_eq!(drops.load(Ordering::SeqCst), 8);
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn windowed_reference_protects_node() {
        let drops = Arc::new(Counter::new(0));
        let s = StackTrackSim::with_params(16, 4);
        let reader = s.register();
        let writer = s.register();

        let p = probe(&drops);
        let shared = AtomicPtr::new(p.cast::<u8>());
        let got = reader.load_protected(0, &shared);
        assert_eq!(got, p.cast::<u8>());

        shared.store(std::ptr::null_mut(), Ordering::Release);
        unsafe { retire_box(&writer, p) };
        for _ in 0..3 {
            unsafe { retire_box(&writer, probe(&drops)) };
        }
        assert_eq!(drops.load(Ordering::SeqCst), 3, "windowed node survives");
        assert_eq!(s.outstanding(), 1);

        // Age the reference out of the window (16 more recordings).
        let noise = probe(&drops);
        let noise_shared = AtomicPtr::new(noise.cast::<u8>());
        for _ in 0..16 {
            reader.load_protected(0, &noise_shared);
        }
        for _ in 0..4 {
            unsafe { retire_box(&writer, probe(&drops)) };
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            3 + 4 + 1,
            "aged-out node reclaimed with the batch"
        );
        unsafe { drop(Box::from_raw(noise)) };
    }

    #[test]
    fn handle_drop_bequeaths_and_quiesce_drains() {
        let drops = Arc::new(Counter::new(0));
        let s = StackTrackSim::with_params(8, 1_000);
        {
            let h = s.register();
            for _ in 0..10 {
                unsafe { retire_box(&h, probe(&drops)) };
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10, "drop-time scan frees");
        s.quiesce();
        assert_eq!(s.outstanding(), 0);
    }

    #[test]
    fn concurrent_traffic_is_leak_free() {
        let drops = Arc::new(Counter::new(0));
        let s = Arc::new(StackTrackSim::with_params(32, 16));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                let drops = Arc::clone(&drops);
                scope.spawn(move || {
                    let h = s.register();
                    for _ in 0..1000 {
                        unsafe { retire_box(&h, probe(&drops)) };
                    }
                });
            }
        });
        s.quiesce();
        assert_eq!(drops.load(Ordering::SeqCst), 4000);
        assert_eq!(s.outstanding(), 0);
    }
}
