//! The `Leaky` baseline: no reclamation at all.
//!
//! §6 "Techniques" #1: "The original memory leaking data-structure
//! implementation without any memory reclamation." It is the performance
//! ceiling every real scheme is measured against — reads are invisible and
//! `free` is free (because it does nothing).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::api::{DropFn, Smr, SmrHandle};

/// No-op reclamation: retired nodes are intentionally leaked.
pub struct Leaky {
    leaked: Arc<AtomicUsize>,
    leaked_bytes: Arc<AtomicUsize>,
}

impl Leaky {
    /// Creates a leaky "scheme".
    pub fn new() -> Self {
        Self {
            leaked: Arc::new(AtomicUsize::new(0)),
            leaked_bytes: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Nodes leaked so far.
    pub fn leaked(&self) -> usize {
        self.leaked.load(Ordering::Relaxed)
    }

    /// Bytes leaked so far.
    pub fn leaked_bytes(&self) -> usize {
        self.leaked_bytes.load(Ordering::Relaxed)
    }
}

impl Default for Leaky {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-thread handle for [`Leaky`].
pub struct LeakyHandle {
    leaked: Arc<AtomicUsize>,
    leaked_bytes: Arc<AtomicUsize>,
}

impl Smr for Leaky {
    type Handle = LeakyHandle;

    fn register(&self) -> LeakyHandle {
        LeakyHandle {
            leaked: Arc::clone(&self.leaked),
            leaked_bytes: Arc::clone(&self.leaked_bytes),
        }
    }

    fn name(&self) -> &'static str {
        "leaky"
    }

    fn outstanding(&self) -> usize {
        self.leaked()
    }
}

impl SmrHandle for LeakyHandle {
    unsafe fn retire(&self, _addr: usize, size: usize, _drop_fn: DropFn) {
        // Deliberately never calls drop_fn.
        self.leaked.fetch_add(1, Ordering::Relaxed);
        self.leaked_bytes.fetch_add(size, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::retire_box;

    #[test]
    fn leaky_never_frees() {
        struct MustNotDrop(#[allow(dead_code)] [u8; 16]);
        impl Drop for MustNotDrop {
            fn drop(&mut self) {
                panic!("Leaky must never run destructors");
            }
        }
        let scheme = Leaky::new();
        let handle = scheme.register();
        let p = Box::into_raw(Box::new(MustNotDrop([0; 16])));
        unsafe { retire_box(&handle, p) };
        assert_eq!(scheme.leaked(), 1);
        assert_eq!(scheme.outstanding(), 1);
        assert!(scheme.leaked_bytes() >= 1);
        // The node is intentionally leaked (that is the scheme's point).
    }

    #[test]
    fn leak_counters_accumulate() {
        fn never(_p: *mut u8) {}
        let scheme = Leaky::new();
        let handle = scheme.register();
        for _ in 0..10 {
            let p = Box::into_raw(Box::new([0u8; 32]));
            unsafe { handle.retire(p as usize, 32, never) };
            unsafe { drop(Box::from_raw(p)) }; // retire didn't free; we do
        }
        assert_eq!(scheme.leaked(), 10);
        assert_eq!(scheme.leaked_bytes(), 320);
    }
}
