//! The common safe-memory-reclamation interface.
//!
//! The paper's evaluation (§6, "Techniques") runs each data structure under
//! five reclamation schemes. This trait pair is the seam that makes that
//! comparison possible with one data-structure implementation per shape:
//! the structure code calls these hooks, and each scheme gives them the
//! cost profile the paper describes:
//!
//! * `Leaky` — every hook is a no-op; nodes leak.
//! * `HazardPointers` — [`SmrHandle::load_protected`] publishes a hazard
//!   slot and fences **on every traversal step** (the per-read barrier the
//!   paper charges hazard pointers for).
//! * `Epoch` / `SlowEpoch` — [`SmrHandle::begin_op`] / [`SmrHandle::end_op`]
//!   bracket operations with two relaxed counter writes.
//! * `ThreadScan` — every per-read and per-op hook is a no-op (invisible
//!   readers!); only `retire` does work.

use std::sync::atomic::AtomicPtr;

use crate::guard::Guard;

/// Type-erased destructor, re-exported from the collector core.
pub type DropFn = unsafe fn(*mut u8);

/// A reclamation scheme. One instance guards one shared data structure
/// (or several, if desired).
pub trait Smr: Send + Sync + 'static {
    /// Per-thread state. Created once per accessing thread, dropped when
    /// the thread stops accessing the structure. (`'static` so handles
    /// can be type-erased behind `Box<dyn DynHandle>`; every handle owns
    /// its scheme state via `Arc` anyway.)
    type Handle: SmrHandle + 'static;

    /// Registers the calling thread.
    fn register(&self) -> Self::Handle;

    /// Human-readable scheme name (used by the benchmark harness).
    fn name(&self) -> &'static str;

    /// Nodes retired but not yet freed (best effort; diagnostics).
    fn outstanding(&self) -> usize {
        0
    }

    /// A quiescent-point hook: called by the harness between measurement
    /// phases so schemes can drain deferred work.
    fn quiesce(&self) {}
}

/// Per-thread reclamation hooks, implemented by schemes.
///
/// Not `Send`: bound to the registering thread.
///
/// Data-structure code should not call the raw `begin_op`/`end_op` hooks
/// directly — use [`SmrHandle::pin`], whose [`Guard`] brackets the
/// operation by RAII so an unmatched `end_op` is unrepresentable. The
/// hooks remain public because scheme *implementors* override them and
/// conformance suites exercise them.
pub trait SmrHandle {
    /// Opens a data-structure operation, returning an RAII [`Guard`] that
    /// calls [`begin_op`](Self::begin_op) now and
    /// [`end_op`](Self::end_op) on drop.
    ///
    /// Pinning the same handle again while a guard is live is a
    /// programming error (debug builds panic; see [`Guard`]'s module
    /// docs).
    #[inline]
    fn pin(&self) -> Guard<'_, Self> {
        Guard::enter(self)
    }

    /// Scheme hook: marks the start of a data-structure operation.
    /// Called by [`Guard`]; structures use [`pin`](Self::pin).
    #[inline]
    fn begin_op(&self) {}

    /// Scheme hook: marks the end of a data-structure operation. Every
    /// private reference obtained during the operation is dead after this
    /// returns (epoch-style schemes rely on it; ThreadScan does not need
    /// it). Called by [`Guard`]'s drop; structures use [`pin`](Self::pin).
    #[inline]
    fn end_op(&self) {}

    /// Loads `src` as a protected reference usable until `end_op` (or the
    /// next `load_protected` on the same `slot`, for hazard schemes).
    ///
    /// `slot` distinguishes the references an operation holds
    /// simultaneously (e.g. 0 = prev, 1 = curr, 2 = next); schemes without
    /// per-reference state ignore it. The returned pointer may carry tag
    /// bits exactly as stored; hazard schemes validate the *untagged*
    /// address.
    #[inline]
    fn load_protected(&self, _slot: usize, src: &AtomicPtr<u8>) -> *mut u8 {
        src.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Retires an unlinked allocation: `drop_fn(addr as *mut u8)` runs
    /// once the scheme can prove no thread still holds a reference.
    ///
    /// # Safety
    ///
    /// * `addr` points to a live allocation of `size` bytes, unreachable
    ///   from shared memory, retired at most once.
    /// * `drop_fn(addr as *mut u8)` is sound to call exactly once.
    unsafe fn retire(&self, addr: usize, size: usize, drop_fn: DropFn);

    /// The number of hazard-style protection slots this handle supports,
    /// or `None` when the scheme keeps no per-reference state (epoch,
    /// ThreadScan, leaky — any slot index is accepted and ignored).
    /// Structures needing more simultaneous protected references than a
    /// `Some` budget must not use the scheme (the paper's structures need
    /// at most 3 + one pair per skip-list level).
    ///
    /// (An earlier revision defaulted to `usize::MAX` as the "unbounded"
    /// sentinel, which leaked into reports as a 20-digit slot count;
    /// `Option` keeps "unbounded" out of the numeric domain.)
    fn protection_slots(&self) -> Option<usize> {
        None
    }
}

/// Convenience: retire a `Box<T>` through any [`SmrHandle`].
///
/// # Safety
///
/// `ptr` came from `Box::into_raw`, is unreachable from shared memory, and
/// is retired at most once.
pub unsafe fn retire_box<T, H: SmrHandle + ?Sized>(handle: &H, ptr: *mut T) {
    unsafe fn drop_box<T>(p: *mut u8) {
        drop(Box::from_raw(p.cast::<T>()));
    }
    handle.retire(ptr as usize, core::mem::size_of::<T>(), drop_box::<T>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Minimal immediate-free scheme used to test the trait surface.
    struct ImmediateFree;
    struct ImmediateHandle;
    impl Smr for ImmediateFree {
        type Handle = ImmediateHandle;
        fn register(&self) -> ImmediateHandle {
            ImmediateHandle
        }
        fn name(&self) -> &'static str {
            "immediate"
        }
    }
    impl SmrHandle for ImmediateHandle {
        unsafe fn retire(&self, addr: usize, _size: usize, drop_fn: DropFn) {
            drop_fn(addr as *mut u8);
        }
    }

    #[test]
    fn retire_box_runs_destructor_through_scheme() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let scheme = ImmediateFree;
        let handle = scheme.register();
        let p = Box::into_raw(Box::new(Probe(Arc::clone(&drops))));
        unsafe { retire_box(&handle, p) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        assert_eq!(scheme.name(), "immediate");
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn default_load_protected_is_a_plain_acquire_load() {
        let handle = ImmediateHandle;
        let v = Box::into_raw(Box::new(5u8));
        let slot = AtomicPtr::new(v.cast::<u8>());
        let got = handle.load_protected(0, &slot);
        assert_eq!(got, v.cast::<u8>());
        unsafe { drop(Box::from_raw(v)) };
    }
}
