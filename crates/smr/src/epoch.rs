//! Epoch-based reclamation (Harris 2001 / Fraser 2004 / RCU-style) —
//! §6 "Techniques" #3, and its delay-injected variant, #4 "Slow Epoch".
//!
//! Each operation brackets itself with two writes (announce current global
//! epoch + active flag on entry; clear active on exit) — "two writes per
//! method" is exactly the overhead the paper attributes to the scheme.
//! Retired nodes are stamped with the global epoch at retire time and may
//! be freed once the global epoch has advanced twice past the stamp; the
//! global epoch advances only when every *active* thread has announced the
//! current epoch. A single delayed thread therefore stalls reclamation for
//! everyone — the weakness "Slow Epoch" makes visible by injecting a 40 ms
//! busy-wait into one thread's announcement path.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::api::{DropFn, Smr, SmrHandle};

/// Per-thread epoch announcement: `epoch << 1 | active`.
struct EpochRec {
    state: AtomicUsize,
}

impl EpochRec {
    fn announce(&self, epoch: usize) {
        // MUST stay `SeqCst`: this store needs a StoreLoad barrier against
        // the operation's subsequent reads of shared pointers. If the
        // announce could be delayed past those reads, a reclaimer could
        // observe the thread as inactive (or at an old epoch), advance
        // twice, and free a node the operation is about to dereference —
        // the exact interleaving `epoch_fastpath_handshake`
        // (crates/simthread/tests/exhaustive.rs) guards at the protocol
        // level.
        self.state.store(epoch << 1 | 1, Ordering::SeqCst);
    }
    /// `Some(epoch)` if the thread is inside an operation.
    fn active_epoch(&self) -> Option<usize> {
        let s = self.state.load(Ordering::Acquire);
        if s & 1 == 1 {
            Some(s >> 1)
        } else {
            None
        }
    }
}

struct EpochInner {
    global: AtomicUsize,
    threads: Mutex<Vec<Arc<EpochRec>>>,
    /// Bags inherited from exited threads: `(stamp, addr, drop_fn)`.
    orphans: Mutex<VecDeque<(usize, usize, DropFn)>>,
    outstanding: AtomicUsize,
    /// Retires between advancement attempts (paper: a thread that removed
    /// 1024 nodes reads all epoch counters before continuing).
    advance_threshold: usize,
    /// Injected delay for the errant thread (Slow Epoch), if any.
    slow: Option<SlowConfig>,
    /// Which registration index is the errant thread (first by default).
    slow_claimed: AtomicUsize,
}

#[derive(Clone, Copy)]
struct SlowConfig {
    delay: Duration,
    period_ops: usize,
}

/// Epoch-based reclamation scheme.
pub struct EpochScheme {
    inner: Arc<EpochInner>,
}

impl EpochScheme {
    /// Stock epoch scheme with the paper's 1024-retire advancement cadence.
    pub fn new() -> Self {
        Self::with_threshold(1024)
    }

    /// Epoch scheme with a custom advancement cadence.
    pub fn with_threshold(advance_threshold: usize) -> Self {
        Self::build(advance_threshold, None)
    }

    /// §6 "Slow Epoch": one thread (the first to register) busy-waits
    /// `delay` every `period_ops` operations *while inside an operation*,
    /// pinning its announced epoch and stalling advancement.
    pub fn slow(advance_threshold: usize, delay: Duration, period_ops: usize) -> Self {
        Self::build(advance_threshold, Some(SlowConfig { delay, period_ops }))
    }

    fn build(advance_threshold: usize, slow: Option<SlowConfig>) -> Self {
        assert!(advance_threshold >= 1);
        Self {
            inner: Arc::new(EpochInner {
                global: AtomicUsize::new(2), // start > 0 so stamp-2 math never underflows
                threads: Mutex::new(Vec::new()),
                orphans: Mutex::new(VecDeque::new()),
                outstanding: AtomicUsize::new(0),
                advance_threshold,
                slow,
                slow_claimed: AtomicUsize::new(0),
            }),
        }
    }

    /// Current global epoch (diagnostics).
    pub fn global_epoch(&self) -> usize {
        self.inner.global.load(Ordering::SeqCst)
    }
}

impl Default for EpochScheme {
    fn default() -> Self {
        Self::new()
    }
}

/// Attempts to advance the global epoch; returns the (possibly new) epoch.
fn try_advance(inner: &EpochInner) -> usize {
    let e = inner.global.load(Ordering::SeqCst);
    let threads = inner.threads.lock();
    for rec in threads.iter() {
        if let Some(local) = rec.active_epoch() {
            if local != e {
                return e; // an active thread lags: cannot advance
            }
        }
    }
    drop(threads);
    let _ = inner
        .global
        .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
    inner.global.load(Ordering::SeqCst)
}

/// Frees every bag entry stamped ≤ `epoch - 2`. `bag` is a thread's local
/// bag; the shared orphan bag is drained too.
fn free_expired(
    inner: &EpochInner,
    bag: &mut VecDeque<(usize, usize, DropFn)>,
    epoch: usize,
) -> usize {
    let mut freed = 0usize;
    let limit = epoch.saturating_sub(2);
    while let Some(&(stamp, addr, drop_fn)) = bag.front() {
        if stamp > limit {
            break;
        }
        bag.pop_front();
        // SAFETY: two epoch advancements prove every operation concurrent
        // with the unlink has completed; retire contract gives uniqueness.
        unsafe { drop_fn(addr as *mut u8) };
        freed += 1;
    }
    let mut orphans = inner.orphans.lock();
    while let Some(&(stamp, addr, drop_fn)) = orphans.front() {
        if stamp > limit {
            break;
        }
        orphans.pop_front();
        // SAFETY: as above.
        unsafe { drop_fn(addr as *mut u8) };
        freed += 1;
    }
    drop(orphans);
    inner.outstanding.fetch_sub(freed, Ordering::Relaxed);
    freed
}

/// Per-thread epoch handle.
pub struct EpochHandle {
    inner: Arc<EpochInner>,
    rec: Arc<EpochRec>,
    bag: RefCell<VecDeque<(usize, usize, DropFn)>>,
    retires_since_advance: std::cell::Cell<usize>,
    ops: std::cell::Cell<usize>,
    /// The state word the last `begin_op` announced, with the active bit
    /// already cleared — exactly what `end_op` must publish. Caching it
    /// here (this handle is the state word's only writer: `EpochHandle`
    /// is `!Sync` and nothing else stores to `rec.state`) lets `end_op`
    /// issue one plain `Release` store with no preceding atomic load,
    /// and closes the stale-republish hazard a load-then-store pair
    /// would have if a concurrent writer ever appeared.
    announced: std::cell::Cell<usize>,
    /// This handle is the designated errant thread (Slow Epoch).
    errant: bool,
}

impl Smr for EpochScheme {
    type Handle = EpochHandle;

    fn register(&self) -> EpochHandle {
        let rec = Arc::new(EpochRec {
            state: AtomicUsize::new(0),
        });
        self.inner.threads.lock().push(Arc::clone(&rec));
        let errant = self.inner.slow.is_some()
            && self
                .inner
                .slow_claimed
                .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
        EpochHandle {
            inner: Arc::clone(&self.inner),
            rec,
            bag: RefCell::new(VecDeque::new()),
            retires_since_advance: std::cell::Cell::new(0),
            ops: std::cell::Cell::new(0),
            announced: std::cell::Cell::new(0),
            errant,
        }
    }

    fn name(&self) -> &'static str {
        if self.inner.slow.is_some() {
            "slow-epoch"
        } else {
            "epoch"
        }
    }

    fn outstanding(&self) -> usize {
        self.inner.outstanding.load(Ordering::Relaxed)
    }

    fn quiesce(&self) {
        // With no active threads, two advances expire everything orphaned.
        for _ in 0..3 {
            try_advance(&self.inner);
        }
        let epoch = self.inner.global.load(Ordering::SeqCst);
        free_expired(&self.inner, &mut VecDeque::new(), epoch);
    }
}

impl SmrHandle for EpochHandle {
    #[inline]
    fn begin_op(&self) {
        // Relaxed from `SeqCst` (scenario: `epoch_fastpath_handshake`): a
        // stale global epoch here only makes this thread announce an
        // *older* epoch, which blocks advancement longer — strictly more
        // conservative, never unsafe. `Acquire` (free on x86) keeps the
        // epoch value itself coherent with the writer's bumps; the
        // StoreLoad barrier the protocol needs lives in `announce`.
        let e = self.inner.global.load(Ordering::Acquire);
        self.rec.announce(e);
        self.announced.set(e << 1);
        if self.errant {
            // Slow Epoch fault injection: every `period_ops` operations the
            // errant thread dawdles *while active*, pinning epoch `e`.
            let cfg = self.inner.slow.expect("errant implies slow config");
            let n = self.ops.get() + 1;
            self.ops.set(n);
            if n.is_multiple_of(cfg.period_ops) {
                let until = Instant::now() + cfg.delay;
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
            }
        }
    }

    #[inline]
    fn end_op(&self) {
        // One plain `Release` store of the word `begin_op` cached — no
        // atomic re-load (the old `Relaxed`-load + store pair), no RMW.
        // Sound because this handle is the state word's single writer, so
        // the cached value cannot be stale; `Release` orders the store
        // after this operation's shared-memory reads, so a reclaimer that
        // sees us inactive also sees those reads complete (scenario:
        // `epoch_fastpath_handshake`).
        self.rec
            .state
            .store(self.announced.get(), Ordering::Release);
    }

    unsafe fn retire(&self, addr: usize, _size: usize, drop_fn: DropFn) {
        self.inner.outstanding.fetch_add(1, Ordering::Relaxed);
        // MUST stay `SeqCst`: the stamp may never read *lower* than the
        // epoch any in-flight operation could have observed the unlink
        // under. A stale-low stamp would expire the node one epoch early
        // — the unsafe direction (use-after-free), unlike the begin_op
        // load where staleness is conservative.
        let stamp = self.inner.global.load(Ordering::SeqCst);
        let mut bag = self.bag.borrow_mut();
        bag.push_back((stamp, addr, drop_fn));

        let n = self.retires_since_advance.get() + 1;
        if n >= self.inner.advance_threshold {
            self.retires_since_advance.set(0);
            let epoch = try_advance(&self.inner);
            free_expired(&self.inner, &mut bag, epoch);
        } else {
            self.retires_since_advance.set(n);
            // Opportunistically expire what is already old enough.
            // Relaxed from `SeqCst` (scenario: `epoch_fastpath_handshake`):
            // a stale-low epoch read only *shrinks* the expiry limit —
            // nodes free later, never earlier, so staleness is safe here
            // (contrast the stamp load above).
            let epoch = self.inner.global.load(Ordering::Acquire);
            free_expired(&self.inner, &mut bag, epoch);
        }
    }
}

impl Drop for EpochHandle {
    fn drop(&mut self) {
        // Fully clear (not just the active bit): the record is about to
        // leave the registry, so its epoch payload is meaningless.
        self.rec.state.store(0, Ordering::Release);
        // Remove our announcement record so we never block advancement,
        // and bequeath the bag.
        self.inner
            .threads
            .lock()
            .retain(|r| !Arc::ptr_eq(r, &self.rec));
        let mut bag = self.bag.borrow_mut();
        self.inner.orphans.lock().extend(bag.drain(..));
        if self.errant {
            self.inner.slow_claimed.store(0, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::retire_box;
    use std::sync::atomic::AtomicUsize as Counter;

    struct Probe {
        drops: Arc<Counter>,
    }
    impl Drop for Probe {
        fn drop(&mut self) {
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }
    fn probe(drops: &Arc<Counter>) -> *mut Probe {
        Box::into_raw(Box::new(Probe {
            drops: Arc::clone(drops),
        }))
    }

    #[test]
    fn nodes_free_after_two_advances() {
        let drops = Arc::new(Counter::new(0));
        let scheme = EpochScheme::with_threshold(4);
        let handle = scheme.register();
        for _ in 0..4 {
            handle.begin_op();
            unsafe { retire_box(&handle, probe(&drops)) };
            handle.end_op();
        }
        // Threshold reached once: one advance — not yet two.
        let before = drops.load(Ordering::SeqCst);
        for _ in 0..8 {
            handle.begin_op();
            unsafe { retire_box(&handle, probe(&drops)) };
            handle.end_op();
        }
        assert!(
            drops.load(Ordering::SeqCst) > before,
            "older bag entries must expire as the epoch advances"
        );
        drop(handle);
        scheme.quiesce();
        assert_eq!(drops.load(Ordering::SeqCst), 12);
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn active_lagging_thread_blocks_advancement() {
        let drops = Arc::new(Counter::new(0));
        let scheme = EpochScheme::with_threshold(2);
        let lagger = scheme.register();
        let worker = scheme.register();

        lagger.begin_op(); // announces epoch E and stays active
        let e0 = scheme.global_epoch();
        for _ in 0..50 {
            worker.begin_op();
            unsafe { retire_box(&worker, probe(&drops)) };
            worker.end_op();
        }
        // The lagger pins the epoch at most one advance away.
        assert!(scheme.global_epoch() <= e0 + 1);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "nothing may free while the epoch cannot advance twice"
        );

        lagger.end_op();
        for _ in 0..8 {
            worker.begin_op();
            unsafe { retire_box(&worker, probe(&drops)) };
            worker.end_op();
        }
        assert!(drops.load(Ordering::SeqCst) > 0, "reclamation resumes");
        drop(lagger);
        drop(worker);
        scheme.quiesce();
        assert_eq!(drops.load(Ordering::SeqCst), 58);
    }

    #[test]
    fn slow_epoch_designates_exactly_one_errant_thread() {
        let scheme = EpochScheme::slow(8, Duration::from_millis(1), 1);
        let h1 = scheme.register();
        let h2 = scheme.register();
        let h3 = scheme.register();
        assert_eq!(
            [h1.errant, h2.errant, h3.errant]
                .iter()
                .filter(|&&e| e)
                .count(),
            1
        );
        assert_eq!(scheme.name(), "slow-epoch");
    }

    #[test]
    fn slow_epoch_injects_measurable_delay() {
        let scheme = EpochScheme::slow(1024, Duration::from_millis(5), 2);
        let errant = scheme.register();
        assert!(errant.errant);
        let t0 = Instant::now();
        for _ in 0..4 {
            errant.begin_op();
            errant.end_op();
        }
        // ops 2 and 4 each waited ≥5ms.
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn handle_drop_does_not_strand_garbage() {
        let drops = Arc::new(Counter::new(0));
        let scheme = EpochScheme::with_threshold(1_000_000);
        {
            let handle = scheme.register();
            for _ in 0..10 {
                handle.begin_op();
                unsafe { retire_box(&handle, probe(&drops)) };
                handle.end_op();
            }
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        scheme.quiesce();
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_epoch_usage_is_leak_free() {
        let drops = Arc::new(Counter::new(0));
        let scheme = Arc::new(EpochScheme::with_threshold(32));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let scheme = Arc::clone(&scheme);
                let drops = Arc::clone(&drops);
                s.spawn(move || {
                    let handle = scheme.register();
                    for _ in 0..1000 {
                        handle.begin_op();
                        unsafe { retire_box(&handle, probe(&drops)) };
                        handle.end_op();
                    }
                });
            }
        });
        scheme.quiesce();
        assert_eq!(drops.load(Ordering::SeqCst), 4000);
        assert_eq!(scheme.outstanding(), 0);
    }
}
