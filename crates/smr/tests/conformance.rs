//! SMR conformance suite: the contract every reclaiming scheme must
//! honour, run against each scheme through the same generic battery.
//!
//! The properties are the two directions the paper proves for ThreadScan
//! (Lemma 1: never free a reachable-from-a-thread node; Lemma 4: free
//! everything unreferenced), restated at the [`Smr`] trait level so the
//! hazard, epoch, slow-epoch and StackTrack baselines are held to the
//! same standard as the headline scheme:
//!
//! 1. retire eventually runs the destructor, exactly once (after quiesce);
//! 2. a reference obtained via `load_protected` inside an open operation
//!    is never freed under the reader;
//! 3. bookkeeping (`outstanding`) returns to zero at quiescence;
//! 4. handles may be dropped with retires still pending — nothing leaks;
//! 5. concurrent retire storms from many threads neither leak nor
//!    double-free.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use ts_smr::{retire_box, EpochScheme, ErasedSmr, HazardPointers, Smr, SmrHandle, StackTrackSim};

/// A drop-counting node with enough body that use-after-free corrupts
/// observable state under sanitizers.
struct Node {
    drops: Arc<AtomicUsize>,
    value: u64,
    _pad: [u64; 6],
}

impl Drop for Node {
    fn drop(&mut self) {
        self.value = u64::MAX; // poison: reads after drop are visible
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

fn node(drops: &Arc<AtomicUsize>, value: u64) -> *mut Node {
    Box::into_raw(Box::new(Node {
        drops: Arc::clone(drops),
        value,
        _pad: [0; 6],
    }))
}

/// Property 1 + 3: retire → quiesce frees everything exactly once, and
/// `outstanding` returns to zero.
fn retired_nodes_are_freed_exactly_once<S: Smr>(scheme: &S) {
    let drops = Arc::new(AtomicUsize::new(0));
    let h = scheme.register();
    for i in 0..500u64 {
        // SAFETY: fresh allocation, never shared, retired once.
        unsafe { retire_box(&h, node(&drops, i)) };
    }
    drop(h);
    scheme.quiesce();
    assert_eq!(drops.load(Ordering::SeqCst), 500, "every node freed once");
    assert_eq!(scheme.outstanding(), 0, "books balance after quiesce");
}

/// Property 2: a protected reference is never freed under the reader.
/// The reader parks inside an open operation holding a protected load
/// while the writer unlinks + retires the node and drives reclamation
/// hard; the node's poisoned-on-drop value must stay intact.
fn protected_reference_is_never_freed_under_reader<S: Smr>(scheme: &S) {
    let drops = Arc::new(AtomicUsize::new(0));
    let shared: AtomicPtr<u8> = AtomicPtr::new(node(&drops, 42).cast());
    let checkpoints = Barrier::new(2);

    std::thread::scope(|s| {
        // Reader: protect, then hold across the writer's reclaim attempts.
        s.spawn(|| {
            let h = scheme.register();
            h.begin_op();
            let p = h.load_protected(0, &shared).cast::<Node>();
            assert!(!p.is_null());
            checkpoints.wait(); // (0) protected
            checkpoints.wait(); // (1) writer retired + churned
                                // SAFETY: the scheme contract keeps `p` alive inside this op.
            let v = unsafe { (*p).value };
            assert_eq!(v, 42, "protected node was freed under the reader");
            h.end_op();
            checkpoints.wait(); // (2) reader released
        });

        let h = scheme.register();
        checkpoints.wait(); // (0)
                            // Unlink and retire the node the reader protects.
        let victim = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
        // SAFETY: unlinked above; single retire.
        unsafe { retire_box(&h, victim.cast::<Node>()) };
        // Pressure: force scan/advance cycles.
        for i in 0..2_000u64 {
            // SAFETY: fresh, private, retired once.
            unsafe { retire_box(&h, node(&drops, i)) };
        }
        assert_eq!(
            unsafe { (*victim.cast::<Node>()).value },
            42,
            "victim freed while the reader still holds protection"
        );
        checkpoints.wait(); // (1)
        checkpoints.wait(); // (2) reader done
        drop(h);
    });

    scheme.quiesce();
    assert_eq!(
        drops.load(Ordering::SeqCst),
        2_001,
        "victim reclaimed after release, churn nodes reclaimed too"
    );
    assert_eq!(scheme.outstanding(), 0);
}

/// Property 4: dropping a handle with pending retires must not leak them.
fn pending_retires_survive_handle_drop<S: Smr>(scheme: &S) {
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let h = scheme.register();
        for i in 0..64u64 {
            // SAFETY: fresh, private, retired once.
            unsafe { retire_box(&h, node(&drops, i)) };
        }
        // Handle dies with retires potentially still buffered.
    }
    scheme.quiesce();
    assert_eq!(drops.load(Ordering::SeqCst), 64, "orphaned retires freed");
    assert_eq!(scheme.outstanding(), 0);
}

/// Property 5: concurrent retire storms — exact free count, no double
/// free (drop counter would overshoot), books balanced.
fn concurrent_retire_storm_is_exact<S: Smr>(scheme: &S) {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 2_000;
    let drops = Arc::new(AtomicUsize::new(0));
    let start = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let drops = &drops;
            let start = &start;
            s.spawn(move || {
                let h = scheme.register();
                start.wait();
                for i in 0..PER_THREAD {
                    // Retire from inside a guarded operation (the RAII
                    // equivalent of a begin_op/end_op bracket).
                    let g = h.pin();
                    // SAFETY: fresh, private, retired once.
                    unsafe { g.retire_box(node(drops, (t * PER_THREAD + i) as u64)) };
                }
            });
        }
    });
    scheme.quiesce();
    assert_eq!(drops.load(Ordering::SeqCst), THREADS * PER_THREAD);
    assert_eq!(scheme.outstanding(), 0);
}

macro_rules! conformance {
    ($modname:ident, $mk:expr) => {
        mod $modname {
            use super::*;

            #[test]
            fn retired_nodes_are_freed_exactly_once() {
                super::retired_nodes_are_freed_exactly_once(&$mk);
            }

            #[test]
            fn protected_reference_is_never_freed_under_reader() {
                super::protected_reference_is_never_freed_under_reader(&$mk);
            }

            #[test]
            fn pending_retires_survive_handle_drop() {
                super::pending_retires_survive_handle_drop(&$mk);
            }

            #[test]
            fn concurrent_retire_storm_is_exact() {
                super::concurrent_retire_storm_is_exact(&$mk);
            }
        }
    };
}

conformance!(epoch, EpochScheme::with_threshold(32));
conformance!(epoch_tiny_threshold, EpochScheme::with_threshold(2));
conformance!(
    slow_epoch,
    EpochScheme::slow(32, std::time::Duration::from_millis(1), 512)
);
conformance!(hazard, HazardPointers::with_params(4, 16));
conformance!(stacktrack, StackTrackSim::with_params(64, 16));

// The type-erased adapter must satisfy the exact same contract: the whole
// battery again through `ErasedSmr` (every hook crossing a vtable).
conformance!(
    erased_epoch,
    ErasedSmr::new(Arc::new(EpochScheme::with_threshold(32)))
);
conformance!(
    erased_hazard,
    ErasedSmr::new(Arc::new(HazardPointers::with_params(4, 16)))
);
conformance!(
    erased_stacktrack,
    ErasedSmr::new(Arc::new(StackTrackSim::with_params(64, 16)))
);
