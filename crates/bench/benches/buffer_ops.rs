//! Micro: per-thread delete-buffer operations.
//!
//! `retire` must stay cheap — it is the only instrumented call ThreadScan
//! adds to application code. This measures the SPSC push and the
//! reclaimer-side drain.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use threadscan::buffer::LocalBuffer;
use threadscan::retired::{noop_drop, Retired};

fn bench_push_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_buffer");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &cap in &[1024usize, 4096] {
        group.bench_with_input(
            BenchmarkId::new("push_drain_cycle", cap),
            &cap,
            |b, &cap| {
                let buf = LocalBuffer::new(cap);
                let mut out = Vec::with_capacity(cap);
                b.iter(|| {
                    for i in 0..cap - 1 {
                        // SAFETY: single-threaded bench — sole producer.
                        unsafe {
                            buf.push(Retired::from_raw_parts(0x1000 + i * 8, 8, noop_drop))
                                .unwrap()
                        };
                    }
                    out.clear();
                    // SAFETY: sole consumer.
                    unsafe { buf.drain_into(&mut out) };
                    black_box(out.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_push_only(c: &mut Criterion) {
    c.bench_function("local_buffer/single_push", |b| {
        let buf = LocalBuffer::new(1 << 20);
        let mut out = Vec::new();
        let mut i = 0usize;
        b.iter(|| {
            // SAFETY: single-threaded bench.
            unsafe {
                if buf
                    .push(Retired::from_raw_parts(0x1000 + i * 8, 8, noop_drop))
                    .is_err()
                {
                    buf.drain_into(&mut out);
                    out.clear();
                }
            }
            i += 1;
            black_box(i)
        })
    });
}

criterion_group!(benches, bench_push_drain, bench_push_only);
criterion_main!(benches);
