//! Micro: conservative-matching kernel cost.
//!
//! The inner loop of `TS-Scan` is "binary-search(delete buffer, chunk)"
//! per stack word (Algorithm 1 line 20). This bench measures the marking
//! kernel at paper-relevant buffer sizes (1024 pointers/thread × thread
//! count ⇒ master buffers of 1k–80k entries) and compares range matching
//! (ours) against exact matching (the paper's §4.2).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use threadscan::master::MasterBuffer;
use threadscan::scan::{find_exact, find_range};
use threadscan::{CollectorConfig, MatchMode, Retired};

fn synthetic_buffer(n: usize) -> (Vec<usize>, Vec<usize>) {
    // Disjoint 176-byte "nodes" (the paper's padded list node size).
    let addrs: Vec<usize> = (0..n).map(|i| 0x10_0000 + i * 256).collect();
    let ends: Vec<usize> = addrs.iter().map(|a| a + 176).collect();
    (addrs, ends)
}

fn synthetic_stack(words: usize, addrs: &[usize]) -> Vec<usize> {
    // A fake stack: mostly noise, ~3% node references (hit rate measured
    // in our integration runs is of this order).
    (0..words)
        .map(|i| {
            if i % 32 == 0 && !addrs.is_empty() {
                addrs[i % addrs.len()] + (i % 176)
            } else {
                0xdead_0000_0000 + i * 31
            }
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_kernel");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[1024usize, 8192, 81920] {
        let (addrs, ends) = synthetic_buffer(n);
        let stack = synthetic_stack(4096, &addrs);
        group.bench_with_input(BenchmarkId::new("range", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &w in &stack {
                    if find_range(black_box(&addrs), black_box(&ends), w).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &w in &stack {
                    if find_exact(black_box(&addrs), w, 0b111).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

fn bench_session_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_scan_words");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[1024usize, 8192] {
        let entries: Vec<Retired> = (0..n)
            .map(|i| unsafe {
                Retired::from_raw_parts(0x10_0000 + i * 256, 176, threadscan::retired::noop_drop)
            })
            .collect();
        for mode in [MatchMode::Range, MatchMode::Exact] {
            let config = CollectorConfig::default().with_match_mode(mode);
            let master = MasterBuffer::new(entries.clone(), &config);
            let stack = synthetic_stack(16384, &[0x10_0000]);
            group.bench_with_input(BenchmarkId::new(format!("{mode:?}"), n), &n, |b, _| {
                b.iter(|| {
                    let session = master.session();
                    session.scan_words(black_box(&stack));
                    black_box(session.hits())
                })
            });
        }
    }
    group.finish();
}

fn bench_sort_cost(c: &mut Criterion) {
    // TS-Collect line 2: sort(delete buffer). Master-buffer construction
    // is the reclaimer's fixed cost per phase.
    let mut group = c.benchmark_group("master_buffer_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &n in &[1024usize, 16384, 81920] {
        let entries: Vec<Retired> = (0..n)
            .rev() // worst-case-ish input order
            .map(|i| unsafe {
                Retired::from_raw_parts(0x10_0000 + i * 64, 64, threadscan::retired::noop_drop)
            })
            .collect();
        let config = CollectorConfig::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mb = MasterBuffer::new(black_box(entries.clone()), &config);
                black_box(mb.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_session_scan, bench_sort_cost);
criterion_main!(benches);
