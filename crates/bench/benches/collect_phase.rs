//! Micro: end-to-end reclamation-phase cost vs batch size.
//!
//! §6 tunes the delete-buffer size against exactly this: a larger batch
//! amortizes the signal round over more frees but sorts and scans a longer
//! master buffer. Measures `retire × B` + one forced collect.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use threadscan::{Collector, CollectorConfig};
use ts_sigscan::SignalPlatform;

fn bench_collect_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("collect_phase");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &batch in &[256usize, 1024, 4096] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let collector = Collector::with_config(
                SignalPlatform::new().expect("signals"),
                // Buffer bigger than the batch so WE trigger the collect.
                CollectorConfig::default().with_buffer_capacity(batch * 2),
            );
            let handle = collector.register();
            b.iter(|| {
                for _ in 0..batch {
                    let node = Box::into_raw(Box::new([0u8; 64]));
                    // SAFETY: fresh node, never shared.
                    unsafe { handle.retire(node) };
                }
                handle.flush();
                black_box(collector.stats().freed)
            });
            drop(handle);
        });
    }
    group.finish();
}

fn bench_retire_fast_path(c: &mut Criterion) {
    // The non-triggering retire: one SPSC push + boundary bookkeeping.
    c.bench_function("retire_fast_path", |b| {
        let collector = Collector::with_config(
            SignalPlatform::new().expect("signals"),
            CollectorConfig::default().with_buffer_capacity(1 << 22),
        );
        let handle = collector.register();
        b.iter(|| {
            let node = Box::into_raw(Box::new(0u64));
            // SAFETY: fresh node, never shared.
            unsafe { handle.retire(node) };
        });
        handle.flush();
        drop(handle);
    });
}

criterion_group!(benches, bench_collect_phase, bench_retire_fast_path);
criterion_main!(benches);
