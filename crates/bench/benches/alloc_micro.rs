//! Micro: allocator substrate latency — ts-alloc's thread-cached path vs
//! the system allocator, on the node sizes the evaluation structures
//! actually allocate (176 B padded list nodes, ~136 B skip nodes, 24 B
//! split-ordered nodes).
//!
//! Calls go through the `GlobalAlloc` trait explicitly, so both
//! allocators are measured in one binary without a global install.

use std::alloc::{GlobalAlloc, Layout, System};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ts_alloc::TsAlloc;

/// One allocate/deallocate round-trip (the structures' hot pattern:
/// insert allocates, a later remove retires and eventually frees).
fn roundtrip<A: GlobalAlloc>(a: &A, layout: Layout) -> usize {
    // SAFETY: valid layout; freed with the same layout.
    unsafe {
        let p = a.alloc(layout);
        debug_assert!(!p.is_null());
        p.write(0xA5);
        let addr = p as usize;
        a.dealloc(p, layout);
        addr
    }
}

/// A burst: allocate a batch (live set grows), then free it all —
/// exercises the cache watermark and depot batching.
fn burst<A: GlobalAlloc>(a: &A, layout: Layout, n: usize, scratch: &mut Vec<usize>) -> usize {
    scratch.clear();
    // SAFETY: as above.
    unsafe {
        for _ in 0..n {
            scratch.push(a.alloc(layout) as usize);
        }
        let sum = scratch.iter().sum();
        for &p in scratch.iter() {
            a.dealloc(p as *mut u8, layout);
        }
        sum
    }
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_roundtrip");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &size in &[24usize, 136, 176, 1024] {
        let layout = Layout::from_size_align(size, 8).unwrap();
        group.bench_function(BenchmarkId::new("ts-alloc", size), |b| {
            b.iter(|| black_box(roundtrip(&TsAlloc, layout)))
        });
        group.bench_function(BenchmarkId::new("system", size), |b| {
            b.iter(|| black_box(roundtrip(&System, layout)))
        });
    }
    group.finish();
}

fn bench_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_burst64");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let layout = Layout::from_size_align(176, 8).unwrap();
    let mut scratch = Vec::with_capacity(64);
    group.bench_function("ts-alloc", |b| {
        b.iter(|| black_box(burst(&TsAlloc, layout, 64, &mut scratch)))
    });
    group.bench_function("system", |b| {
        b.iter(|| black_box(burst(&System, layout, 64, &mut scratch)))
    });
    group.finish();
}

criterion_group!(benches, bench_roundtrip, bench_burst);
criterion_main!(benches);
