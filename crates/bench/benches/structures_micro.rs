//! Micro: single-threaded operation latency per structure per scheme.
//!
//! Isolates the *instrumentation* cost each scheme adds to the data
//! structure (the per-read fences of hazard pointers, the per-op counter
//! writes of epochs, ThreadScan's nothing) without any concurrency.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ts_sigscan::SignalPlatform;
use ts_smr::{EpochScheme, HazardPointers, Leaky, Smr, ThreadScanSmr};
use ts_structures::{
    ConcurrentSet, HarrisList, LockFreeHashTable, PriorityQueue, SkipList, SplitOrderedSet,
    PQ_REQUIRED_SLOTS, REQUIRED_SLOTS,
};

const PREFILL: u64 = 512;
const RANGE: u64 = 1024;

fn drive_ops<S: Smr, T: ConcurrentSet<S>>(scheme: &S, set: &T) -> u64 {
    let h = scheme.register();
    let mut acc = 0u64;
    // A fixed op cycle: lookup-heavy with some churn.
    for i in 0..128u64 {
        let k = (i * 37) % RANGE;
        acc += set.contains(&h, k) as u64;
        if i % 8 == 0 {
            set.remove(&h, k);
            set.insert(&h, k);
        }
    }
    acc
}

fn prefill<S: Smr, T: ConcurrentSet<S>>(scheme: &S, set: &T) {
    let h = scheme.register();
    for k in 0..PREFILL {
        set.insert(&h, k * 2);
    }
}

macro_rules! bench_scheme {
    ($group:expr, $label:expr, $scheme:expr, $mk_set:expr) => {{
        let scheme = $scheme;
        let set = $mk_set;
        prefill(&scheme, &set);
        $group.bench_function(BenchmarkId::new($label, "ops128"), |b| {
            b.iter(|| black_box(drive_ops(&scheme, &set)))
        });
    }};
}

fn bench_list(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_ops");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    bench_scheme!(group, "leaky", Leaky::new(), HarrisList::<Leaky>::new());
    bench_scheme!(
        group,
        "hazard",
        HazardPointers::with_params(REQUIRED_SLOTS, 64),
        HarrisList::<HazardPointers>::new()
    );
    bench_scheme!(
        group,
        "epoch",
        EpochScheme::with_threshold(1024),
        HarrisList::<EpochScheme>::new()
    );
    bench_scheme!(
        group,
        "threadscan",
        ThreadScanSmr::new(SignalPlatform::new().expect("signals")),
        HarrisList::<ThreadScanSmr<SignalPlatform>>::new()
    );
    group.finish();
}

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_ops");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    bench_scheme!(
        group,
        "leaky",
        Leaky::new(),
        LockFreeHashTable::<Leaky>::new(64)
    );
    bench_scheme!(
        group,
        "hazard",
        HazardPointers::with_params(REQUIRED_SLOTS, 64),
        LockFreeHashTable::<HazardPointers>::new(64)
    );
    bench_scheme!(
        group,
        "epoch",
        EpochScheme::with_threshold(1024),
        LockFreeHashTable::<EpochScheme>::new(64)
    );
    bench_scheme!(
        group,
        "threadscan",
        ThreadScanSmr::new(SignalPlatform::new().expect("signals")),
        LockFreeHashTable::<ThreadScanSmr<SignalPlatform>>::new(64)
    );
    group.finish();
}

fn bench_skip(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist_ops");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    bench_scheme!(group, "leaky", Leaky::new(), SkipList::<Leaky>::new());
    bench_scheme!(
        group,
        "hazard",
        HazardPointers::with_params(REQUIRED_SLOTS, 64),
        SkipList::<HazardPointers>::new()
    );
    bench_scheme!(
        group,
        "epoch",
        EpochScheme::with_threshold(1024),
        SkipList::<EpochScheme>::new()
    );
    bench_scheme!(
        group,
        "threadscan",
        ThreadScanSmr::new(SignalPlatform::new().expect("signals")),
        SkipList::<ThreadScanSmr<SignalPlatform>>::new()
    );
    group.finish();
}

fn bench_split_ordered(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_ordered_ops");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    bench_scheme!(
        group,
        "leaky",
        Leaky::new(),
        SplitOrderedSet::<Leaky>::with_buckets(64)
    );
    bench_scheme!(
        group,
        "hazard",
        HazardPointers::with_params(REQUIRED_SLOTS, 64),
        SplitOrderedSet::<HazardPointers>::with_buckets(64)
    );
    bench_scheme!(
        group,
        "epoch",
        EpochScheme::with_threshold(1024),
        SplitOrderedSet::<EpochScheme>::with_buckets(64)
    );
    bench_scheme!(
        group,
        "threadscan",
        ThreadScanSmr::new(SignalPlatform::new().expect("signals")),
        SplitOrderedSet::<ThreadScanSmr<SignalPlatform>>::with_buckets(64)
    );
    group.finish();
}

/// Priority-queue cycle: insert a batch, drain it back — every iteration
/// retires 64 nodes through the scheme.
fn pq_cycle<S: Smr>(scheme: &S, pq: &PriorityQueue<S>, base: &mut u64) -> u64 {
    let h = scheme.register();
    let mut acc = 0u64;
    for i in 0..64u64 {
        pq.insert(&h, *base + i * 13 % 509);
    }
    for _ in 0..64u64 {
        if let Some(k) = pq.delete_min(&h) {
            acc ^= k;
        }
    }
    *base = base.wrapping_add(1024);
    acc
}

fn bench_priority_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority_queue_cycle");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    macro_rules! bench_pq {
        ($label:expr, $scheme:expr, $ty:ty) => {{
            let scheme = $scheme;
            let pq = PriorityQueue::<$ty>::new();
            let mut base = 1u64 << 32;
            group.bench_function(BenchmarkId::new($label, "ins64+del64"), |b| {
                b.iter(|| black_box(pq_cycle(&scheme, &pq, &mut base)))
            });
        }};
    }
    bench_pq!("leaky", Leaky::new(), Leaky);
    bench_pq!(
        "hazard",
        HazardPointers::with_params(PQ_REQUIRED_SLOTS, 64),
        HazardPointers
    );
    bench_pq!("epoch", EpochScheme::with_threshold(1024), EpochScheme);
    bench_pq!(
        "threadscan",
        ThreadScanSmr::new(SignalPlatform::new().expect("signals")),
        ThreadScanSmr<SignalPlatform>
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_list,
    bench_hash,
    bench_skip,
    bench_split_ordered,
    bench_priority_queue
);
criterion_main!(benches);
