//! Micro: signal round-trip latency.
//!
//! The reclaimer's fixed cost per phase is one signal to every registered
//! thread plus the wait for all acknowledgments (Algorithm 1 lines 3-9).
//! This measures a full forced collect of a single node while `k`
//! registered peer threads run application-like work — i.e. the latency of
//! "signal everyone, everyone scans, everyone acks".

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use threadscan::{Collector, CollectorConfig};
use ts_sigscan::SignalPlatform;

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("signal_roundtrip");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &peers in &[0usize, 1, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(peers), &peers, |b, &peers| {
            let collector = Collector::with_config(
                SignalPlatform::new().expect("signals"),
                CollectorConfig::default(),
            );
            let stop = Arc::new(AtomicBool::new(false));
            let mut joins = Vec::new();
            for _ in 0..peers {
                let collector = Arc::clone(&collector);
                let stop = Arc::clone(&stop);
                joins.push(std::thread::spawn(move || {
                    let _handle = collector.register();
                    // Busy application work with a deep-ish stack.
                    #[inline(never)]
                    fn work(d: usize) -> usize {
                        let z = black_box([d; 16]);
                        if d == 0 {
                            z[0]
                        } else {
                            work(d - 1) + z[15]
                        }
                    }
                    let mut acc = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        acc = acc.wrapping_add(work(16));
                    }
                    black_box(acc);
                }));
            }
            let handle = collector.register();
            // Warm-up: let the peers register.
            while collector.platform().registered_threads() < peers + 1 {
                std::thread::yield_now();
            }
            b.iter(|| {
                let node = Box::into_raw(Box::new([0u8; 64]));
                // SAFETY: fresh node, never shared.
                unsafe { handle.retire(node) };
                handle.flush(); // one full signal round
            });
            stop.store(true, Ordering::Relaxed);
            drop(handle);
            for j in joins {
                j.join().unwrap();
            }
        });
    }
    group.finish();
}

criterion_group!(benches, bench_roundtrip);
criterion_main!(benches);
