//! # ts-bench — figure regeneration binaries and micro-benchmarks
//!
//! Binaries (run with `--release`):
//!
//! * `fig3_throughput` — Figure 3: throughput vs threads, 3 structures ×
//!   5 schemes.
//! * `fig4_oversub` — Figure 4: oversubscription, 3 structures ×
//!   {leaky, epoch, threadscan} (+ the tuned 4096-buffer hash line).
//! * `ablation_buffer_size` — delete-buffer size sweep (§6 tuning note).
//! * `ablation_update_ratio` — update-percentage sweep.
//! * `ablation_distfree` — §7 distributed-free extension on/off.
//!
//! Criterion benches cover the micro costs: marking kernels, delete-buffer
//! ops, signal round-trips, full collect phases, structure op latency.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
