//! Tiny `--key value` argument parsing shared by the figure binaries
//! (keeps the workspace free of CLI dependencies), plus the epilogue
//! and list-parsing helpers every binary used to copy-paste.

use std::collections::HashMap;

use ts_workload::{Report, SchemeKind, StructureKind};

/// Parsed `--key value` arguments.
pub struct CliArgs {
    map: HashMap<String, String>,
}

impl CliArgs {
    /// Parses `std::env::args()`, accepting `--key value` and `--flag`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (tests).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut map = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_string(),
                };
                map.insert(key.to_string(), value);
            }
        }
        Self { map }
    }

    /// String value for `key`.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// `usize` value with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// `f64` value with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// Boolean flag.
    pub fn get_flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Comma-separated usize list with a default.
    pub fn get_usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.get(key) {
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{key} expects numbers, got {s:?}"))
                })
                .collect(),
            None => default.to_vec(),
        }
    }

    /// Comma-separated f64 list with a default (QPS ladders).
    pub fn get_f64_list(&self, key: &str, default: &[f64]) -> Vec<f64> {
        match self.get(key) {
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{key} expects numbers, got {s:?}"))
                })
                .collect(),
            None => default.to_vec(),
        }
    }

    /// Comma-separated scheme labels (see
    /// [`SchemeKind::label`]) with a default, e.g.
    /// `--schemes leaky,threadscan`.
    pub fn get_schemes(&self, key: &str, default: &[SchemeKind]) -> Vec<SchemeKind> {
        match self.get(key) {
            Some(list) => list
                .split(',')
                .map(|s| {
                    SchemeKind::parse(s.trim())
                        .unwrap_or_else(|| panic!("--{key}: unknown scheme {s:?}"))
                })
                .collect(),
            None => default.to_vec(),
        }
    }

    /// Comma-separated structure labels (see
    /// [`StructureKind::label`]) with a default, e.g.
    /// `--structures list,hash,skiplist`.
    pub fn get_structures(&self, key: &str, default: &[StructureKind]) -> Vec<StructureKind> {
        match self.get(key) {
            Some(list) => list
                .split(',')
                .map(|s| {
                    StructureKind::parse(s.trim())
                        .unwrap_or_else(|| panic!("--{key}: unknown structure {s:?}"))
                })
                .collect(),
            None => default.to_vec(),
        }
    }

    /// The `--json <path>` epilogue every figure binary shares: writes
    /// the report's JSON lines if the flag was given. Also notes the
    /// chrome-trace destination when `--trace-out` is in effect, so a
    /// report consumer knows a timeline exists for this run.
    pub fn write_json_report(&self, report: &Report) {
        if let Some(path) = self.get("json") {
            report
                .write_json(std::path::Path::new(path))
                .expect("write json");
            println!("# json written to {path}");
            if let Some(trace) = self.trace_out() {
                println!("# chrome trace for this run: {trace}");
            }
        }
    }

    /// Whether this invocation asked for telemetry: an explicit
    /// `--telemetry` flag, or implicitly via `--trace-out` (a trace
    /// cannot be produced without the sink installed).
    pub fn telemetry_requested(&self) -> bool {
        self.get_flag("telemetry") || self.trace_out().is_some()
    }

    /// The `--trace-out <file.json>` destination, if given.
    pub fn trace_out(&self) -> Option<&str> {
        self.get("trace-out")
    }

    /// The `--trace-out` epilogue shared by the figure binaries: renders
    /// everything the event rings captured as one chrome://tracing /
    /// Perfetto document and writes it where `--trace-out` pointed.
    /// No-op without the flag. Call once, after the measured runs.
    pub fn write_trace(&self) {
        let Some(path) = self.trace_out() else {
            return;
        };
        let json = ts_telemetry::render_chrome_trace();
        std::fs::write(path, json).expect("write chrome trace");
        println!("# chrome trace written to {path} (load in chrome://tracing or ui.perfetto.dev)");
    }
}

/// Default thread ladder for throughput sweeps: powers of two through
/// `2 × hardware threads` (the paper sweeps 1→80 on a 40-core × 2 SMT
/// box; we scale to whatever this machine has).
pub fn thread_ladder() -> Vec<usize> {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut ladder = vec![1usize];
    let mut t = 2;
    while t <= hw * 2 {
        ladder.push(t);
        t *= 2;
    }
    if ladder.last() != Some(&(hw * 2)) {
        ladder.push(hw * 2);
    }
    ladder.dedup();
    ladder
}

/// Oversubscription ladder: 1× to 8× hardware threads. The paper's
/// Figure 4 runs to 200 threads on an 80-thread machine (2.5×); the
/// heavy-traffic goal wants the deep-oversubscription regime too, where
/// descheduled reclaimers dominate latency tails.
pub fn oversub_ladder() -> Vec<usize> {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let steps = [1.0f64, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0];
    let mut out: Vec<usize> = steps
        .iter()
        .map(|s| ((hw as f64) * s).round().max(2.0) as usize)
        .collect();
    out.dedup();
    out
}

/// Machine description for result metadata.
pub fn machine_info() -> String {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    format!(
        "{} hardware threads, {} {}",
        hw,
        std::env::consts::ARCH,
        std::env::consts::OS
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> CliArgs {
        CliArgs::from_args(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn telemetry_is_requested_by_flag_or_trace_out() {
        assert!(!args(&["--quick"]).telemetry_requested());
        assert!(args(&["--telemetry"]).telemetry_requested());
        let a = args(&["--trace-out", "t.json"]);
        assert!(a.telemetry_requested());
        assert_eq!(a.trace_out(), Some("t.json"));
        assert_eq!(args(&[]).trace_out(), None);
    }

    #[test]
    fn parses_key_values_and_flags() {
        let a = args(&["--duration", "2.5", "--quick", "--threads", "1,2,4"]);
        assert_eq!(a.get_f64("duration", 1.0), 2.5);
        assert!(a.get_flag("quick"));
        assert_eq!(a.get_usize_list("threads", &[9]), vec![1, 2, 4]);
        assert_eq!(a.get_usize("missing", 7), 7);
    }

    #[test]
    fn ladders_are_sane() {
        let l = thread_ladder();
        assert_eq!(l[0], 1);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        let o = oversub_ladder();
        assert!(o.iter().all(|&t| t >= 2));
    }

    #[test]
    #[should_panic(expected = "expects a number")]
    fn bad_number_panics() {
        args(&["--n", "abc"]).get_usize("n", 0);
    }
}
