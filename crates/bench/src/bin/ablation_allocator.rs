//! Ablation I: the allocator substrate (§6 setup: "we used the highly
//! scalable TCMalloc allocator").
//!
//! This binary runs the same Figure-3 list/hash cells as
//! `fig3_throughput`, with the global allocator selected **at runtime**:
//!
//! * default — the system allocator (the baseline rows);
//! * `--real-alloc` — [`ts_alloc`]'s TCMalloc-style thread-caching
//!   allocator, flipped on before any workload runs via the one-way
//!   [`ts_alloc::SwitchableAlloc`] switch.
//!
//! Under `--real-alloc` every `RunResult` carries the run's
//! allocator-counter deltas (the `ts-alloc-nodes` feature of
//! `ts-workload`), which land in the JSON as an `alloc` block — so the
//! amortization claim ("allocs per depot lock") is checkable per cell,
//! not just per process.

use std::time::Duration;

use ts_alloc::SwitchableAlloc;
use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

#[global_allocator]
static ALLOC: SwitchableAlloc = SwitchableAlloc;

fn main() {
    let args = CliArgs::parse();
    let real_alloc = args.get_flag("real-alloc");
    if real_alloc {
        // One-way: must happen before the workloads allocate anything.
        ts_alloc::enable_ts_alloc();
    }
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 1.5 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads_list = args.get_usize_list("threads", &[2, 4]);
    let schemes = [SchemeKind::Leaky, SchemeKind::Epoch, SchemeKind::ThreadScan];

    println!("# Ablation I: allocator substrate ({})", machine_info());
    println!(
        "# global allocator = {} (--real-alloc toggles the thread-caching ts-alloc)",
        if real_alloc { "ts-alloc" } else { "system" }
    );
    println!("# duration={duration:?} scale=1/{scale} update%=20");

    let mut report = Report::new("ablation-allocator");
    for structure in [StructureKind::List, StructureKind::Hash] {
        println!("\n## structure={}", structure.label());
        println!(
            "{:>8} {:>14} {:>14} {:>14}",
            "threads", "leaky", "epoch", "threadscan"
        );
        for &threads in &threads_list {
            let mut row = format!("{threads:>8}");
            for scheme in schemes {
                let params = WorkloadParams::fig3(structure, threads)
                    .scaled_down(scale)
                    .with_duration(duration);
                let r = run_combo(scheme, &params);
                row.push_str(&format!("{:>14.3}", r.ops_per_sec / 1e6));
                if let Some(alloc) = &r.alloc {
                    eprintln!(
                        "  {:6} {:10} t={threads}: {} small allocs, {:.1} allocs/depot-lock",
                        structure.label(),
                        scheme.label(),
                        alloc.small_allocs,
                        alloc.allocs_per_lock()
                    );
                }
                report.push(r);
            }
            println!("{row}");
        }
    }

    let s = ts_alloc::stats();
    println!("\n# allocator counters (process lifetime):");
    println!("#   small allocs     {:>12}", s.small_allocs);
    println!("#   small frees      {:>12}", s.small_frees);
    println!(
        "#   spans carved     {:>12} ({} MiB)",
        s.spans,
        s.span_bytes >> 20
    );
    println!(
        "#   depot locks      {:>12}",
        s.cache_fills + s.cache_flushes
    );
    println!("#   allocs per lock  {:>12.1}", s.allocs_per_lock());
    if real_alloc {
        // Only classes with traffic: an idle class row is noise.
        println!("#\n# active size classes:");
        println!(
            "# {:>5} {:>8} {:>12} {:>12} {:>12}",
            "class", "size", "allocs", "frees", "resident"
        );
        for class in 0..ts_alloc::NUM_CLASSES {
            let (allocs, frees) = (s.class_allocs[class], s.class_frees[class]);
            if allocs == 0 && frees == 0 {
                continue;
            }
            let size = ts_alloc::class_size(class);
            println!(
                "# {:>5} {:>8} {:>12} {:>12} {:>12}",
                class,
                size,
                allocs,
                frees,
                allocs.saturating_sub(frees) * size
            );
        }
    } else {
        println!("#   (all zero: system allocator active; pass --real-alloc)");
    }

    args.write_json_report(&report);
}
