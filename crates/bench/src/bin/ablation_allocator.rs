//! Ablation I: the allocator substrate (§6 setup: "we used the highly
//! scalable TCMalloc allocator").
//!
//! This binary is the same Figure-3 list/hash cells as `fig3_throughput`,
//! but with [`ts_alloc::TsAlloc`] — this repo's TCMalloc-style
//! thread-caching allocator — installed as the global allocator. A
//! global allocator is per-binary, so compare these rows against the
//! matching system-allocator rows from `fig3_throughput` (EXPERIMENTS.md
//! records both). The allocator's own amortization counters are printed
//! to verify the thread caches actually absorbed the traffic.

use std::time::Duration;

use ts_alloc::TsAlloc;
use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

#[global_allocator]
static ALLOC: TsAlloc = TsAlloc;

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 1.5 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads_list = args.get_usize_list("threads", &[2, 4]);
    let schemes = [SchemeKind::Leaky, SchemeKind::Epoch, SchemeKind::ThreadScan];

    println!("# Ablation I: ts-alloc substrate ({})", machine_info());
    println!("# global allocator = ts-alloc (thread-caching); compare vs fig3 rows");
    println!("# duration={duration:?} scale=1/{scale} update%=20");

    let mut report = Report::new("ablation-allocator");
    for structure in [StructureKind::List, StructureKind::Hash] {
        println!("\n## structure={}", structure.label());
        println!(
            "{:>8} {:>14} {:>14} {:>14}",
            "threads", "leaky", "epoch", "threadscan"
        );
        for &threads in &threads_list {
            let mut row = format!("{threads:>8}");
            for scheme in schemes {
                let params = WorkloadParams::fig3(structure, threads)
                    .scaled_down(scale)
                    .with_duration(duration);
                let r = run_combo(scheme, &params);
                row.push_str(&format!("{:>14.3}", r.ops_per_sec / 1e6));
                report.push(r);
            }
            println!("{row}");
        }
    }

    let s = ts_alloc::stats();
    println!("\n# allocator counters:");
    println!("#   small allocs     {:>12}", s.small_allocs);
    println!("#   small frees      {:>12}", s.small_frees);
    println!(
        "#   spans carved     {:>12} ({} MiB)",
        s.spans,
        s.span_bytes >> 20
    );
    println!(
        "#   depot locks      {:>12}",
        s.cache_fills + s.cache_flushes
    );
    println!("#   allocs per lock  {:>12.1}", s.allocs_per_lock());

    if let Some(path) = args.get("json") {
        report
            .write_json(std::path::Path::new(path))
            .expect("write json");
        println!("# json written to {path}");
    }
}
