//! Directory-growth ablation: drive the split-ordered table from 2^8
//! buckets to past the old 2^20 directory cap, and show that growth is
//! incremental — no stop-the-world resize.
//!
//! Worker threads insert distinct keys (with a slice of remove+reinsert
//! traffic so the collector actually has retirements to process) while
//! the main thread watches the bucket count. At every doubling it emits
//! a checkpoint: buckets, resident keys, elapsed time, the collector's
//! collect-latency percentiles so far, and the worst *single-op* latency
//! any worker has seen — the number a stop-the-world resize would blow
//! up and an incremental segment-tree grow keeps flat.
//!
//! ```text
//! cargo run -p ts-bench --release --bin ablation_growth -- \
//!     [--threads 4] [--target-buckets 2097152] [--load-factor 1] \
//!     [--timeout 120] [--json out.jsonl]
//! ```
//!
//! `--quick` shrinks the target to 2^12 buckets for CI smoke runs.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ts_bench::cli::{machine_info, CliArgs};
use ts_sigscan::SignalPlatform;
use ts_smr::dynamic::{DynSmr, ErasedSmr};
use ts_smr::{Smr, ThreadScanSmr};
use ts_structures::{ConcurrentSet, SplitOrderedSet};
use ts_workload::json::ObjectBuilder;

const START_BUCKETS: usize = 256; // 2^8
const OLD_CAP: usize = 1 << 20;

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let threads = args.get_usize("threads", 4);
    let target_buckets = args.get_usize("target-buckets", if quick { 1 << 12 } else { 1 << 21 });
    let load_factor = args.get_usize("load-factor", 1);
    let timeout_s = args.get_usize("timeout", 120) as u64;

    println!(
        "# Directory growth: 2^8 -> {target_buckets} buckets ({})",
        machine_info()
    );
    println!("# threads={threads} load_factor={load_factor} old_cap=2^20={OLD_CAP}");

    let platform = SignalPlatform::new().expect("signal platform unavailable");
    // Small delete buffers force collect phases during the sweep, so the
    // latency histogram has data at every checkpoint.
    let config = threadscan::CollectorConfig::default().with_buffer_capacity(256);
    let scheme: Arc<dyn DynSmr> = Arc::new(ThreadScanSmr::with_config(platform, config));
    let erased = Arc::new(ErasedSmr::new(Arc::clone(&scheme)));
    let set = Arc::new(
        SplitOrderedSet::<ErasedSmr>::with_buckets(START_BUCKETS).with_load_factor(load_factor),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let inserted = Arc::new(AtomicUsize::new(0));
    // Worst single-op wall time (ns) any worker observed, sampled on
    // every op: a stop-the-world resize would spike this by orders of
    // magnitude at each doubling.
    let max_op_ns = Arc::new(AtomicU64::new(0));

    let t0 = Instant::now();
    let mut checkpoints: Vec<String> = Vec::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let erased = Arc::clone(&erased);
            let set = Arc::clone(&set);
            let stop = Arc::clone(&stop);
            let inserted = Arc::clone(&inserted);
            let max_op_ns = Arc::clone(&max_op_ns);
            s.spawn(move || {
                let handle = erased.register();
                let mut local_max = 0u64;
                // Distinct keys per thread: k = i * threads + t.
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = i * threads as u64 + t as u64;
                    let op_start = Instant::now();
                    if set.insert(&handle, key) {
                        inserted.fetch_add(1, Ordering::Relaxed);
                    }
                    // Every 8th key: churn an older key so nodes retire
                    // and the collector has real work during growth.
                    if i % 8 == 7 && i >= 8 {
                        let victim = (i - 8) * threads as u64 + t as u64;
                        if set.remove(&handle, victim) {
                            set.insert(&handle, victim);
                        }
                    }
                    let ns = op_start.elapsed().as_nanos() as u64;
                    if ns > local_max {
                        local_max = ns;
                        max_op_ns.fetch_max(ns, Ordering::Relaxed);
                    }
                    i += 1;
                }
            });
        }

        // Watcher: checkpoint at every doubling until the target.
        let mut next_mark = START_BUCKETS * 2;
        loop {
            std::thread::sleep(std::time::Duration::from_millis(2));
            let buckets = set.bucket_count();
            while buckets >= next_mark {
                checkpoints.push(checkpoint_json(
                    next_mark,
                    inserted.load(Ordering::Relaxed),
                    t0.elapsed().as_secs_f64(),
                    max_op_ns.load(Ordering::Relaxed),
                    &*scheme,
                ));
                let line = checkpoints.last().unwrap();
                println!("{line}");
                next_mark *= 2;
            }
            if buckets >= target_buckets {
                break;
            }
            assert!(
                t0.elapsed().as_secs() < timeout_s,
                "growth stalled: {buckets}/{target_buckets} buckets after {timeout_s}s"
            );
        }
        stop.store(true, Ordering::Relaxed);
    });

    let buckets = set.bucket_count();
    let resident = inserted.load(Ordering::Relaxed);
    println!(
        "# final: {buckets} buckets, {resident} resident keys, {:.2}s",
        t0.elapsed().as_secs_f64()
    );
    if buckets > OLD_CAP {
        println!("# crossed the old 2^20 directory cap");
    }
    assert!(buckets >= target_buckets);

    if let Some(path) = args.get("json") {
        std::fs::write(path, checkpoints.join("\n") + "\n").expect("write json");
        println!("# json written to {path}");
    }
}

/// One checkpoint as a JSON line: directory size, residency, elapsed,
/// sampled worst op latency, and the collector's latency percentiles.
fn checkpoint_json(
    buckets: usize,
    resident: usize,
    elapsed_s: f64,
    max_op_ns: u64,
    scheme: &dyn DynSmr,
) -> String {
    let mut b = ObjectBuilder::new()
        .num("buckets", buckets as f64)
        .num("resident_keys", resident as f64)
        .num("elapsed_s", elapsed_s)
        .num("max_op_us", max_op_ns as f64 / 1e3)
        .bool("past_old_cap", buckets > OLD_CAP);
    if let Some(ts) = scheme
        .as_any()
        .downcast_ref::<ThreadScanSmr<SignalPlatform>>()
    {
        let st = ts.stats();
        b = b
            .num("collects", st.collects as f64)
            .num("collect_us_p50", st.collect_us_percentile(0.50))
            .num("collect_us_p95", st.collect_us_percentile(0.95))
            .num("collect_us_p99", st.collect_us_percentile(0.99));
    }
    b.build()
}
