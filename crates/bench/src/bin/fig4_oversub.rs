//! Figure 4 regeneration: throughput under oversubscription (more threads
//! than hardware contexts) for {Leaky, Epoch, ThreadScan}.
//!
//! "Slow Epoch and Hazard Pointers were not included in the
//! oversubscription experiment since they were shown not to scale well in
//! normal circumstances" (§6). The hash table additionally gets the tuned
//! ThreadScan line with 4096-entry per-thread buffers ("ThreadScan was
//! tuned for the hash table to improve performance").
//!
//! ```text
//! cargo run -p ts-bench --release --bin fig4_oversub -- \
//!     [--duration 2.0] [--repeats 2] [--threads ...] [--scale 1] [--json out]
//! ```

use std::time::Duration;

use ts_bench::cli::{machine_info, oversub_ladder, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 2.0 }));
    let repeats = args.get_usize("repeats", if quick { 1 } else { 2 });
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads = args.get_usize_list(
        "threads",
        &if quick { vec![2, 4] } else { oversub_ladder() },
    );

    println!("# Figure 4: oversubscription ({})", machine_info());
    println!("# duration={duration:?} repeats={repeats} scale=1/{scale} threads={threads:?}");

    let mut report = Report::new("fig4");
    for structure in StructureKind::ALL {
        for &t in &threads {
            for scheme in SchemeKind::OVERSUB {
                let params = WorkloadParams::fig3(structure, t)
                    .scaled_down(scale)
                    .with_duration(duration);
                run_cell(&mut report, scheme, &params, repeats, None);

                // The tuned line: hash table + ThreadScan + 4096 buffers.
                if structure == StructureKind::Hash && scheme == SchemeKind::ThreadScan {
                    let tuned = params.clone().with_ts_buffer(4096);
                    run_cell(
                        &mut report,
                        scheme,
                        &tuned,
                        repeats,
                        Some("threadscan-4096"),
                    );
                }
            }
        }
    }

    println!("{}", report.render_series());
    if let Some(path) = args.get("json") {
        report
            .write_json(std::path::Path::new(path))
            .expect("write json");
        println!("# json written to {path}");
    }
}

fn run_cell(
    report: &mut Report,
    scheme: SchemeKind,
    params: &WorkloadParams,
    repeats: usize,
    rename: Option<&str>,
) {
    let mut acc = 0.0f64;
    let mut last = None;
    for _ in 0..repeats {
        let r = run_combo(scheme, params);
        acc += r.ops_per_sec;
        last = Some(r);
    }
    let mut r = last.expect("repeats >= 1");
    r.ops_per_sec = acc / repeats as f64;
    if let Some(name) = rename {
        r.scheme = name.to_string();
    }
    eprintln!(
        "  {:9} {:16} t={:<4} {:>10.3} Mops/s",
        r.structure,
        r.scheme,
        params.threads,
        r.ops_per_sec / 1e6
    );
    report.push(r);
}
