//! Figure 4 regeneration: throughput under oversubscription (more threads
//! than hardware contexts) for {Leaky, Epoch, ThreadScan}.
//!
//! "Slow Epoch and Hazard Pointers were not included in the
//! oversubscription experiment since they were shown not to scale well in
//! normal circumstances" (§6). The hash table additionally gets the tuned
//! ThreadScan line with 4096-entry per-thread buffers ("ThreadScan was
//! tuned for the hash table to improve performance").
//!
//! The thread ladder sweeps 1×–8× the hardware contexts, and every
//! ThreadScan row carries reclaimer collect-latency percentiles
//! (p50/p95/p99, from the collector's log2 latency histogram, merged
//! across all repeats of the cell) in the JSON report — under
//! oversubscription the *tail* is the story, not the mean.
//!
//! ```text
//! cargo run -p ts-bench --release --bin fig4_oversub -- \
//!     [--duration 2.0] [--repeats 2] [--threads ...] [--scale 1] \
//!     [--ts-sort-threads N] [--json out] \
//!     [--telemetry] [--trace-out trace.json]
//! ```
//!
//! `--trace-out` (which implies `--telemetry`) captures every collect's
//! phase timeline into a chrome://tracing / Perfetto document: each
//! collect decomposes into announce → signal → per-thread scan spans →
//! sort → free, one track per scanned thread.

use std::time::Duration;

use threadscan::Hist;
use ts_bench::cli::{machine_info, oversub_ladder, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 2.0 }));
    let repeats = args.get_usize("repeats", if quick { 1 } else { 2 });
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads = args.get_usize_list(
        "threads",
        &if quick { vec![2, 4] } else { oversub_ladder() },
    );
    let sort_threads = args.get_usize("ts-sort-threads", 0);
    let telemetry = args.telemetry_requested();

    println!("# Figure 4: oversubscription ({})", machine_info());
    println!(
        "# duration={duration:?} repeats={repeats} scale=1/{scale} threads={threads:?} \
         ts-sort-threads={sort_threads} (0 = collector default) telemetry={telemetry}"
    );

    let mut report = Report::new("fig4");
    for structure in StructureKind::ALL {
        for &t in &threads {
            for scheme in SchemeKind::OVERSUB {
                let params = WorkloadParams::fig3(structure, t)
                    .scaled_down(scale)
                    .with_duration(duration)
                    .with_ts_sort_threads(sort_threads)
                    .with_telemetry(telemetry);
                run_cell(&mut report, scheme, &params, repeats, None);

                // The tuned line: hash table + ThreadScan + 4096 buffers.
                if structure == StructureKind::Hash && scheme == SchemeKind::ThreadScan {
                    let tuned = params.clone().with_ts_buffer(4096);
                    run_cell(
                        &mut report,
                        scheme,
                        &tuned,
                        repeats,
                        Some("threadscan-4096"),
                    );
                }
            }
        }
    }

    println!("{}", report.render_series());
    args.write_trace();
    args.write_json_report(&report);
}

fn run_cell(
    report: &mut Report,
    scheme: SchemeKind,
    params: &WorkloadParams,
    repeats: usize,
    rename: Option<&str>,
) {
    let mut acc = 0.0f64;
    let mut hist = Hist::new();
    let mut last = None;
    for _ in 0..repeats {
        let r = run_combo(scheme, params);
        acc += r.ops_per_sec;
        if let Some(ts) = &r.threadscan {
            hist.add_counts(&ts.collect_ns_hist);
        }
        last = Some(r);
    }
    let mut r = last.expect("repeats >= 1");
    r.ops_per_sec = acc / repeats as f64;
    if let Some(ts) = &mut r.threadscan {
        // Percentiles over *every* repeat's phases, matching the
        // averaged ops/sec — a noisy final repeat must not skew the
        // reported tail. `collects` is summed alongside so it stays
        // equal to the histogram's total; the remaining extras
        // (means, maxima, shard layout) still describe the last repeat.
        ts.collect_us_p50 = hist.percentile_ns(0.50) / 1e3;
        ts.collect_us_p95 = hist.percentile_ns(0.95) / 1e3;
        ts.collect_us_p99 = hist.percentile_ns(0.99) / 1e3;
        ts.collect_ns_hist = hist.counts().iter().map(|&c| c as usize).collect();
        ts.collects = hist.count() as usize;
    }
    if let Some(name) = rename {
        r.scheme = name.to_string();
    }
    match &r.threadscan {
        Some(ts) if ts.collects > 0 => eprintln!(
            "  {:9} {:16} t={:<4} {:>10.3} Mops/s  collect-lat µs p50/p95/p99: \
             {:.1}/{:.1}/{:.1}",
            r.structure,
            r.scheme,
            params.threads,
            r.ops_per_sec / 1e6,
            ts.collect_us_p50,
            ts.collect_us_p95,
            ts.collect_us_p99,
        ),
        _ => eprintln!(
            "  {:9} {:16} t={:<4} {:>10.3} Mops/s",
            r.structure,
            r.scheme,
            params.threads,
            r.ops_per_sec / 1e6
        ),
    }
    report.push(r);
}
