//! Ablation B: update-ratio sweep.
//!
//! §6 argues ThreadScan's reclamation cost "is amortized ... against
//! reclaimed nodes": more removals mean more scans but also more freed
//! memory per scan. This binary sweeps the update percentage on the list
//! and hash workloads for {Leaky, Epoch, ThreadScan} so the overhead-vs-
//! reclamation-pressure relationship is visible.

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 1.5 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads = args.get_usize(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            * 2,
    );
    let ratios = args.get_usize_list("ratios", &[0, 10, 20, 50, 100]);

    println!("# Ablation B: update-ratio sweep ({})", machine_info());
    println!("# threads={threads} duration={duration:?} scale=1/{scale}");

    let mut report = Report::new("ablation-update-ratio");
    for structure in [StructureKind::List, StructureKind::Hash] {
        println!("\n## structure={}", structure.label());
        println!(
            "{:>8} {:>14} {:>14} {:>14}",
            "update%", "leaky", "epoch", "threadscan"
        );
        for &pct in &ratios {
            let mut row = format!("{pct:>8}");
            for scheme in [SchemeKind::Leaky, SchemeKind::Epoch, SchemeKind::ThreadScan] {
                let params = WorkloadParams::fig3(structure, threads)
                    .scaled_down(scale)
                    .with_duration(duration)
                    .with_update_pct(pct as u32);
                let r = run_combo(scheme, &params);
                row.push_str(&format!("{:>14.3}", r.ops_per_sec / 1e6));
                report.push(r);
            }
            println!("{row}");
        }
    }

    args.write_json_report(&report);
}
