//! Ablation E: the StackTrack comparator (§6 text).
//!
//! The paper compares against StackTrack on the skip list (whose original
//! implementation StackTrack provided). HTM being unavailable, our
//! `StackTrackSim` emulates its reclaimer-pays-consistency property with
//! asymmetric fences (see DESIGN.md §6). This binary runs the extended
//! scheme set on the skip list so StackTrack's position relative to the
//! five legend schemes is visible.

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 2.0 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads = args.get_usize_list("threads", &{
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        vec![1, hw.max(2), hw * 2]
    });

    println!(
        "# Ablation E: StackTrack comparator on the skip list ({})",
        machine_info()
    );
    println!("# duration={duration:?} scale=1/{scale} threads={threads:?}");

    let mut report = Report::new("ablation-stacktrack");
    for &t in &threads {
        let params = WorkloadParams::fig3(StructureKind::Skip, t)
            .scaled_down(scale)
            .with_duration(duration);
        for scheme in SchemeKind::EXTENDED {
            let r = run_combo(scheme, &params);
            eprintln!(
                "  t={:<3} {:12} {:>10.3} Mops/s",
                t,
                r.scheme,
                r.ops_per_sec / 1e6
            );
            report.push(r);
        }
    }
    println!("{}", report.render_series());
    args.write_json_report(&report);
}
