//! Ablation H: word-matching kernel — range (ours) vs masked exact (the
//! paper's §4.2).
//!
//! Range matching (`addr <= w < addr + size`) is this port's deviation:
//! Rust traversals may hold interior pointers, which the paper's masked
//! equality would miss (and then free a live node). The Harris list is
//! the one structure whose traversals provably hold only node-base
//! pointers (`next` is the first field), so the paper's exact kernel is
//! sound there — making it the right place to measure what the stronger
//! conservatism costs: throughput, scan words, and survivor counts.

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 2.0 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads_list = args.get_usize_list("threads", &[2, 4]);

    println!("# Ablation H: range vs exact matching ({})", machine_info());
    println!("# structure=list duration={duration:?} scale=1/{scale} update%=20");
    println!(
        "{:>8} {:>13} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "threads",
        "range Mops/s",
        "exact Mops/s",
        "range surv",
        "exact surv",
        "range lat-µs",
        "exact lat-µs"
    );

    let mut report = Report::new("ablation-match-mode");
    for &threads in &threads_list {
        let base = WorkloadParams::fig3(StructureKind::List, threads)
            .scaled_down(scale)
            .with_duration(duration);

        let range = run_combo(SchemeKind::ThreadScan, &base);

        let mut exact_params = base.clone();
        exact_params.ts_exact_match = true;
        let exact = run_combo(SchemeKind::ThreadScan, &exact_params);

        let r = range.threadscan.clone().unwrap_or_default();
        let e = exact.threadscan.clone().unwrap_or_default();
        println!(
            "{:>8} {:>13.3} {:>13.3} {:>13} {:>13} {:>13.1} {:>13.1}",
            threads,
            range.ops_per_sec / 1e6,
            exact.ops_per_sec / 1e6,
            r.survivors,
            e.survivors,
            r.mean_collect_us,
            e.mean_collect_us,
        );
        report.push(range);
        report.push(exact);
    }
    println!("# exact matching may retain fewer survivors (no interior-pointer hits)");

    args.write_json_report(&report);
}
