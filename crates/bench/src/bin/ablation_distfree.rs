//! Ablation C: the §7 "Future Work" distributed-free extension.
//!
//! The paper's stated limitation: "The reclaiming thread must wait on the
//! other threads and perform all the free calls, itself ... the reclaimer
//! may become unresponsive at large thread counts. In future work, we plan
//! to investigate whether the latter problem may be solved by sharing the
//! reclamation overhead." This binary runs ThreadScan with the extension
//! off and on and reports throughput plus how many frees were actually
//! performed by non-reclaimers.

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 2.0 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let thread_counts = args.get_usize_list("threads", &{
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2);
        vec![hw, hw * 2, (hw as f64 * 2.5) as usize]
    });

    println!("# Ablation C: distributed frees (§7) ({})", machine_info());
    println!("# structure=list duration={duration:?} scale=1/{scale}");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "threads",
        "stock Mops/s",
        "dist Mops/s",
        "stock lat-µs",
        "dist lat-µs",
        "stock max-µs",
        "dist max-µs"
    );

    let mut report = Report::new("ablation-distfree");
    for &t in &thread_counts {
        let base = WorkloadParams::fig3(StructureKind::List, t)
            .scaled_down(scale)
            .with_duration(duration);

        let stock = run_combo(SchemeKind::ThreadScan, &base);

        let mut dist_params = base.clone();
        dist_params.ts_distribute_frees = true;
        let dist = run_combo(SchemeKind::ThreadScan, &dist_params);

        // §7's responsiveness claim, measured directly: distributing the
        // free calls should cut the reclaimer's per-phase latency.
        let (s_mean, s_max) = stock
            .threadscan
            .as_ref()
            .map(|x| (x.mean_collect_us, x.max_collect_us))
            .unwrap_or((0.0, 0.0));
        let (d_mean, d_max) = dist
            .threadscan
            .as_ref()
            .map(|x| (x.mean_collect_us, x.max_collect_us))
            .unwrap_or((0.0, 0.0));
        println!(
            "{:>8} {:>14.3} {:>14.3} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            t,
            stock.ops_per_sec / 1e6,
            dist.ops_per_sec / 1e6,
            s_mean,
            d_mean,
            s_max,
            d_max,
        );
        report.push(stock);
        report.push(dist);
    }

    args.write_json_report(&report);
}
