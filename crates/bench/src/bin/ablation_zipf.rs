//! Ablation G: key-skew sweep (beyond the paper's figures).
//!
//! The paper's methodology draws keys uniformly. Under zipfian skew a hot
//! set concentrates traffic — hot nodes are overwhelmingly likely to sit
//! in *some* thread's stack at scan time, so ThreadScan's conservative
//! mark keeps resurrecting them as survivors, while epoch schemes are
//! indifferent to which node was retired. This sweep measures throughput
//! (and ThreadScan's survivor counts, printed as a second table) as skew
//! rises from uniform to strongly zipfian.

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, KeyDist, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 1.5 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads = args.get_usize(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            * 2,
    );
    let thetas = [0.0f64, 0.5, 0.9, 0.99]; // 0.0 = uniform
    let schemes = [SchemeKind::Leaky, SchemeKind::Epoch, SchemeKind::ThreadScan];

    println!("# Ablation G: key-skew sweep ({})", machine_info());
    println!("# threads={threads} duration={duration:?} scale=1/{scale} update%=20");

    let mut report = Report::new("ablation-zipf");
    for structure in [StructureKind::Hash, StructureKind::List] {
        println!("\n## structure={}", structure.label());
        println!(
            "{:>10} {:>14} {:>14} {:>14} {:>12}",
            "skew", "leaky", "epoch", "threadscan", "ts-survivors"
        );
        for &theta in &thetas {
            let dist = if theta == 0.0 {
                KeyDist::Uniform
            } else {
                KeyDist::Zipf { theta }
            };
            let mut row = format!("{:>10}", dist.label());
            let mut survivors = 0usize;
            for scheme in schemes {
                let params = WorkloadParams::fig3(structure, threads)
                    .scaled_down(scale)
                    .with_duration(duration)
                    .with_key_dist(dist);
                let r = run_combo(scheme, &params);
                row.push_str(&format!("{:>14.3}", r.ops_per_sec / 1e6));
                if let Some(ts) = &r.threadscan {
                    survivors = ts.survivors;
                }
                report.push(r);
            }
            row.push_str(&format!("{survivors:>12}"));
            println!("{row}");
        }
    }
    println!("# throughput columns are Mops/s");

    args.write_json_report(&report);
}
