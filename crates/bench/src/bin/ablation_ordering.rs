//! Ablation: memory-ordering relaxations on the reclamation fast paths.
//!
//! Times exactly the sites the ordering-relaxation pass touches — the
//! epoch `begin_op`/`end_op` bracket, the epoch retire stamp path, the
//! `LocalBuffer` push + occupancy probe, and the hazard-pointer
//! protect/release cycle — so each relaxation lands with a measured
//! before/after delta (run this binary at the parent commit and at the
//! relaxation commit; the README ordering-policy table records the
//! numbers). Single-threaded on purpose: these are uncontended fast-path
//! costs, where an x86 `SeqCst` store (`xchg`/`mfence`) versus a plain
//! store is the entire story.
//!
//! `--json <path>` writes machine-readable results.

use std::sync::atomic::AtomicPtr;
use std::time::Instant;

use threadscan::buffer::LocalBuffer;
use threadscan::retired::{noop_drop, Retired};
use ts_bench::cli::{machine_info, CliArgs};
use ts_smr::{retire_box, EpochScheme, HazardPointers, Smr, SmrHandle};

/// Runs `iters` iterations of `op` `trials` times; returns the fastest
/// trial in ns/op (min filters scheduler noise better than mean for
/// single-threaded fixed-work loops).
fn time_ns_per_op(trials: usize, iters: usize, mut op: impl FnMut(usize)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        for i in 0..iters {
            op(i);
        }
        let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    best
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let iters = args.get_usize("iters", if quick { 200_000 } else { 2_000_000 });
    let trials = args.get_usize("trials", if quick { 3 } else { 7 });

    println!(
        "# Ablation: fast-path memory orderings ({})",
        machine_info()
    );
    println!("# iters={iters} trials={trials} (fastest trial, ns/op)");

    let mut results: Vec<(&str, f64)> = Vec::new();

    // Epoch fast path: the begin_op announce (global load + state store)
    // and the end_op clear — the "two writes per method" the paper charges
    // the epoch scheme.
    {
        let scheme = EpochScheme::new();
        let handle = scheme.register();
        let ns = time_ns_per_op(trials, iters, |_| {
            handle.begin_op();
            handle.end_op();
        });
        results.push(("epoch_begin_end_pair", ns));
    }

    // Epoch retire path: stamp load + bag push (+ opportunistic expiry
    // probe). Threshold high enough that no advance runs inside the
    // timed region; nodes are pre-allocated so allocation cost stays out.
    {
        let scheme = EpochScheme::with_threshold(usize::MAX);
        let retire_iters = iters.min(400_000); // bag grows linearly
        let mut best = f64::INFINITY;
        for _ in 0..trials {
            let handle = scheme.register();
            let nodes: Vec<*mut u64> = (0..retire_iters)
                .map(|i| Box::into_raw(Box::new(i as u64)))
                .collect();
            let t0 = Instant::now();
            for &p in &nodes {
                // SAFETY: fresh Box, never shared, retired exactly once.
                unsafe { retire_box(&handle, p) };
            }
            let ns = t0.elapsed().as_nanos() as f64 / retire_iters as f64;
            best = best.min(ns);
            drop(handle); // bequeaths the bag to the orphan list...
            scheme.quiesce(); // ...which quiesce then frees
        }
        results.push(("epoch_retire", best));
    }

    // LocalBuffer fast path: the SPSC push plus the occupancy probe the
    // retire path uses to decide whether to trigger a phase.
    {
        let buf = LocalBuffer::new(4096);
        let mut out = Vec::new();
        let ns = time_ns_per_op(trials, iters, |i| {
            // SAFETY: single-threaded — sole producer and consumer.
            unsafe {
                if buf
                    .push(Retired::from_raw_parts(
                        0x1000 + (i % 4096) * 8,
                        8,
                        noop_drop,
                    ))
                    .is_err()
                {
                    buf.drain_into(&mut out);
                    out.clear();
                }
            }
            std::hint::black_box(buf.len());
        });
        results.push(("buffer_push_len", ns));
    }

    // Hazard fast path: publish + SeqCst fence + validate, then the
    // end_op slot clear — the per-reference cost the paper charges hazard
    // pointers.
    {
        let scheme = HazardPointers::new();
        let handle = scheme.register();
        let target = Box::into_raw(Box::new(0u64)).cast::<u8>();
        let shared = AtomicPtr::new(target);
        let ns = time_ns_per_op(trials, iters, |_| {
            std::hint::black_box(handle.load_protected(0, &shared));
            handle.end_op();
        });
        // SAFETY: never retired, no other reference.
        unsafe { drop(Box::from_raw(target.cast::<u64>())) };
        results.push(("hazard_protect_release", ns));
    }

    println!("{:>24} {:>12}", "site", "ns/op");
    for (name, ns) in &results {
        println!("{name:>24} {ns:>12.2}");
    }

    if let Some(path) = args.get("json") {
        let entries: Vec<String> = results
            .iter()
            .map(|(name, ns)| format!("  {{\"bench\": \"{name}\", \"ns_per_op\": {ns:.3}}}"))
            .collect();
        let json = format!(
            "{{\"ablation\": \"ordering\", \"iters\": {iters}, \"trials\": {trials}, \"results\": [\n{}\n]}}\n",
            entries.join(",\n")
        );
        std::fs::write(path, json).expect("write json");
        println!("# json written to {path}");
    }
}
