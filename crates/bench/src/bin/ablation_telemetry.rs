//! Ablation K: what does telemetry cost?
//!
//! Runs the same fig3-scale ThreadScan cell with telemetry off and on
//! and reports the throughput delta. The subsystem's contract is that
//! **off is free** — the disabled hot path executes zero additional
//! atomic operations (the sink is a plain `Option` field) — and that
//! **on is cheap**: the signal handler writes one ring cell per scan,
//! workers flush batched counters every 1024 ops, and the reclaimer
//! stamps ~11 events per collect. This binary pins both claims with
//! numbers on the current machine.
//!
//! ```text
//! cargo run -p ts-bench --release --bin ablation_telemetry -- \
//!     [--structure list] [--threads 2,4] [--duration 1.5] \
//!     [--repeats 3] [--scale 1] [--json out.jsonl]
//! ```
//!
//! Interleaves `repeats` off/on pairs per cell and compares means, so
//! slow machine-wide drift lands on both sides. The JSON rows carry the
//! telemetry state in the scheme label (`threadscan[telemetry-off]` /
//! `threadscan[telemetry-on]`).

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 1.5 }));
    let repeats = args.get_usize("repeats", if quick { 1 } else { 3 });
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads_list = args.get_usize_list("threads", &[2, 4]);
    let structures = args.get_structures("structure", &[StructureKind::List]);

    println!("# Ablation K: telemetry overhead ({})", machine_info());
    println!("# scheme=threadscan duration={duration:?} repeats={repeats} scale=1/{scale}");
    println!(
        "# {:>9} {:>8} {:>14} {:>14} {:>10}",
        "structure", "threads", "off Mops/s", "on Mops/s", "overhead"
    );

    let mut report = Report::new("ablation-telemetry");
    for &structure in &structures {
        for &threads in &threads_list {
            let base = WorkloadParams::fig3(structure, threads)
                .scaled_down(scale)
                .with_duration(duration);
            let mut off_acc = 0.0f64;
            let mut on_acc = 0.0f64;
            let mut last_off = None;
            let mut last_on = None;
            for _ in 0..repeats {
                let off = run_combo(SchemeKind::ThreadScan, &base);
                off_acc += off.ops_per_sec;
                last_off = Some(off);
                let on = run_combo(SchemeKind::ThreadScan, &base.clone().with_telemetry(true));
                on_acc += on.ops_per_sec;
                last_on = Some(on);
            }
            let off_mean = off_acc / repeats as f64;
            let on_mean = on_acc / repeats as f64;
            // Positive = telemetry made the run slower.
            let overhead_pct = (off_mean - on_mean) / off_mean * 100.0;
            println!(
                "# {:>9} {:>8} {:>14.3} {:>14.3} {:>9.2}%",
                structure.label(),
                threads,
                off_mean / 1e6,
                on_mean / 1e6,
                overhead_pct
            );
            let mut off = last_off.expect("repeats >= 1");
            off.ops_per_sec = off_mean;
            off.scheme = "threadscan[telemetry-off]".to_string();
            report.push(off);
            let mut on = last_on.expect("repeats >= 1");
            on.ops_per_sec = on_mean;
            on.scheme = "threadscan[telemetry-on]".to_string();
            report.push(on);
        }
    }

    // What the enabled side actually recorded, for scale.
    let page = ts_telemetry::render_prometheus();
    for line in page.lines() {
        if line.starts_with("threadscan_collects_total")
            || line.starts_with("threadscan_worker_ops_total")
            || line.starts_with("threadscan_telemetry_dropped_events")
        {
            println!("# {line}");
        }
    }

    args.write_json_report(&report);
}
