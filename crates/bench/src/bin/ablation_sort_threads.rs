//! Ablation J: parallel shard sorts — reclaimer sort latency vs
//! `sort_threads`.
//!
//! The reclaimer's critical path is dominated by sorting the aggregated
//! delete buffer; the sharded layout (address-range buckets, each sorted
//! independently) makes that embarrassingly parallel, and
//! `CollectorConfig::sort_threads` hands the buckets to a persistent
//! worker pool. This sweep isolates exactly that: it builds master
//! buffers of controlled size directly (no workload noise) and reports
//! `sort_ns` — the critical path the reclaimer actually waits — and
//! `sort_cpu_ns` — the total work — for every (entries × shards ×
//! sort_threads) cell. On a multi-core runner `sort_ns` should fall as
//! threads increase for phases of ≥ 64k entries while `sort_cpu_ns`
//! stays roughly flat; their ratio is the effective speedup.
//!
//! ```text
//! cargo run -p ts-bench --release --bin ablation_sort_threads -- \
//!     [--entries 65536,262144] [--shards 8,32] [--sort-threads 1,2,4,8] \
//!     [--repeats 5] [--json out]
//! ```

use threadscan::master::MasterBuffer;
use threadscan::pool::SortPool;
use threadscan::retired::{noop_drop, Retired};
use threadscan::CollectorConfig;
use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::json::ObjectBuilder;

/// Deterministic scrambled-but-distinct addresses: `i |-> bit-reverse(i)`
/// is a permutation of `0..2^k`, so every entry address is unique (a
/// double-retire would trip the collector's debug asserts) while arriving
/// in an order that gives the sorts real work.
fn entries_for(n: usize) -> Vec<Retired> {
    // Floor of 2 keeps the bit-reverse shift below usize::BITS (n = 1
    // would need a shift of 64, which overflows in debug builds).
    let n = n.next_power_of_two().max(2);
    let shift = usize::BITS - n.trailing_zeros();
    (0..n)
        .map(|i| {
            let addr = 0x10_0000 + (i.reverse_bits() >> shift) * 64;
            // SAFETY: noop_drop frees nothing; these records only feed
            // the sort, never a real reclamation.
            unsafe { Retired::from_raw_parts(addr, 48, noop_drop) }
        })
        .collect()
}

struct Cell {
    entries: usize,
    shards: usize,
    sort_threads: usize,
    /// Fastest observed critical-path sort time over the repeats (ns).
    sort_ns: usize,
    /// CPU total for that same fastest build (ns).
    sort_cpu_ns: usize,
    built_shards: usize,
}

fn measure(entries: usize, shards: usize, sort_threads: usize, repeats: usize) -> Cell {
    // `entries_for` rounds up to a power of two (min 2); report what was
    // actually sorted, not what was asked, so per-entry comparisons
    // across cells stay honest.
    let entries = entries.next_power_of_two().max(2);
    // 0 means "collector default", matching --sort-threads on
    // ablation_shards and --ts-sort-threads on fig4_oversub.
    let config = CollectorConfig::default().with_shards(shards);
    let config = if sort_threads > 0 {
        config.with_sort_threads(sort_threads)
    } else {
        config
    };
    let sort_threads = config.sort_threads;
    let pool = (sort_threads > 1).then(|| SortPool::new(sort_threads));
    let mut best: Option<(usize, usize, usize)> = None;
    for _ in 0..repeats.max(1) {
        let master = MasterBuffer::build(entries_for(entries), &config, pool.as_ref());
        let sample = (master.sort_ns(), master.sort_cpu_ns(), master.shard_count());
        if best.is_none_or(|(ns, _, _)| sample.0 < ns) {
            best = Some(sample);
        }
    }
    let (sort_ns, sort_cpu_ns, built_shards) = best.expect("repeats >= 1");
    Cell {
        entries,
        shards,
        sort_threads,
        sort_ns,
        sort_cpu_ns,
        built_shards,
    }
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let entries_list = args.get_usize_list(
        "entries",
        &if quick {
            vec![16_384]
        } else {
            vec![65_536, 262_144]
        },
    );
    let shard_list = args.get_usize_list("shards", &[8, 32]);
    let thread_list = args.get_usize_list("sort-threads", &[1, 2, 4, 8]);
    let repeats = args.get_usize("repeats", if quick { 2 } else { 5 });

    println!(
        "# Ablation J: parallel shard sorts ({}), best of {repeats}",
        machine_info()
    );
    println!(
        "{:>9} {:>7} {:>13} {:>12} {:>14} {:>9}",
        "entries", "shards", "sort-threads", "sort-ms", "sort-cpu-ms", "speedup"
    );

    let mut rows: Vec<String> = Vec::new();
    for &entries in &entries_list {
        for &shards in &shard_list {
            for &threads in &thread_list {
                let cell = measure(entries, shards, threads, repeats);
                let speedup = cell.sort_cpu_ns as f64 / cell.sort_ns.max(1) as f64;
                println!(
                    "{:>9} {:>7} {:>13} {:>12.3} {:>14.3} {:>8.2}x",
                    cell.entries,
                    cell.built_shards,
                    cell.sort_threads,
                    cell.sort_ns as f64 / 1e6,
                    cell.sort_cpu_ns as f64 / 1e6,
                    speedup,
                );
                rows.push(
                    ObjectBuilder::new()
                        .num("entries", cell.entries as f64)
                        .num("shards", cell.shards as f64)
                        .num("built_shards", cell.built_shards as f64)
                        .num("sort_threads", cell.sort_threads as f64)
                        .num("sort_ns", cell.sort_ns as f64)
                        .num("sort_cpu_ns", cell.sort_cpu_ns as f64)
                        .build(),
                );
            }
        }
    }
    println!("# sort-threads=1 is the sequential (pool-free) reclaimer sort");

    if let Some(path) = args.get("json") {
        let doc = format!(
            "{{\"experiment\":\"ablation-sort-threads\",\"rows\":[{}]}}\n",
            rows.join(",")
        );
        std::fs::write(path, doc).expect("write json");
        println!("# json written to {path}");
    }
}
