//! Ablation F: priority-queue stress (beyond the paper's figures).
//!
//! `delete_min` retires a node on *every* successful call, so at a 50/50
//! insert/delete-min mix half of all operations hit the reclamation path
//! — roughly 5× the retire pressure of the paper's 20%-update set
//! workloads. This sweep shows how each scheme holds up when reclamation
//! dominates, and how ThreadScan's signal amortization compares to the
//! per-step costs of hazard pointers on skiplist-shaped traversals.

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_pq_combo, PqParams, Report, SchemeKind};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 1.5 }));
    let prefill = args.get_usize("prefill", if quick { 1_000 } else { 20_000 });
    let threads_list = args.get_usize_list("threads", &[1, 2, 4, 8]);
    let schemes = [
        SchemeKind::Leaky,
        SchemeKind::Hazard,
        SchemeKind::Epoch,
        SchemeKind::ThreadScan,
    ];

    println!("# Ablation F: priority-queue stress ({})", machine_info());
    println!("# prefill={prefill} insert/delete-min=50/50 duration={duration:?}");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>14}",
        "threads", "leaky", "hazard", "epoch", "threadscan"
    );

    let mut report = Report::new("ablation-priority-queue");
    for &threads in &threads_list {
        let mut row = format!("{threads:>8}");
        for scheme in schemes {
            let params = PqParams::default()
                .with_prefill(prefill)
                .with_duration(duration)
                .with_threads(threads);
            let r = run_pq_combo(scheme, &params);
            row.push_str(&format!("{:>14.3}", r.ops_per_sec / 1e6));
            report.push(r);
        }
        println!("{row}");
    }
    println!("# columns are Mops/s");

    args.write_json_report(&report);
}
