//! Ablation A: ThreadScan delete-buffer size sweep.
//!
//! §6 observes the trade-off directly: "Increasing the size of the delete
//! buffer, and thereby reducing the frequency of reclamation iterations,
//! is a useful way of amortizing the cost of signals and of waiting.
//! However, it also increases the size of the list of pointers." This
//! binary sweeps the per-thread buffer capacity on the hash-table workload
//! and reports throughput plus the collector's own amortization counters
//! (collect frequency, words scanned per collect).

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 2.0 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads = args.get_usize(
        "threads",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            * 2,
    );
    let sizes = args.get_usize_list(
        "sizes",
        &if quick {
            vec![64, 256]
        } else {
            vec![256, 512, 1024, 2048, 4096, 8192, 16384]
        },
    );

    println!(
        "# Ablation A: delete-buffer size sweep ({})",
        machine_info()
    );
    println!("# structure=hash threads={threads} duration={duration:?} scale=1/{scale}");
    println!(
        "{:>8} {:>12} {:>10} {:>14} {:>16}",
        "buffer", "Mops/s", "collects", "freed", "words/collect"
    );

    let mut report = Report::new("ablation-buffer-size");
    for &size in &sizes {
        let params = WorkloadParams::fig3(StructureKind::Hash, threads)
            .scaled_down(scale)
            .with_duration(duration)
            .with_ts_buffer(size);
        let r = run_combo(SchemeKind::ThreadScan, &params);
        let ts = r.threadscan.clone().unwrap_or_default();
        let wpc = if ts.collects > 0 {
            ts.words_scanned as f64 / ts.collects as f64
        } else {
            0.0
        };
        println!(
            "{:>8} {:>12.3} {:>10} {:>14} {:>16.0}",
            size,
            r.ops_per_sec / 1e6,
            ts.collects,
            ts.freed,
            wpc
        );
        report.push(r);
    }

    args.write_json_report(&report);
}
