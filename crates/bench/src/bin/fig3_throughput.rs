//! Figure 3 regeneration: throughput vs thread count for the lock-free
//! linked list, lock-free hash table, and locked skip list under
//! {Leaky, Hazard Pointers, Epoch, Slow Epoch, ThreadScan}.
//!
//! Paper methodology (§6): 20% updates, structure-specific sizes, each
//! point the average of `--repeats` runs of `--duration` seconds.
//!
//! ```text
//! cargo run -p ts-bench --release --bin fig3_throughput -- \
//!     [--duration 2.0] [--repeats 3] [--threads 1,2,4,8] \
//!     [--scale 1] [--structures list,hash,skiplist] [--json out.jsonl]
//! ```
//!
//! `--scale N` divides structure sizes by N (use for quick smoke runs);
//! `--quick` is shorthand for a fast sanity sweep.

use std::time::Duration;

use ts_bench::cli::{machine_info, thread_ladder, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 2.0 }));
    let repeats = args.get_usize("repeats", if quick { 1 } else { 3 });
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads = args.get_usize_list("threads", &if quick { vec![1, 2] } else { thread_ladder() });
    let structures = args.get_structures("structures", &StructureKind::ALL);

    println!("# Figure 3: throughput vs threads ({})", machine_info());
    println!("# duration={duration:?} repeats={repeats} scale=1/{scale} threads={threads:?}");

    let mut report = Report::new("fig3");
    for &structure in &structures {
        for &t in &threads {
            for scheme in SchemeKind::ALL {
                let params = WorkloadParams::fig3(structure, t)
                    .scaled_down(scale)
                    .with_duration(duration);
                let mut acc = 0.0f64;
                let mut last = None;
                for _ in 0..repeats {
                    let r = run_combo(scheme, &params);
                    acc += r.ops_per_sec;
                    last = Some(r);
                }
                let mut r = last.expect("repeats >= 1");
                r.ops_per_sec = acc / repeats as f64;
                r.total_ops = (r.ops_per_sec * r.duration_s) as u64;
                eprintln!(
                    "  {:9} {:10} t={:<3} {:>10.3} Mops/s",
                    r.structure,
                    r.scheme,
                    t,
                    r.ops_per_sec / 1e6
                );
                report.push(r);
            }
        }
    }

    println!("{}", report.render_series());
    args.write_json_report(&report);
}
