//! Open-loop service-tail figure: per-op latency under offered load.
//!
//! The throughput figures drive closed loops, where a reclamation stall
//! only lowers ops/s — it never shows up as *latency*, because the
//! worker simply issues the next op later (coordinated omission). This
//! bench offers load on a schedule instead ([`LoadModel::OpenPoisson`],
//! or duty-cycled bursts with `--burst-ms`): every operation has an
//! intended arrival time, latency is measured from intended arrival to
//! completion, and a worker running behind bills its backlog to every
//! queued request — so a ThreadScan collect phase (or an epoch stall)
//! surfaces as a p99/p999 excursion, exactly as a service would see it.
//!
//! Keys are zipfian over a multi-million-key range by default: hot keys
//! are revisited constantly, so hot nodes are likely to sit in some
//! thread's stack at scan time, exercising the survivor carry-over path
//! while the tail is measured.
//!
//! ```text
//! cargo run -p ts-bench --release --bin fig_service_tail -- \
//!     [--qps 100000,300000,1000000] [--schemes leaky,epoch,threadscan] \
//!     [--threads 8] [--duration 3.0] [--keys 4000000] [--theta 0.99] \
//!     [--burst-ms 10 --duty 0.25] [--drop-ms 50] [--json out.jsonl] \
//!     [--telemetry] [--trace-out trace.json]
//! ```
//!
//! `--quick` is the CI shape: Leaky vs ThreadScan at two QPS levels on a
//! scaled-down table. `--drop-ms` switches the backlog policy to
//! deadline shedding ([`BacklogPolicy::DropAfter`]); drops then appear
//! in the `open_loop` block instead of unbounded queueing latency.

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{
    run_combo, BacklogPolicy, KeyDist, LoadModel, Report, SchemeKind, StructureKind, WorkloadParams,
};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration = Duration::from_secs_f64(args.get_f64("duration", if quick { 0.3 } else { 3.0 }));
    let threads = args.get_usize("threads", if quick { 2 } else { 8 });
    let keys = args.get_usize("keys", if quick { 262_144 } else { 4_000_000 }) as u64;
    let theta = args.get_f64("theta", 0.99);
    let qps_levels = args.get_f64_list(
        "qps",
        &if quick {
            vec![20_000.0, 60_000.0]
        } else {
            vec![100_000.0, 300_000.0, 1_000_000.0]
        },
    );
    let schemes = args.get_schemes(
        "schemes",
        &if quick {
            vec![SchemeKind::Leaky, SchemeKind::ThreadScan]
        } else {
            vec![SchemeKind::Leaky, SchemeKind::Epoch, SchemeKind::ThreadScan]
        },
    );
    let backlog = match args.get("drop-ms") {
        Some(_) => {
            BacklogPolicy::DropAfter(Duration::from_secs_f64(args.get_f64("drop-ms", 50.0) / 1e3))
        }
        None => BacklogPolicy::Queue,
    };
    let burst_ms = args.get("burst-ms").map(|_| args.get_f64("burst-ms", 10.0));
    let duty = args.get_f64("duty", 0.25);
    let telemetry = args.telemetry_requested();

    println!(
        "# Service tail: open-loop latency vs offered QPS ({})",
        machine_info()
    );
    println!(
        "# threads={threads} duration={duration:?} keys={keys} zipf(theta={theta}) backlog={backlog:?}"
    );
    println!(
        "# {:>10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "scheme",
        "qps",
        "achieved/s",
        "p50_us",
        "p99_us",
        "p999_us",
        "max_us",
        "drops",
        "lag_max_us"
    );

    let mut report = Report::new("fig_service_tail");
    for &qps in &qps_levels {
        let model = match burst_ms {
            Some(ms) => LoadModel::OpenBursty {
                qps,
                burst: Duration::from_secs_f64(ms / 1e3),
                duty,
            },
            None => LoadModel::OpenPoisson { qps },
        };
        for &scheme in &schemes {
            let mut params = WorkloadParams::fig3(StructureKind::Hash, threads)
                .with_duration(duration)
                .with_key_dist(KeyDist::Zipf { theta })
                .with_load_model(model)
                .with_backlog(backlog)
                .with_telemetry(telemetry);
            params.key_range = keys;
            params.initial_size = (keys / 2) as usize;
            let r = run_combo(scheme, &params);
            let lat = r.latency.as_ref().expect("open-loop runs measure latency");
            let ol = r.open_loop.as_ref().expect("open-loop extras present");
            println!(
                "  {:>10} {:>10.0} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>9} {:>12.1}",
                r.scheme,
                qps,
                r.ops_per_sec,
                lat.p50_ns / 1e3,
                lat.p99_ns / 1e3,
                lat.p999_ns / 1e3,
                lat.max_ns as f64 / 1e3,
                ol.dropped,
                ol.sched_lag_max_ns as f64 / 1e3,
            );
            report.push(r);
        }
    }

    args.write_trace();
    args.write_json_report(&report);
}
