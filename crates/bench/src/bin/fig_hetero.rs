//! Heterogeneous-workload figure: several structure types sharing one
//! collector, per scheme.
//!
//! The paper's pitch is process-wide automatic reclamation — the
//! collector serves whatever structures sit on top. This bench makes
//! that shape measurable: each run drives a weighted mix of structures
//! (default hash + skiplist + priority queue) through one shared scheme
//! instance and reports per-structure throughput alongside the total.
//!
//! ```text
//! cargo run -p ts-bench --release --bin fig_hetero -- \
//!     [--duration 2.0] [--threads 1,2,4,8] [--scale 1] \
//!     [--mixes "hash:50,skiplist:30,pq:20;hash:80,pq:20"] \
//!     [--schemes leaky,epoch,...] [--json out.jsonl]
//! ```
//!
//! `--mixes` takes semicolon-separated mix specs (each spec is
//! comma-separated `label:weight` pairs); `--quick` is shorthand for a
//! fast sanity sweep.

use std::time::Duration;

use ts_bench::cli::{machine_info, thread_ladder, CliArgs};
use ts_workload::{
    run_hetero_combo, Report, SchemeKind, StructureKind, StructureMix, WorkloadParams,
};

/// The 3-structure mix of the acceptance criteria: a hash table, a skip
/// list, and a priority queue over one collector.
const DEFAULT_MIXES: &str = "hash:50,skiplist:30,pq:20";

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 2.0 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads = args.get_usize_list("threads", &if quick { vec![2] } else { thread_ladder() });
    let mixes: Vec<StructureMix> = args
        .get("mixes")
        .unwrap_or(DEFAULT_MIXES)
        .split(';')
        .map(|spec| StructureMix::parse(spec).unwrap_or_else(|e| panic!("--mixes: {e}")))
        .collect();
    let schemes = args.get_schemes("schemes", &SchemeKind::EXTENDED);

    println!(
        "# Heterogeneous mixes: one collector, many structures ({})",
        machine_info()
    );
    println!("# duration={duration:?} scale=1/{scale} threads={threads:?}");
    for mix in &mixes {
        println!("# mix: {}", mix.label());
    }

    let mut report = Report::new("fig_hetero");
    for mix in &mixes {
        for &t in &threads {
            for &scheme in &schemes {
                // The base cell borrows the hash preset; each structure in
                // the mix is re-sized by its own preset via `hetero_cell`.
                let params = WorkloadParams::fig3(StructureKind::Hash, t)
                    .scaled_down(scale)
                    .with_duration(duration)
                    .with_structure_mix(mix.clone());
                let r = run_hetero_combo(scheme, &params);
                let split = r
                    .per_structure
                    .iter()
                    .map(|s| format!("{} {:.3}M", s.structure, s.ops_per_sec / 1e6))
                    .collect::<Vec<_>>()
                    .join(", ");
                eprintln!(
                    "  {:10} t={:<3} {:>8.3} Mops/s  [{split}]",
                    r.scheme,
                    t,
                    r.ops_per_sec / 1e6
                );
                report.push(r);
            }
        }
    }

    println!("{}", report.render_series());
    args.write_json_report(&report);
}
