//! Ablation J: per-structure node pools × collect policies.
//!
//! Sweeps the PR's two allocation/reclamation knobs against each other
//! under ThreadScan, per structure:
//!
//! * **node pool** off/on — off boxes nodes through the global allocator;
//!   on routes them through a per-structure [`ts_alloc::PoolHandle`]
//!   (thread-local magazines over the size-class depot);
//! * **collect policy** fixed/adaptive — fixed collects only on full
//!   local buffers (the paper's trigger); adaptive additionally fires on
//!   the outstanding-garbage watermark, plus the pools' bytes-resident
//!   gauge when both knobs are on.
//!
//! Each cell's JSON row carries the allocator-counter deltas (the `alloc`
//! block — pooled cells drive the size-class counters even without
//! `--real-alloc`-style global hooks) and the collect-latency percentiles
//! (`threadscan.collect_us_p50/p95/p99`), with the cell's knob setting
//! encoded in the `scheme` label. Pool-handle deltas (allocs, frees,
//! magazine refills) print per cell on stderr.

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

/// Sums of every pool handle's counters at one instant.
#[derive(Default, Clone, Copy)]
struct PoolTotals {
    allocs: usize,
    frees: usize,
    refills: usize,
}

fn pool_totals() -> PoolTotals {
    ts_alloc::pool_stats()
        .iter()
        .fold(PoolTotals::default(), |t, s| PoolTotals {
            allocs: t.allocs + s.allocs,
            frees: t.frees + s.frees,
            refills: t.refills + s.magazine_refills,
        })
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 1.5 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads_list = args.get_usize_list("threads", &[2, 4]);
    // 0 = the collector's auto watermark (buffer capacity x threads / 2).
    let watermark = args.get_usize("watermark", 0);

    // (node_pool, adaptive, label) — the four knob corners.
    let cells = [
        (false, false, "global/fixed"),
        (true, false, "pool/fixed"),
        (false, true, "global/adaptive"),
        (true, true, "pool/adaptive"),
    ];

    println!(
        "# Ablation J: node pools x collect policies ({})",
        machine_info()
    );
    println!("# scheme=threadscan duration={duration:?} scale=1/{scale} update%=20");
    println!(
        "# pending watermark = {} (0 = auto: buffer capacity x threads / 2)",
        watermark
    );

    let mut report = Report::new("ablation-nodepool");
    for structure in [
        StructureKind::List,
        StructureKind::Hash,
        StructureKind::SplitOrdered,
    ] {
        println!("\n## structure={} (Mops/s)", structure.label());
        let mut header = format!("{:>8}", "threads");
        for (_, _, tag) in cells {
            header.push_str(&format!("{tag:>18}"));
        }
        println!("{header}");
        for &threads in &threads_list {
            let mut row = format!("{threads:>8}");
            for (pool, adaptive, tag) in cells {
                let params = WorkloadParams::fig3(structure, threads)
                    .scaled_down(scale)
                    .with_duration(duration)
                    .with_node_pool(pool)
                    .with_ts_adaptive_collect(adaptive)
                    .with_ts_pending_watermark(watermark);
                let before = pool_totals();
                let mut r = run_combo(SchemeKind::ThreadScan, &params);
                let after = pool_totals();
                row.push_str(&format!("{:>18.3}", r.ops_per_sec / 1e6));
                if let Some(ts) = &r.threadscan {
                    eprintln!(
                        "  {:12} {:16} t={threads}: collects={} (adaptive {}), \
                         p50/p95/p99 = {:.0}/{:.0}/{:.0} us",
                        structure.label(),
                        tag,
                        ts.collects,
                        ts.adaptive_collects,
                        ts.collect_us_p50,
                        ts.collect_us_p95,
                        ts.collect_us_p99
                    );
                }
                if pool {
                    eprintln!(
                        "  {:12} {:16} t={threads}: pool {} allocs / {} frees, {} magazine refills",
                        structure.label(),
                        tag,
                        after.allocs - before.allocs,
                        after.frees - before.frees,
                        after.refills - before.refills
                    );
                }
                // Encode the knob corner in the scheme label so the JSON
                // rows of one structure stay distinguishable.
                r.scheme = format!("threadscan[{tag}]");
                report.push(r);
            }
            println!("{row}");
        }
    }

    println!("\n# pool handles (process lifetime):");
    let stats = ts_alloc::pool_stats();
    if stats.is_empty() {
        println!("#   (none created: all cells ran with node_pool=off)");
    }
    for s in stats {
        println!(
            "#   {:24} {:>10} allocs {:>10} frees {:>8} refills {:>10} B resident",
            s.name, s.allocs, s.frees, s.magazine_refills, s.bytes_resident
        );
    }

    args.write_json_report(&report);
}
