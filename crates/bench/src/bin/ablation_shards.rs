//! Ablation I: master-buffer shard count — collect latency vs sharding.
//!
//! The reclaimer's per-phase cost is dominated by sorting the aggregated
//! delete buffer, which grows linearly with thread count × buffer size.
//! Sharding partitions the buffer by address and sorts each shard
//! independently (fence lookup + per-shard binary search on the scan
//! side); this sweep measures what that buys: throughput, reclaimer
//! collect latency (mean/max), per-phase sort time, and the per-shard
//! load balance. `--shards 1` is the paper's single sorted delete buffer.

use std::time::Duration;

use ts_bench::cli::{machine_info, CliArgs};
use ts_workload::{run_combo, Report, SchemeKind, StructureKind, WorkloadParams};

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration =
        Duration::from_secs_f64(args.get_f64("duration", if quick { 0.25 } else { 2.0 }));
    let scale = args.get_usize("scale", if quick { 64 } else { 1 });
    let threads = args.get_usize("threads", 4);
    let shard_list = args.get_usize_list("shards", &[1, 2, 4, 8]);
    let buffer = args.get_usize("buffer", if quick { 256 } else { 1024 });
    let sort_threads = args.get_usize("sort-threads", 0);

    println!(
        "# Ablation I: master-buffer shard count ({})",
        machine_info()
    );
    println!(
        "# structure=hash threads={threads} buffer={buffer} duration={duration:?} scale=1/{scale}"
    );
    println!(
        "{:>8} {:>12} {:>10} {:>14} {:>14} {:>14} {:>14}",
        "shards", "Mops/s", "collects", "mean-coll-µs", "max-coll-µs", "mean-sort-µs", "max-shard"
    );

    let mut report = Report::new("ablation-shards");
    for &shards in &shard_list {
        let params = WorkloadParams::fig3(StructureKind::Hash, threads)
            .scaled_down(scale)
            .with_duration(duration)
            .with_ts_buffer(buffer)
            .with_ts_shards(shards)
            .with_ts_sort_threads(sort_threads);
        let r = run_combo(SchemeKind::ThreadScan, &params);
        let ts = r.threadscan.clone().unwrap_or_default();
        println!(
            "{:>8} {:>12.3} {:>10} {:>14.1} {:>14.1} {:>14.3} {:>14}",
            shards,
            r.ops_per_sec / 1e6,
            ts.collects,
            ts.mean_collect_us,
            ts.max_collect_us,
            ts.mean_sort_us,
            ts.max_shard_len,
        );
        if !ts.shard_sizes.is_empty() {
            println!("#   last-phase shard sizes: {:?}", ts.shard_sizes);
        }
        report.push(r);
    }
    println!("# shards=1 is the paper's single sorted delete buffer");

    args.write_json_report(&report);
}
