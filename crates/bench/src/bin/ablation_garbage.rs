//! Ablation D: outstanding-garbage growth over time.
//!
//! The paper's Slow Epoch discussion (§6): "a thread that wants to free
//! its pointers cannot do so until the errant thread updates its epoch
//! counter" — garbage grows without bound while throughput suffers.
//! ThreadScan's signals cannot be stalled by application code, so its
//! outstanding garbage stays bounded by the buffer sizing. This binary
//! samples retired-but-unfreed counts over the run for
//! {epoch, slow-epoch, threadscan}.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ts_bench::cli::{machine_info, CliArgs};
use ts_sigscan::SignalPlatform;
use ts_smr::{EpochScheme, Smr, ThreadScanSmr};
use ts_structures::{ConcurrentSet, HarrisList};

fn sample_run<S: Smr + 'static>(
    label: &str,
    scheme: Arc<S>,
    threads: usize,
    duration: Duration,
    samples: usize,
) {
    let list = Arc::new(HarrisList::<S>::new());
    {
        let h = scheme.register();
        for k in 0..512u64 {
            list.insert(&h, k * 2);
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for t in 0..threads {
            let scheme = Arc::clone(&scheme);
            let list = Arc::clone(&list);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let h = scheme.register();
                let mut k = t as u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = k % 1024;
                    if list.remove(&h, key) {
                        list.insert(&h, key);
                    }
                    k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
            });
        }
        let t0 = Instant::now();
        let step = duration / samples as u32;
        print!("{label:>12}:");
        for _ in 0..samples {
            std::thread::sleep(step);
            print!(" {:>8}", scheme.outstanding());
        }
        println!("   ({:.2?} elapsed)", t0.elapsed());
        stop.store(true, Ordering::Relaxed);
    });
}

fn main() {
    let args = CliArgs::parse();
    let quick = args.get_flag("quick");
    let duration = Duration::from_secs_f64(args.get_f64("duration", if quick { 0.5 } else { 3.0 }));
    let samples = args.get_usize("samples", 8);
    let threads = args.get_usize("threads", 4);

    println!(
        "# Ablation D: outstanding garbage over time ({})",
        machine_info()
    );
    println!("# list workload, {threads} threads, {samples} samples over {duration:?}");
    println!("# columns = retired-but-unfreed node counts at each sample instant");

    sample_run(
        "epoch",
        Arc::new(EpochScheme::with_threshold(256)),
        threads,
        duration,
        samples,
    );
    sample_run(
        "slow-epoch",
        Arc::new(EpochScheme::slow(256, Duration::from_millis(40), 2048)),
        threads,
        duration,
        samples,
    );
    sample_run(
        "threadscan",
        Arc::new(ThreadScanSmr::with_config(
            SignalPlatform::new().expect("signals"),
            threadscan::CollectorConfig::default().with_buffer_capacity(256),
        )),
        threads,
        duration,
        samples,
    );
    println!(
        "# expected shape: threadscan stays an order of magnitude below the \
         epoch schemes (its buffers bound garbage directly); slow-epoch \
         spikes while its errant thread stalls inside an operation"
    );
}
