//! Object-safe, type-erased view of [`ConcurrentSet`].
//!
//! The generic `ConcurrentSet<S>` is what benchmarks monomorphize against,
//! but a *heterogeneous* run — several different structures sharing one
//! collector — needs to hold them as one type. This module mirrors how
//! `ts_smr::dynamic` erases schemes:
//!
//! * [`DynSet`] — an object-safe mirror of [`ConcurrentSet`] whose ops are
//!   driven through [`ErasedSmr`]'s handle ([`ErasedHandle`]). Every
//!   `T: ConcurrentSet<ErasedSmr>` implements it via a blanket impl, so
//!   `Arc<dyn DynSet>` can name a hash table, a skiplist, and a priority
//!   queue at once while all of them retire through the *same*
//!   `Arc<dyn DynSmr>` scheme instance.
//! * [`PqAsSet`] — adapts the Shavit–Lotan [`PriorityQueue`] to the
//!   set-shaped interface so it can join mixed workloads: `insert` maps to
//!   a queue insert, `remove` to `delete_min` (the key argument picks no
//!   particular element), `contains` to `peek_min` (non-emptiness).
//!
//! Method names deliberately match [`ConcurrentSet`]'s (the
//! `DynHandle`/`SmrHandle` precedent); call through a `&dyn DynSet` or use
//! UFCS where both traits are in scope.

use core::sync::atomic::{AtomicUsize, Ordering};

use ts_smr::{ErasedHandle, ErasedSmr, Smr};

use crate::priority_queue::PriorityQueue;
use crate::set_trait::ConcurrentSet;

/// An object-safe concurrent set running under a runtime-chosen scheme.
///
/// The handle argument is [`ErasedSmr`]'s concrete handle type rather than
/// a generic `S::Handle`, which is what makes the trait object-safe; the
/// scheme indirection lives inside [`ErasedHandle`].
pub trait DynSet: Send + Sync {
    /// See [`ConcurrentSet::contains`].
    fn contains(&self, handle: &ErasedHandle, key: u64) -> bool;

    /// See [`ConcurrentSet::insert`].
    fn insert(&self, handle: &ErasedHandle, key: u64) -> bool;

    /// See [`ConcurrentSet::remove`].
    fn remove(&self, handle: &ErasedHandle, key: u64) -> bool;

    /// See [`ConcurrentSet::kind`].
    fn kind(&self) -> &'static str;

    /// See [`ConcurrentSet::bucket_count`].
    fn bucket_count(&self) -> Option<usize>;
}

impl<T: ConcurrentSet<ErasedSmr>> DynSet for T {
    fn contains(&self, handle: &ErasedHandle, key: u64) -> bool {
        ConcurrentSet::contains(self, handle, key)
    }
    fn insert(&self, handle: &ErasedHandle, key: u64) -> bool {
        ConcurrentSet::insert(self, handle, key)
    }
    fn remove(&self, handle: &ErasedHandle, key: u64) -> bool {
        ConcurrentSet::remove(self, handle, key)
    }
    fn kind(&self) -> &'static str {
        ConcurrentSet::kind(self)
    }
    fn bucket_count(&self) -> Option<usize> {
        ConcurrentSet::bucket_count(self)
    }
}

/// The Shavit–Lotan priority queue behind the set-shaped interface.
///
/// A priority queue has no membership query, so the mapping reinterprets
/// the set ops as queue traffic: `insert(k)` inserts priority `k`,
/// `remove(_)` pops the minimum (`true` if the queue was non-empty), and
/// `contains(_)` peeks (`true` if non-empty). The `key` argument of
/// `remove`/`contains` is ignored — what matters for the reclamation
/// benchmark is that deletions unlink and retire real nodes through the
/// scheme under test, which `delete_min` does.
pub struct PqAsSet<S: Smr> {
    inner: PriorityQueue<S>,
    /// Pops that found the queue empty — diagnostics for mix tuning.
    empty_pops: AtomicUsize,
}

impl<S: Smr> PqAsSet<S> {
    /// An empty queue allocating nodes from the global heap.
    pub fn new() -> Self {
        Self::with_alloc(crate::node_alloc::NodeAlloc::Global)
    }

    /// An empty queue allocating nodes through `alloc`.
    pub fn with_alloc(alloc: crate::node_alloc::NodeAlloc) -> Self {
        Self {
            inner: PriorityQueue::with_alloc(alloc),
            empty_pops: AtomicUsize::new(0),
        }
    }

    /// The wrapped queue.
    pub fn inner(&self) -> &PriorityQueue<S> {
        &self.inner
    }

    /// How many `remove` calls found the queue empty.
    pub fn empty_pops(&self) -> usize {
        self.empty_pops.load(Ordering::Relaxed)
    }
}

impl<S: Smr> Default for PqAsSet<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Smr> ConcurrentSet<S> for PqAsSet<S> {
    fn contains(&self, handle: &S::Handle, _key: u64) -> bool {
        self.inner.peek_min(handle).is_some()
    }

    fn insert(&self, handle: &S::Handle, key: u64) -> bool {
        self.inner.insert(handle, key)
    }

    fn remove(&self, handle: &S::Handle, _key: u64) -> bool {
        let popped = self.inner.delete_min(handle).is_some();
        if !popped {
            self.empty_pops.fetch_add(1, Ordering::Relaxed);
        }
        popped
    }

    fn kind(&self) -> &'static str {
        "priority-queue"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HarrisList, SplitOrderedSet};
    use std::sync::Arc;
    use ts_smr::{DynSmr, Leaky};

    fn erased_leaky() -> ErasedSmr {
        let scheme: Arc<dyn DynSmr> = Arc::new(Leaky::new());
        ErasedSmr::new(scheme)
    }

    #[test]
    fn heterogeneous_structures_share_one_scheme() {
        let erased = erased_leaky();
        let h = Smr::register(&erased);
        let sets: Vec<Arc<dyn DynSet>> = vec![
            Arc::new(HarrisList::<ErasedSmr>::new()),
            Arc::new(SplitOrderedSet::<ErasedSmr>::new()),
            Arc::new(PqAsSet::<ErasedSmr>::new()),
        ];
        for set in &sets {
            assert!(set.insert(&h, 7));
            assert!(set.contains(&h, 7));
        }
        assert_eq!(
            sets.iter().map(|s| s.kind()).collect::<Vec<_>>(),
            ["harris-list", "split-ordered", "priority-queue"]
        );
        // Only the bucketed table reports a bucket count.
        assert_eq!(sets[0].bucket_count(), None);
        assert!(sets[1].bucket_count().is_some());
        assert_eq!(sets[2].bucket_count(), None);
    }

    #[test]
    fn erased_ops_agree_with_the_generic_trait() {
        let erased = erased_leaky();
        let h = Smr::register(&erased);
        let set = SplitOrderedSet::<ErasedSmr>::new();
        assert!(ConcurrentSet::insert(&set, &h, 1));
        let dyn_set: &dyn DynSet = &set;
        assert!(!dyn_set.insert(&h, 1), "duplicate visible through erasure");
        assert!(dyn_set.contains(&h, 1));
        assert!(dyn_set.remove(&h, 1));
        assert!(!ConcurrentSet::contains(&set, &h, 1));
    }

    #[test]
    fn pq_adapter_maps_set_ops_to_queue_ops() {
        let scheme = Leaky::new();
        let h = scheme.register();
        let pq = PqAsSet::<Leaky>::new();
        assert!(!ConcurrentSet::contains(&pq, &h, 0), "empty queue");
        assert!(!ConcurrentSet::remove(&pq, &h, 0), "pop on empty");
        assert_eq!(pq.empty_pops(), 1);
        assert!(ConcurrentSet::insert(&pq, &h, 9));
        assert!(ConcurrentSet::insert(&pq, &h, 3));
        assert!(!ConcurrentSet::insert(&pq, &h, 3), "duplicate priority");
        // `contains`/`remove` ignore the key: they see the minimum.
        assert!(ConcurrentSet::contains(&pq, &h, 999));
        assert!(ConcurrentSet::remove(&pq, &h, 999));
        assert_eq!(pq.inner().peek_min(&h), Some(9), "3 popped first");
        assert!(ConcurrentSet::remove(&pq, &h, 0));
        assert!(!ConcurrentSet::contains(&pq, &h, 0));
        assert_eq!(pq.empty_pops(), 1, "successful pops not counted");
    }
}
