//! Lock-based optimistic skip list — the paper's third evaluation
//! structure (§6: "Lock-based Skip List ... with 104 byte nodes
//! (representing the maximum size due to height)").
//!
//! This is the lazy skip list of Herlihy, Lev, Luchangco and Shavit
//! ("A Simple Optimistic Skiplist Algorithm", SIROCCO 2007):
//!
//! * **Traversals take no locks** — `contains` is wait-free and invisible,
//!   which is exactly what makes reclamation hard and this structure a
//!   good ThreadScan testcase.
//! * `insert`/`remove` lock only the affected predecessors per level,
//!   validate optimistically, and retry on conflict.
//! * Removal marks the victim (logical) before unlinking every level
//!   (physical), then retires it through the reclamation scheme. Only the
//!   marking thread retires, so the victim cannot be freed while a
//!   concurrent remover still examines it.
//! * The head is a **sentinel node with a real lock**, not a bare array
//!   of pointers: two critical sections whose pred is the head (a remove
//!   splicing out the first node and an insert at the front) must be
//!   mutually exclusive, or their validate-then-store sequences race and
//!   can resurrect a spliced-out node. The priority queue variant of this
//!   structure hit exactly that race under `delete_min` pressure; see
//!   `priority_queue`'s module docs.

use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::cell::Cell;
use std::marker::PhantomData;

use ts_smr::{DropFn, Guard, Smr, SmrHandle};

use crate::node_alloc::NodeAlloc;
use crate::set_trait::ConcurrentSet;

/// Maximum tower height. 2^12 = 4096× fan-out covers the paper's 128,000
/// resident keys with headroom.
pub const MAX_HEIGHT: usize = 12;

/// Hazard-pointer slots required by one skip-list operation: a pred and a
/// succ per level, plus two roving slots for `contains`.
pub const REQUIRED_SLOTS: usize = 2 * MAX_HEIGHT + 2;

#[repr(C)]
struct SkipNode {
    /// Tower of next pointers (level 0 = full list). First field so
    /// interior pointers resolve to the node under range matching.
    next: [AtomicPtr<u8>; MAX_HEIGHT],
    key: u64,
    top_level: usize,
    lock: AtomicBool,
    marked: AtomicBool,
    fully_linked: AtomicBool,
}

impl SkipNode {
    fn new(key: u64, top_level: usize) -> Self {
        Self {
            next: [(); MAX_HEIGHT].map(|_| AtomicPtr::new(std::ptr::null_mut())),
            key,
            top_level,
            lock: AtomicBool::new(false),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(false),
        }
    }

    /// Spinlock acquire (per-node fine-grained lock, as in the paper's
    /// "fine-grained locks on the two nodes adjacent" description).
    fn lock(&self) {
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
    }

    fn unlock(&self) {
        self.lock.store(false, Ordering::Release);
    }
}

/// The lock-based skip list.
pub struct SkipList<S: Smr> {
    /// Sentinel head node; its key is conceptually −∞ and never compared.
    /// It locks like any node and is never marked or removed. Always
    /// `Box`-allocated (it frees with the list, never through a retire).
    head: Box<SkipNode>,
    /// Where tower nodes come from (global heap by default, or a pool).
    alloc: NodeAlloc,
    /// The matching stateless deallocator, passed to every retire.
    drop_node: DropFn,
    _scheme: PhantomData<fn(&S)>,
}

// SAFETY: shared state is atomics; node lifetime is managed through `S`.
unsafe impl<S: Smr> Send for SkipList<S> {}
unsafe impl<S: Smr> Sync for SkipList<S> {}

thread_local! {
    /// Cheap per-thread xorshift state for geometric tower heights.
    static HEIGHT_RNG: Cell<u64> = const { Cell::new(0x9E3779B97F4A7C15) };
}

/// Geometric(1/2) tower height in `1..=MAX_HEIGHT`, from a thread-local
/// xorshift64* generator (no allocation, no locking).
fn random_top_level() -> usize {
    HEIGHT_RNG.with(|state| {
        let mut x = state.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.set(x);
        // Mix in the thread so identically-seeded threads diverge.
        let mixed = x.wrapping_mul(0x2545F4914F6CDD1D);
        ((mixed.trailing_ones() as usize) % MAX_HEIGHT).min(MAX_HEIGHT - 1)
    })
}

impl<S: Smr> SkipList<S> {
    /// An empty skip list allocating nodes from the global heap.
    pub fn new() -> Self {
        Self::with_alloc(NodeAlloc::Global)
    }

    /// An empty skip list allocating tower nodes through `alloc`.
    pub fn with_alloc(alloc: NodeAlloc) -> Self {
        Self {
            head: Box::new(SkipNode::new(0, MAX_HEIGHT - 1)),
            drop_node: alloc.drop_fn::<SkipNode>(),
            alloc,
            _scheme: PhantomData,
        }
    }

    /// The sentinel as a node pointer (for pred arrays).
    #[inline]
    fn sentinel(&self) -> *mut SkipNode {
        &*self.head as *const SkipNode as *mut SkipNode
    }

    /// Full find: fills `preds`/`succs` for every level and returns the
    /// level at which `key` was first found. Null pointers denote the
    /// (virtual) +∞ tail; `preds[l]` null denotes the head tower.
    ///
    /// Hazard protocol: each level owns the slot pair `{2l, 2l+1}`.
    /// Advancing transfers protection **by swapping slot roles** (the node
    /// already protected as curr simply *becomes* the pred) — never by
    /// re-loading a pointer into the pred slot, which would leave the node
    /// whose field is being read momentarily unprotected. The final
    /// pred/succ of every level remain protected in that level's pair (or
    /// a higher level's, when the pred was inherited), so the caller can
    /// lock and validate them safely.
    fn find(
        &self,
        g: &Guard<'_, S::Handle>,
        key: u64,
        preds: &mut [*mut SkipNode; MAX_HEIGHT],
        succs: &mut [*mut SkipNode; MAX_HEIGHT],
    ) -> Option<usize> {
        'retry: loop {
            let mut lfound = None;
            let mut pred: *mut SkipNode = self.sentinel();
            for level in (0..MAX_HEIGHT).rev() {
                // curr/pred protection alternates between this level's two
                // slots; `pred` enters protected by a higher level's slot
                // (or is the immortal sentinel).
                let mut pred_slot = 2 * level;
                let mut curr_slot = 2 * level + 1;
                // SAFETY: pred is the sentinel or protected
                // (higher-level slot).
                let mut pred_field: &AtomicPtr<u8> = unsafe { &(*pred).next[level] };
                let mut curr = g.load(curr_slot, pred_field) as *mut SkipNode;
                // The protection chain requires that pred was live when
                // its field was read; marking is monotonic, so a
                // post-load check suffices. A marked pred's (stale) next
                // could point at an already-retired node — restart.
                if Self::pred_died(pred) {
                    continue 'retry;
                }
                loop {
                    if curr.is_null() {
                        break;
                    }
                    // SAFETY: curr protected in curr_slot.
                    let curr_node = unsafe { &*curr };
                    if curr_node.key >= key {
                        break;
                    }
                    // Advance: the protected curr *becomes* the pred (slot
                    // role swap, no re-load); the next node is loaded into
                    // the slot that held the now-dead previous pred.
                    pred = curr;
                    std::mem::swap(&mut pred_slot, &mut curr_slot);
                    // SAFETY: pred protected in pred_slot.
                    pred_field = unsafe { &(*pred).next[level] };
                    curr = g.load(curr_slot, pred_field) as *mut SkipNode;
                    if Self::pred_died(pred) {
                        continue 'retry;
                    }
                }
                preds[level] = pred;
                succs[level] = curr;
                if lfound.is_none() && !curr.is_null() {
                    // SAFETY: protected.
                    if unsafe { (*curr).key } == key {
                        lfound = Some(level);
                    }
                }
            }
            return lfound;
        }
    }

    /// Whether a (protected) pred node has been logically deleted —
    /// breaking the traversal's protection chain. The sentinel is never
    /// marked.
    #[inline]
    fn pred_died(pred: *mut SkipNode) -> bool {
        // SAFETY: pred is the sentinel or protected by the caller.
        unsafe { (*pred).marked.load(Ordering::Acquire) }
    }

    /// Unlocks `preds[0..=locked_levels]`, skipping duplicates (a pred —
    /// including the sentinel — may repeat across levels under one lock).
    fn unlock_preds(preds: &[*mut SkipNode; MAX_HEIGHT], locked_levels: usize) {
        let mut prev: *mut SkipNode = std::ptr::null_mut();
        for &p in preds.iter().take(locked_levels + 1) {
            if p != prev {
                // SAFETY: locked by us; locked nodes are never retired by
                // others.
                unsafe { (*p).unlock() };
                prev = p;
            }
        }
    }

    /// Locks and validates `preds[0..=top]` against `expect_succ`. The
    /// sentinel locks like any node — this is what makes head-pred
    /// critical sections mutually exclusive (see module docs). On `false`
    /// the caller must `unlock_preds` up to the returned level.
    fn lock_and_validate(
        preds: &[*mut SkipNode; MAX_HEIGHT],
        top: usize,
        expect_succ: impl Fn(usize) -> *mut SkipNode,
    ) -> (bool, usize) {
        let mut prev: *mut SkipNode = std::ptr::null_mut();
        let mut locked_up_to = 0usize;
        let mut valid = true;
        for (level, &pred) in preds.iter().enumerate().take(top + 1) {
            if pred != prev {
                // SAFETY: pred is the sentinel or protected from find.
                unsafe { (*pred).lock() };
                prev = pred;
            }
            locked_up_to = level;
            // SAFETY: locked above. The sentinel is never marked.
            let pred_node = unsafe { &*pred };
            let pred_ok = !pred_node.marked.load(Ordering::Acquire);
            let link_ok = pred_node.next[level].load(Ordering::Acquire) as *mut SkipNode
                == expect_succ(level);
            valid = pred_ok && link_ok;
            if !valid {
                break;
            }
        }
        (valid, locked_up_to)
    }
}

impl<S: Smr> Default for SkipList<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Smr> ConcurrentSet<S> for SkipList<S> {
    /// Wait-free, lock-free, write-free membership test — the
    /// "unsynchronized traversal" of the paper's introduction.
    fn contains(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        // Two roving slots; protection moves by swapping roles, and the
        // traversal restarts if a pred turns out deleted (see `find`).
        'retry: loop {
            let mut pred_slot = 2 * MAX_HEIGHT;
            let mut curr_slot = 2 * MAX_HEIGHT + 1;
            let mut pred: *mut SkipNode = self.sentinel();
            let mut found: *mut SkipNode = std::ptr::null_mut();
            for level in (0..MAX_HEIGHT).rev() {
                // SAFETY: pred protected in pred_slot (or the sentinel).
                let mut pred_field: &AtomicPtr<u8> = unsafe { &(*pred).next[level] };
                let mut curr = g.load(curr_slot, pred_field) as *mut SkipNode;
                if Self::pred_died(pred) {
                    continue 'retry;
                }
                loop {
                    if curr.is_null() {
                        break;
                    }
                    // SAFETY: protected in curr_slot.
                    let curr_node = unsafe { &*curr };
                    if curr_node.key > key {
                        break;
                    }
                    if curr_node.key == key {
                        found = curr;
                        break;
                    }
                    // Advance by slot-role swap; old pred's slot is
                    // recycled for the new curr.
                    pred = curr;
                    std::mem::swap(&mut pred_slot, &mut curr_slot);
                    // SAFETY: pred protected in pred_slot.
                    pred_field = unsafe { &(*pred).next[level] };
                    curr = g.load(curr_slot, pred_field) as *mut SkipNode;
                    if Self::pred_died(pred) {
                        continue 'retry;
                    }
                }
                if !found.is_null() {
                    break;
                }
            }
            break 'retry if found.is_null() {
                false
            } else {
                // SAFETY: `found` is protected in curr_slot.
                let node = unsafe { &*found };
                node.fully_linked.load(Ordering::Acquire) && !node.marked.load(Ordering::Acquire)
            };
        }
    }

    fn insert(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        debug_assert!(g.protection_slots().is_none_or(|n| n >= REQUIRED_SLOTS));
        let top = random_top_level();
        let mut preds = [std::ptr::null_mut(); MAX_HEIGHT];
        let mut succs = [std::ptr::null_mut(); MAX_HEIGHT];
        'retry: loop {
            if let Some(lfound) = self.find(&g, key, &mut preds, &mut succs) {
                let found = succs[lfound];
                // SAFETY: protected by find.
                let found_node = unsafe { &*found };
                if !found_node.marked.load(Ordering::Acquire) {
                    // Wait for the inserter to finish linking, then report
                    // "already present".
                    while !found_node.fully_linked.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    break 'retry false;
                }
                // Found but marked: its removal is in flight; retry.
                continue 'retry;
            }
            let (valid, locked) = Self::lock_and_validate(&preds, top, |l| succs[l]);
            if !valid {
                Self::unlock_preds(&preds, locked);
                continue 'retry;
            }
            let node = self.alloc.alloc(SkipNode::new(key, top));
            // SAFETY: node is private until linked below.
            let node_ref = unsafe { &*node };
            for (level, &succ) in succs.iter().enumerate().take(top + 1) {
                node_ref.next[level].store(succ as *mut u8, Ordering::Relaxed);
            }
            for (level, &pred) in preds.iter().enumerate().take(top + 1) {
                // SAFETY: locked + validated.
                unsafe { &(*pred).next[level] }.store(node as *mut u8, Ordering::Release);
            }
            node_ref.fully_linked.store(true, Ordering::Release);
            Self::unlock_preds(&preds, locked);
            break 'retry true;
        }
    }

    fn remove(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        debug_assert!(g.protection_slots().is_none_or(|n| n >= REQUIRED_SLOTS));
        let mut preds = [std::ptr::null_mut(); MAX_HEIGHT];
        let mut succs = [std::ptr::null_mut(); MAX_HEIGHT];
        let mut victim: *mut SkipNode = std::ptr::null_mut();
        let mut marked_by_us = false;
        let mut top = 0usize;
        'retry: loop {
            let lfound = self.find(&g, key, &mut preds, &mut succs);
            if !marked_by_us {
                let Some(level) = lfound else {
                    break 'retry false;
                };
                let candidate = succs[level];
                // SAFETY: protected by find.
                let cand = unsafe { &*candidate };
                if !(cand.fully_linked.load(Ordering::Acquire)
                    && cand.top_level == level
                    && !cand.marked.load(Ordering::Acquire))
                {
                    break 'retry false;
                }
                top = cand.top_level;
                cand.lock();
                if cand.marked.load(Ordering::Acquire) {
                    cand.unlock();
                    break 'retry false;
                }
                cand.marked.store(true, Ordering::Release);
                marked_by_us = true;
                victim = candidate;
                // From here the victim cannot be retired by anyone else
                // (only the marking thread retires), so raw access to it
                // stays sound across retries.
            }
            // SAFETY: see invariant above.
            let victim_node = unsafe { &*victim };
            let (valid, locked) = Self::lock_and_validate(&preds, top, |_| victim);
            if !valid {
                Self::unlock_preds(&preds, locked);
                continue 'retry;
            }
            for level in (0..=top).rev() {
                // SAFETY: preds locked + validated.
                unsafe { &(*preds[level]).next[level] }.store(
                    victim_node.next[level].load(Ordering::Acquire),
                    Ordering::Release,
                );
            }
            victim_node.unlock();
            Self::unlock_preds(&preds, locked);
            // SAFETY: unlinked from every level; the mark ownership makes
            // this the unique retire.
            unsafe {
                g.retire(
                    victim as usize,
                    core::mem::size_of::<SkipNode>(),
                    self.drop_node,
                )
            };
            break 'retry true;
        }
    }

    fn kind(&self) -> &'static str {
        "skip-list"
    }
}

impl<S: Smr> SkipList<S> {
    /// Sequential bottom-level key dump (tests; unmarked nodes only).
    pub fn keys_sequential(&self) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = self.head.next[0].load(Ordering::Acquire) as *const SkipNode;
        while !cur.is_null() {
            let node = unsafe { &*cur };
            if !node.marked.load(Ordering::Acquire) {
                keys.push(node.key);
            }
            cur = node.next[0].load(Ordering::Acquire) as *const SkipNode;
        }
        keys
    }

    /// Sequential size (tests).
    pub fn len_sequential(&self) -> usize {
        self.keys_sequential().len()
    }
}

impl<S: Smr> Drop for SkipList<S> {
    fn drop(&mut self) {
        // Exclusive access: free the bottom-level chain (it contains every
        // node exactly once); the sentinel frees with the Box.
        let mut cur = self.head.next[0].load(Ordering::Relaxed);
        while !cur.is_null() {
            // SAFETY: &mut self; bottom level links every node once (next
            // read before the node is freed).
            unsafe {
                let next = (*cur.cast::<SkipNode>()).next[0].load(Ordering::Relaxed);
                (self.drop_node)(cur);
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ts_smr::{EpochScheme, HazardPointers, Leaky};

    #[test]
    fn node_layout_is_reasonable() {
        // Paper: ≤104-byte nodes (variable height). Ours are fixed-height
        // towers; assert we stay cache-friendly rather than exact.
        assert!(core::mem::size_of::<SkipNode>() <= 136);
        assert_eq!(REQUIRED_SLOTS, 26);
    }

    #[test]
    fn random_levels_are_geometricish() {
        let mut counts = [0usize; MAX_HEIGHT];
        for _ in 0..20_000 {
            counts[random_top_level()] += 1;
        }
        assert!(counts[0] > counts[2], "level 0 must dominate level 2");
        assert!(
            counts[0] > 5_000,
            "about half of towers should be height 1, got {}",
            counts[0]
        );
    }

    macro_rules! skiplist_semantics {
        ($modname:ident, $ty:ty, $scheme:expr) => {
            mod $modname {
                use super::*;

                #[test]
                fn roundtrip() {
                    let scheme = $scheme;
                    let sl = SkipList::<$ty>::new();
                    let h = scheme.register();
                    assert!(!sl.contains(&h, 10));
                    assert!(sl.insert(&h, 10));
                    assert!(!sl.insert(&h, 10));
                    assert!(sl.contains(&h, 10));
                    assert!(sl.remove(&h, 10));
                    assert!(!sl.remove(&h, 10));
                    assert!(!sl.contains(&h, 10));
                }

                #[test]
                fn bulk_sorted() {
                    let scheme = $scheme;
                    let sl = SkipList::<$ty>::new();
                    let h = scheme.register();
                    let keys = [44u64, 2, 99, 17, 8, 63, 30, 5, 71];
                    for &k in &keys {
                        assert!(sl.insert(&h, k));
                    }
                    let mut want = keys.to_vec();
                    want.sort_unstable();
                    assert_eq!(sl.keys_sequential(), want);
                    for &k in &keys {
                        assert!(sl.contains(&h, k));
                    }
                    for &k in &keys {
                        assert!(sl.remove(&h, k));
                    }
                    assert_eq!(sl.len_sequential(), 0);
                }
            }
        };
    }

    skiplist_semantics!(leaky_semantics, Leaky, Leaky::new());
    skiplist_semantics!(epoch_semantics, EpochScheme, EpochScheme::with_threshold(8));
    skiplist_semantics!(
        hazard_semantics,
        HazardPointers,
        HazardPointers::with_params(REQUIRED_SLOTS, 8)
    );

    #[test]
    fn concurrent_disjoint_ranges() {
        let scheme = Arc::new(EpochScheme::with_threshold(64));
        let sl = Arc::new(SkipList::<EpochScheme>::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let scheme = Arc::clone(&scheme);
                let sl = Arc::clone(&sl);
                s.spawn(move || {
                    let h = scheme.register();
                    let base = t * 100_000;
                    for i in 0..300u64 {
                        assert!(sl.insert(&h, base + i));
                    }
                    for i in (0..300u64).step_by(3) {
                        assert!(sl.remove(&h, base + i));
                    }
                    for i in 0..300u64 {
                        assert_eq!(sl.contains(&h, base + i), i % 3 != 0);
                    }
                });
            }
        });
        assert_eq!(sl.len_sequential(), 8 * 200);
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn concurrent_same_key_contention() {
        // All threads fight over the same tiny key space; set semantics
        // (no duplicates, remove⇒was present) must survive.
        let scheme = Arc::new(EpochScheme::with_threshold(16));
        let sl = Arc::new(SkipList::<EpochScheme>::new());
        use std::sync::atomic::AtomicI64;
        let balance: Arc<[AtomicI64; 8]> = Arc::new([(); 8].map(|_| AtomicI64::new(0)));
        std::thread::scope(|s| {
            for t in 0..8usize {
                let scheme = Arc::clone(&scheme);
                let sl = Arc::clone(&sl);
                let balance = Arc::clone(&balance);
                s.spawn(move || {
                    let h = scheme.register();
                    for i in 0..2_000usize {
                        let k = ((t * 31 + i * 17) % 8) as u64;
                        if (t + i) % 2 == 0 {
                            if sl.insert(&h, k) {
                                balance[k as usize].fetch_add(1, Ordering::SeqCst);
                            }
                        } else if sl.remove(&h, k) {
                            balance[k as usize].fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        // Successful inserts minus successful removes must equal final
        // membership, per key.
        for k in 0..8u64 {
            let b = balance[k as usize].load(Ordering::SeqCst);
            let present = sl.keys_sequential().contains(&k);
            assert_eq!(
                b,
                if present { 1 } else { 0 },
                "key {k}: balance {b} vs present {present}"
            );
        }
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }

    /// Regression for the sentinel-head race: all traffic on the smallest
    /// keys makes the head the pred of nearly every critical section;
    /// with lock-free head entries, a front remove and a front insert
    /// could both validate against the same link and resurrect a
    /// spliced-out node.
    #[test]
    fn head_contention_churn_stays_consistent() {
        let scheme = Arc::new(EpochScheme::with_threshold(16));
        let sl = Arc::new(SkipList::<EpochScheme>::new());
        use std::sync::atomic::AtomicI64;
        let balance: Arc<[AtomicI64; 4]> = Arc::new([(); 4].map(|_| AtomicI64::new(0)));
        std::thread::scope(|s| {
            for t in 0..4usize {
                let scheme = Arc::clone(&scheme);
                let sl = Arc::clone(&sl);
                let balance = Arc::clone(&balance);
                s.spawn(move || {
                    let h = scheme.register();
                    let mut seed = 0xACE1u64 ^ (t as u64);
                    for _ in 0..5_000usize {
                        seed = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let k = (seed >> 60) % 4; // only keys 0..4: head preds
                        if seed & 1 == 0 {
                            if sl.insert(&h, k) {
                                balance[k as usize].fetch_add(1, Ordering::SeqCst);
                            }
                        } else if sl.remove(&h, k) {
                            balance[k as usize].fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        for k in 0..4u64 {
            let b = balance[k as usize].load(Ordering::SeqCst);
            let present = sl.keys_sequential().contains(&k);
            assert_eq!(b, i64::from(present), "key {k}: balance {b} vs {present}");
        }
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn readers_race_removals_under_hazard_pointers() {
        let scheme = Arc::new(HazardPointers::with_params(REQUIRED_SLOTS, 32));
        let sl = Arc::new(SkipList::<HazardPointers>::new());
        {
            let h = scheme.register();
            for k in 0..256u64 {
                sl.insert(&h, k);
            }
        }
        std::thread::scope(|s| {
            for _ in 0..3 {
                let scheme = Arc::clone(&scheme);
                let sl = Arc::clone(&sl);
                s.spawn(move || {
                    let h = scheme.register();
                    for _ in 0..30 {
                        for k in 0..256u64 {
                            let _ = sl.contains(&h, k);
                        }
                    }
                });
            }
            let scheme2 = Arc::clone(&scheme);
            let sl2 = Arc::clone(&sl);
            s.spawn(move || {
                let h = scheme2.register();
                for k in 0..256u64 {
                    assert!(sl2.remove(&h, k));
                }
            });
        });
        assert_eq!(sl.len_sequential(), 0);
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }
}
