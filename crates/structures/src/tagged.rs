//! Tagged-pointer helpers for Harris-style mark bits.
//!
//! Harris' lock-free list steals the low bit of a node's `next` pointer as
//! the logical-deletion mark. Nodes are 8-byte aligned, so the low three
//! bits of real addresses are zero. ThreadScan's exact-match mode masks
//! these bits during scans (§4.2); range matching is immune to them.

/// The deletion-mark bit.
pub const MARK: usize = 0b1;

/// Whether the mark bit is set on `p`.
#[inline]
pub fn is_marked(p: *mut u8) -> bool {
    (p as usize) & MARK != 0
}

/// `p` with the mark bit set.
#[inline]
pub fn marked(p: *mut u8) -> *mut u8 {
    ((p as usize) | MARK) as *mut u8
}

/// `p` with all tag bits cleared.
#[inline]
pub fn untagged(p: *mut u8) -> *mut u8 {
    ((p as usize) & !0b111) as *mut u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_roundtrip() {
        let p = 0x1000usize as *mut u8;
        assert!(!is_marked(p));
        let m = marked(p);
        assert!(is_marked(m));
        assert_eq!(untagged(m), p);
        assert_eq!(untagged(p), p);
    }

    #[test]
    fn null_handling() {
        let null = std::ptr::null_mut::<u8>();
        assert!(!is_marked(null));
        let m = marked(null);
        assert!(is_marked(m));
        assert!(untagged(m).is_null());
    }
}
