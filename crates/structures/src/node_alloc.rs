//! Node allocation policy: global heap (the default) or a per-structure
//! [`ts_alloc::PoolHandle`].
//!
//! Every structure in this crate allocates its nodes through a
//! [`NodeAlloc`] captured at construction. The default, [`NodeAlloc::Global`],
//! is exactly the historical `Box::into_raw(Box::new(..))` path — zero
//! cost, no behavior change. [`NodeAlloc::Pool`] routes nodes through a
//! size-class pool handle instead: thread-local magazines, batched depot
//! refills, and per-structure alloc/free/bytes-resident counters, which
//! is both the fast path (`malloc`/`free` never contend in the common
//! case, and freed nodes recycle LIFO-warm) and the pressure signal the
//! adaptive collect policy consumes.
//!
//! Deferred frees are the subtlety: SMR drop functions are stateless
//! `unsafe fn(*mut u8)`, chosen when the node is *retired* and run long
//! after, on any thread. [`NodeAlloc::drop_fn`] therefore hands each
//! structure a function pointer matching its policy — `Box::from_raw`
//! for `Global`, the pool's header-driven [`ts_alloc::dealloc_node`] for
//! `Pool` — and structures store it once and pass it to every `retire`.

use ts_smr::DropFn;

/// How a structure allocates and frees its nodes.
///
/// Cheap to clone (a pool handle is one pointer); cloning shares the
/// underlying pool and its counters.
#[derive(Debug, Clone, Copy, Default)]
pub enum NodeAlloc {
    /// `Box`-based allocation from the global heap — the zero-cost
    /// default, bit-for-bit the pre-pool behavior.
    #[default]
    Global,
    /// Per-structure node pool over the `ts-alloc` size classes.
    Pool(ts_alloc::PoolHandle),
}

impl NodeAlloc {
    /// Allocates a node holding `value`. Never null.
    #[inline]
    pub fn alloc<T>(&self, value: T) -> *mut T {
        match self {
            NodeAlloc::Global => Box::into_raw(Box::new(value)),
            NodeAlloc::Pool(pool) => pool.alloc_node(value),
        }
    }

    /// The matching stateless deallocator for nodes of type `T`: drops
    /// the value and releases its memory. This is what structures pass
    /// to `Guard::retire` (and use themselves for unpublished nodes and
    /// teardown walks), so a node is always freed the way it was
    /// allocated — even when the free runs on another thread after the
    /// structure is gone.
    #[inline]
    pub fn drop_fn<T>(&self) -> DropFn {
        match self {
            NodeAlloc::Global => drop_boxed::<T>,
            NodeAlloc::Pool(_) => drop_pooled::<T>,
        }
    }
}

/// Frees a `Global`-allocated node.
///
/// # Safety
///
/// `p` came from `Box::into_raw(Box::<T>::new(..))`, freed at most once.
unsafe fn drop_boxed<T>(p: *mut u8) {
    drop(Box::from_raw(p.cast::<T>()));
}

/// Frees a `Pool`-allocated node.
///
/// # Safety
///
/// `p` came from `PoolHandle::alloc_node::<T>`, freed at most once.
unsafe fn drop_pooled<T>(p: *mut u8) {
    ts_alloc::dealloc_node(p.cast::<T>());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_global() {
        assert!(matches!(NodeAlloc::default(), NodeAlloc::Global));
    }

    #[test]
    fn global_roundtrip_uses_box() {
        let alloc = NodeAlloc::Global;
        let p = alloc.alloc(41u64);
        let drop_fn = alloc.drop_fn::<u64>();
        // SAFETY: allocated above with the matching policy.
        unsafe {
            assert_eq!(*p, 41);
            drop_fn(p as *mut u8);
        }
    }

    #[test]
    fn pooled_roundtrip_credits_the_handle() {
        let pool = ts_alloc::PoolHandle::new("node-alloc-test");
        let alloc = NodeAlloc::Pool(pool);
        let p = alloc.alloc([7u64; 10]);
        let drop_fn = alloc.drop_fn::<[u64; 10]>();
        // SAFETY: allocated above with the matching policy.
        unsafe {
            assert_eq!((*p)[9], 7);
            drop_fn(p as *mut u8);
        }
        let s = pool.stats();
        assert_eq!((s.allocs, s.frees, s.bytes_resident), (1, 1, 0));
    }
}
