//! The lazy list (Heller, Herlihy, Luchangco, Moir, Scherer, Shavit,
//! OPODIS 2005) — the algorithm the paper's *introduction* uses to motivate
//! unsynchronized traversals:
//!
//! > "modifications to the list are done by acquiring fine-grained locks on
//! > the two nodes adjacent to where an insert or remove of a node is to
//! > take place ... the frequent search operations ... are executed by
//! > reading along the sequence of pointers from the list head, ignoring
//! > the locks, and thus incurring no synchronization overhead."
//!
//! `contains` is wait-free and write-free; `insert`/`remove` lock `pred`
//! and `curr`, validate, and retry on conflict. Removal marks the victim
//! before unlinking, and the remover retires it through the scheme.

use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::marker::PhantomData;

use ts_smr::{DropFn, Guard, Smr, SmrHandle};

use crate::node_alloc::NodeAlloc;
use crate::set_trait::ConcurrentSet;

/// Padding to the paper's 172-byte node size, matching the Harris list so
/// the two lists differ only in algorithm.
const NODE_PAD: usize = 128;

const SLOT_A: usize = 0;
const SLOT_B: usize = 1;

#[repr(C)]
struct LazyNode {
    /// Plain (untagged) pointer to the next node; first field.
    next: AtomicPtr<u8>,
    key: u64,
    lock: AtomicBool,
    marked: AtomicBool,
    _pad: [u8; NODE_PAD],
}

impl LazyNode {
    fn new(key: u64, next: *mut u8) -> LazyNode {
        LazyNode {
            next: AtomicPtr::new(next),
            key,
            lock: AtomicBool::new(false),
            marked: AtomicBool::new(false),
            _pad: [0; NODE_PAD],
        }
    }

    fn lock(&self) {
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
    }

    fn unlock(&self) {
        self.lock.store(false, Ordering::Release);
    }
}

/// The lazy list: fine-grained locking for updates, invisible traversals
/// for everything.
pub struct LazyList<S: Smr> {
    /// Sentinel-free head: acts as the predecessor pointer of the first
    /// node. Conceptually an immortal, unmarked pred.
    head: AtomicPtr<u8>,
    /// Lock guarding head-position updates (plays the role of the head
    /// sentinel's node lock).
    head_lock: AtomicBool,
    /// Where nodes come from (global heap by default, or a node pool).
    alloc: NodeAlloc,
    /// The matching stateless deallocator, passed to every retire.
    drop_node: DropFn,
    _scheme: PhantomData<fn(&S)>,
}

// SAFETY: shared state is atomics; node lifetime is managed through `S`.
unsafe impl<S: Smr> Send for LazyList<S> {}
unsafe impl<S: Smr> Sync for LazyList<S> {}

impl<S: Smr> LazyList<S> {
    /// An empty lazy list allocating nodes from the global heap.
    pub fn new() -> Self {
        Self::with_alloc(NodeAlloc::Global)
    }

    /// An empty lazy list allocating nodes through `alloc`.
    pub fn with_alloc(alloc: NodeAlloc) -> Self {
        Self {
            head: AtomicPtr::new(std::ptr::null_mut()),
            head_lock: AtomicBool::new(false),
            drop_node: alloc.drop_fn::<LazyNode>(),
            alloc,
            _scheme: PhantomData,
        }
    }

    fn lock_pred(&self, pred: *mut LazyNode) {
        if pred.is_null() {
            while self
                .head_lock
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
            }
        } else {
            // SAFETY: caller protects pred.
            unsafe { (*pred).lock() };
        }
    }

    fn unlock_pred(&self, pred: *mut LazyNode) {
        if pred.is_null() {
            self.head_lock.store(false, Ordering::Release);
        } else {
            // SAFETY: locked above.
            unsafe { (*pred).unlock() };
        }
    }

    fn pred_field(&self, pred: *mut LazyNode) -> &AtomicPtr<u8> {
        if pred.is_null() {
            &self.head
        } else {
            // SAFETY: caller protects pred.
            unsafe { &(*pred).next }
        }
    }

    /// Lazy-list validation: pred unmarked, curr unmarked, pred.next ==
    /// curr. Caller holds both locks and protections.
    fn validate(&self, pred: *mut LazyNode, curr: *mut LazyNode) -> bool {
        let pred_ok = if pred.is_null() {
            true
        } else {
            // SAFETY: locked + protected.
            !unsafe { (*pred).marked.load(Ordering::Acquire) }
        };
        let curr_ok = curr.is_null() || !unsafe { (*curr).marked.load(Ordering::Acquire) };
        pred_ok && curr_ok && self.pred_field(pred).load(Ordering::Acquire) as *mut LazyNode == curr
    }

    /// Unsynchronized search: returns protected `(pred, curr)` with
    /// `curr.key >= key` (curr possibly null). Never writes shared memory.
    ///
    /// Restarts when the node it just advanced past turns out deleted: a
    /// deleted node's (frozen) next field is not a sound protection
    /// source for hazard schemes — the successor may already be retired
    /// through its live predecessor.
    fn search(&self, g: &Guard<'_, S::Handle>, key: u64) -> (*mut LazyNode, *mut LazyNode) {
        'retry: loop {
            let mut pred: *mut LazyNode = std::ptr::null_mut();
            let mut pred_slot = SLOT_A;
            let mut curr_slot = SLOT_B;
            let mut curr = g.load(curr_slot, self.pred_field(pred)) as *mut LazyNode;
            while !curr.is_null() {
                // SAFETY: curr protected in curr_slot.
                let node = unsafe { &*curr };
                if node.key >= key {
                    break;
                }
                pred = curr;
                std::mem::swap(&mut pred_slot, &mut curr_slot);
                // pred is now protected in pred_slot (it was curr's slot);
                // protect the successor in the freed slot.
                curr = g.load(curr_slot, &node.next) as *mut LazyNode;
                // The chain is sound only if pred was still live when its
                // next field was read (marking is monotonic, so checking
                // afterwards suffices).
                if node.marked.load(Ordering::Acquire) {
                    continue 'retry;
                }
            }
            return (pred, curr);
        }
    }

    /// Sequential key dump (tests; unmarked nodes only).
    pub fn keys_sequential(&self) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = self.head.load(Ordering::Acquire) as *const LazyNode;
        while !cur.is_null() {
            let node = unsafe { &*cur };
            if !node.marked.load(Ordering::Acquire) {
                keys.push(node.key);
            }
            cur = node.next.load(Ordering::Acquire) as *const LazyNode;
        }
        keys
    }

    /// Sequential length (tests).
    pub fn len_sequential(&self) -> usize {
        self.keys_sequential().len()
    }
}

impl<S: Smr> Default for LazyList<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Smr> ConcurrentSet<S> for LazyList<S> {
    /// The introduction's unsynchronized traversal: reads along the chain,
    /// ignoring all locks; wait-free.
    fn contains(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        let (_, curr) = self.search(&g, key);
        if curr.is_null() {
            false
        } else {
            // SAFETY: protected by search.
            let node = unsafe { &*curr };
            node.key == key && !node.marked.load(Ordering::Acquire)
        }
    }

    fn insert(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        loop {
            let (pred, curr) = self.search(&g, key);
            if !curr.is_null() {
                // SAFETY: protected.
                let node = unsafe { &*curr };
                if node.key == key && !node.marked.load(Ordering::Acquire) {
                    break false;
                }
            }
            self.lock_pred(pred);
            if self.validate(pred, curr) {
                let node = self.alloc.alloc(LazyNode::new(key, curr as *mut u8));
                self.pred_field(pred)
                    .store(node as *mut u8, Ordering::Release);
                self.unlock_pred(pred);
                break true;
            }
            self.unlock_pred(pred);
            // Validation failed: retry from a fresh search.
        }
    }

    fn remove(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        loop {
            let (pred, curr) = self.search(&g, key);
            if curr.is_null() || unsafe { (*curr).key } != key {
                break false;
            }
            // SAFETY: protected.
            let curr_node = unsafe { &*curr };
            if curr_node.marked.load(Ordering::Acquire) {
                break false; // already logically deleted
            }
            self.lock_pred(pred);
            curr_node.lock();
            if self.validate(pred, curr) {
                // Logical deletion first (readers see it immediately) ...
                curr_node.marked.store(true, Ordering::Release);
                // ... then physical unlink.
                self.pred_field(pred)
                    .store(curr_node.next.load(Ordering::Acquire), Ordering::Release);
                curr_node.unlock();
                self.unlock_pred(pred);
                // SAFETY: we unlinked it under both locks: unique retire.
                unsafe {
                    g.retire(
                        curr as usize,
                        core::mem::size_of::<LazyNode>(),
                        self.drop_node,
                    )
                };
                break true;
            }
            curr_node.unlock();
            self.unlock_pred(pred);
        }
    }

    fn kind(&self) -> &'static str {
        "lazy-list"
    }
}

impl<S: Smr> Drop for LazyList<S> {
    fn drop(&mut self) {
        let mut cur = self.head.load(Ordering::Relaxed);
        while !cur.is_null() {
            // SAFETY: &mut self; chain links each node once (next read
            // before the node is freed).
            unsafe {
                let next = (*cur.cast::<LazyNode>()).next.load(Ordering::Relaxed);
                (self.drop_node)(cur);
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ts_smr::{EpochScheme, HazardPointers, Leaky};

    #[test]
    fn node_padded_to_paper_size() {
        assert_eq!(core::mem::size_of::<LazyNode>(), 152);
    }

    macro_rules! lazy_semantics {
        ($modname:ident, $ty:ty, $scheme:expr) => {
            mod $modname {
                use super::*;

                #[test]
                fn roundtrip_and_order() {
                    let scheme = $scheme;
                    let list = LazyList::<$ty>::new();
                    let h = scheme.register();
                    for k in [9u64, 3, 7, 1, 5] {
                        assert!(list.insert(&h, k));
                        assert!(!list.insert(&h, k));
                    }
                    assert_eq!(list.keys_sequential(), vec![1, 3, 5, 7, 9]);
                    assert!(list.contains(&h, 7));
                    assert!(!list.contains(&h, 8));
                    assert!(list.remove(&h, 7));
                    assert!(!list.remove(&h, 7));
                    assert_eq!(list.keys_sequential(), vec![1, 3, 5, 9]);
                }
            }
        };
    }

    lazy_semantics!(leaky_semantics, Leaky, Leaky::new());
    lazy_semantics!(epoch_semantics, EpochScheme, EpochScheme::with_threshold(2));
    lazy_semantics!(
        hazard_semantics,
        HazardPointers,
        HazardPointers::with_params(4, 2)
    );

    #[test]
    fn concurrent_adjacent_updates_stay_consistent() {
        // The introduction's claim: adjacent-node locking means low
        // contention — but when threads DO collide on neighbours, the
        // validate/retry protocol must keep the list a set.
        let scheme = Arc::new(EpochScheme::with_threshold(16));
        let list = Arc::new(LazyList::<EpochScheme>::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let scheme = Arc::clone(&scheme);
                let list = Arc::clone(&list);
                s.spawn(move || {
                    let h = scheme.register();
                    // Everyone fights over keys 0..16 (adjacent nodes).
                    for i in 0..2000u64 {
                        let k = (t + i) % 16;
                        if i % 2 == 0 {
                            list.insert(&h, k);
                        } else {
                            list.remove(&h, k);
                        }
                    }
                });
            }
        });
        let keys = list.keys_sequential();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
        assert!(keys.iter().all(|&k| k < 16));
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn readers_never_block_on_writers() {
        // A writer holds its locks for a long time (simulated by a slow
        // validate loop via contention); readers must still complete.
        let scheme = Arc::new(EpochScheme::with_threshold(64));
        let list = Arc::new(LazyList::<EpochScheme>::new());
        {
            let h = scheme.register();
            for k in 0..64u64 {
                list.insert(&h, k);
            }
        }
        use std::sync::atomic::AtomicU64;
        let reads_done = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            let stop = Arc::new(AtomicBool::new(false));
            for _ in 0..2 {
                let scheme = Arc::clone(&scheme);
                let list = Arc::clone(&list);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let h = scheme.register();
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        list.remove(&h, i % 64);
                        list.insert(&h, i % 64);
                        i += 1;
                    }
                });
            }
            let scheme2 = Arc::clone(&scheme);
            let list2 = Arc::clone(&list);
            let reads = Arc::clone(&reads_done);
            let stop2 = Arc::clone(&stop);
            s.spawn(move || {
                let h = scheme2.register();
                for i in 0..50_000u64 {
                    std::hint::black_box(list2.contains(&h, i % 64));
                }
                reads.store(50_000, Ordering::SeqCst);
                stop2.store(true, Ordering::SeqCst);
            });
        });
        assert_eq!(reads_done.load(Ordering::SeqCst), 50_000);
    }
}
