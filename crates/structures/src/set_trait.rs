//! The common concurrent-set interface the evaluation drives.
//!
//! All three data structures in the paper's evaluation are integer sets
//! with `contains` / `insert` / `remove`. The workload harness measures
//! them through this trait, parameterized by the reclamation scheme — one
//! structure implementation × five schemes, exactly like the paper.

use ts_smr::Smr;

/// A concurrent set of `u64` keys managed by reclamation scheme `S`.
///
/// Every method takes the calling thread's scheme handle: the structure
/// opens an RAII guard (`handle.pin()`) for the operation's duration and
/// loads shared pointers / retires unlinked nodes through it, so each
/// scheme imposes exactly its own cost.
pub trait ConcurrentSet<S: Smr>: Send + Sync {
    /// Whether `key` is in the set. Uses an *unsynchronized traversal*
    /// (no writes to shared memory) for schemes that permit it.
    fn contains(&self, handle: &S::Handle, key: u64) -> bool;

    /// Inserts `key`; returns `false` if it was already present.
    fn insert(&self, handle: &S::Handle, key: u64) -> bool;

    /// Removes `key`; returns `false` if it was absent. The removed node
    /// is unlinked and retired through the scheme.
    fn remove(&self, handle: &S::Handle, key: u64) -> bool;

    /// Short structure name for benchmark output.
    fn kind(&self) -> &'static str;

    /// For bucketed tables, the current bucket count (exported as a bench
    /// extra); `None` for structures without a bucket directory.
    fn bucket_count(&self) -> Option<usize> {
        None
    }
}
