//! # ts-structures — the data structures from the ThreadScan evaluation
//!
//! Three concurrent integer sets, written once against the `ts-smr`
//! reclamation trait and therefore runnable under all five schemes the
//! paper compares (§6 "Data Structures"):
//!
//! 1. [`HarrisList`] — Harris' lock-free linked list, 172-byte padded
//!    nodes (paper Figure 3, left).
//! 2. [`LockFreeHashTable`] — Synchrobench-style fixed bucket array of
//!    Harris lists, expected bucket length 32 (Figure 3, middle).
//! 3. [`SkipList`] — lock-based optimistic (lazy) skip list with wait-free
//!    unsynchronized `contains` (Figure 3, right).
//!
//! Plus [`LazyList`], the introduction's motivating structure (§1:
//! fine-grained locks on the two adjacent nodes for updates, lock-ignoring
//! traversals). Its Figure-1 pattern — a traversal racing a disconnect +
//! free — is exactly the `remove`/`contains` race all four structures
//! exhibit; the integration tests drive it under real signal-based
//! reclamation.
//!
//! Beyond the evaluation's three structures, two more of the
//! unsynchronized-traversal structures the introduction cites:
//!
//! * [`PriorityQueue`] — Shavit–Lotan skiplist priority queue (cite \[43\]);
//! * [`SplitOrderedSet`] — Shalev–Shavit split-ordered-list hash table
//!   with lock-free dynamic resizing over an unbounded
//!   [`GrowableDirectory`] (cite \[42\]).
//!
//! For heterogeneous runs — several structure types sharing one collector
//! — [`DynSet`] erases `ConcurrentSet` behind a trait object, and
//! [`PqAsSet`] adapts the priority queue to the set-shaped interface.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dyn_set;
pub mod growable_dir;
pub mod harris_list;
pub mod hash_table;
pub mod lazy_list;
pub mod node_alloc;
pub mod priority_queue;
pub mod set_trait;
pub mod skiplist;
pub mod split_ordered;
pub mod tagged;

pub use dyn_set::{DynSet, PqAsSet};
pub use growable_dir::GrowableDirectory;
pub use harris_list::HarrisList;
pub use hash_table::LockFreeHashTable;
pub use lazy_list::LazyList;
pub use node_alloc::NodeAlloc;
pub use priority_queue::{PriorityQueue, PQ_MAX_HEIGHT, PQ_REQUIRED_SLOTS};
pub use set_trait::ConcurrentSet;
pub use skiplist::{SkipList, MAX_HEIGHT, REQUIRED_SLOTS};
pub use split_ordered::{SplitOrderedSet, DEFAULT_LOAD_FACTOR};
