//! Harris' lock-free linked list (DISC 2001), the paper's first evaluation
//! structure (§6: "Code was adapted for C from the Java provided in \[25\].
//! Each node was padded to 172 bytes to avoid false sharing.").
//!
//! * Sorted singly-linked list of `u64` keys.
//! * Deletion is two-phase: CAS the victim's own `next` pointer to set the
//!   mark bit (logical), then CAS the predecessor's `next` to unlink it
//!   (physical). Whoever performs the *physical* unlink retires the node
//!   through the reclamation scheme.
//! * Traversals are unsynchronized reads; under hazard pointers each step
//!   goes through the guard's protected load (publish + fence +
//!   validate), which is precisely the cost the paper charges that
//!   scheme.
//!
//! Every operation opens an RAII [`Guard`] via `handle.pin()`; loads and
//! retires go through the guard, so the begin/end bracket can never be
//! mismatched.

use core::marker::PhantomData;
use core::sync::atomic::{AtomicPtr, Ordering};

use ts_smr::{DropFn, Guard, Smr, SmrHandle};

use crate::node_alloc::NodeAlloc;
use crate::set_trait::ConcurrentSet;
use crate::tagged::{is_marked, marked, untagged};

/// Padding that brings a node to the paper's 172 bytes
/// (8 next + 8 key + 156 pad = 172, rounded to 176 by alignment).
const NODE_PAD: usize = 156;

/// Protection-slot roles during traversal.
const SLOT_A: usize = 0;
const SLOT_B: usize = 1;
const SLOT_C: usize = 2;

#[repr(C)]
pub(crate) struct Node {
    /// Tagged pointer to the next node (low bit = logically deleted).
    /// First field, so an interior pointer to it equals the node address.
    next: AtomicPtr<u8>,
    key: u64,
    _pad: [u8; NODE_PAD],
}

impl Node {
    fn new(key: u64, next: *mut u8) -> Self {
        Self {
            next: AtomicPtr::new(next),
            key,
            _pad: [0; NODE_PAD],
        }
    }
}

/// The lock-free sorted linked list.
pub struct HarrisList<S: Smr> {
    /// Acts as the predecessor field for the first node.
    head: AtomicPtr<u8>,
    /// Where nodes come from (global heap by default, or a node pool).
    alloc: NodeAlloc,
    /// The matching stateless deallocator, passed to every retire.
    drop_node: DropFn,
    _scheme: PhantomData<fn(&S)>,
}

// SAFETY: all shared state is atomics; nodes are managed through `S`.
unsafe impl<S: Smr> Send for HarrisList<S> {}
unsafe impl<S: Smr> Sync for HarrisList<S> {}

impl<S: Smr> HarrisList<S> {
    /// An empty list allocating nodes from the global heap.
    pub fn new() -> Self {
        Self::with_alloc(NodeAlloc::Global)
    }

    /// An empty list allocating nodes through `alloc`.
    pub fn with_alloc(alloc: NodeAlloc) -> Self {
        Self {
            head: AtomicPtr::new(std::ptr::null_mut()),
            drop_node: alloc.drop_fn::<Node>(),
            alloc,
            _scheme: PhantomData,
        }
    }

    /// Finds the first node with `node.key >= key`.
    ///
    /// Returns `(prev_field, curr)` where `*prev_field == curr` at
    /// observation time and `curr` (possibly null) is unmarked. Unlinks
    /// (and retires) marked nodes encountered on the way — Harris' helping
    /// rule; the unlinking thread owns the retire.
    fn search(&self, g: &Guard<'_, S::Handle>, key: u64) -> (*const AtomicPtr<u8>, *mut Node) {
        'retry: loop {
            let mut prev: *const AtomicPtr<u8> = &self.head;
            // Slots: prev's node (none yet), curr, next — rotate as we walk.
            let mut curr_slot = SLOT_A;
            let mut prev_slot = SLOT_B; // unused until we advance once
                                        // SAFETY: `prev` points at self.head or a protected node's field.
            let mut curr = g.load(curr_slot, unsafe { &*prev });
            loop {
                let curr_node_ptr = untagged(curr) as *mut Node;
                if curr_node_ptr.is_null() {
                    return (prev, std::ptr::null_mut());
                }
                // SAFETY: curr is protected (hazard) or the scheme
                // guarantees grace (epoch/threadscan/leaky).
                let curr_node = unsafe { &*curr_node_ptr };
                let next_slot = SLOT_A + SLOT_B + SLOT_C - prev_slot - curr_slot;
                let next = g.load(next_slot, &curr_node.next);
                if is_marked(next) {
                    // curr is logically deleted: attempt physical unlink.
                    // SAFETY: prev field belongs to head or a protected node.
                    match unsafe { &*prev }.compare_exchange(
                        curr,
                        untagged(next),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            // We unlinked it: we retire it.
                            // SAFETY: the node is now unreachable from the
                            // list and this is the only unlink (the CAS).
                            unsafe {
                                g.retire(
                                    curr_node_ptr as usize,
                                    core::mem::size_of::<Node>(),
                                    self.drop_node,
                                )
                            };
                            curr = untagged(next);
                            curr_slot = next_slot;
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                if curr_node.key >= key {
                    return (prev, curr_node_ptr);
                }
                prev = &curr_node.next;
                prev_slot = curr_slot;
                curr_slot = next_slot;
                curr = next;
            }
        }
    }

    /// Sequential length (test/diagnostic; not linearizable).
    pub fn len_sequential(&self) -> usize {
        let mut n = 0;
        let mut cur = untagged(self.head.load(Ordering::Acquire)) as *const Node;
        while !cur.is_null() {
            let node = unsafe { &*cur };
            if !is_marked(node.next.load(Ordering::Acquire)) {
                n += 1;
            }
            cur = untagged(node.next.load(Ordering::Acquire)) as *const Node;
        }
        n
    }

    /// Sequential key dump (test/diagnostic; unmarked nodes only).
    pub fn keys_sequential(&self) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = untagged(self.head.load(Ordering::Acquire)) as *const Node;
        while !cur.is_null() {
            let node = unsafe { &*cur };
            if !is_marked(node.next.load(Ordering::Acquire)) {
                keys.push(node.key);
            }
            cur = untagged(node.next.load(Ordering::Acquire)) as *const Node;
        }
        keys
    }
}

impl<S: Smr> Default for HarrisList<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Smr> ConcurrentSet<S> for HarrisList<S> {
    fn contains(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        // Read-only traversal: two alternating protection slots.
        'retry: loop {
            let mut slot = SLOT_A;
            let mut curr = g.load(slot, &self.head);
            loop {
                let node_ptr = untagged(curr) as *const Node;
                if node_ptr.is_null() {
                    break 'retry false;
                }
                // SAFETY: protected (hazard) or grace-protected node.
                let node = unsafe { &*node_ptr };
                let other = SLOT_A + SLOT_B - slot;
                let next = g.load(other, &node.next);
                if node.key >= key {
                    break 'retry node.key == key && !is_marked(next);
                }
                if is_marked(next) {
                    // `node` was deleted under us. Its frozen next field
                    // is not a sound protection source (the successor may
                    // already be retired through its live predecessor):
                    // restart from the head.
                    continue 'retry;
                }
                slot = other;
                curr = next;
            }
        }
        // guard drops here: end_op
    }

    fn insert(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        let node = self.alloc.alloc(Node::new(key, std::ptr::null_mut()));
        loop {
            let (prev, curr) = self.search(&g, key);
            if !curr.is_null() && unsafe { (*curr).key } == key {
                // SAFETY: `node` was never published.
                unsafe { (self.drop_node)(node as *mut u8) };
                break false;
            }
            // SAFETY: node is ours until the CAS publishes it.
            unsafe { (*node).next.store(curr as *mut u8, Ordering::Relaxed) };
            // SAFETY: prev field is head or a field of a protected node.
            match unsafe { &*prev }.compare_exchange(
                curr as *mut u8,
                node as *mut u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break true,
                Err(_) => continue,
            }
        }
    }

    fn remove(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        loop {
            let (prev, curr) = self.search(&g, key);
            if curr.is_null() || unsafe { (*curr).key } != key {
                break false;
            }
            // SAFETY: curr is protected by search's final state.
            let curr_node = unsafe { &*curr };
            let next = curr_node.next.load(Ordering::Acquire);
            if is_marked(next) {
                continue; // concurrently deleted; re-search to help unlink
            }
            // Logical deletion: set the mark bit on curr's next pointer.
            if curr_node
                .next
                .compare_exchange(next, marked(next), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Physical unlink; on failure a helping search does it.
                // SAFETY: prev field valid as in search.
                if unsafe { &*prev }
                    .compare_exchange(
                        curr as *mut u8,
                        untagged(next),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    // SAFETY: we performed the unlink; single retire.
                    unsafe {
                        g.retire(curr as usize, core::mem::size_of::<Node>(), self.drop_node)
                    };
                } else {
                    let _ = self.search(&g, key); // helper unlinks + retires
                }
                break true;
            }
            // Mark CAS failed (insertion after curr, or a race): retry.
        }
    }

    fn kind(&self) -> &'static str {
        "harris-list"
    }
}

impl<S: Smr> Drop for HarrisList<S> {
    fn drop(&mut self) {
        // Exclusive access: free every remaining node directly.
        let mut cur = untagged(self.head.load(Ordering::Relaxed));
        while !cur.is_null() {
            // SAFETY: &mut self means no concurrent access; each node is
            // freed exactly once along the chain (next read before free).
            unsafe {
                let next = untagged((*cur.cast::<Node>()).next.load(Ordering::Relaxed));
                (self.drop_node)(cur);
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ts_smr::{EpochScheme, HazardPointers, Leaky};

    /// Shared semantics tests, instantiated per scheme (each scheme takes
    /// a genuinely different code path through `load_protected`/`retire`).
    macro_rules! semantics_tests {
        ($modname:ident, $ty:ty, $scheme:expr) => {
            mod $modname {
                use super::*;

                #[test]
                fn insert_contains_remove_roundtrip() {
                    let scheme = $scheme;
                    let list = HarrisList::<$ty>::new();
                    let h = scheme.register();
                    assert!(!list.contains(&h, 5));
                    assert!(list.insert(&h, 5));
                    assert!(!list.insert(&h, 5), "duplicate insert");
                    assert!(list.contains(&h, 5));
                    assert!(list.remove(&h, 5));
                    assert!(!list.remove(&h, 5), "double remove");
                    assert!(!list.contains(&h, 5));
                }

                #[test]
                fn keys_stay_sorted_and_unique() {
                    let scheme = $scheme;
                    let list = HarrisList::<$ty>::new();
                    let h = scheme.register();
                    for k in [5u64, 1, 9, 3, 7, 1, 9] {
                        list.insert(&h, k);
                    }
                    assert_eq!(list.keys_sequential(), vec![1, 3, 5, 7, 9]);
                    list.remove(&h, 5);
                    list.remove(&h, 1);
                    assert_eq!(list.keys_sequential(), vec![3, 7, 9]);
                }

                #[test]
                fn boundary_keys_work() {
                    let scheme = $scheme;
                    let list = HarrisList::<$ty>::new();
                    let h = scheme.register();
                    assert!(list.insert(&h, 0));
                    assert!(list.insert(&h, u64::MAX));
                    assert!(list.contains(&h, 0));
                    assert!(list.contains(&h, u64::MAX));
                    assert!(list.remove(&h, 0));
                    assert!(list.contains(&h, u64::MAX));
                }
            }
        };
    }

    semantics_tests!(leaky_semantics, Leaky, Leaky::new());
    semantics_tests!(epoch_semantics, EpochScheme, EpochScheme::with_threshold(4));
    semantics_tests!(
        hazard_semantics,
        HazardPointers,
        HazardPointers::with_params(4, 4)
    );

    #[test]
    fn node_size_matches_paper_padding() {
        // §6: nodes padded to 172 bytes (176 after 8-byte alignment).
        assert_eq!(core::mem::size_of::<Node>(), 176);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let scheme = Arc::new(EpochScheme::with_threshold(64));
        let list = Arc::new(HarrisList::<EpochScheme>::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let scheme = Arc::clone(&scheme);
                let list = Arc::clone(&list);
                s.spawn(move || {
                    let h = scheme.register();
                    for i in 0..200u64 {
                        assert!(list.insert(&h, t * 1000 + i));
                    }
                });
            }
        });
        let keys = list.keys_sequential();
        assert_eq!(keys.len(), 1600);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted unique");
    }

    #[test]
    fn concurrent_mixed_churn_preserves_set_semantics() {
        // Every thread owns a disjoint key range and toggles membership;
        // the final state must match each thread's local parity.
        let scheme = Arc::new(EpochScheme::with_threshold(32));
        let list = Arc::new(HarrisList::<EpochScheme>::new());
        let expected: Vec<Vec<u64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let scheme = Arc::clone(&scheme);
                    let list = Arc::clone(&list);
                    s.spawn(move || {
                        let h = scheme.register();
                        let base = t * 10_000;
                        let mut mine = Vec::new();
                        for i in 0..100u64 {
                            let k = base + i;
                            assert!(list.insert(&h, k));
                            if i % 3 == 0 {
                                assert!(list.remove(&h, k));
                            } else {
                                mine.push(k);
                            }
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut want: Vec<u64> = expected.into_iter().flatten().collect();
        want.sort_unstable();
        assert_eq!(list.keys_sequential(), want);
    }

    #[test]
    fn hazard_scheme_survives_concurrent_reads_during_removal() {
        let scheme = Arc::new(HazardPointers::with_params(4, 8));
        let list = Arc::new(HarrisList::<HazardPointers>::new());
        {
            let h = scheme.register();
            for k in 0..128u64 {
                list.insert(&h, k);
            }
        }
        std::thread::scope(|s| {
            // Readers hammer contains while a writer removes everything.
            for _ in 0..3 {
                let scheme = Arc::clone(&scheme);
                let list = Arc::clone(&list);
                s.spawn(move || {
                    let h = scheme.register();
                    for round in 0..50 {
                        for k in 0..128u64 {
                            let _ = list.contains(&h, k);
                        }
                        let _ = round;
                    }
                });
            }
            let scheme2 = Arc::clone(&scheme);
            let list2 = Arc::clone(&list);
            s.spawn(move || {
                let h = scheme2.register();
                for k in 0..128u64 {
                    assert!(list2.remove(&h, k));
                }
            });
        });
        assert_eq!(list.len_sequential(), 0);
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0, "all removed nodes reclaimed");
    }

    #[test]
    fn drop_frees_remaining_nodes() {
        // Leak-detection via a counting scheme is covered in integration
        // tests; here we just make sure Drop walks a populated list.
        let scheme = Leaky::new();
        let list = HarrisList::<Leaky>::new();
        let h = scheme.register();
        for k in 0..50u64 {
            list.insert(&h, k);
        }
        drop(list); // must not leak or double-free (asserted by miri/asan runs)
    }
}
