//! Split-ordered-list hash table (Shalev–Shavit, "Split-Ordered Lists:
//! Lock-Free Extensible Hash Tables", JACM 2006) — cited by the paper's
//! introduction (\[42\]) as one of the high-performance structures built on
//! unsynchronized traversals.
//!
//! The entire table is **one** Harris-style lock-free sorted list; buckets
//! are *dummy* nodes threaded into it at split-order positions. Keys are
//! sorted by their **bit-reversed** hash, so doubling the bucket count
//! never moves an item: the new bucket's dummy simply splits an existing
//! bucket's chain in place. This makes resizing lock-free and incremental
//! — and gives the reclamation scheme a workout the fixed-bucket
//! [`LockFreeHashTable`](crate::LockFreeHashTable) cannot: bucket chains
//! are split *while* readers traverse them and removed nodes are retired
//! mid-split.
//!
//! Reclamation discipline: regular nodes are unlinked with the Harris
//! two-phase mark + unlink and retired through the [`Smr`] scheme by
//! whoever performs the physical unlink; dummy nodes are never removed
//! (they live until the table drops), so bucket-entry reads need no
//! protection.
//!
//! The bucket directory is a [`GrowableDirectory`] — a lock-free
//! segment-tree array with a height-tagged root pointer — so the table
//! grows unboundedly (the old hard cap was 2^20 buckets) with no
//! stop-the-world resize: doubling the bucket count is one CAS on `size`,
//! and the directory adds tree levels on demand as new bucket indices are
//! touched.

use core::marker::PhantomData;
use core::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use ts_smr::{DropFn, Guard, Smr, SmrHandle};

use crate::growable_dir::{GrowableDirectory, MAX_CAPACITY};
use crate::node_alloc::NodeAlloc;
use crate::set_trait::ConcurrentSet;
use crate::tagged::{is_marked, marked, untagged};

/// Default items per bucket that trigger a size doubling (the classic
/// algorithm's load factor; the paper's fixed table targets 32 — here
/// splitting keeps chains near this bound instead). Tunable per table via
/// [`SplitOrderedSet::with_load_factor`].
pub const DEFAULT_LOAD_FACTOR: usize = 4;

/// Protection-slot roles during traversal (same rotation as HarrisList).
const SLOT_A: usize = 0;
const SLOT_B: usize = 1;
const SLOT_C: usize = 2;

#[repr(C)]
struct SoNode {
    /// Tagged next pointer (low bit = logically deleted). First field, so
    /// interior pointers resolve to the node address under range matching.
    next: AtomicPtr<u8>,
    /// Split-order key: bit-reversed hash with LSB 1 for regular nodes,
    /// bit-reversed bucket index (LSB 0) for dummies. Primary sort key.
    skey: u64,
    /// The application key (0 for dummies; disambiguated by skey's LSB).
    key: u64,
}

impl SoNode {
    fn new(skey: u64, key: u64, next: *mut u8) -> Self {
        Self {
            next: AtomicPtr::new(next),
            skey,
            key,
        }
    }

    #[inline]
    fn is_dummy(&self) -> bool {
        self.skey & 1 == 0
    }
}

/// 64-bit finalizer (splitmix64): spreads application keys over the full
/// hash space so bucket selection and split order are uniform.
#[inline]
fn hash64(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Split-order key of a regular item: set the top bit (so regulars sort
/// after every dummy of their bucket), then bit-reverse (LSB becomes 1).
#[inline]
fn so_regular_key(hash: u64) -> u64 {
    (hash | (1 << 63)).reverse_bits()
}

/// Split-order key of bucket `b`'s dummy: bit-reversed index (LSB 0).
#[inline]
fn so_dummy_key(bucket: usize) -> u64 {
    (bucket as u64).reverse_bits()
}

/// `(skey, key)` lexicographic order; dummies never tie with regulars
/// (skey LSBs differ) and regular ties (63-bit hash collisions) break on
/// the application key.
#[inline]
fn so_less(a: (u64, u64), b: (u64, u64)) -> bool {
    a < b
}

/// The split-ordered hash set.
pub struct SplitOrderedSet<S: Smr> {
    /// Growable directory of bucket-dummy pointers, indexed by bucket.
    /// Tree levels and segments allocate lazily as buckets are touched.
    directory: GrowableDirectory,
    /// Current bucket count (power of two, ≤ the directory's capacity).
    size: AtomicUsize,
    /// Resident item count (drives the load-factor splits).
    count: AtomicUsize,
    /// Items per bucket beyond which the bucket count doubles.
    load_factor: usize,
    /// Bucket 0's dummy, which is also the head of the whole list.
    head: *mut SoNode,
    /// Where nodes — dummies *and* regulars — come from. The teardown
    /// walk frees the single chain uniformly, so both kinds must share
    /// one allocator.
    alloc: NodeAlloc,
    /// The matching stateless deallocator, passed to every retire.
    drop_node: DropFn,
    _scheme: PhantomData<fn(&S)>,
}

// SAFETY: shared state is atomics + immortal dummies; regular-node
// lifetime is managed through `S`.
unsafe impl<S: Smr> Send for SplitOrderedSet<S> {}
unsafe impl<S: Smr> Sync for SplitOrderedSet<S> {}

impl<S: Smr> SplitOrderedSet<S> {
    /// An empty set with the directory's native starting bucket count.
    pub fn new() -> Self {
        Self::with_buckets(crate::growable_dir::SEG_LEN)
    }

    /// An empty set starting at `initial_buckets` (rounded up to a power
    /// of two, clamped to what the directory can ever address).
    pub fn with_buckets(initial_buckets: usize) -> Self {
        Self::with_buckets_and_alloc(initial_buckets, NodeAlloc::Global)
    }

    /// [`Self::with_buckets`], allocating every node through `alloc`.
    pub fn with_buckets_and_alloc(initial_buckets: usize, alloc: NodeAlloc) -> Self {
        let size = initial_buckets.next_power_of_two().clamp(2, MAX_CAPACITY);
        let head = alloc.alloc(SoNode::new(so_dummy_key(0), 0, std::ptr::null_mut()));
        let set = Self {
            directory: GrowableDirectory::new(),
            size: AtomicUsize::new(size),
            count: AtomicUsize::new(0),
            load_factor: DEFAULT_LOAD_FACTOR,
            head,
            drop_node: alloc.drop_fn::<SoNode>(),
            alloc,
            _scheme: PhantomData,
        };
        set.bucket_entry(0)
            .store(head as *mut u8, Ordering::Release);
        set
    }

    /// Builder: items-per-bucket threshold beyond which the bucket count
    /// doubles (default [`DEFAULT_LOAD_FACTOR`]). Lower values split more
    /// eagerly; `0` doubles on every insert (useful to exercise deep
    /// directory growth quickly in tests).
    pub fn with_load_factor(mut self, load_factor: usize) -> Self {
        self.load_factor = load_factor;
        self
    }

    /// The configured items-per-bucket split threshold.
    pub fn load_factor(&self) -> usize {
        self.load_factor
    }

    /// Current bucket count (diagnostics / tests).
    pub fn bucket_count(&self) -> usize {
        self.size.load(Ordering::Acquire)
    }

    /// Resident items (linearizable only when quiescent).
    pub fn len_estimate(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// The directory entry for `bucket`, growing the directory and
    /// allocating segments on demand.
    #[inline]
    fn bucket_entry(&self, bucket: usize) -> &AtomicPtr<u8> {
        self.directory.entry(bucket)
    }

    /// Bucket `b`'s parent: `b` with its highest set bit cleared.
    #[inline]
    fn parent(bucket: usize) -> usize {
        debug_assert!(bucket > 0);
        bucket & !(1usize << (usize::BITS - 1 - bucket.leading_zeros()))
    }

    /// Returns the (immortal) dummy node for `bucket`, lazily threading it
    /// — and transitively its ancestors' — into the list.
    fn bucket_dummy(&self, g: &Guard<'_, S::Handle>, bucket: usize) -> *mut SoNode {
        let entry = self.bucket_entry(bucket);
        let existing = entry.load(Ordering::Acquire);
        if !existing.is_null() {
            return existing as *mut SoNode;
        }
        let parent = self.bucket_dummy(g, Self::parent(bucket));
        let skey = so_dummy_key(bucket);
        // Insert-if-absent of the dummy starting at the parent's chain.
        let node = self.alloc.alloc(SoNode::new(skey, 0, std::ptr::null_mut()));
        let dummy = loop {
            // SAFETY: parent dummies are immortal.
            let start = unsafe { &(*parent).next };
            let (prev, curr) = self.search_from(g, start, skey, 0);
            if !curr.is_null() {
                // SAFETY: curr is protected by search_from's final state.
                let c = unsafe { &*curr };
                if c.skey == skey {
                    // Another thread threaded it first.
                    // SAFETY: `node` never escaped.
                    unsafe { (self.drop_node)(node as *mut u8) };
                    break curr;
                }
            }
            // SAFETY: node is private until the CAS publishes it.
            unsafe { (*node).next.store(curr as *mut u8, Ordering::Relaxed) };
            // SAFETY: prev field belongs to head or a protected node.
            if unsafe { &*prev }
                .compare_exchange(
                    curr as *mut u8,
                    node as *mut u8,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                break node;
            }
        };
        // Publish; a racing initializer found/inserted the same node, so a
        // plain store of the identical value is fine — but CAS keeps the
        // invariant explicit.
        let _ = entry.compare_exchange(
            std::ptr::null_mut(),
            dummy as *mut u8,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        entry.load(Ordering::Acquire) as *mut SoNode
    }

    /// Harris search over the split-order list starting at `start`:
    /// returns `(prev_field, curr)` where curr is the first unmarked node
    /// with `(skey, key) >= (target_skey, target_key)` (or null). Unlinks
    /// and retires marked nodes on the way.
    fn search_from(
        &self,
        g: &Guard<'_, S::Handle>,
        start: &AtomicPtr<u8>,
        target_skey: u64,
        target_key: u64,
    ) -> (*const AtomicPtr<u8>, *mut SoNode) {
        'retry: loop {
            let mut prev: *const AtomicPtr<u8> = start;
            let mut curr_slot = SLOT_A;
            let mut prev_slot = SLOT_B;
            // SAFETY: `prev` is `start` (immortal dummy field / head) or a
            // protected node's field.
            let mut curr = g.load(curr_slot, unsafe { &*prev });
            loop {
                let curr_node_ptr = untagged(curr) as *mut SoNode;
                if curr_node_ptr.is_null() {
                    return (prev, std::ptr::null_mut());
                }
                // SAFETY: protected (hazard) or grace-protected.
                let curr_node = unsafe { &*curr_node_ptr };
                let next_slot = SLOT_A + SLOT_B + SLOT_C - prev_slot - curr_slot;
                let next = g.load(next_slot, &curr_node.next);
                if is_marked(next) {
                    // Logically deleted: help unlink, then retire.
                    // SAFETY: prev field as above.
                    match unsafe { &*prev }.compare_exchange(
                        curr,
                        untagged(next),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            debug_assert!(!curr_node.is_dummy(), "dummies are never marked");
                            // SAFETY: the winning unlink owns the retire.
                            unsafe {
                                g.retire(
                                    curr_node_ptr as usize,
                                    core::mem::size_of::<SoNode>(),
                                    self.drop_node,
                                )
                            };
                            curr = untagged(next);
                            curr_slot = next_slot;
                            continue;
                        }
                        Err(_) => continue 'retry,
                    }
                }
                if !so_less((curr_node.skey, curr_node.key), (target_skey, target_key)) {
                    return (prev, curr_node_ptr);
                }
                prev = &curr_node.next;
                prev_slot = curr_slot;
                curr_slot = next_slot;
                curr = next;
            }
        }
    }

    /// Doubles the bucket count when the load factor is exceeded. The
    /// only bound is the directory's addressable capacity (2^56 buckets)
    /// — there is no resize pause: the new buckets' dummies thread in
    /// lazily as operations touch them.
    fn maybe_split(&self) {
        let size = self.size.load(Ordering::Acquire);
        if size < MAX_CAPACITY
            && self.count.load(Ordering::Acquire) > size.saturating_mul(self.load_factor)
        {
            // One winner doubles; losers see the new size on their next op.
            let _ = self
                .size
                .compare_exchange(size, size * 2, Ordering::AcqRel, Ordering::Acquire);
        }
    }

    /// Sequential dump of resident application keys, in split order
    /// (tests only).
    pub fn keys_sequential(&self) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = self.head as *const SoNode;
        while !cur.is_null() {
            // SAFETY: sequential access (tests run this quiescently).
            let node = unsafe { &*cur };
            let next = node.next.load(Ordering::Acquire);
            if !node.is_dummy() && !is_marked(next) {
                keys.push(node.key);
            }
            cur = untagged(next) as *const SoNode;
        }
        keys
    }
}

impl<S: Smr> Default for SplitOrderedSet<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Smr> ConcurrentSet<S> for SplitOrderedSet<S> {
    fn contains(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        let hash = hash64(key);
        let skey = so_regular_key(hash);
        let size = self.size.load(Ordering::Acquire);
        let dummy = self.bucket_dummy(&g, (hash as usize) & (size - 1));
        // Read-only walk with two alternating slots (HarrisList protocol).
        'retry: loop {
            let mut slot = SLOT_A;
            // SAFETY: dummies are immortal.
            let mut curr = g.load(slot, unsafe { &(*dummy).next });
            loop {
                let node_ptr = untagged(curr) as *const SoNode;
                if node_ptr.is_null() {
                    break 'retry false;
                }
                // SAFETY: protected (hazard) or grace-protected.
                let node = unsafe { &*node_ptr };
                let other = SLOT_A + SLOT_B - slot;
                let next = g.load(other, &node.next);
                if !so_less((node.skey, node.key), (skey, key)) {
                    break 'retry node.skey == skey && node.key == key && !is_marked(next);
                }
                if is_marked(next) {
                    // The frozen next of a deleted node is not a sound
                    // protection source: restart from the bucket dummy.
                    continue 'retry;
                }
                slot = other;
                curr = next;
            }
        }
    }

    fn insert(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        let hash = hash64(key);
        let skey = so_regular_key(hash);
        let size = self.size.load(Ordering::Acquire);
        let dummy = self.bucket_dummy(&g, (hash as usize) & (size - 1));
        let node = self
            .alloc
            .alloc(SoNode::new(skey, key, std::ptr::null_mut()));
        loop {
            // SAFETY: dummies are immortal.
            let start = unsafe { &(*dummy).next };
            let (prev, curr) = self.search_from(&g, start, skey, key);
            if !curr.is_null() {
                // SAFETY: protected by search_from's final state.
                let c = unsafe { &*curr };
                if c.skey == skey && c.key == key {
                    // SAFETY: `node` never escaped.
                    unsafe { (self.drop_node)(node as *mut u8) };
                    break false;
                }
            }
            // SAFETY: node is private until the CAS publishes it.
            unsafe { (*node).next.store(curr as *mut u8, Ordering::Relaxed) };
            // SAFETY: prev field is a dummy's or a protected node's field.
            match unsafe { &*prev }.compare_exchange(
                curr as *mut u8,
                node as *mut u8,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.count.fetch_add(1, Ordering::AcqRel);
                    self.maybe_split();
                    break true;
                }
                Err(_) => continue,
            }
        }
    }

    fn remove(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        let hash = hash64(key);
        let skey = so_regular_key(hash);
        let size = self.size.load(Ordering::Acquire);
        let dummy = self.bucket_dummy(&g, (hash as usize) & (size - 1));
        loop {
            // SAFETY: dummies are immortal.
            let start = unsafe { &(*dummy).next };
            let (prev, curr) = self.search_from(&g, start, skey, key);
            if curr.is_null() {
                break false;
            }
            // SAFETY: protected by search_from's final state.
            let curr_node = unsafe { &*curr };
            if curr_node.skey != skey || curr_node.key != key {
                break false;
            }
            let next = curr_node.next.load(Ordering::Acquire);
            if is_marked(next) {
                continue; // concurrently deleted; re-search to help unlink
            }
            // Logical deletion (mark), then physical unlink.
            if curr_node
                .next
                .compare_exchange(next, marked(next), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.count.fetch_sub(1, Ordering::AcqRel);
                // SAFETY: prev field as in search_from.
                if unsafe { &*prev }
                    .compare_exchange(
                        curr as *mut u8,
                        untagged(next),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    // SAFETY: we performed the unlink; single retire.
                    unsafe {
                        g.retire(
                            curr as usize,
                            core::mem::size_of::<SoNode>(),
                            self.drop_node,
                        )
                    };
                } else {
                    let _ = self.search_from(&g, start, skey, key); // helper unlinks
                }
                break true;
            }
        }
    }

    fn kind(&self) -> &'static str {
        "split-ordered"
    }

    fn bucket_count(&self) -> Option<usize> {
        Some(SplitOrderedSet::bucket_count(self))
    }
}

impl<S: Smr> Drop for SplitOrderedSet<S> {
    fn drop(&mut self) {
        // Exclusive access: free the whole chain (dummies + regulars);
        // the directory's own Drop then frees the segment tree (its leaf
        // slots point at dummies already freed here, which is fine — the
        // directory never dereferences or frees leaf values).
        let mut cur = self.head as *mut u8;
        while !cur.is_null() {
            // SAFETY: &mut self; each node freed exactly once (next read
            // before the node is freed).
            unsafe {
                let node = untagged(cur).cast::<SoNode>();
                let next = (*node).next.load(Ordering::Relaxed);
                (self.drop_node)(node.cast());
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ts_smr::{EpochScheme, HazardPointers, Leaky};

    #[test]
    fn split_order_keys_sort_dummies_before_their_items() {
        // A bucket's dummy must precede every regular key hashing there.
        for key in [0u64, 1, 7, 42, 1 << 40, u64::MAX] {
            let h = hash64(key);
            let bucket = (h as usize) & (crate::growable_dir::SEG_LEN - 1);
            assert!(
                so_dummy_key(bucket) < so_regular_key(h),
                "dummy({bucket}) must sort before item {key}"
            );
        }
    }

    #[test]
    fn child_dummy_sorts_after_parent_dummy() {
        for bucket in [1usize, 2, 3, 200, 255, 256, 1000] {
            let parent = SplitOrderedSet::<Leaky>::parent(bucket);
            assert!(
                so_dummy_key(parent) < so_dummy_key(bucket),
                "parent({bucket}) = {parent} must sort first"
            );
        }
    }

    #[test]
    fn parent_clears_highest_bit() {
        assert_eq!(SplitOrderedSet::<Leaky>::parent(1), 0);
        assert_eq!(SplitOrderedSet::<Leaky>::parent(5), 1);
        assert_eq!(SplitOrderedSet::<Leaky>::parent(256), 0);
        assert_eq!(SplitOrderedSet::<Leaky>::parent(257), 1);
        assert_eq!(SplitOrderedSet::<Leaky>::parent(0b1100), 0b0100);
    }

    #[test]
    fn load_factor_knob_controls_split_frequency() {
        // Same key stream, two thresholds: the eager table must end with
        // strictly more buckets than the lazy one, and both keep the keys.
        let scheme = Leaky::new();
        let h = scheme.register();
        let eager = SplitOrderedSet::<Leaky>::with_buckets(2).with_load_factor(1);
        let lazy = SplitOrderedSet::<Leaky>::with_buckets(2).with_load_factor(16);
        assert_eq!(eager.load_factor(), 1);
        assert_eq!(lazy.load_factor(), 16);
        for k in 0..512u64 {
            assert!(eager.insert(&h, k));
            assert!(lazy.insert(&h, k));
        }
        assert!(
            eager.bucket_count() > lazy.bucket_count(),
            "load factor 1 ({} buckets) must split more than 16 ({} buckets)",
            eager.bucket_count(),
            lazy.bucket_count()
        );
        for k in 0..512u64 {
            assert!(eager.contains(&h, k) && lazy.contains(&h, k), "key {k}");
        }
    }

    #[test]
    fn default_load_factor_matches_documented_value() {
        let set = SplitOrderedSet::<Leaky>::new();
        assert_eq!(set.load_factor(), DEFAULT_LOAD_FACTOR);
        assert_eq!(DEFAULT_LOAD_FACTOR, 4);
    }

    #[test]
    fn bucket_count_surfaces_through_the_set_trait() {
        let scheme = Leaky::new();
        let h = scheme.register();
        let set = SplitOrderedSet::<Leaky>::with_buckets(4);
        let as_set: &dyn ConcurrentSet<Leaky> = &set;
        assert_eq!(as_set.bucket_count(), Some(4));
        for k in 0..256u64 {
            set.insert(&h, k);
        }
        assert_eq!(as_set.bucket_count(), Some(set.bucket_count()));
        assert!(as_set.bucket_count().unwrap() > 4);
    }

    macro_rules! so_semantics {
        ($modname:ident, $ty:ty, $scheme:expr) => {
            mod $modname {
                use super::*;

                #[test]
                fn roundtrip() {
                    let scheme = $scheme;
                    let set = SplitOrderedSet::<$ty>::new();
                    let h = scheme.register();
                    assert!(!set.contains(&h, 10));
                    assert!(set.insert(&h, 10));
                    assert!(!set.insert(&h, 10));
                    assert!(set.contains(&h, 10));
                    assert!(set.remove(&h, 10));
                    assert!(!set.remove(&h, 10));
                    assert!(!set.contains(&h, 10));
                }

                #[test]
                fn many_keys_roundtrip() {
                    let scheme = $scheme;
                    let set = SplitOrderedSet::<$ty>::with_buckets(4);
                    let h = scheme.register();
                    for k in 0..500u64 {
                        assert!(set.insert(&h, k * 7));
                    }
                    assert_eq!(set.len_estimate(), 500);
                    for k in 0..500u64 {
                        assert!(set.contains(&h, k * 7), "key {}", k * 7);
                        assert!(!set.contains(&h, k * 7 + 1));
                    }
                    for k in 0..500u64 {
                        assert!(set.remove(&h, k * 7));
                    }
                    assert_eq!(set.len_estimate(), 0);
                    assert!(set.keys_sequential().is_empty());
                }
            }
        };
    }

    so_semantics!(leaky_semantics, Leaky, Leaky::new());
    so_semantics!(epoch_semantics, EpochScheme, EpochScheme::with_threshold(8));
    so_semantics!(
        hazard_semantics,
        HazardPointers,
        HazardPointers::with_params(3, 8)
    );

    #[test]
    fn table_splits_under_load() {
        let scheme = Leaky::new();
        let set = SplitOrderedSet::<Leaky>::with_buckets(2);
        let h = scheme.register();
        assert_eq!(set.bucket_count(), 2);
        for k in 0..256u64 {
            set.insert(&h, k);
        }
        assert!(
            set.bucket_count() > 2,
            "bucket count must double under load, still {}",
            set.bucket_count()
        );
        for k in 0..256u64 {
            assert!(set.contains(&h, k), "key {k} lost across splits");
        }
    }

    #[test]
    fn keys_survive_splits_triggered_by_other_threads() {
        let scheme = Arc::new(EpochScheme::with_threshold(64));
        let set = Arc::new(SplitOrderedSet::<EpochScheme>::with_buckets(2));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let scheme = Arc::clone(&scheme);
                let set = Arc::clone(&set);
                s.spawn(move || {
                    let h = scheme.register();
                    let base = t * 100_000;
                    for i in 0..400u64 {
                        assert!(set.insert(&h, base + i));
                    }
                    for i in (0..400u64).step_by(4) {
                        assert!(set.remove(&h, base + i));
                    }
                    for i in 0..400u64 {
                        assert_eq!(set.contains(&h, base + i), i % 4 != 0);
                    }
                });
            }
        });
        assert_eq!(set.len_estimate(), 4 * 300);
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn readers_race_removals_under_hazard_pointers() {
        let scheme = Arc::new(HazardPointers::with_params(3, 32));
        let set = Arc::new(SplitOrderedSet::<HazardPointers>::with_buckets(4));
        {
            let h = scheme.register();
            for k in 0..256u64 {
                set.insert(&h, k);
            }
        }
        std::thread::scope(|s| {
            for _ in 0..3 {
                let scheme = Arc::clone(&scheme);
                let set = Arc::clone(&set);
                s.spawn(move || {
                    let h = scheme.register();
                    for _ in 0..30 {
                        for k in 0..256u64 {
                            let _ = set.contains(&h, k);
                        }
                    }
                });
            }
            let scheme2 = Arc::clone(&scheme);
            let set2 = Arc::clone(&set);
            s.spawn(move || {
                let h = scheme2.register();
                for k in 0..256u64 {
                    assert!(set2.remove(&h, k));
                }
            });
        });
        assert!(set.keys_sequential().is_empty());
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn drop_frees_dummies_segments_and_items() {
        let scheme = Leaky::new();
        let set = SplitOrderedSet::<Leaky>::with_buckets(2);
        let h = scheme.register();
        for k in 0..2_000u64 {
            set.insert(&h, k);
        }
        drop(set); // leak/double-free asserted by sanitizer runs
    }
}
