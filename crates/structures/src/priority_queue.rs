//! Skiplist-based concurrent priority queue (Shavit–Lotan).
//!
//! The paper's introduction names priority queues among the structures
//! built on unsynchronized traversals (its citations [3, 43]); this module
//! implements the classic Shavit–Lotan design: a lazy skip list ordered by
//! priority, where `delete_min` first *logically* deletes the smallest
//! unclaimed node by atomically claiming it, and only then removes it
//! physically. Between the claim and the unlink the node is still walked
//! over by concurrent traversals — which is precisely the
//! invisible-reader pattern that makes reclamation interesting:
//!
//! * [`PriorityQueue::delete_min`] traverses the bottom level with no
//!   locks until its claim CAS, so a node it inspects may be concurrently
//!   claimed, unlinked, and retired by another consumer.
//! * The physical unlink retires the node through the [`Smr`] scheme;
//!   under ThreadScan nothing else is required, under hazard pointers the
//!   traversal's `load_protected` calls pay the per-step fence.
//!
//! Priorities are distinct `u64`s while resident (a second insert of a
//! live priority fails), matching the integer-set semantics of the other
//! evaluation structures.
//!
//! # The sentinel head
//!
//! Predecessors are locked before relinking, and the head is a **real
//! sentinel node with a real lock** — not a bare array of head pointers.
//! With lock-free head entries, two critical sections whose pred is the
//! head (a `delete_min` splicing the first node out and an `insert` at
//! the front) both validate `head.next == X` and then both store,
//! un-serialized — a check-then-act race that resurrects the spliced-out
//! node. A priority queue concentrates *all* its traffic at the head, so
//! unlike a uniform-keyed set, this race fires in milliseconds. The
//! sentinel participates in the same lock protocol as every other node
//! and is never marked, claimed, or removed.

use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};
use std::cell::Cell;
use std::marker::PhantomData;

use ts_smr::{DropFn, Guard, Smr, SmrHandle};

use crate::node_alloc::NodeAlloc;

/// Maximum tower height; same fan-out rationale as the set skip list.
pub const PQ_MAX_HEIGHT: usize = 12;

/// Hazard slots one priority-queue operation may hold simultaneously: a
/// pred/succ pair per level plus two roving slots for bottom-level walks.
pub const PQ_REQUIRED_SLOTS: usize = 2 * PQ_MAX_HEIGHT + 2;

#[repr(C)]
struct PqNode {
    /// Tower of next pointers; first field so interior pointers resolve to
    /// the node itself under the collector's range matching.
    next: [AtomicPtr<u8>; PQ_MAX_HEIGHT],
    key: u64,
    top_level: usize,
    lock: AtomicBool,
    /// Physical-removal mark: set (under the node lock) by the thread that
    /// unlinks the node. Traversals treat a marked pred as a broken
    /// protection chain and restart.
    marked: AtomicBool,
    /// Logical-deletion flag for `delete_min`: won by exactly one consumer
    /// via CAS. A claimed-but-unmarked node is no longer part of the
    /// queue's value but still physically present.
    claimed: AtomicBool,
    fully_linked: AtomicBool,
    /// Debug tombstone: set after the full physical unlink so debug builds
    /// can assert that no thread ever re-links a removed node.
    unlinked: AtomicBool,
}

impl PqNode {
    fn new(key: u64, top_level: usize) -> Self {
        Self {
            next: [(); PQ_MAX_HEIGHT].map(|_| AtomicPtr::new(std::ptr::null_mut())),
            key,
            top_level,
            lock: AtomicBool::new(false),
            marked: AtomicBool::new(false),
            claimed: AtomicBool::new(false),
            fully_linked: AtomicBool::new(false),
            unlinked: AtomicBool::new(false),
        }
    }

    fn lock(&self) {
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
    }

    fn unlock(&self) {
        self.lock.store(false, Ordering::Release);
    }
}

/// Debug-build tripwire: panics if a retry loop spins absurdly long,
/// turning silent livelocks into diagnosable failures.
#[inline]
fn watchdog(counter: &mut u64, what: &str) {
    *counter += 1;
    if cfg!(debug_assertions) && *counter > 200_000_000 {
        panic!("priority queue live-lock suspected in {what}");
    }
}

/// Shavit–Lotan priority queue: smallest-priority-first `delete_min`,
/// lock-free logical deletion, lazy physical removal, reclamation via `S`.
pub struct PriorityQueue<S: Smr> {
    /// Sentinel head (see module docs): locked like any node, never
    /// marked/claimed/removed; its key is never compared. Always
    /// `Box`-allocated (it frees with the queue, never through a retire).
    head: Box<PqNode>,
    /// Where tower nodes come from (global heap by default, or a pool).
    alloc: NodeAlloc,
    /// The matching stateless deallocator, passed to every retire.
    drop_node: DropFn,
    _scheme: PhantomData<fn(&S)>,
}

// SAFETY: shared state is atomics; node lifetime is managed through `S`.
unsafe impl<S: Smr> Send for PriorityQueue<S> {}
unsafe impl<S: Smr> Sync for PriorityQueue<S> {}

thread_local! {
    static PQ_HEIGHT_RNG: Cell<u64> = const { Cell::new(0xA076_1D64_78BD_642F) };
}

/// Geometric(1/2) tower height in `0..PQ_MAX_HEIGHT` (see the set
/// skip list's `random_top_level` for the construction).
fn random_top_level() -> usize {
    PQ_HEIGHT_RNG.with(|state| {
        let mut x = state.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.set(x);
        let mixed = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        ((mixed.trailing_ones() as usize) % PQ_MAX_HEIGHT).min(PQ_MAX_HEIGHT - 1)
    })
}

impl<S: Smr> PriorityQueue<S> {
    /// An empty queue allocating nodes from the global heap.
    pub fn new() -> Self {
        Self::with_alloc(NodeAlloc::Global)
    }

    /// An empty queue allocating tower nodes through `alloc`.
    pub fn with_alloc(alloc: NodeAlloc) -> Self {
        Self {
            head: Box::new(PqNode::new(0, PQ_MAX_HEIGHT - 1)),
            drop_node: alloc.drop_fn::<PqNode>(),
            alloc,
            _scheme: PhantomData,
        }
    }

    /// The sentinel as a node pointer (for pred arrays).
    #[inline]
    fn sentinel(&self) -> *mut PqNode {
        &*self.head as *const PqNode as *mut PqNode
    }

    /// Whether a (protected) pred has been physically marked — the
    /// traversal's protection chain is broken and it must restart. The
    /// sentinel is never marked.
    #[inline]
    fn pred_died(pred: *mut PqNode) -> bool {
        // SAFETY: pred is the sentinel or protected by the caller.
        unsafe { (*pred).marked.load(Ordering::Acquire) }
    }

    /// Full find (identical protocol to the set skip list): fills
    /// `preds`/`succs` per level, returns the first level where `key` was
    /// found. Each level owns the hazard-slot pair `{2l, 2l+1}`; advancing
    /// swaps slot roles so the node whose field is being read is always
    /// protected. Preds start at the (immortal) sentinel.
    fn find(
        &self,
        g: &Guard<'_, S::Handle>,
        key: u64,
        preds: &mut [*mut PqNode; PQ_MAX_HEIGHT],
        succs: &mut [*mut PqNode; PQ_MAX_HEIGHT],
    ) -> Option<usize> {
        let mut spins = 0u64;
        'retry: loop {
            watchdog(&mut spins, "find");
            let mut lfound = None;
            let mut pred: *mut PqNode = self.sentinel();
            for level in (0..PQ_MAX_HEIGHT).rev() {
                let mut pred_slot = 2 * level;
                let mut curr_slot = 2 * level + 1;
                // SAFETY: pred is the sentinel or protected
                // (higher-level slot).
                let mut pred_field: &AtomicPtr<u8> = unsafe { &(*pred).next[level] };
                let mut curr = g.load(curr_slot, pred_field) as *mut PqNode;
                if Self::pred_died(pred) {
                    continue 'retry;
                }
                loop {
                    if curr.is_null() {
                        break;
                    }
                    // SAFETY: curr protected in curr_slot.
                    let curr_node = unsafe { &*curr };
                    if curr_node.key >= key {
                        break;
                    }
                    pred = curr;
                    std::mem::swap(&mut pred_slot, &mut curr_slot);
                    // SAFETY: pred protected in pred_slot.
                    pred_field = unsafe { &(*pred).next[level] };
                    curr = g.load(curr_slot, pred_field) as *mut PqNode;
                    if Self::pred_died(pred) {
                        continue 'retry;
                    }
                }
                preds[level] = pred;
                succs[level] = curr;
                if lfound.is_none() && !curr.is_null() {
                    // SAFETY: protected.
                    if unsafe { (*curr).key } == key {
                        lfound = Some(level);
                    }
                }
            }
            return lfound;
        }
    }

    /// Unlocks `preds[0..=locked_levels]`, skipping duplicates (a pred —
    /// including the sentinel — may repeat across levels under one lock).
    fn unlock_preds(preds: &[*mut PqNode; PQ_MAX_HEIGHT], locked_levels: usize) {
        let mut prev: *mut PqNode = std::ptr::null_mut();
        for &p in preds.iter().take(locked_levels + 1) {
            if p != prev {
                // SAFETY: locked by us; locked nodes are never retired by
                // others.
                unsafe { (*p).unlock() };
                prev = p;
            }
        }
    }

    /// Locks and validates `preds[0..=top]` against `expect_succ`. The
    /// sentinel locks like any node (see module docs — this is what makes
    /// head-pred critical sections mutually exclusive). On `false` the
    /// caller must `unlock_preds` up to the returned level.
    fn lock_and_validate(
        &self,
        preds: &[*mut PqNode; PQ_MAX_HEIGHT],
        top: usize,
        expect_succ: impl Fn(usize) -> *mut PqNode,
    ) -> (bool, usize) {
        let mut prev: *mut PqNode = std::ptr::null_mut();
        let mut locked_up_to = 0usize;
        let mut valid = true;
        for (level, &pred) in preds.iter().enumerate().take(top + 1) {
            if pred != prev {
                // SAFETY: pred is the sentinel or protected from find.
                unsafe { (*pred).lock() };
                prev = pred;
            }
            locked_up_to = level;
            // SAFETY: locked above. The sentinel is never marked.
            let pred_node = unsafe { &*pred };
            let pred_ok = !pred_node.marked.load(Ordering::Acquire);
            let link_ok =
                pred_node.next[level].load(Ordering::Acquire) as *mut PqNode == expect_succ(level);
            valid = pred_ok && link_ok;
            if !valid {
                break;
            }
        }
        (valid, locked_up_to)
    }

    /// Inserts priority `key`; `false` if a node with that priority is
    /// still resident (claimed-but-unremoved counts as resident).
    pub fn insert(&self, h: &S::Handle, key: u64) -> bool {
        let g = h.pin();
        debug_assert!(g.protection_slots().is_none_or(|n| n >= PQ_REQUIRED_SLOTS));
        let top = random_top_level();
        let mut preds = [std::ptr::null_mut(); PQ_MAX_HEIGHT];
        let mut succs = [std::ptr::null_mut(); PQ_MAX_HEIGHT];
        let mut spins = 0u64;
        'retry: loop {
            watchdog(&mut spins, "insert");
            if let Some(lfound) = self.find(&g, key, &mut preds, &mut succs) {
                let found = succs[lfound];
                // SAFETY: protected by find.
                let found_node = unsafe { &*found };
                if !found_node.marked.load(Ordering::Acquire) {
                    let mut fl_spins = 0u64;
                    while !found_node.fully_linked.load(Ordering::Acquire) {
                        watchdog(&mut fl_spins, "insert fully_linked wait");
                        std::hint::spin_loop();
                    }
                    break 'retry false;
                }
                continue 'retry; // removal in flight; retry
            }
            let (valid, locked) = self.lock_and_validate(&preds, top, |l| succs[l]);
            if !valid {
                Self::unlock_preds(&preds, locked);
                continue 'retry;
            }
            let node = self.alloc.alloc(PqNode::new(key, top));
            // SAFETY: node is private until linked below.
            let node_ref = unsafe { &*node };
            for (level, &succ) in succs.iter().enumerate().take(top + 1) {
                debug_assert!(
                    // SAFETY: succ validated reachable under the pred lock.
                    succ.is_null() || !unsafe { (*succ).unlinked.load(Ordering::Acquire) },
                    "insert adopting a fully-unlinked succ"
                );
                node_ref.next[level].store(succ as *mut u8, Ordering::Relaxed);
            }
            for (level, &pred) in preds.iter().enumerate().take(top + 1) {
                // SAFETY: locked + validated.
                unsafe { &(*pred).next[level] }.store(node as *mut u8, Ordering::Release);
            }
            node_ref.fully_linked.store(true, Ordering::Release);
            Self::unlock_preds(&preds, locked);
            break 'retry true;
        }
    }

    /// Removes and returns the smallest priority, or `None` when the queue
    /// is (momentarily) empty.
    ///
    /// Logical deletion is the claim CAS on the first eligible bottom-level
    /// node; physical removal then proceeds exactly like a set remove, and
    /// the unlinked node is retired through the scheme.
    pub fn delete_min(&self, h: &S::Handle) -> Option<u64> {
        let g = h.pin();
        debug_assert!(g.protection_slots().is_none_or(|n| n >= PQ_REQUIRED_SLOTS));
        let mut spins = 0u64;
        let claimed = 'retry: loop {
            watchdog(&mut spins, "delete_min");
            // Bottom-level walk with two roving slots (same protocol as
            // the set skip list's `contains`).
            let mut pred_slot = 2 * PQ_MAX_HEIGHT;
            let mut curr_slot = 2 * PQ_MAX_HEIGHT + 1;
            let mut pred: *mut PqNode = self.sentinel();
            // SAFETY: the sentinel is immortal.
            let mut curr = g.load(curr_slot, unsafe { &(*pred).next[0] }) as *mut PqNode;
            loop {
                if curr.is_null() {
                    break 'retry None;
                }
                // SAFETY: curr protected in curr_slot.
                let node = unsafe { &*curr };
                if node.fully_linked.load(Ordering::Acquire)
                    && !node.marked.load(Ordering::Acquire)
                    && !node.claimed.load(Ordering::Acquire)
                    && node
                        .claimed
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    break 'retry Some((curr, node.key));
                }
                // Already claimed / not yet linked / being removed: step
                // over it (the claimer will unlink it).
                pred = curr;
                std::mem::swap(&mut pred_slot, &mut curr_slot);
                // SAFETY: pred protected in pred_slot.
                let pred_field = unsafe { &(*pred).next[0] };
                curr = g.load(curr_slot, pred_field) as *mut PqNode;
                if Self::pred_died(pred) {
                    continue 'retry;
                }
            }
        };
        claimed.map(|(victim, key)| {
            self.remove_physically(&g, victim, key);
            key
        })
    }

    /// The smallest resident (unclaimed) priority, if any. Wait-free,
    /// write-free bottom-level walk — an invisible reader.
    pub fn peek_min(&self, h: &S::Handle) -> Option<u64> {
        let g = h.pin();
        let mut spins = 0u64;
        'retry: loop {
            watchdog(&mut spins, "peek_min");
            let mut pred_slot = 2 * PQ_MAX_HEIGHT;
            let mut curr_slot = 2 * PQ_MAX_HEIGHT + 1;
            let mut pred: *mut PqNode = self.sentinel();
            // SAFETY: the sentinel is immortal.
            let mut curr = g.load(curr_slot, unsafe { &(*pred).next[0] }) as *mut PqNode;
            loop {
                if curr.is_null() {
                    break 'retry None;
                }
                // SAFETY: curr protected in curr_slot.
                let node = unsafe { &*curr };
                if node.fully_linked.load(Ordering::Acquire)
                    && !node.marked.load(Ordering::Acquire)
                    && !node.claimed.load(Ordering::Acquire)
                {
                    break 'retry Some(node.key);
                }
                pred = curr;
                std::mem::swap(&mut pred_slot, &mut curr_slot);
                // SAFETY: pred protected in pred_slot.
                let pred_field = unsafe { &(*pred).next[0] };
                curr = g.load(curr_slot, pred_field) as *mut PqNode;
                if Self::pred_died(pred) {
                    continue 'retry;
                }
            }
        }
    }

    /// Physically removes a node this thread claimed: mark (under the node
    /// lock), unlink every level, retire. Claim ownership makes this the
    /// unique remover, so raw access to `victim` stays sound across
    /// retries.
    fn remove_physically(&self, g: &Guard<'_, S::Handle>, victim: *mut PqNode, key: u64) {
        // SAFETY: we hold the claim; only the claimer marks and retires.
        let victim_node = unsafe { &*victim };
        let top = victim_node.top_level;
        victim_node.lock();
        victim_node.marked.store(true, Ordering::Release);
        let mut preds = [std::ptr::null_mut(); PQ_MAX_HEIGHT];
        let mut succs = [std::ptr::null_mut(); PQ_MAX_HEIGHT];
        let mut spins = 0u64;
        loop {
            watchdog(&mut spins, "remove_physically");
            let lfound = self.find(g, key, &mut preds, &mut succs);
            // We are the only unlinker, so the victim stays findable until
            // we unlink it.
            debug_assert!(
                lfound.is_some() && succs[lfound.unwrap()] == victim,
                "claimed node must stay findable until its owner unlinks it"
            );
            let (valid, locked) = self.lock_and_validate(&preds, top, |_| victim);
            if !valid {
                Self::unlock_preds(&preds, locked);
                continue;
            }
            for level in (0..=top).rev() {
                let succ = victim_node.next[level].load(Ordering::Acquire);
                debug_assert!(
                    // SAFETY: next chain is frozen while we hold the lock.
                    succ.is_null()
                        || !unsafe { (*(succ as *mut PqNode)).unlinked.load(Ordering::Acquire) },
                    "unlink splicing a fully-unlinked succ"
                );
                // SAFETY: preds locked + validated.
                unsafe { &(*preds[level]).next[level] }.store(succ, Ordering::Release);
            }
            victim_node.unlinked.store(true, Ordering::Release);
            victim_node.unlock();
            Self::unlock_preds(&preds, locked);
            // SAFETY: unlinked from every level; claim ownership makes
            // this the unique retire.
            unsafe {
                g.retire(
                    victim as usize,
                    core::mem::size_of::<PqNode>(),
                    self.drop_node,
                )
            };
            return;
        }
    }

    /// Sequential dump of resident (unclaimed, unmarked) priorities in
    /// ascending order (tests only).
    pub fn keys_sequential(&self) -> Vec<u64> {
        let mut keys = Vec::new();
        let mut cur = self.head.next[0].load(Ordering::Acquire) as *const PqNode;
        while !cur.is_null() {
            let node = unsafe { &*cur };
            if !node.marked.load(Ordering::Acquire) && !node.claimed.load(Ordering::Acquire) {
                keys.push(node.key);
            }
            cur = node.next[0].load(Ordering::Acquire) as *const PqNode;
        }
        keys
    }

    /// Sequential count of resident priorities (tests only).
    pub fn len_sequential(&self) -> usize {
        self.keys_sequential().len()
    }
}

impl<S: Smr> Default for PriorityQueue<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Smr> Drop for PriorityQueue<S> {
    fn drop(&mut self) {
        // Exclusive access: the bottom level links every remaining node
        // exactly once; the sentinel frees with the Box.
        let mut cur = self.head.next[0].load(Ordering::Relaxed);
        while !cur.is_null() {
            // SAFETY: &mut self; next read before the node is freed.
            unsafe {
                let next = (*cur.cast::<PqNode>()).next[0].load(Ordering::Relaxed);
                (self.drop_node)(cur);
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ts_smr::{EpochScheme, HazardPointers, Leaky};

    #[test]
    fn node_layout_keeps_tower_first() {
        assert_eq!(core::mem::offset_of!(PqNode, next), 0);
        assert_eq!(PQ_REQUIRED_SLOTS, 26);
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let scheme = Leaky::new();
        let pq = PriorityQueue::<Leaky>::new();
        let h = scheme.register();
        assert_eq!(pq.delete_min(&h), None);
        assert_eq!(pq.peek_min(&h), None);
        assert_eq!(pq.len_sequential(), 0);
    }

    macro_rules! pq_semantics {
        ($modname:ident, $ty:ty, $scheme:expr) => {
            mod $modname {
                use super::*;

                #[test]
                fn drains_in_priority_order() {
                    let scheme = $scheme;
                    let pq = PriorityQueue::<$ty>::new();
                    let h = scheme.register();
                    let keys = [44u64, 2, 99, 17, 8, 63, 30, 5, 71];
                    for &k in &keys {
                        assert!(pq.insert(&h, k));
                    }
                    let mut want = keys.to_vec();
                    want.sort_unstable();
                    assert_eq!(pq.peek_min(&h), Some(want[0]));
                    let mut got = Vec::new();
                    while let Some(k) = pq.delete_min(&h) {
                        got.push(k);
                    }
                    assert_eq!(got, want);
                    assert_eq!(pq.len_sequential(), 0);
                }

                #[test]
                fn duplicate_priority_rejected_until_removed() {
                    let scheme = $scheme;
                    let pq = PriorityQueue::<$ty>::new();
                    let h = scheme.register();
                    assert!(pq.insert(&h, 7));
                    assert!(!pq.insert(&h, 7));
                    assert_eq!(pq.delete_min(&h), Some(7));
                    assert!(pq.insert(&h, 7), "priority reusable after removal");
                }
            }
        };
    }

    pq_semantics!(leaky_semantics, Leaky, Leaky::new());
    pq_semantics!(epoch_semantics, EpochScheme, EpochScheme::with_threshold(8));
    pq_semantics!(
        hazard_semantics,
        HazardPointers,
        HazardPointers::with_params(PQ_REQUIRED_SLOTS, 8)
    );

    #[test]
    fn peek_skips_claimed_nodes() {
        // Claim the minimum by hand (simulating a mid-delete_min consumer)
        // and check peek/delete_min step over it.
        let scheme = Leaky::new();
        let pq = PriorityQueue::<Leaky>::new();
        let h = scheme.register();
        for k in [10u64, 20, 30] {
            pq.insert(&h, k);
        }
        let first = pq.head.next[0].load(Ordering::Acquire) as *const PqNode;
        unsafe { (*first).claimed.store(true, Ordering::Release) };
        assert_eq!(pq.peek_min(&h), Some(20));
        assert_eq!(pq.delete_min(&h), Some(20));
        assert_eq!(pq.keys_sequential(), vec![30]);
    }

    /// The regression behind the sentinel-head design: concurrent front
    /// inserts racing `delete_min` must neither resurrect spliced-out
    /// nodes nor lose fresh ones. (With lock-free head entries this
    /// live-locked within milliseconds.)
    #[test]
    fn front_inserts_race_delete_min_without_resurrection() {
        let scheme = Arc::new(Leaky::new());
        let pq = Arc::new(PriorityQueue::<Leaky>::new());
        let produced = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let consumed = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let scheme = Arc::clone(&scheme);
                let pq = Arc::clone(&pq);
                let produced = Arc::clone(&produced);
                let consumed = Arc::clone(&consumed);
                s.spawn(move || {
                    let h = scheme.register();
                    let mut seed = 0x1234_5678u64 ^ (t + 1);
                    for _ in 0..20_000 {
                        seed = seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        if seed & 1 == 0 {
                            if pq.insert(&h, seed >> 1) {
                                produced.fetch_add(1, Ordering::Relaxed);
                            }
                        } else if pq.delete_min(&h).is_some() {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let p = produced.load(Ordering::Relaxed);
        let c = consumed.load(Ordering::Relaxed);
        assert_eq!(
            p - c,
            pq.len_sequential() as u64,
            "inserted minus drained must equal resident"
        );
    }

    #[test]
    fn concurrent_producers_and_consumers_drain_exactly_once() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 500;
        let scheme = Arc::new(EpochScheme::with_threshold(64));
        let pq = Arc::new(PriorityQueue::<EpochScheme>::new());
        let drained = Arc::new(parking_lot::Mutex::new(Vec::<u64>::new()));
        std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let scheme = Arc::clone(&scheme);
                let pq = Arc::clone(&pq);
                s.spawn(move || {
                    let h = scheme.register();
                    for i in 0..PER_PRODUCER {
                        assert!(pq.insert(&h, t * 1_000_000 + i));
                    }
                });
            }
            for _ in 0..3 {
                let scheme = Arc::clone(&scheme);
                let pq = Arc::clone(&pq);
                let drained = Arc::clone(&drained);
                s.spawn(move || {
                    let h = scheme.register();
                    let mut local = Vec::new();
                    let mut dry = 0;
                    while dry < 200 {
                        match pq.delete_min(&h) {
                            Some(k) => {
                                local.push(k);
                                dry = 0;
                            }
                            None => {
                                dry += 1;
                                std::thread::yield_now();
                            }
                        }
                    }
                    drained.lock().extend(local);
                });
            }
        });
        // Leftovers (consumers may give up before producers finish on a
        // 1-CPU box) plus drained items must equal the inserted set.
        let mut all = drained.lock().clone();
        all.extend(pq.keys_sequential());
        all.sort_unstable();
        let mut want: Vec<u64> = (0..PRODUCERS)
            .flat_map(|t| (0..PER_PRODUCER).map(move |i| t * 1_000_000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(all, want, "every priority drained or resident exactly once");
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn consumers_race_under_hazard_pointers() {
        let scheme = Arc::new(HazardPointers::with_params(PQ_REQUIRED_SLOTS, 32));
        let pq = Arc::new(PriorityQueue::<HazardPointers>::new());
        {
            let h = scheme.register();
            for k in 0..512u64 {
                pq.insert(&h, k);
            }
        }
        let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let scheme = Arc::clone(&scheme);
                let pq = Arc::clone(&pq);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    let h = scheme.register();
                    let mut count = 0u64;
                    while pq.delete_min(&h).is_some() {
                        count += 1;
                    }
                    total.fetch_add(count, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 512);
        assert_eq!(pq.len_sequential(), 0);
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn per_consumer_sequence_is_monotonic_when_alone() {
        // A single consumer with no concurrent inserts must observe a
        // strictly increasing sequence.
        let scheme = EpochScheme::with_threshold(16);
        let pq = PriorityQueue::<EpochScheme>::new();
        let h = scheme.register();
        for k in (0..256u64).rev() {
            pq.insert(&h, k);
        }
        let mut last = None;
        while let Some(k) = pq.delete_min(&h) {
            if let Some(prev) = last {
                assert!(k > prev, "delete_min went backwards: {prev} then {k}");
            }
            last = Some(k);
        }
        assert_eq!(last, Some(255));
    }
}
