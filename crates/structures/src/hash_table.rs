//! Lock-free hash table — the paper's second evaluation structure.
//!
//! §6: "The Synchrobench suite provided a hash table that used its own
//! lock-free linked list for its buckets. This implementation was replaced
//! with the \[25\] list." — i.e. a fixed array of buckets, each a Harris
//! lock-free list. The paper sizes it for an expected bucket length of 32
//! (131,072 nodes over a 262,144-key range).

use ts_smr::Smr;

use crate::harris_list::HarrisList;
use crate::node_alloc::NodeAlloc;
use crate::set_trait::ConcurrentSet;

/// Fixed-capacity lock-free hash set: `buckets` Harris lists.
pub struct LockFreeHashTable<S: Smr> {
    buckets: Box<[HarrisList<S>]>,
    mask: u64,
}

impl<S: Smr> LockFreeHashTable<S> {
    /// A table with `buckets` buckets (rounded up to a power of two).
    pub fn new(buckets: usize) -> Self {
        Self::with_alloc(buckets, NodeAlloc::Global)
    }

    /// [`Self::new`], with every bucket list allocating its nodes through
    /// `alloc` (one shared pool for the whole table, not one per bucket).
    pub fn with_alloc(buckets: usize, alloc: NodeAlloc) -> Self {
        let n = buckets.next_power_of_two().max(1);
        Self {
            buckets: (0..n).map(|_| HarrisList::with_alloc(alloc)).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// The paper's Figure 3 sizing: expected bucket length 32 for a target
    /// of `expected_nodes` resident keys.
    pub fn for_expected_nodes(expected_nodes: usize) -> Self {
        Self::new((expected_nodes / 32).max(1))
    }

    /// [`Self::for_expected_nodes`] with a node allocator.
    pub fn for_expected_nodes_with_alloc(expected_nodes: usize, alloc: NodeAlloc) -> Self {
        Self::with_alloc((expected_nodes / 32).max(1), alloc)
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    #[inline]
    fn bucket(&self, key: u64) -> &HarrisList<S> {
        // Multiplicative (Fibonacci) hashing: keys in benchmarks are
        // near-uniform already, but cheap mixing keeps adversarial
        // stride patterns from clustering.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.buckets[(h & self.mask) as usize]
    }

    /// Sequential total of unmarked nodes (diagnostics/tests).
    pub fn len_sequential(&self) -> usize {
        self.buckets.iter().map(|b| b.len_sequential()).sum()
    }
}

impl<S: Smr> ConcurrentSet<S> for LockFreeHashTable<S> {
    fn contains(&self, handle: &S::Handle, key: u64) -> bool {
        self.bucket(key).contains(handle, key)
    }

    fn insert(&self, handle: &S::Handle, key: u64) -> bool {
        self.bucket(key).insert(handle, key)
    }

    fn remove(&self, handle: &S::Handle, key: u64) -> bool {
        self.bucket(key).remove(handle, key)
    }

    fn kind(&self) -> &'static str {
        "hash-table"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ts_smr::{EpochScheme, HazardPointers, Leaky, Smr};

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        assert_eq!(LockFreeHashTable::<Leaky>::new(1000).bucket_count(), 1024);
        assert_eq!(LockFreeHashTable::<Leaky>::new(1).bucket_count(), 1);
        assert_eq!(
            LockFreeHashTable::<Leaky>::for_expected_nodes(131_072).bucket_count(),
            4096,
            "paper sizing: 131072 nodes / 32 per bucket"
        );
    }

    #[test]
    fn basic_set_semantics() {
        let scheme = Leaky::new();
        let table = LockFreeHashTable::<Leaky>::new(16);
        let h = scheme.register();
        for k in 0..100u64 {
            assert!(table.insert(&h, k));
            assert!(!table.insert(&h, k));
        }
        assert_eq!(table.len_sequential(), 100);
        for k in 0..100u64 {
            assert!(table.contains(&h, k));
        }
        for k in (0..100u64).step_by(2) {
            assert!(table.remove(&h, k));
        }
        assert_eq!(table.len_sequential(), 50);
        for k in 0..100u64 {
            assert_eq!(table.contains(&h, k), k % 2 == 1);
        }
    }

    #[test]
    fn keys_distribute_across_buckets() {
        let scheme = Leaky::new();
        let table = LockFreeHashTable::<Leaky>::new(64);
        let h = scheme.register();
        for k in 0..6400u64 {
            table.insert(&h, k);
        }
        // With multiplicative hashing, no bucket should be pathological.
        let max_bucket = table
            .buckets
            .iter()
            .map(|b| b.len_sequential())
            .max()
            .unwrap();
        assert!(
            max_bucket < 400,
            "bucket of {max_bucket} for 6400 keys over 64 buckets"
        );
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let scheme = Arc::new(EpochScheme::with_threshold(64));
        let table = Arc::new(LockFreeHashTable::<EpochScheme>::new(32));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let scheme = Arc::clone(&scheme);
                let table = Arc::clone(&table);
                s.spawn(move || {
                    let h = scheme.register();
                    let base = t * 100_000;
                    for i in 0..500u64 {
                        assert!(table.insert(&h, base + i));
                    }
                    for i in 0..500u64 {
                        assert!(table.contains(&h, base + i));
                    }
                    for i in (0..500u64).step_by(2) {
                        assert!(table.remove(&h, base + i));
                    }
                });
            }
        });
        assert_eq!(table.len_sequential(), 8 * 250);
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }

    #[test]
    fn hazard_pointer_traffic_on_short_buckets() {
        // The paper's point: HP cost is low here because bucket traversals
        // are short. This just exercises correctness of that path.
        let scheme = Arc::new(HazardPointers::with_params(4, 16));
        let table = Arc::new(LockFreeHashTable::<HazardPointers>::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let scheme = Arc::clone(&scheme);
                let table = Arc::clone(&table);
                s.spawn(move || {
                    let h = scheme.register();
                    for i in 0..1000u64 {
                        let k = (t * 7919 + i * 104729) % 4096;
                        match i % 3 {
                            0 => drop(table.insert(&h, k)),
                            1 => drop(table.contains(&h, k)),
                            _ => drop(table.remove(&h, k)),
                        }
                    }
                });
            }
        });
        scheme.quiesce();
        assert_eq!(scheme.outstanding(), 0);
    }
}
