//! Lock-free growable segment-tree directory (Shalev–Shavit's
//! "unbounded" split-ordered table, after the `growable_array` design in
//! SNIPPETS.md §1–2).
//!
//! A directory is a radix tree of fixed-size segments whose **root
//! pointer carries the tree height in its low tag bits**. Height `h`
//! addresses `SEG_LEN^h` entries. Growing the directory never moves an
//! entry: a thread that needs an out-of-range index allocates a fresh
//! root segment, stores the *old* root as its child 0, and CAS-publishes
//! `(new_root, h + 1)`. Because the old tree is child 0 of the new one,
//! index `i < SEG_LEN^h` resolves to the same leaf slot through either
//! root — a reader holding a stale (shorter) root snapshot is never
//! invalidated, so there is no stop-the-world resize and no reader/grower
//! handshake beyond the single root CAS. The exhaustive-explorer scenario
//! `growable_directory_grow_vs_traverse` (crates/simthread/tests/
//! exhaustive.rs) checks that argument over every interleaving of a
//! 2-thread grow-vs-read program.
//!
//! Interior and leaf segments are allocated lazily under a CAS (the loser
//! frees its candidate) and are **immortal until the directory drops** —
//! that is what makes returning `&AtomicPtr<u8>` with the directory's
//! lifetime sound. Leaf slot *values* are owned by the caller (the
//! split-ordered table stores immortal dummy-node pointers); dropping the
//! directory frees the segment tree only.

use core::sync::atomic::{AtomicPtr, Ordering};

/// Log2 of the entries per segment.
pub const SEG_BITS: u32 = 8;
/// Entries per segment (every level of the radix tree).
pub const SEG_LEN: usize = 1 << SEG_BITS;
/// Low bits of the root pointer that hold the height; `Segment`'s
/// alignment keeps them clear in real addresses.
const TAG_BITS: u32 = 3;
const TAG_MASK: usize = (1 << TAG_BITS) - 1;
/// Largest representable height (the tag is 3 bits; 0 is unused).
pub const MAX_HEIGHT: u32 = (1 << TAG_BITS) - 1;
/// Entries addressable at `MAX_HEIGHT` (2^56 — effectively unbounded;
/// the address space runs out of nodes long before the directory does).
pub const MAX_CAPACITY: usize = 1 << (SEG_BITS * MAX_HEIGHT);

/// One radix-tree node: at interior levels the slots hold child-segment
/// pointers, at the leaf level they hold caller values.
#[repr(align(8))]
struct Segment {
    slots: [AtomicPtr<u8>; SEG_LEN],
}

impl Segment {
    fn alloc() -> *mut Segment {
        Box::into_raw(Box::new(Segment {
            slots: [(); SEG_LEN].map(|_| AtomicPtr::new(core::ptr::null_mut())),
        }))
    }
}

#[inline]
fn pack(seg: *mut Segment, height: u32) -> *mut u8 {
    debug_assert_eq!(seg as usize & TAG_MASK, 0, "segment misaligned for tag");
    debug_assert!((1..=MAX_HEIGHT).contains(&height));
    (seg as usize | height as usize) as *mut u8
}

#[inline]
fn unpack(tagged: *mut u8) -> (*mut Segment, u32) {
    (
        (tagged as usize & !TAG_MASK) as *mut Segment,
        (tagged as usize & TAG_MASK) as u32,
    )
}

/// The growable directory: an unbounded lock-free array of
/// `AtomicPtr<u8>` entries.
pub struct GrowableDirectory {
    /// Tagged root: segment address | height.
    root: AtomicPtr<u8>,
}

impl GrowableDirectory {
    /// An empty directory of height 1 (`SEG_LEN` entries, growing on
    /// demand).
    pub fn new() -> Self {
        Self {
            root: AtomicPtr::new(pack(Segment::alloc(), 1)),
        }
    }

    /// Current tree height (diagnostics / tests).
    pub fn height(&self) -> u32 {
        unpack(self.root.load(Ordering::Acquire)).1
    }

    /// Entries addressable without another grow.
    pub fn capacity(&self) -> usize {
        Self::capacity_for(self.height())
    }

    #[inline]
    fn capacity_for(height: u32) -> usize {
        1usize << (SEG_BITS * height)
    }

    /// Publishes a root one level taller than `(seen, height)`, with the
    /// old tree as child 0. Loser of the CAS frees its candidate; either
    /// way the root observed next covers strictly more entries.
    fn grow(&self, seen: *mut Segment, height: u32) {
        assert!(
            height < MAX_HEIGHT,
            "directory exceeds 2^{} entries",
            SEG_BITS * MAX_HEIGHT
        );
        let taller = Segment::alloc();
        // SAFETY: `taller` is private until the CAS publishes it.
        unsafe { (*taller).slots[0].store(seen as *mut u8, Ordering::Relaxed) };
        if self
            .root
            .compare_exchange(
                pack(seen, height),
                pack(taller, height + 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            // SAFETY: the candidate never escaped; its only child pointer
            // is the still-live old root, which must not be freed here.
            unsafe { drop(Box::from_raw(taller)) };
        }
    }

    /// The entry at `index`, growing the tree and allocating interior /
    /// leaf segments on demand. The returned reference stays valid for
    /// the directory's lifetime (segments are never freed before drop).
    ///
    /// # Panics
    ///
    /// If `index >= MAX_CAPACITY` (2^56).
    pub fn entry(&self, index: usize) -> &AtomicPtr<u8> {
        loop {
            let (mut seg, height) = unpack(self.root.load(Ordering::Acquire));
            if index >= Self::capacity_for(height) {
                self.grow(seg, height);
                continue;
            }
            // Descend interior levels; a stale root is fine — its subtree
            // still covers `index` (growth only adds ancestors).
            for level in (1..height).rev() {
                let child_at = (index >> (SEG_BITS * level)) & (SEG_LEN - 1);
                // SAFETY: segments are immortal until `self` drops.
                let slot = unsafe { &(*seg).slots[child_at] };
                let mut child = slot.load(Ordering::Acquire);
                if child.is_null() {
                    let fresh = Segment::alloc() as *mut u8;
                    match slot.compare_exchange(
                        core::ptr::null_mut(),
                        fresh,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => child = fresh,
                        Err(winner) => {
                            // SAFETY: the loser's candidate never escaped.
                            unsafe { drop(Box::from_raw(fresh as *mut Segment)) };
                            child = winner;
                        }
                    }
                }
                seg = child as *mut Segment;
            }
            // SAFETY: leaf segment reached above; immortal until drop.
            return unsafe { &(*seg).slots[index & (SEG_LEN - 1)] };
        }
    }
}

impl Default for GrowableDirectory {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for GrowableDirectory {
    fn drop(&mut self) {
        /// Frees the segment tree; leaf slot values belong to the caller.
        unsafe fn free_tree(seg: *mut Segment, height: u32) {
            if height > 1 {
                for slot in &(*seg).slots {
                    let child = slot.load(Ordering::Relaxed) as *mut Segment;
                    if !child.is_null() {
                        free_tree(child, height - 1);
                    }
                }
            }
            drop(Box::from_raw(seg));
        }
        let (root, height) = unpack(*self.root.get_mut());
        // SAFETY: exclusive access; every segment freed exactly once.
        unsafe { free_tree(root, height) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn val(x: usize) -> *mut u8 {
        // Sentinel non-null values; never dereferenced.
        (x * 8 + 8) as *mut u8
    }

    #[test]
    fn starts_at_height_one_and_grows_on_demand() {
        let dir = GrowableDirectory::new();
        assert_eq!(dir.height(), 1);
        assert_eq!(dir.capacity(), SEG_LEN);
        dir.entry(0).store(val(0), Ordering::Release);
        dir.entry(SEG_LEN - 1).store(val(1), Ordering::Release);
        assert_eq!(dir.height(), 1, "in-range access must not grow");
        dir.entry(SEG_LEN).store(val(2), Ordering::Release);
        assert_eq!(dir.height(), 2);
        assert_eq!(dir.capacity(), SEG_LEN * SEG_LEN);
        // Old entries resolve identically through the taller root.
        assert_eq!(dir.entry(0).load(Ordering::Acquire), val(0));
        assert_eq!(dir.entry(SEG_LEN - 1).load(Ordering::Acquire), val(1));
        assert_eq!(dir.entry(SEG_LEN).load(Ordering::Acquire), val(2));
    }

    #[test]
    fn far_index_grows_several_levels_at_once() {
        let dir = GrowableDirectory::new();
        dir.entry(7).store(val(7), Ordering::Release);
        let far = SEG_LEN * SEG_LEN * SEG_LEN + 123; // needs height 4
        dir.entry(far).store(val(9), Ordering::Release);
        assert_eq!(dir.height(), 4);
        assert_eq!(dir.entry(far).load(Ordering::Acquire), val(9));
        assert_eq!(dir.entry(7).load(Ordering::Acquire), val(7));
    }

    #[test]
    fn boundary_indices_resolve_to_distinct_slots() {
        let dir = GrowableDirectory::new();
        let probes = [
            0,
            1,
            SEG_LEN - 1,
            SEG_LEN,
            SEG_LEN + 1,
            2 * SEG_LEN,
            SEG_LEN * SEG_LEN - 1,
            SEG_LEN * SEG_LEN,
            (1 << 20) - 1,
            1 << 20,
            (1 << 20) + 1,
        ];
        for (i, &p) in probes.iter().enumerate() {
            dir.entry(p).store(val(i), Ordering::Release);
        }
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(dir.entry(p).load(Ordering::Acquire), val(i), "index {p}");
        }
    }

    #[test]
    fn concurrent_growers_and_writers_lose_nothing() {
        let dir = Arc::new(GrowableDirectory::new());
        const PER_THREAD: usize = 512;
        std::thread::scope(|s| {
            for t in 0..4usize {
                let dir = Arc::clone(&dir);
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Stride across segment boundaries per thread.
                        let index = t * (SEG_LEN * SEG_LEN) + i * 3;
                        dir.entry(index).store(val(index), Ordering::Release);
                    }
                });
            }
        });
        for t in 0..4usize {
            for i in 0..PER_THREAD {
                let index = t * (SEG_LEN * SEG_LEN) + i * 3;
                assert_eq!(dir.entry(index).load(Ordering::Acquire), val(index));
            }
        }
        assert!(dir.height() >= 2);
    }

    #[test]
    fn fresh_entries_read_null() {
        let dir = GrowableDirectory::new();
        assert!(dir.entry(3).load(Ordering::Acquire).is_null());
        dir.entry(SEG_LEN * 5).store(val(1), Ordering::Release);
        assert!(dir.entry(SEG_LEN * 4).load(Ordering::Acquire).is_null());
    }
}
