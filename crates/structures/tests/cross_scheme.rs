//! Cross-scheme structure tests: the same workloads must behave
//! identically under every reclamation scheme, including the StackTrack
//! emulation (precise windowed tracking) — schemes differ only in *when*
//! memory returns, never in set semantics.

use std::sync::Arc;

use ts_smr::{EpochScheme, HazardPointers, Leaky, Smr, StackTrackSim};
use ts_structures::{
    ConcurrentSet, HarrisList, LazyList, LockFreeHashTable, PriorityQueue, SkipList,
    SplitOrderedSet, PQ_REQUIRED_SLOTS, REQUIRED_SLOTS,
};

/// One deterministic mixed workload, checked against its expected final
/// state, runnable under any scheme and structure.
fn deterministic_churn<S: Smr, T: ConcurrentSet<S>>(scheme: &S, set: &T) {
    let h = scheme.register();
    // Insert 0..200, remove multiples of 3, re-insert multiples of 9.
    for k in 0..200u64 {
        assert!(set.insert(&h, k));
    }
    for k in (0..200u64).step_by(3) {
        assert!(set.remove(&h, k));
    }
    for k in (0..200u64).step_by(9) {
        assert!(set.insert(&h, k));
    }
    for k in 0..200u64 {
        let expect = k % 3 != 0 || k % 9 == 0;
        assert_eq!(set.contains(&h, k), expect, "key {k}");
    }
}

#[test]
fn all_structures_under_stacktrack() {
    let s = StackTrackSim::with_params(64, 16);
    deterministic_churn(&s, &HarrisList::<StackTrackSim>::new());
    deterministic_churn(&s, &LockFreeHashTable::<StackTrackSim>::new(16));
    deterministic_churn(&s, &SkipList::<StackTrackSim>::new());
    deterministic_churn(&s, &LazyList::<StackTrackSim>::new());
    deterministic_churn(&s, &SplitOrderedSet::<StackTrackSim>::with_buckets(16));
    s.quiesce();
    assert_eq!(s.outstanding(), 0, "stacktrack must reclaim everything");
}

#[test]
fn all_structures_under_every_scheme_agree() {
    // Same deterministic workload, every scheme/structure pair.
    macro_rules! run_all {
        ($scheme:expr, $ty:ty) => {{
            let s = $scheme;
            deterministic_churn(&s, &HarrisList::<$ty>::new());
            deterministic_churn(&s, &LockFreeHashTable::<$ty>::new(16));
            deterministic_churn(&s, &SkipList::<$ty>::new());
            deterministic_churn(&s, &LazyList::<$ty>::new());
            deterministic_churn(&s, &SplitOrderedSet::<$ty>::with_buckets(16));
        }};
    }
    run_all!(Leaky::new(), Leaky);
    run_all!(EpochScheme::with_threshold(8), EpochScheme);
    run_all!(
        HazardPointers::with_params(REQUIRED_SLOTS, 16),
        HazardPointers
    );
    run_all!(StackTrackSim::with_params(64, 8), StackTrackSim);
}

#[test]
fn stacktrack_concurrent_readers_and_removers() {
    let scheme = Arc::new(StackTrackSim::with_params(128, 32));
    let list = Arc::new(HarrisList::<StackTrackSim>::new());
    {
        let h = scheme.register();
        for k in 0..256u64 {
            list.insert(&h, k);
        }
    }
    std::thread::scope(|s| {
        for _ in 0..3 {
            let scheme = Arc::clone(&scheme);
            let list = Arc::clone(&list);
            s.spawn(move || {
                let h = scheme.register();
                for _ in 0..40 {
                    for k in 0..256u64 {
                        std::hint::black_box(list.contains(&h, k));
                    }
                }
            });
        }
        let scheme2 = Arc::clone(&scheme);
        let list2 = Arc::clone(&list);
        s.spawn(move || {
            let h = scheme2.register();
            for k in 0..256u64 {
                assert!(list2.remove(&h, k));
            }
        });
    });
    assert_eq!(list.len_sequential(), 0);
    scheme.quiesce();
    assert_eq!(scheme.outstanding(), 0);
}

#[test]
fn lazy_list_and_harris_list_agree_under_concurrency() {
    // Both list algorithms implement the same abstract set; run the same
    // disjoint-range workload on both and compare final key sets.
    let epoch = Arc::new(EpochScheme::with_threshold(32));
    let harris = Arc::new(HarrisList::<EpochScheme>::new());
    let lazy = Arc::new(LazyList::<EpochScheme>::new());

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let epoch = Arc::clone(&epoch);
            let harris = Arc::clone(&harris);
            let lazy = Arc::clone(&lazy);
            s.spawn(move || {
                let h = epoch.register();
                let base = t * 1000;
                for i in 0..100u64 {
                    harris.insert(&h, base + i);
                    lazy.insert(&h, base + i);
                    if i % 4 == 0 {
                        harris.remove(&h, base + i);
                        lazy.remove(&h, base + i);
                    }
                }
            });
        }
    });
    assert_eq!(harris.keys_sequential(), lazy.keys_sequential());
}

/// The priority queue's API differs from `ConcurrentSet`, so it gets its
/// own deterministic workload: interleaved inserts and delete_mins whose
/// final drain order is fully determined.
fn pq_churn<S: Smr>(scheme: &S) {
    let pq = PriorityQueue::<S>::new();
    let h = scheme.register();
    for k in (0..100u64).rev() {
        assert!(pq.insert(&h, k));
    }
    // Drain the bottom half; the queue must yield 0..50 in order.
    for want in 0..50u64 {
        assert_eq!(pq.delete_min(&h), Some(want));
    }
    // Refill interleaved below the current minimum.
    for k in 0..25u64 {
        assert!(pq.insert(&h, k * 2));
    }
    let mut last = None;
    let mut drained = 0usize;
    while let Some(k) = pq.delete_min(&h) {
        if let Some(prev) = last {
            assert!(k > prev, "out of order: {prev} then {k}");
        }
        last = Some(k);
        drained += 1;
    }
    assert_eq!(drained, 75, "50 survivors + 25 refills");
}

#[test]
fn priority_queue_agrees_under_every_scheme() {
    pq_churn(&Leaky::new());
    pq_churn(&EpochScheme::with_threshold(8));
    pq_churn(&HazardPointers::with_params(PQ_REQUIRED_SLOTS, 16));
    let st = StackTrackSim::with_params(64, 8);
    pq_churn(&st);
    st.quiesce();
    assert_eq!(st.outstanding(), 0);
}

#[test]
fn split_ordered_and_fixed_hash_agree_under_concurrency() {
    // The resizable and fixed tables implement the same abstract set; the
    // same disjoint-range workload must produce identical key sets.
    let epoch = Arc::new(EpochScheme::with_threshold(32));
    let fixed = Arc::new(LockFreeHashTable::<EpochScheme>::new(64));
    let split = Arc::new(SplitOrderedSet::<EpochScheme>::with_buckets(4));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let epoch = Arc::clone(&epoch);
            let fixed = Arc::clone(&fixed);
            let split = Arc::clone(&split);
            s.spawn(move || {
                let h = epoch.register();
                let base = t * 1000;
                for i in 0..100u64 {
                    fixed.insert(&h, base + i);
                    split.insert(&h, base + i);
                    if i % 4 == 0 {
                        fixed.remove(&h, base + i);
                        split.remove(&h, base + i);
                    }
                }
            });
        }
    });
    let h = epoch.register();
    for t in 0..4u64 {
        for i in 0..100u64 {
            let k = t * 1000 + i;
            assert_eq!(
                fixed.contains(&h, k),
                split.contains(&h, k),
                "tables disagree on key {k}"
            );
        }
    }
}
