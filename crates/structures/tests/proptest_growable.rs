//! Property tests for the growable segment-tree directory and the
//! split-ordered table built on it.
//!
//! Two oracles: the raw [`GrowableDirectory`] must behave like a
//! `HashMap<usize, value>` over arbitrary store/load sequences whose
//! indices straddle segment boundaries (forcing mid-sequence grows), and
//! a [`SplitOrderedSet`] configured to split eagerly (tiny initial table,
//! load factor 1) must behave like a `BTreeSet` while its directory
//! crosses the height-1 → height-2 boundary.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::Ordering;

use proptest::prelude::*;
use ts_smr::{Leaky, Smr};
use ts_structures::growable_dir::SEG_LEN;
use ts_structures::{ConcurrentSet, GrowableDirectory, SplitOrderedSet};

/// Sentinel non-null pointers; never dereferenced.
fn val(x: usize) -> *mut u8 {
    (x * 8 + 8) as *mut u8
}

/// Indices clustered around segment-boundary powers so sequences keep
/// crossing grow thresholds.
fn index_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![
        0..(2 * SEG_LEN),
        (SEG_LEN * SEG_LEN - 4)..(SEG_LEN * SEG_LEN + 4),
        ((1usize << 20) - 4)..((1usize << 20) + 4),
        0..(SEG_LEN * SEG_LEN * 4),
    ]
}

#[derive(Debug, Clone)]
enum DirOp {
    Store(usize, usize),
    Load(usize),
}

fn dir_op_strategy() -> impl Strategy<Value = DirOp> {
    prop_oneof![
        (index_strategy(), 1usize..1000).prop_map(|(i, v)| DirOp::Store(i, v)),
        index_strategy().prop_map(DirOp::Load),
    ]
}

#[derive(Debug, Clone)]
enum SetOp {
    Insert(u64),
    Remove(u64),
    Contains(u64),
}

/// Insert-heavy (arms are chosen uniformly, so repeating the insert arm
/// weights it 4:1:1) so the table actually grows past one root segment.
fn set_op_strategy(key_space: u64) -> impl Strategy<Value = SetOp> {
    prop_oneof![
        (0..key_space).prop_map(SetOp::Insert),
        (0..key_space).prop_map(SetOp::Insert),
        (0..key_space).prop_map(SetOp::Insert),
        (0..key_space).prop_map(SetOp::Insert),
        (0..key_space).prop_map(SetOp::Remove),
        (0..key_space).prop_map(SetOp::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn growable_directory_matches_hashmap_oracle(
        ops in proptest::collection::vec(dir_op_strategy(), 1..300)
    ) {
        let dir = GrowableDirectory::new();
        let mut oracle: HashMap<usize, usize> = HashMap::new();
        for op in &ops {
            match *op {
                DirOp::Store(i, v) => {
                    dir.entry(i).store(val(v), Ordering::Release);
                    oracle.insert(i, v);
                }
                DirOp::Load(i) => {
                    let want = oracle.get(&i).map_or(core::ptr::null_mut(), |&v| val(v));
                    prop_assert_eq!(dir.entry(i).load(Ordering::Acquire), want, "load({})", i);
                }
            }
        }
        // Final sweep: every written slot still resolves through the
        // (possibly much taller) root to the same leaf.
        for (&i, &v) in &oracle {
            prop_assert_eq!(dir.entry(i).load(Ordering::Acquire), val(v), "final({})", i);
        }
        prop_assert!(dir.capacity() > oracle.keys().copied().max().unwrap_or(0));
    }

    #[test]
    fn eager_split_table_matches_btreeset_across_segment_boundaries(
        ops in proptest::collection::vec(set_op_strategy(2048), 1..1500)
    ) {
        let scheme = Leaky::new();
        let handle = scheme.register();
        let set = SplitOrderedSet::<Leaky>::with_buckets(2).with_load_factor(1);
        let mut oracle = BTreeSet::new();
        for op in &ops {
            match *op {
                SetOp::Insert(k) => {
                    prop_assert_eq!(set.insert(&handle, k), oracle.insert(k), "insert({})", k);
                }
                SetOp::Remove(k) => {
                    prop_assert_eq!(set.remove(&handle, k), oracle.remove(&k), "remove({})", k);
                }
                SetOp::Contains(k) => {
                    prop_assert_eq!(
                        set.contains(&handle, k),
                        oracle.contains(&k),
                        "contains({})",
                        k
                    );
                }
            }
        }
        // `keys_sequential` walks the list in split (bit-reversed-hash)
        // order; sort to compare membership.
        let mut keys: Vec<u64> = set.keys_sequential();
        keys.sort_unstable();
        let want: Vec<u64> = oracle.iter().copied().collect();
        prop_assert_eq!(keys, want, "final membership");
    }
}

/// Deterministic companion: enough eager inserts push the directory past
/// its first 256-entry segment (height 2), and nothing is lost.
#[test]
fn eager_inserts_cross_the_first_segment_boundary() {
    let scheme = Leaky::new();
    let handle = scheme.register();
    let set = SplitOrderedSet::<Leaky>::with_buckets(2).with_load_factor(1);
    for k in 0..600u64 {
        assert!(set.insert(&handle, k));
    }
    assert!(
        set.bucket_count() >= 512,
        "load factor 1 must have split past one segment (got {})",
        set.bucket_count()
    );
    let mut keys = set.keys_sequential();
    keys.sort_unstable();
    assert_eq!(keys, (0..600).collect::<Vec<u64>>());
}
