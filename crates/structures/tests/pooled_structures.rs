//! Every structure, allocated through a per-structure node pool: nodes
//! created by inserts, retired by removes, and freed by teardown must all
//! route through the same handle, so after drop + quiesce each pool's
//! counters balance exactly and nothing stays resident.

use std::sync::Arc;

use ts_alloc::PoolHandle;
use ts_smr::{EpochScheme, Smr};
use ts_structures::{
    ConcurrentSet, HarrisList, LazyList, LockFreeHashTable, NodeAlloc, PqAsSet, SkipList,
    SplitOrderedSet,
};

/// Drives a structure through insert/contains/remove churn, drops it, and
/// asserts its pool balanced.
fn churn_and_check(name: &str, build: impl Fn(NodeAlloc) -> Box<dyn ConcurrentSet<EpochScheme>>) {
    let pool = PoolHandle::new(name.to_string());
    let scheme = EpochScheme::with_threshold(8);
    {
        let set = build(NodeAlloc::Pool(pool));
        let h = scheme.register();
        for k in 0..200u64 {
            set.insert(&h, k);
        }
        for k in (0..200u64).step_by(2) {
            set.remove(&h, k);
        }
        for k in 0..200u64 {
            let _ = set.contains(&h, k);
        }
        scheme.quiesce();
        let mid = pool.stats();
        assert!(mid.allocs > 0, "{name}: inserts must hit the pool");
        assert!(
            mid.frees > 0,
            "{name}: retired nodes must return to the pool"
        );
        assert!(mid.bytes_resident > 0, "{name}: survivors stay resident");
    }
    scheme.quiesce();
    let end = pool.stats();
    assert_eq!(
        end.allocs, end.frees,
        "{name}: teardown must return every node to its pool"
    );
    assert_eq!(end.bytes_resident, 0, "{name}: nothing left resident");
}

#[test]
fn harris_list_balances_its_pool() {
    churn_and_check("it-harris", |a| Box::new(HarrisList::with_alloc(a)));
}

#[test]
fn lazy_list_balances_its_pool() {
    churn_and_check("it-lazy", |a| Box::new(LazyList::with_alloc(a)));
}

#[test]
fn skiplist_balances_its_pool() {
    churn_and_check("it-skip", |a| Box::new(SkipList::with_alloc(a)));
}

#[test]
fn hash_table_balances_its_pool() {
    churn_and_check("it-hash", |a| Box::new(LockFreeHashTable::with_alloc(8, a)));
}

#[test]
fn split_ordered_balances_its_pool() {
    // Dummies and regulars share the pool; splits allocate extra dummies.
    churn_and_check("it-split", |a| {
        Box::new(SplitOrderedSet::with_buckets_and_alloc(2, a))
    });
}

#[test]
fn pq_as_set_balances_its_pool() {
    churn_and_check("it-pq", |a| Box::new(PqAsSet::with_alloc(a)));
}

#[test]
fn pooled_structures_survive_concurrent_churn() {
    let pool = PoolHandle::new("it-concurrent");
    let scheme = Arc::new(EpochScheme::with_threshold(32));
    {
        let list = Arc::new(HarrisList::<EpochScheme>::with_alloc(NodeAlloc::Pool(pool)));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let scheme = Arc::clone(&scheme);
                let list = Arc::clone(&list);
                s.spawn(move || {
                    let h = scheme.register();
                    let base = t * 10_000;
                    for i in 0..500u64 {
                        assert!(list.insert(&h, base + i));
                        if i % 2 == 0 {
                            assert!(list.remove(&h, base + i));
                        }
                    }
                });
            }
        });
        assert_eq!(list.len_sequential(), 4 * 250);
    }
    scheme.quiesce();
    let s = pool.stats();
    assert_eq!(s.allocs, s.frees, "cross-thread frees must credit the pool");
    assert_eq!(s.bytes_resident, 0);
}
