//! Regression: the split-ordered table must grow *past* the old
//! `MAX_BUCKETS = 2^20` directory cap without losing keys or stalling.
//!
//! Load factor 0 means "split on every insert" (the threshold
//! `count > size * 0` is always met), so a handful of inserts doubles the
//! bucket count from 2^8 straight through the old cap — bounded
//! wall-clock, no million-key prefill needed.

use std::time::Instant;

use ts_smr::{Leaky, Smr};
use ts_structures::growable_dir::MAX_CAPACITY;
use ts_structures::{ConcurrentSet, SplitOrderedSet};

const OLD_MAX_BUCKETS: usize = 1 << 20;

#[test]
fn table_grows_past_the_old_directory_cap_without_losing_keys() {
    let start = Instant::now();
    let scheme = Leaky::new();
    let handle = scheme.register();
    let set = SplitOrderedSet::<Leaky>::with_buckets(256).with_load_factor(0);
    assert_eq!(set.bucket_count(), 256);

    // Each insert doubles the table: 2^8 -> 2^21 takes 13 keys.
    let mut crossed_at = None;
    for k in 0..64u64 {
        assert!(
            set.insert(&handle, k.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            "insert {k}"
        );
        if crossed_at.is_none() && set.bucket_count() > OLD_MAX_BUCKETS {
            crossed_at = Some(k + 1);
        }
    }
    let crossed_at = crossed_at.expect("table never crossed 2^20 buckets");
    assert!(
        crossed_at <= 16,
        "doubling-per-insert should cross 2^20 within 16 keys, took {crossed_at}"
    );
    assert!(
        set.bucket_count() > OLD_MAX_BUCKETS,
        "final table ({} buckets) must exceed the old 2^20 cap",
        set.bucket_count()
    );
    assert!(
        set.bucket_count() <= MAX_CAPACITY,
        "growth is bounded only by 2^56"
    );

    // Nothing lost: every key answers through the point API and the
    // sequential sweep sees exactly the 64 inserted keys in split order.
    for k in 0..64u64 {
        assert!(
            set.contains(&handle, k.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            "key {k}"
        );
    }
    assert_eq!(set.keys_sequential().len(), 64);

    // "Without stalling": the whole crossing is a few dozen inserts into a
    // lazily-allocated directory. Generous bound to stay CI-safe in debug.
    assert!(
        start.elapsed().as_secs() < 60,
        "growth past 2^20 took {:?} — directory growth is stalling",
        start.elapsed()
    );
}
