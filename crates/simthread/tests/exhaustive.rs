//! Exhaustive interleaving scenarios for the paper's handshake arguments.
//!
//! Each test fixes small per-thread programs (2–3 simulated threads,
//! ≤ 8 operations) and lets the DFS enumerator in [`ts_simthread::explore`]
//! run **every** interleaving, asserting the exact schedule count so a
//! silently-shrunk exploration cannot pass. Scenario names are referenced
//! by the memory-ordering policy table in the README: a relaxed atomic in
//! `crates/core` / `crates/smr` is only as trustworthy as the scenario
//! named next to it.
//!
//! A failing schedule prints a replayable decision string; reproduce it
//! with `ts_simthread::replay(trace, scenario)` (see README "Replaying a
//! failing trace").
//!
//! Under `RUSTFLAGS="--cfg ts_mutate_ordering"` the collector's scan→free
//! edge is deliberately severed (see `collector.rs`); the
//! `mutation_scan_free_is_caught` test then asserts the Lemma 1 scenario
//! *fails* — CI runs exactly that test to prove the explorer has teeth.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use ts_simthread::{check, Chooser, ModelConfig, ModelMachine};

/// Interleaves fixed per-thread programs: `lens[t]` is thread `t`'s op
/// count, `step(t, pc)` executes thread `t`'s `pc`-th op. The chooser
/// picks which live thread steps next, so distinct decision sequences
/// correspond 1:1 to distinct interleavings (the multinomial
/// `(Σlens)! / Πlens!`).
fn interleave(ch: &mut dyn Chooser, lens: &[usize], mut step: impl FnMut(usize, usize)) {
    let mut pc = vec![0usize; lens.len()];
    loop {
        let live: Vec<usize> = (0..lens.len()).filter(|&t| pc[t] < lens[t]).collect();
        if live.is_empty() {
            return;
        }
        let t = live[ch.choose("thread", live.len())];
        step(t, pc[t]);
        pc[t] += 1;
    }
}

/// `n! / Π k_i!` — the number of interleavings of threads with `k_i` ops.
fn multinomial(lens: &[usize]) -> usize {
    let n: usize = lens.iter().sum();
    let mut result = 1usize;
    let mut denom_pool: Vec<usize> = lens
        .iter()
        .flat_map(|&k| (2..=k).collect::<Vec<_>>())
        .collect();
    for factor in 2..=n {
        result *= factor;
        // Cancel denominator factors greedily; counts stay small (≤ 8!).
        denom_pool.retain(|&d| {
            if result.is_multiple_of(d) {
                result /= d;
                false
            } else {
                true
            }
        });
    }
    for d in denom_pool {
        result /= d;
    }
    result
}

fn small_model(sim_threads: usize, distributed_frees: bool) -> ModelConfig {
    ModelConfig {
        sim_threads,
        shadow_slots: 4,
        buffer_capacity: 4,
        steps: 0, // unused: programs drive the machine directly
        seed: 0,
        distributed_frees,
        heap_block_cells: 0,
    }
}

/// Lemma 1 handshake, 2 threads: a reader acquires/releases two nodes
/// while a reclaimer retires them and forces phases. In every
/// interleaving the census must show zero roots at each free.
fn acquire_release_vs_retire(ch: &mut dyn Chooser) {
    let mut m = ModelMachine::new(&small_model(2, false));
    let n0 = m.alloc();
    let n1 = m.alloc();
    const LENS: &[usize] = &[4, 4];
    interleave(ch, LENS, |t, pc| match (t, pc) {
        (0, 0) => drop(m.acquire(0, n0, 0, false)),
        (0, 1) => drop(m.acquire(0, n1, 3, false)),
        (0, 2) => drop(m.release(0, 0)),
        (0, 3) => drop(m.release(0, 0)),
        (1, 0) => drop(m.retire(1, n0)),
        (1, 1) => drop(m.retire(1, n1)),
        (1, _) => m.collect(),
        _ => unreachable!(),
    });
    let report = m.finish(); // Lemma 4: everything freed, boundedly
    assert_eq!(report.allocated, report.freed);
}

#[test]
fn lemma1_acquire_release_vs_retire_2threads() {
    let report = check(
        "lemma1_acquire_release_vs_retire_2threads",
        acquire_release_vs_retire,
    );
    assert_eq!(report.schedules, multinomial(&[4, 4])); // C(8,4) = 70
    println!(
        "lemma1_acquire_release_vs_retire_2threads: {} schedules (max depth {}) — exhaustive",
        report.schedules, report.max_depth
    );
}

/// Lemma 1 scan→free handshake, 3 threads: reader, retirer, and a
/// dedicated reclaimer interleave so phases run at every point relative
/// to acquire/retire. This is the scenario the CI mutation check relies
/// on: severing the scan edge frees a rooted node in the very first
/// DFS schedule.
fn scan_free_handshake(ch: &mut dyn Chooser) {
    let mut m = ModelMachine::new(&small_model(3, false));
    let n0 = m.alloc();
    let n1 = m.alloc();
    let n2 = m.alloc();
    const LENS: &[usize] = &[3, 3, 2];
    interleave(ch, LENS, |t, pc| match (t, pc) {
        (0, 0) => drop(m.acquire(0, n0, 0, false)),
        (0, 1) => drop(m.release(0, 0)),
        (0, 2) => drop(m.acquire(0, n1, 2, false)),
        (1, 0) => drop(m.retire(1, n0)),
        (1, 1) => drop(m.retire(1, n1)),
        (1, 2) => drop(m.retire(1, n2)),
        (2, _) => m.collect(),
        _ => unreachable!(),
    });
    let report = m.finish();
    assert_eq!(report.allocated, report.freed);
}

#[cfg(not(ts_mutate_ordering))]
#[test]
fn lemma1_scan_free_handshake_3threads() {
    let report = check("lemma1_scan_free_handshake_3threads", scan_free_handshake);
    assert_eq!(report.schedules, multinomial(&[3, 3, 2])); // 8!/(3!3!2!) = 560
    println!(
        "lemma1_scan_free_handshake_3threads: {} schedules (max depth {}) — exhaustive",
        report.schedules, report.max_depth
    );
}

/// The CI mutation check: with `--cfg ts_mutate_ordering` the collector
/// skips the scan round, so the Lemma 1 scenario MUST fail — and the
/// failure must be replayable from its decision string.
#[cfg(ts_mutate_ordering)]
#[test]
fn mutation_scan_free_is_caught() {
    let v = ts_simthread::explore("lemma1_scan_free_handshake_3threads", scan_free_handshake)
        .expect_err("severed scan→free edge must violate Lemma 1");
    assert!(
        v.message.contains("SAFETY VIOLATION"),
        "expected a census violation, got: {}",
        v.message
    );
    // The printed decision string reproduces the violating schedule.
    let trace = v.trace.clone();
    let replayed = std::panic::catch_unwind(move || {
        ts_simthread::replay(&trace, scan_free_handshake);
    });
    assert!(replayed.is_err(), "replay must reproduce the violation");
    println!(
        "mutation caught after {} schedule(s); replay decision string: {}",
        v.schedules, v.trace
    );
}

/// Lemma 4 under the §7 distributed-free extension: a queued node must
/// be freed no matter where the drain lands relative to acquire/release,
/// and the bounded final drain must terminate in every interleaving.
fn distributed_drain(ch: &mut dyn Chooser) {
    let mut m = ModelMachine::new(&small_model(2, true));
    let n0 = m.alloc();
    const LENS: &[usize] = &[2, 3];
    interleave(ch, LENS, |t, pc| match (t, pc) {
        (0, 0) => drop(m.acquire(0, n0, 1, false)),
        (0, 1) => drop(m.release(0, 0)),
        (1, 0) => drop(m.retire(1, n0)),
        (1, 1) => m.collect(),
        (1, 2) => drop(m.drain(usize::MAX)),
        _ => unreachable!(),
    });
    let report = m.finish();
    assert_eq!(report.allocated, report.freed);
}

#[test]
fn lemma4_distributed_drain_2threads() {
    let report = check("lemma4_distributed_drain_2threads", distributed_drain);
    assert_eq!(report.schedules, multinomial(&[2, 3])); // C(5,2) = 10
    println!(
        "lemma4_distributed_drain_2threads: {} schedules (max depth {}) — exhaustive",
        report.schedules, report.max_depth
    );
}

/// A node that records its free instead of being observed-after-free.
struct FlagNode {
    freed: Arc<AtomicBool>,
}

impl Drop for FlagNode {
    fn drop(&mut self) {
        self.freed.store(true, Ordering::SeqCst);
    }
}

fn flag_node(map: &mut HashMap<usize, Arc<AtomicBool>>) -> *mut FlagNode {
    let freed = Arc::new(AtomicBool::new(false));
    let ptr = Box::into_raw(Box::new(FlagNode {
        freed: Arc::clone(&freed),
    }));
    map.insert(ptr as usize, freed);
    ptr
}

/// Epoch fast-path handshake (`begin_op` announce / `end_op` clear vs a
/// retiring writer at advance threshold 1): a reader that loaded the
/// shared pointer between `begin_op` and `end_op` pins the epoch, so the
/// node cannot be freed while the reader could still dereference it —
/// in every interleaving. This is the scenario justifying the relaxed
/// `begin_op` global load and the plain-store `end_op` clear in
/// `crates/smr/src/epoch.rs` (the announce store itself must stay
/// `SeqCst`; see the README ordering-policy table).
fn epoch_fastpath(ch: &mut dyn Chooser) {
    use ts_smr::{retire_box, EpochScheme, Smr, SmrHandle};

    let scheme = EpochScheme::with_threshold(1); // every retire tries to advance
    let reader = scheme.register();
    let writer = scheme.register();

    let mut flags: HashMap<usize, Arc<AtomicBool>> = HashMap::new();
    let node = flag_node(&mut flags);
    let filler1 = flag_node(&mut flags);
    let filler2 = flag_node(&mut flags);
    let shared = AtomicUsize::new(node as usize);

    let mut protected = 0usize;
    const LENS: &[usize] = &[4, 4];
    interleave(ch, LENS, |t, pc| match (t, pc) {
        // Reader: announce, load, "dereference", clear.
        (0, 0) => reader.begin_op(),
        (0, 1) => protected = shared.load(Ordering::SeqCst),
        (0, 2) => {
            if protected != 0 {
                assert!(
                    !flags[&protected].load(Ordering::SeqCst),
                    "EPOCH VIOLATION: node freed while an active reader holds it"
                );
            }
        }
        (0, 3) => reader.end_op(),
        // Writer: unlink, then retire the node + fillers, each retire
        // attempting an epoch advance and expiry.
        (1, 0) => shared.store(0, Ordering::SeqCst),
        (1, 1) => unsafe { retire_box(&writer, node) },
        (1, 2) => unsafe { retire_box(&writer, filler1) },
        (1, 3) => unsafe { retire_box(&writer, filler2) },
        _ => unreachable!(),
    });

    // Lemma 4 analog: once both handles are quiescent, everything frees.
    drop(reader);
    drop(writer);
    scheme.quiesce();
    for (addr, freed) in &flags {
        assert!(
            freed.load(Ordering::SeqCst),
            "node {addr:#x} never freed after quiesce"
        );
    }
}

#[test]
fn epoch_fastpath_handshake() {
    let report = check("epoch_fastpath_handshake", epoch_fastpath);
    assert_eq!(report.schedules, multinomial(&[4, 4])); // C(8,4) = 70
    println!(
        "epoch_fastpath_handshake: {} schedules (max depth {}) — exhaustive",
        report.schedules, report.max_depth
    );
}

/// Hazard-pointer protect/validate vs unlink/retire handshake at scan
/// threshold 1: once `load_protected` returns a non-null pointer, every
/// subsequent scan must keep the node until `end_op`. Justifies the
/// relaxed pre-fence hazard publication in `crates/smr/src/hazard.rs`
/// (the publication is ordered by the `SeqCst` fence that follows it,
/// not by its own store ordering).
fn hazard_protect_vs_retire(ch: &mut dyn Chooser) {
    use ts_smr::{retire_box, HazardPointers, Smr, SmrHandle};

    let scheme = HazardPointers::with_params(1, 1); // scan on every retire
    let reader = scheme.register();
    let writer = scheme.register();

    let mut flags: HashMap<usize, Arc<AtomicBool>> = HashMap::new();
    let node = flag_node(&mut flags);
    let filler = flag_node(&mut flags);
    let shared = AtomicPtr::new(node.cast::<u8>());

    let mut protected: *mut u8 = std::ptr::null_mut();
    const LENS: &[usize] = &[3, 3];
    interleave(ch, LENS, |t, pc| match (t, pc) {
        // Reader: protect (publish + fence + validate), "deref", release.
        (0, 0) => protected = reader.load_protected(0, &shared),
        (0, 1) => {
            if !protected.is_null() {
                assert!(
                    !flags[&(protected as usize)].load(Ordering::SeqCst),
                    "HAZARD VIOLATION: node freed while protected"
                );
            }
        }
        (0, 2) => reader.end_op(),
        // Writer: unlink, then retire node + filler (each scans).
        (1, 0) => shared.store(std::ptr::null_mut(), Ordering::SeqCst),
        (1, 1) => unsafe { retire_box(&writer, node) },
        (1, 2) => unsafe { retire_box(&writer, filler) },
        _ => unreachable!(),
    });

    drop(reader);
    drop(writer);
    scheme.quiesce();
    for (addr, freed) in &flags {
        assert!(
            freed.load(Ordering::SeqCst),
            "node {addr:#x} never freed after quiesce"
        );
    }
}

#[test]
fn hazard_protect_vs_retire_handshake() {
    let report = check("hazard_protect_vs_retire", hazard_protect_vs_retire);
    assert_eq!(report.schedules, multinomial(&[3, 3])); // C(6,3) = 20
    println!(
        "hazard_protect_vs_retire: {} schedules (max depth {}) — exhaustive",
        report.schedules, report.max_depth
    );
}

/// Growable-directory grow-vs-traverse handshake: one thread publishes a
/// taller root (twice — two grows) while another traverses an entry that
/// existed before either grow. The design claim (see
/// `crates/structures/src/growable_dir.rs`): a reader holding a stale
/// root snapshot is never invalidated, because growth installs the old
/// tree as child 0 of the new root — so the read must return the
/// original value in **every** interleaving, with no reader/grower
/// handshake beyond the root CAS.
fn growable_directory_grow_vs_traverse(ch: &mut dyn Chooser) {
    use ts_structures::growable_dir::{GrowableDirectory, SEG_LEN};

    let dir = GrowableDirectory::new();
    let a = 0x10 as *mut u8; // sentinels, never dereferenced
    let b = 0x20 as *mut u8;
    dir.entry(0).store(a, Ordering::Release);
    assert_eq!(dir.height(), 1);

    const LENS: &[usize] = &[2, 3];
    interleave(ch, LENS, |t, pc| match (t, pc) {
        // Grower: two out-of-range writes, each may grow the tree.
        (0, 0) => dir.entry(SEG_LEN).store(b, Ordering::Release),
        (0, 1) => dir.entry(2 * SEG_LEN).store(b, Ordering::Release),
        // Traverser: in-range reads before/between/after the grows must
        // always resolve through whatever root they observe to slot 0.
        (1, _) => assert_eq!(
            dir.entry(0).load(Ordering::Acquire),
            a,
            "GROW VIOLATION: pre-grow entry unreadable during growth"
        ),
        _ => unreachable!(),
    });

    // Post-conditions hold on every schedule: both grows landed in one
    // height-2 tree (indices < SEG_LEN^2 need no second level-up).
    assert_eq!(dir.height(), 2);
    assert_eq!(dir.entry(SEG_LEN).load(Ordering::Acquire), b);
    assert_eq!(dir.entry(2 * SEG_LEN).load(Ordering::Acquire), b);
    assert_eq!(dir.entry(0).load(Ordering::Acquire), a);
}

#[test]
fn growable_directory_grow_vs_traverse_2threads() {
    let report = check(
        "growable_directory_grow_vs_traverse_2threads",
        growable_directory_grow_vs_traverse,
    );
    assert_eq!(report.schedules, multinomial(&[2, 3])); // C(5,2) = 10
    println!(
        "growable_directory_grow_vs_traverse_2threads: {} schedules (max depth {}) — exhaustive",
        report.schedules, report.max_depth
    );
}

#[test]
fn multinomial_matches_known_counts() {
    assert_eq!(multinomial(&[4, 4]), 70);
    assert_eq!(multinomial(&[3, 3, 2]), 560);
    assert_eq!(multinomial(&[2, 3]), 10);
    assert_eq!(multinomial(&[3, 3]), 20);
    assert_eq!(multinomial(&[1, 1, 1]), 6);
}
