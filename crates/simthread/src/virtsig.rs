//! Virtual signals: a deterministic [`threadscan::Platform`].
//!
//! Substitutes the OS mechanism with an in-process handshake over
//! [`ShadowStack`] root regions:
//!
//! * **Direct mode** — the reclaimer scans every registered record's
//!   shadow stack and heap blocks itself, synchronously. Fully
//!   deterministic; the workhorse for protocol model tests.
//! * **Handshake mode** — the reclaimer publishes the session and waits for
//!   threads to notice it at their next [`SimPlatform::poll`]; after a
//!   grace period it force-scans the laggards. The force-scan models the
//!   paper's central progress property: the OS delivers a signal to a
//!   thread no matter what its application code is doing, so a stalled
//!   thread cannot stall reclamation.
//!
//! Per-record round CAS guarantees exactly one scan + ack per record per
//! round even when a poll races the force-scan.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use threadscan::{Platform, ScanOutcome, ScanSession, SelfScanContext, ThreadRoots};

use crate::shadow::ShadowStack;

/// Delivery behaviour for virtual signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// The reclaimer scans everyone synchronously. Deterministic.
    Direct,
    /// Wait for cooperative [`SimPlatform::poll`]s for `grace`; then
    /// force-scan non-responders (models guaranteed OS delivery).
    Handshake {
        /// How long to wait for polls before force-scanning.
        grace: Duration,
    },
}

/// One registered simulated thread.
pub struct SimRecord {
    shadow: Arc<ShadowStack>,
    roots: Arc<ThreadRoots>,
    /// Real thread that created the registration: the reclaimer self-scans
    /// its own records instead of waiting for a poll it could never make.
    tid: std::thread::ThreadId,
    /// Round id this record last scanned in (CAS-guarded).
    scanned_round: AtomicUsize,
}

impl SimRecord {
    /// The record's shadow stack.
    pub fn shadow(&self) -> &Arc<ShadowStack> {
        &self.shadow
    }

    /// Scans this record against `session` if it has not yet scanned in
    /// `round`; returns whether this call performed the scan.
    fn try_scan(&self, session: &ScanSession<'_>, round: usize) -> bool {
        let prev = self.scanned_round.load(Ordering::Acquire);
        if prev >= round {
            return false;
        }
        if self
            .scanned_round
            .compare_exchange(prev, round, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false; // someone else claimed this round
        }
        self.shadow.scan(session);
        self.roots.scan(session);
        session.ack();
        true
    }
}

struct Inner {
    mode: SimMode,
    shadow_slots: usize,
    records: Mutex<Vec<Arc<SimRecord>>>,
    /// Session of the in-flight handshake round (null otherwise).
    active: AtomicPtr<()>,
    round: AtomicUsize,
    rounds_completed: AtomicUsize,
    force_scans: AtomicUsize,
}

/// The simulated platform. Clone-able handle (shared interior).
pub struct SimPlatform {
    inner: Arc<Inner>,
}

impl SimPlatform {
    /// Direct-mode platform whose shadow stacks have `shadow_slots` slots.
    pub fn direct(shadow_slots: usize) -> Self {
        Self::with_mode(SimMode::Direct, shadow_slots)
    }

    /// Handshake-mode platform.
    pub fn handshake(shadow_slots: usize, grace: Duration) -> Self {
        Self::with_mode(SimMode::Handshake { grace }, shadow_slots)
    }

    /// Platform with an explicit mode.
    pub fn with_mode(mode: SimMode, shadow_slots: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                mode,
                shadow_slots,
                records: Mutex::new(Vec::new()),
                active: AtomicPtr::new(std::ptr::null_mut()),
                round: AtomicUsize::new(0),
                rounds_completed: AtomicUsize::new(0),
                force_scans: AtomicUsize::new(0),
            }),
        }
    }

    /// Records registered so far, in registration order. Records of dropped
    /// registrations are removed.
    pub fn records(&self) -> Vec<Arc<SimRecord>> {
        self.inner.records.lock().clone()
    }

    /// The `i`-th live record's shadow stack (registration order).
    pub fn shadow(&self, i: usize) -> Arc<ShadowStack> {
        Arc::clone(self.inner.records.lock()[i].shadow())
    }

    /// Completed scan rounds.
    pub fn rounds_completed(&self) -> usize {
        self.inner.rounds_completed.load(Ordering::Relaxed)
    }

    /// Records scanned by the reclaimer on behalf of a non-polling thread.
    pub fn force_scans(&self) -> usize {
        self.inner.force_scans.load(Ordering::Relaxed)
    }

    /// Cooperative scan point for handshake mode: if a round is in flight
    /// and this record has not scanned yet, scan now. Returns whether a
    /// scan was performed.
    ///
    /// Call it from simulated application code at its "safe points" — the
    /// analogue of the OS delivering a signal at an arbitrary instruction.
    pub fn poll(&self, record: &SimRecord) -> bool {
        let p = self.inner.active.load(Ordering::Acquire);
        if p.is_null() {
            return false;
        }
        // SAFETY: the reclaimer keeps the session alive until every record
        // acked; `try_scan`'s ack is the last access.
        let session: &ScanSession<'_> = unsafe { &*(p as *const ScanSession<'_>) };
        record.try_scan(session, self.inner.round.load(Ordering::Acquire))
    }
}

impl Clone for SimPlatform {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// RAII registration for the simulated platform.
pub struct SimToken {
    inner: Arc<Inner>,
    rec: Arc<SimRecord>,
}

impl SimToken {
    /// The record created by this registration.
    pub fn record(&self) -> &Arc<SimRecord> {
        &self.rec
    }
}

impl Drop for SimToken {
    fn drop(&mut self) {
        self.inner
            .records
            .lock()
            .retain(|r| !Arc::ptr_eq(r, &self.rec));
    }
}

// SAFETY: `scan_all` scans every registered record's shadow stack and heap
// blocks (directly or via poll/force-scan) before returning, and each
// record acks exactly once per round (round CAS). Shadow stacks *are* the
// simulated threads' entire private memory, fulfilling the contract.
unsafe impl Platform for SimPlatform {
    type ThreadToken = SimToken;

    fn register_current(&self, roots: Arc<ThreadRoots>) -> SimToken {
        let rec = Arc::new(SimRecord {
            shadow: Arc::new(ShadowStack::new(self.inner.shadow_slots)),
            roots,
            tid: std::thread::current().id(),
            scanned_round: AtomicUsize::new(0),
        });
        self.inner.records.lock().push(Arc::clone(&rec));
        SimToken {
            inner: Arc::clone(&self.inner),
            rec,
        }
    }

    fn scan_all(&self, session: &ScanSession<'_>, _reclaimer: &SelfScanContext) -> ScanOutcome {
        // The reclaimer's private memory is its shadow stack (a record like
        // any other), so the boundary context is not needed here.
        let snapshot: Vec<Arc<SimRecord>> = self.inner.records.lock().clone();
        if snapshot.is_empty() {
            return ScanOutcome { threads_scanned: 0 };
        }
        let round = self.inner.round.fetch_add(1, Ordering::AcqRel) + 1;
        let expected = snapshot.len();

        match self.inner.mode {
            SimMode::Direct => {
                for rec in &snapshot {
                    rec.try_scan(session, round);
                }
            }
            SimMode::Handshake { grace } => {
                self.inner.active.store(
                    session as *const ScanSession<'_> as *mut (),
                    Ordering::Release,
                );
                // The reclaimer scans its own records up front — it is busy
                // waiting below and could never reach a poll point (this is
                // the analogue of the reclaimer executing TS-Scan itself,
                // Algorithm 1 line 7).
                let me = std::thread::current().id();
                for rec in snapshot.iter().filter(|r| r.tid == me) {
                    rec.try_scan(session, round);
                }
                let start = Instant::now();
                while session.acks_received() < expected {
                    if start.elapsed() >= grace {
                        // Grace expired: deliver the "signal" ourselves.
                        for rec in &snapshot {
                            if rec.try_scan(session, round) {
                                self.inner.force_scans.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        std::thread::yield_now();
                    }
                }
                self.inner
                    .active
                    .store(std::ptr::null_mut(), Ordering::Release);
            }
        }

        // In either mode every snapshot record has scanned exactly once.
        debug_assert!(session.acks_received() >= expected);
        self.inner.rounds_completed.fetch_add(1, Ordering::Relaxed);
        ScanOutcome {
            threads_scanned: expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;
    use threadscan::{Collector, CollectorConfig};

    struct Node {
        counter: Arc<Counter>,
        _pad: [u8; 56],
    }
    impl Drop for Node {
        fn drop(&mut self) {
            self.counter.fetch_add(1, Ordering::SeqCst);
        }
    }
    fn node(c: &Arc<Counter>) -> *mut Node {
        Box::into_raw(Box::new(Node {
            counter: Arc::clone(c),
            _pad: [0; 56],
        }))
    }

    #[test]
    fn direct_mode_respects_shadow_roots() {
        let platform = SimPlatform::direct(8);
        let collector = Collector::with_config(
            platform.clone(),
            CollectorConfig::default().with_buffer_capacity(4),
        );
        let handle = collector.register();
        let drops = Arc::new(Counter::new(0));

        let pinned = node(&drops);
        let shadow = platform.shadow(0);
        let slot = shadow.publish(pinned as usize).unwrap();

        unsafe { handle.retire(pinned) };
        for _ in 0..3 {
            unsafe { handle.retire(node(&drops)) };
        }
        assert_eq!(drops.load(Ordering::SeqCst), 3, "pinned node survives");

        shadow.retract(slot);
        collector.collect_now();
        assert_eq!(drops.load(Ordering::SeqCst), 4, "freed after retract");
        drop(handle);
    }

    #[test]
    fn handshake_mode_polling_thread_scans_itself() {
        let platform = SimPlatform::handshake(8, Duration::from_secs(5));
        let collector = Collector::with_config(
            platform.clone(),
            CollectorConfig::default().with_buffer_capacity(2),
        );
        let drops = Arc::new(Counter::new(0));

        // Simulated peer thread that cooperatively polls.
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let peer_collector = Arc::clone(&collector);
            let peer_platform = platform.clone();
            let peer_done = Arc::clone(&done);
            let peer = s.spawn(move || {
                let handle = peer_collector.register();
                let rec = Arc::clone(&peer_platform.records()[0]);
                let mut polled = 0usize;
                while !peer_done.load(Ordering::SeqCst) {
                    if peer_platform.poll(&rec) {
                        polled += 1;
                    }
                    std::hint::spin_loop();
                }
                drop(handle);
                polled
            });

            // Give the peer time to register.
            while platform.records().is_empty() {
                std::thread::yield_now();
            }

            let handle = collector.register();
            unsafe { handle.retire(node(&drops)) };
            unsafe { handle.retire(node(&drops)) }; // fills buffer → round
            assert_eq!(drops.load(Ordering::SeqCst), 2);

            done.store(true, Ordering::SeqCst);
            let polled = peer.join().unwrap();
            assert!(polled >= 1, "peer should have scanned via poll");
            assert_eq!(platform.force_scans(), 0, "no force-scan was needed");
            drop(handle);
        });
    }

    #[test]
    fn handshake_mode_force_scans_stalled_thread() {
        // Peer never polls; the reclaimer must make progress anyway —
        // the paper's key liveness property (§1.2: errors in data
        // structure code "will not prevent the protocol from progressing").
        let platform = SimPlatform::handshake(8, Duration::from_millis(5));
        let collector = Collector::with_config(
            platform.clone(),
            CollectorConfig::default().with_buffer_capacity(2),
        );
        let drops = Arc::new(Counter::new(0));

        // A "stalled" peer registered on another thread that never polls
        // (e.g. stuck in an infinite loop). Its shadow stack pins a node.
        let pinned = node(&drops);
        let pinned_addr = pinned as usize;
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let stall_platform = platform.clone();
            let stall_done = Arc::clone(&done);
            s.spawn(move || {
                use threadscan::Platform as _;
                let token = stall_platform.register_current(Arc::new(ThreadRoots::new(4)));
                token.record().shadow().publish(pinned_addr).unwrap();
                // "Infinite loop": never polls.
                while !stall_done.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
                drop(token);
            });
            while platform.records().is_empty() {
                std::thread::yield_now();
            }

            let handle = collector.register();
            unsafe { handle.retire(pinned) };
            unsafe { handle.retire(node(&drops)) }; // triggers the round
            assert_eq!(
                drops.load(Ordering::SeqCst),
                1,
                "unpinned node freed despite the stalled thread"
            );
            assert!(platform.force_scans() >= 1, "laggard was force-scanned");
            assert_eq!(collector.pending_estimate(), 1, "pinned node survives");
            done.store(true, Ordering::SeqCst);
            drop(handle);
        });
        drop(collector);
        assert_eq!(drops.load(Ordering::SeqCst), 2, "drop reclaims survivor");
    }
}
