//! Protocol model checking over the deterministic [`SimPlatform`].
//!
//! Runs the full collector protocol with an explicit schedule of the
//! abstract operations the paper's proofs quantify over:
//!
//! * **Alloc** — a node becomes reachable;
//! * **Acquire** — a simulated thread copies a reference into its private
//!   memory (shadow stack or §4.3 heap block) — legal only while the node
//!   is still reachable (Assumption 1.1: removed nodes cannot be newly
//!   reached);
//! * **Release** — a private reference is dropped;
//! * **Retire** — the node is unlinked and handed to the collector;
//! * **Collect** — a forced reclamation phase;
//! * **Drain** — a bounded distributed-free drain (§7 extension).
//!
//! The schedule is produced by a pluggable [`Chooser`]
//! ([`mod@crate::explore`]): [`run_model`] drives a seeded
//! [`RandomChooser`] (randomized suites,
//! arbitrary shapes), while the exhaustive suites drive [`ModelMachine`]
//! directly under the DFS enumerator, enumerating *every* interleaving at
//! small bounds.
//!
//! Checked invariants:
//!
//! * **Safety (Lemma 1)** — a node is never freed while any simulated
//!   thread still publishes a reference to it. Checked *inside the node's
//!   destructor* against an exact root census.
//! * **Eventual reclamation (Lemma 4)** — once all references are released
//!   and all nodes retired, a bounded number of phases frees everything.
//!   The final drain is iteration-bounded: a liveness bug that strands
//!   queue entries produces a diagnostic panic, never a hung test suite.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use threadscan::{Collector, CollectorConfig, ThreadHandle};

use crate::explore::{Chooser, RandomChooser};
use crate::virtsig::SimPlatform;

/// Parameters for one model run.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Simulated threads (each gets a collector handle + shadow stack).
    pub sim_threads: usize,
    /// Root slots per shadow stack.
    pub shadow_slots: usize,
    /// Delete-buffer capacity (small values force frequent phases).
    pub buffer_capacity: usize,
    /// Schedule length in operations (randomized driver only).
    pub steps: usize,
    /// RNG seed (same seed ⇒ same schedule ⇒ same outcome).
    pub seed: u64,
    /// Enable the §7 distributed-free extension: freed nodes queue for
    /// other handles to deallocate, and the schedule gains a Drain op.
    pub distributed_frees: bool,
    /// Cells per simulated thread's registered heap block (§4.3
    /// extension); 0 disables heap blocks. When enabled, half of all
    /// Acquire ops publish into the heap block instead of the shadow
    /// stack.
    pub heap_block_cells: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            sim_threads: 4,
            shadow_slots: 8,
            buffer_capacity: 8,
            steps: 2000,
            seed: 0,
            distributed_frees: false,
            heap_block_cells: 0,
        }
    }
}

/// Outcome of a model run. A safety violation panics inside the run
/// instead of being reported here, so reaching a report at all means the
/// safety invariant held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelReport {
    /// Nodes allocated over the schedule.
    pub allocated: usize,
    /// Nodes whose destructor ran (must equal `allocated` at the end).
    pub freed: usize,
    /// Reclamation phases executed.
    pub collects: usize,
    /// Peak retired-but-not-freed node count observed.
    pub max_outstanding: usize,
}

/// Exact census of published references, shared with node destructors.
struct Census {
    root_counts: Mutex<HashMap<usize, usize>>,
    freed: AtomicUsize,
}

/// A model node; its destructor checks the safety invariant.
struct ModelNode {
    census: Arc<Census>,
    /// Padding so interior pointers and ranges are exercised.
    _pad: [u64; 6],
}

impl Drop for ModelNode {
    fn drop(&mut self) {
        let addr = self as *mut ModelNode as usize;
        // During unwinding from an earlier violation, teardown drops the
        // remaining nodes; re-asserting would turn one diagnosable panic
        // into a double-panic abort (fatal to the explorer's replay loop).
        if !std::thread::panicking() {
            let roots = self.census.root_counts.lock();
            let outstanding = roots.get(&addr).copied().unwrap_or(0);
            assert_eq!(
                outstanding, 0,
                "SAFETY VIOLATION: node {addr:#x} freed with {outstanding} live root(s)"
            );
        }
        self.census.freed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Where a held reference is published.
enum RootKind {
    /// Shadow-stack slot index.
    Slot(usize),
    /// Heap-block cell index (§4.3 extension).
    Cell(usize),
}

/// A reference currently held by a simulated thread.
struct Held {
    kind: RootKind,
    node: usize,
}

/// The protocol model as an explicit state machine: a collector over the
/// deterministic platform plus the exact census the safety checks need.
///
/// Each method is one abstract operation from the paper's proofs. Drivers
/// (randomized or exhaustive) sequence them; the machine enforces the
/// model's legality rules (Assumption 1.1 etc.) by skipping illegal ops
/// (returning `false`), so any op order a scheduler produces is valid to
/// run. Nodes are referred to by *logical id* — their allocation index —
/// which is stable across interleavings, so exhaustive scenarios can name
/// nodes in fixed per-thread programs.
pub struct ModelMachine {
    census: Arc<Census>,
    handles: Vec<ThreadHandle<SimPlatform>>,
    collector: Arc<Collector<SimPlatform>>,
    shadows: Vec<Arc<crate::shadow::ShadowStack>>,
    heap_blocks: Vec<Box<[usize]>>,
    /// Address of each allocated node, by logical id.
    nodes: Vec<usize>,
    /// Whether each logical id is still reachable (allocated, not retired).
    reachable: Vec<bool>,
    held: Vec<Vec<Held>>,
    retired: usize,
    max_outstanding: usize,
    heap_block_cells: usize,
}

impl ModelMachine {
    /// Builds the collector, platform, and per-thread state for `config`
    /// (the `steps`/`seed` fields are driver concerns and ignored here).
    pub fn new(config: &ModelConfig) -> Self {
        assert!(config.sim_threads >= 1);
        let platform = SimPlatform::direct(config.shadow_slots);
        let collector = Collector::with_config(
            platform.clone(),
            CollectorConfig::default()
                .with_buffer_capacity(config.buffer_capacity)
                .with_distributed_frees(config.distributed_frees),
        );
        let census = Arc::new(Census {
            root_counts: Mutex::new(HashMap::new()),
            freed: AtomicUsize::new(0),
        });

        // All simulated threads live on one real thread: the schedule *is*
        // the interleaving, at operation granularity.
        let handles: Vec<_> = (0..config.sim_threads)
            .map(|_| collector.register())
            .collect();
        let shadows: Vec<_> = (0..config.sim_threads)
            .map(|i| platform.shadow(i))
            .collect();

        // §4.3 heap blocks: one registered block of `heap_block_cells`
        // words per simulated thread; cell value 0 means free.
        let heap_blocks: Vec<Box<[usize]>> = (0..config.sim_threads)
            .map(|_| vec![0usize; config.heap_block_cells].into_boxed_slice())
            .collect();
        if config.heap_block_cells > 0 {
            for (t, block) in heap_blocks.iter().enumerate() {
                handles[t]
                    .add_heap_block(block.as_ptr().cast(), block.len() * 8)
                    .expect("register model heap block");
            }
        }

        Self {
            census,
            handles,
            collector,
            shadows,
            heap_blocks,
            nodes: Vec::new(),
            reachable: Vec::new(),
            held: (0..config.sim_threads).map(|_| Vec::new()).collect(),
            retired: 0,
            max_outstanding: 0,
            heap_block_cells: config.heap_block_cells,
        }
    }

    /// Number of simulated threads.
    pub fn sim_threads(&self) -> usize {
        self.handles.len()
    }

    /// Nodes allocated so far (== the next logical id).
    pub fn allocated(&self) -> usize {
        self.nodes.len()
    }

    /// Logical ids of nodes that are still reachable.
    pub fn reachable_ids(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.reachable[i])
            .collect()
    }

    /// References currently held by simulated thread `t`.
    pub fn held_count(&self, t: usize) -> usize {
        self.held[t].len()
    }

    /// Retired-but-not-freed node count right now.
    pub fn outstanding(&self) -> usize {
        self.retired - self.census.freed.load(Ordering::SeqCst)
    }

    fn note_outstanding(&mut self) {
        let outstanding = self.outstanding();
        self.max_outstanding = self.max_outstanding.max(outstanding);
    }

    /// **Alloc**: a new node becomes reachable; returns its logical id.
    pub fn alloc(&mut self) -> usize {
        let addr = Box::into_raw(Box::new(ModelNode {
            census: Arc::clone(&self.census),
            _pad: [0; 6],
        })) as usize;
        self.nodes.push(addr);
        self.reachable.push(true);
        self.note_outstanding();
        self.nodes.len() - 1
    }

    /// **Acquire**: thread `t` publishes a reference to `node` at byte
    /// offset `8 * offset_words` (interior pointers must pin too), into
    /// its heap block when `use_heap`, else its shadow stack. Skipped
    /// (`false`) when the node is no longer reachable (Assumption 1.1) or
    /// the chosen root storage is full.
    pub fn acquire(&mut self, t: usize, node: usize, offset_words: usize, use_heap: bool) -> bool {
        if node >= self.nodes.len() || !self.reachable[node] {
            return false;
        }
        let addr = self.nodes[node];
        // Census first: from the instant the reference exists in private
        // memory it must pin the node.
        *self.census.root_counts.lock().entry(addr).or_insert(0) += 1;
        let published = addr + (offset_words % 6) * 8;
        let placed = if use_heap && self.heap_block_cells > 0 {
            self.heap_blocks[t]
                .iter()
                .position(|&c| c == 0)
                .map(|cell| {
                    self.heap_blocks[t][cell] = published;
                    RootKind::Cell(cell)
                })
        } else {
            self.shadows[t].publish(published).map(RootKind::Slot)
        };
        match placed {
            Some(kind) => {
                self.held[t].push(Held { kind, node });
                self.note_outstanding();
                true
            }
            None => {
                // Root storage full: back out.
                *self.census.root_counts.lock().get_mut(&addr).unwrap() -= 1;
                false
            }
        }
    }

    /// **Release**: thread `t` drops its `held_idx`-th reference
    /// (swap-removed). Skipped when out of range.
    pub fn release(&mut self, t: usize, held_idx: usize) -> bool {
        if held_idx >= self.held[t].len() {
            return false;
        }
        let h = self.held[t].swap_remove(held_idx);
        match h.kind {
            RootKind::Slot(slot) => {
                self.shadows[t].retract(slot);
            }
            RootKind::Cell(cell) => self.heap_blocks[t][cell] = 0,
        }
        // Census strictly after the root disappears from scannable
        // memory: the destructor check is therefore conservative.
        let addr = self.nodes[h.node];
        *self.census.root_counts.lock().get_mut(&addr).unwrap() -= 1;
        self.note_outstanding();
        true
    }

    /// **Retire**: thread `t` unlinks `node` and hands it to the
    /// collector. Skipped when the node is not currently reachable (each
    /// node is retired at most once).
    pub fn retire(&mut self, t: usize, node: usize) -> bool {
        if node >= self.nodes.len() || !self.reachable[node] {
            return false;
        }
        self.reachable[node] = false;
        // SAFETY: `addr` came from Box::into_raw and `reachable[node]`
        // was just cleared, so it is retired exactly once.
        unsafe { self.handles[t].retire(self.nodes[node] as *mut ModelNode) };
        self.retired += 1;
        self.note_outstanding();
        true
    }

    /// **Collect**: a forced reclamation phase.
    pub fn collect(&mut self) {
        self.collector.collect_now();
        self.note_outstanding();
    }

    /// **Drain**: frees up to `batch` nodes from the distributed-free
    /// queue (§7); returns how many were freed.
    pub fn drain(&mut self, batch: usize) -> usize {
        let n = self.collector.drain_free_queue(batch);
        self.note_outstanding();
        n
    }

    /// End of schedule: releases every root, retires everything still
    /// reachable, and collects until quiescent, then checks Lemma 4
    /// (every allocated node freed).
    ///
    /// The distributed-free drain is **iteration-bounded**: if the queue
    /// still yields nodes after `allocated + 2` full drains, something is
    /// re-queueing or duplicating entries and the model panics with a
    /// diagnostic report instead of spinning forever.
    pub fn finish(mut self) -> ModelReport {
        for t in 0..self.handles.len() {
            while self.release(t, 0) {}
        }
        for node in 0..self.nodes.len() {
            if self.reachable[node] {
                self.retire(0, node);
            }
        }
        // Lemma 4: with no roots left, one phase suffices; we allow two
        // for the survivors carried out of the last in-schedule phase —
        // plus a full queue drain when the distributed-free extension is
        // on.
        self.collect();
        self.collect();
        let allocated = self.nodes.len();
        // Each bounded drain empties the whole queue (or bails under
        // contention, returning 0 and ending the loop), so a correct run
        // takes one or two iterations; `allocated + 2` passes can move
        // strictly more nodes than were ever allocated, which only a
        // re-queueing/duplication liveness bug survives.
        let drain_limit = allocated + 2;
        let mut drains = 0usize;
        while self.drain(usize::MAX) > 0 {
            drains += 1;
            if drains > drain_limit {
                let freed = self.census.freed.load(Ordering::SeqCst);
                panic!(
                    "LIVENESS VIOLATION: distributed-free queue still yielding after \
                     {drains} full drains (limit {drain_limit}): {freed}/{allocated} nodes \
                     freed, {} retired, collector pending_estimate {}",
                    self.retired,
                    self.collector.pending_estimate(),
                );
            }
        }

        let freed = self.census.freed.load(Ordering::SeqCst);
        assert_eq!(
            freed,
            allocated,
            "LIVENESS VIOLATION: {} of {} nodes never freed (collector pending_estimate {})",
            allocated - freed,
            allocated,
            self.collector.pending_estimate(),
        );

        let stats = self.collector.stats();
        ModelReport {
            allocated,
            freed,
            collects: stats.collects,
            max_outstanding: self.max_outstanding,
        }
    }
}

/// Runs one schedule drawn from `chooser`; panics on any violation.
///
/// This is the randomized driver's op mix (Alloc 30%, Acquire 25%,
/// Release 20%, Retire 20%, Collect/Drain 5%), with every choice point —
/// op kind, thread, node, slot, drain batch — routed through `chooser`,
/// so the same schedule logic runs random, replayed, or enumerated.
pub fn run_model_with(config: &ModelConfig, chooser: &mut dyn Chooser) -> ModelReport {
    let mut machine = ModelMachine::new(config);
    for _ in 0..config.steps {
        match chooser.choose("op", 100) {
            // Alloc (30%)
            0..=29 => {
                machine.alloc();
            }
            // Acquire (25%)
            30..=54 => {
                let reachable = machine.reachable_ids();
                if reachable.is_empty() {
                    continue;
                }
                let t = chooser.choose("acquire-thread", config.sim_threads);
                let node = reachable[chooser.choose("acquire-node", reachable.len())];
                let offset = chooser.choose("acquire-offset", 6);
                let use_heap =
                    config.heap_block_cells > 0 && chooser.choose("acquire-root", 2) == 1;
                machine.acquire(t, node, offset, use_heap);
            }
            // Release (20%)
            55..=74 => {
                let t = chooser.choose("release-thread", config.sim_threads);
                let held = machine.held_count(t);
                if held == 0 {
                    continue;
                }
                let idx = chooser.choose("release-idx", held);
                machine.release(t, idx);
            }
            // Retire (20%)
            75..=94 => {
                let reachable = machine.reachable_ids();
                if reachable.is_empty() {
                    continue;
                }
                let t = chooser.choose("retire-thread", config.sim_threads);
                let node = reachable[chooser.choose("retire-node", reachable.len())];
                machine.retire(t, node);
            }
            // Forced collect / distributed drain (5%)
            _ => {
                if config.distributed_frees && chooser.choose("collect-kind", 2) == 1 {
                    // The §7 extension's second half: a non-reclaimer hand
                    // frees a batch from the shared queue. Batch sizes
                    // sweep 1..=2*capacity plus a full drain, so the
                    // `distributed_free_batch` boundary cases (batch equal
                    // to and larger than the queue length) are exercised —
                    // the old `1..16` range could never drain a batch ≥ 16.
                    let spread = 2 * config.buffer_capacity.max(8);
                    let pick = chooser.choose("drain-batch", spread + 1);
                    let batch = if pick == spread { usize::MAX } else { pick + 1 };
                    machine.drain(batch);
                } else {
                    machine.collect();
                }
            }
        }
    }
    machine.finish()
}

/// Runs one seeded random schedule; panics on any safety violation.
pub fn run_model(config: &ModelConfig) -> ModelReport {
    let mut chooser = RandomChooser::seeded(config.seed);
    run_model_with(config, &mut chooser)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_model_run_is_clean() {
        let report = run_model(&ModelConfig::default());
        assert_eq!(report.allocated, report.freed);
        assert!(report.collects > 0, "schedule must exercise collection");
    }

    #[test]
    fn model_is_deterministic_per_seed() {
        let cfg = ModelConfig {
            seed: 42,
            ..Default::default()
        };
        let a = run_model(&cfg);
        let b = run_model(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_buffers_force_many_phases() {
        let report = run_model(&ModelConfig {
            buffer_capacity: 2,
            steps: 1000,
            ..Default::default()
        });
        assert!(
            report.collects >= 20,
            "expected frequent phases, got {}",
            report.collects
        );
    }

    #[test]
    fn single_thread_model_works() {
        let report = run_model(&ModelConfig {
            sim_threads: 1,
            shadow_slots: 2,
            steps: 500,
            seed: 7,
            ..Default::default()
        });
        assert_eq!(report.allocated, report.freed);
    }

    #[test]
    fn distributed_frees_model_run_is_clean() {
        let report = run_model(&ModelConfig {
            distributed_frees: true,
            buffer_capacity: 4,
            steps: 3000,
            seed: 11,
            ..Default::default()
        });
        assert_eq!(report.allocated, report.freed);
        assert!(report.collects > 0);
    }

    #[test]
    fn heap_block_roots_pin_like_stack_roots() {
        let report = run_model(&ModelConfig {
            heap_block_cells: 6,
            buffer_capacity: 4,
            steps: 3000,
            seed: 13,
            ..Default::default()
        });
        assert_eq!(report.allocated, report.freed);
    }

    #[test]
    fn all_extensions_together() {
        let report = run_model(&ModelConfig {
            distributed_frees: true,
            heap_block_cells: 4,
            buffer_capacity: 3,
            steps: 4000,
            seed: 17,
            ..Default::default()
        });
        assert_eq!(report.allocated, report.freed);
    }

    #[test]
    fn drain_batch_equal_to_queue_length_empties_the_queue() {
        // Regression (distributed-free batch boundary): the randomized
        // schedule's old `1..16` drain range could never exercise a batch
        // that equals or exceeds the queue length. Pin both boundaries
        // directly on the machine.
        const CAP: usize = 4;
        let cfg = ModelConfig {
            sim_threads: 2,
            buffer_capacity: CAP,
            distributed_frees: true,
            ..Default::default()
        };
        let mut machine = ModelMachine::new(&cfg);
        // The CAP-th retire fills the delete buffer and becomes the
        // reclaimer: the phase proves all CAP nodes reclaimable and
        // (distribute_frees) queues them instead of freeing. Stopping
        // exactly there matters — a further retire's pre-drain would
        // empty the queue again.
        for _ in 0..CAP {
            let id = machine.alloc();
            machine.retire(0, id);
        }
        assert_eq!(machine.outstanding(), CAP, "queued, not freed");

        // batch == queue length: frees exactly the queue.
        assert_eq!(machine.drain(CAP), CAP);
        assert_eq!(machine.outstanding(), 0);
        assert_eq!(machine.drain(CAP), 0, "queue now empty");

        // Refill the queue the same way, then drain with batch > queue
        // length: frees what is there, no more, and does not spin.
        for _ in 0..CAP {
            let id = machine.alloc();
            machine.retire(1, id);
        }
        assert_eq!(machine.drain(CAP + 100), CAP);
        let report = machine.finish();
        assert_eq!(report.allocated, report.freed);
        assert_eq!(report.allocated, 2 * CAP);
    }

    #[test]
    fn random_schedules_reach_large_drain_batches() {
        // The widened drain-batch choice must actually produce batches at
        // and beyond the old `1..16` ceiling. Count what a seeded driver
        // draws through the same choice logic the schedule uses.
        let cfg = ModelConfig {
            buffer_capacity: 16,
            ..Default::default()
        };
        let mut chooser = RandomChooser::seeded(3);
        let spread = 2 * cfg.buffer_capacity.max(8);
        let mut saw_large = false;
        let mut saw_full = false;
        for _ in 0..512 {
            let pick = chooser.choose("drain-batch", spread + 1);
            let batch = if pick == spread { usize::MAX } else { pick + 1 };
            saw_large |= batch >= 16 && batch != usize::MAX;
            saw_full |= batch == usize::MAX;
        }
        assert!(saw_large, "widened range must cover batches >= 16");
        assert!(saw_full, "widened range must cover full drains");
    }

    #[test]
    fn machine_skips_illegal_ops() {
        let cfg = ModelConfig {
            sim_threads: 2,
            shadow_slots: 1,
            ..Default::default()
        };
        let mut machine = ModelMachine::new(&cfg);
        let id = machine.alloc();
        assert!(machine.acquire(0, id, 0, false));
        assert!(
            !machine.acquire(0, id, 0, false),
            "shadow stack full: acquire must back out"
        );
        assert!(machine.retire(1, id));
        assert!(!machine.retire(1, id), "double retire must be skipped");
        assert!(
            !machine.acquire(1, id, 0, false),
            "Assumption 1.1: retired nodes cannot be newly acquired"
        );
        assert!(machine.release(0, 0));
        assert!(!machine.release(0, 0), "nothing held anymore");
        let report = machine.finish();
        assert_eq!(report.allocated, 1);
        assert_eq!(report.freed, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Safety and liveness hold across arbitrary seeds and shapes.
        #[test]
        fn random_schedules_uphold_lemma1_and_lemma4(
            seed in any::<u64>(),
            sim_threads in 1usize..6,
            shadow_slots in 1usize..12,
            buffer_capacity in 2usize..32,
        ) {
            let report = run_model(&ModelConfig {
                sim_threads,
                shadow_slots,
                buffer_capacity,
                steps: 800,
                seed,
                ..Default::default()
            });
            prop_assert_eq!(report.allocated, report.freed);
        }

        /// The §4.3 and §7 extensions preserve both lemmas across random
        /// schedules and shapes.
        #[test]
        fn extended_schedules_uphold_lemma1_and_lemma4(
            seed in any::<u64>(),
            sim_threads in 1usize..5,
            shadow_slots in 1usize..8,
            buffer_capacity in 2usize..16,
            heap_block_cells in 0usize..8,
            distributed_frees in any::<bool>(),
        ) {
            let report = run_model(&ModelConfig {
                sim_threads,
                shadow_slots,
                buffer_capacity,
                steps: 600,
                seed,
                distributed_frees,
                heap_block_cells,
            });
            prop_assert_eq!(report.allocated, report.freed);
        }
    }
}
