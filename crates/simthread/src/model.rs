//! Randomized protocol model checking.
//!
//! Runs the full collector protocol over the deterministic [`SimPlatform`]
//! with a seeded random schedule of the abstract operations the paper's
//! proofs quantify over:
//!
//! * **Alloc** — a node becomes reachable;
//! * **Acquire** — a simulated thread copies a reference into its private
//!   memory (shadow stack) — legal only while the node is still reachable
//!   (Assumption 1.1: removed nodes cannot be newly reached);
//! * **Release** — a private reference is dropped;
//! * **Retire** — the node is unlinked and handed to the collector;
//! * **Collect** — a forced reclamation phase.
//!
//! Checked invariants:
//!
//! * **Safety (Lemma 1)** — a node is never freed while any simulated
//!   thread still publishes a reference to it. Checked *inside the node's
//!   destructor* against an exact root census.
//! * **Eventual reclamation (Lemma 4)** — once all references are released
//!   and all nodes retired, a bounded number of phases frees everything.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use threadscan::{Collector, CollectorConfig};

use crate::virtsig::SimPlatform;

/// Parameters for one model run.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Simulated threads (each gets a collector handle + shadow stack).
    pub sim_threads: usize,
    /// Root slots per shadow stack.
    pub shadow_slots: usize,
    /// Delete-buffer capacity (small values force frequent phases).
    pub buffer_capacity: usize,
    /// Schedule length in operations.
    pub steps: usize,
    /// RNG seed (same seed ⇒ same schedule ⇒ same outcome).
    pub seed: u64,
    /// Enable the §7 distributed-free extension: freed nodes queue for
    /// other handles to deallocate, and the schedule gains a Drain op.
    pub distributed_frees: bool,
    /// Cells per simulated thread's registered heap block (§4.3
    /// extension); 0 disables heap blocks. When enabled, half of all
    /// Acquire ops publish into the heap block instead of the shadow
    /// stack.
    pub heap_block_cells: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self {
            sim_threads: 4,
            shadow_slots: 8,
            buffer_capacity: 8,
            steps: 2000,
            seed: 0,
            distributed_frees: false,
            heap_block_cells: 0,
        }
    }
}

/// Outcome of a model run. A safety violation panics inside the run
/// instead of being reported here, so reaching a report at all means the
/// safety invariant held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelReport {
    /// Nodes allocated over the schedule.
    pub allocated: usize,
    /// Nodes whose destructor ran (must equal `allocated` at the end).
    pub freed: usize,
    /// Reclamation phases executed.
    pub collects: usize,
    /// Peak retired-but-not-freed node count observed.
    pub max_outstanding: usize,
}

/// Exact census of published references, shared with node destructors.
struct Census {
    root_counts: Mutex<HashMap<usize, usize>>,
    freed: AtomicUsize,
}

/// A model node; its destructor checks the safety invariant.
struct ModelNode {
    census: Arc<Census>,
    /// Padding so interior pointers and ranges are exercised.
    _pad: [u64; 6],
}

impl Drop for ModelNode {
    fn drop(&mut self) {
        let addr = self as *mut ModelNode as usize;
        let roots = self.census.root_counts.lock();
        let outstanding = roots.get(&addr).copied().unwrap_or(0);
        assert_eq!(
            outstanding, 0,
            "SAFETY VIOLATION: node {addr:#x} freed with {outstanding} live root(s)"
        );
        drop(roots);
        self.census.freed.fetch_add(1, Ordering::SeqCst);
    }
}

/// Where a held reference is published.
enum RootKind {
    /// Shadow-stack slot index.
    Slot(usize),
    /// Heap-block cell index (§4.3 extension).
    Cell(usize),
}

/// A reference currently held by a simulated thread.
struct Held {
    kind: RootKind,
    addr: usize,
}

/// Runs one seeded schedule; panics on any safety violation.
pub fn run_model(config: &ModelConfig) -> ModelReport {
    assert!(config.sim_threads >= 1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let platform = SimPlatform::direct(config.shadow_slots);
    let collector = Collector::with_config(
        platform.clone(),
        CollectorConfig::default()
            .with_buffer_capacity(config.buffer_capacity)
            .with_distributed_frees(config.distributed_frees),
    );
    let census = Arc::new(Census {
        root_counts: Mutex::new(HashMap::new()),
        freed: AtomicUsize::new(0),
    });

    // All simulated threads live on this real thread: the schedule *is*
    // the interleaving, at operation granularity.
    let handles: Vec<_> = (0..config.sim_threads)
        .map(|_| collector.register())
        .collect();
    let shadows: Vec<_> = (0..config.sim_threads)
        .map(|i| platform.shadow(i))
        .collect();

    // §4.3 heap blocks: one registered block of `heap_block_cells` words
    // per simulated thread; cell value 0 means free.
    let mut heap_blocks: Vec<Box<[usize]>> = (0..config.sim_threads)
        .map(|_| vec![0usize; config.heap_block_cells].into_boxed_slice())
        .collect();
    if config.heap_block_cells > 0 {
        for (t, block) in heap_blocks.iter().enumerate() {
            handles[t]
                .add_heap_block(block.as_ptr().cast(), block.len() * 8)
                .expect("register model heap block");
        }
    }

    let mut reachable: Vec<usize> = Vec::new(); // allocated, not retired
    let mut held: Vec<Vec<Held>> = (0..config.sim_threads).map(|_| Vec::new()).collect();
    let mut allocated = 0usize;
    let mut retired = 0usize;
    let mut max_outstanding = 0usize;

    let alloc = |census: &Arc<Census>| -> usize {
        Box::into_raw(Box::new(ModelNode {
            census: Arc::clone(census),
            _pad: [0; 6],
        })) as usize
    };

    for _ in 0..config.steps {
        match rng.gen_range(0..100) {
            // Alloc (30%)
            0..=29 => {
                reachable.push(alloc(&census));
                allocated += 1;
            }
            // Acquire (25%)
            30..=54 => {
                if reachable.is_empty() {
                    continue;
                }
                let t = rng.gen_range(0..config.sim_threads);
                let addr = reachable[rng.gen_range(0..reachable.len())];
                // Census first: from the instant the reference exists in
                // private memory it must pin the node.
                *census.root_counts.lock().entry(addr).or_insert(0) += 1;
                // Interior pointers must pin too — exercise them.
                let published = addr + (rng.gen_range(0..6usize)) * 8;
                let use_heap = config.heap_block_cells > 0 && rng.gen_bool(0.5);
                let placed = if use_heap {
                    heap_blocks[t].iter().position(|&c| c == 0).map(|cell| {
                        heap_blocks[t][cell] = published;
                        RootKind::Cell(cell)
                    })
                } else {
                    shadows[t].publish(published).map(RootKind::Slot)
                };
                match placed {
                    Some(kind) => held[t].push(Held { kind, addr }),
                    None => {
                        // Root storage full: back out.
                        *census.root_counts.lock().get_mut(&addr).unwrap() -= 1;
                    }
                }
            }
            // Release (20%)
            55..=74 => {
                let t = rng.gen_range(0..config.sim_threads);
                if held[t].is_empty() {
                    continue;
                }
                let idx = rng.gen_range(0..held[t].len());
                let h = held[t].swap_remove(idx);
                match h.kind {
                    RootKind::Slot(slot) => {
                        shadows[t].retract(slot);
                    }
                    RootKind::Cell(cell) => heap_blocks[t][cell] = 0,
                }
                // Census strictly after the root disappears from scannable
                // memory: the destructor check is therefore conservative.
                *census.root_counts.lock().get_mut(&h.addr).unwrap() -= 1;
            }
            // Retire (20%)
            75..=94 => {
                if reachable.is_empty() {
                    continue;
                }
                let t = rng.gen_range(0..config.sim_threads);
                let addr = reachable.swap_remove(rng.gen_range(0..reachable.len()));
                // SAFETY: `addr` came from Box::into_raw and leaves
                // `reachable`, so it is retired exactly once.
                unsafe { handles[t].retire(addr as *mut ModelNode) };
                retired += 1;
            }
            // Forced collect / distributed drain (5%)
            _ => {
                if config.distributed_frees && rng.gen_bool(0.5) {
                    // The §7 extension's second half: a non-reclaimer hand
                    // frees a batch from the shared queue.
                    collector.drain_free_queue(rng.gen_range(1..16));
                } else {
                    collector.collect_now();
                }
            }
        }
        let outstanding = retired - census.freed.load(Ordering::SeqCst);
        max_outstanding = max_outstanding.max(outstanding);
    }

    // Drain: release every root, retire everything, collect until done.
    for t in 0..config.sim_threads {
        for h in held[t].drain(..) {
            match h.kind {
                RootKind::Slot(slot) => {
                    shadows[t].retract(slot);
                }
                RootKind::Cell(cell) => heap_blocks[t][cell] = 0,
            }
            *census.root_counts.lock().get_mut(&h.addr).unwrap() -= 1;
        }
    }
    for addr in reachable.drain(..) {
        unsafe { handles[0].retire(addr as *mut ModelNode) };
    }
    // Lemma 4: with no roots left, one phase suffices; we allow two for
    // the survivors carried out of the last in-schedule phase — plus a
    // full queue drain when the distributed-free extension is on.
    collector.collect_now();
    collector.collect_now();
    if config.distributed_frees {
        while collector.drain_free_queue(usize::MAX) > 0 {}
    }

    let freed = census.freed.load(Ordering::SeqCst);
    assert_eq!(
        freed,
        allocated,
        "LIVENESS VIOLATION: {} of {} nodes never freed",
        allocated - freed,
        allocated
    );

    let stats = collector.stats();
    drop(handles);
    ModelReport {
        allocated,
        freed,
        collects: stats.collects,
        max_outstanding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_model_run_is_clean() {
        let report = run_model(&ModelConfig::default());
        assert_eq!(report.allocated, report.freed);
        assert!(report.collects > 0, "schedule must exercise collection");
    }

    #[test]
    fn model_is_deterministic_per_seed() {
        let cfg = ModelConfig {
            seed: 42,
            ..Default::default()
        };
        let a = run_model(&cfg);
        let b = run_model(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_buffers_force_many_phases() {
        let report = run_model(&ModelConfig {
            buffer_capacity: 2,
            steps: 1000,
            ..Default::default()
        });
        assert!(
            report.collects >= 20,
            "expected frequent phases, got {}",
            report.collects
        );
    }

    #[test]
    fn single_thread_model_works() {
        let report = run_model(&ModelConfig {
            sim_threads: 1,
            shadow_slots: 2,
            steps: 500,
            seed: 7,
            ..Default::default()
        });
        assert_eq!(report.allocated, report.freed);
    }

    #[test]
    fn distributed_frees_model_run_is_clean() {
        let report = run_model(&ModelConfig {
            distributed_frees: true,
            buffer_capacity: 4,
            steps: 3000,
            seed: 11,
            ..Default::default()
        });
        assert_eq!(report.allocated, report.freed);
        assert!(report.collects > 0);
    }

    #[test]
    fn heap_block_roots_pin_like_stack_roots() {
        let report = run_model(&ModelConfig {
            heap_block_cells: 6,
            buffer_capacity: 4,
            steps: 3000,
            seed: 13,
            ..Default::default()
        });
        assert_eq!(report.allocated, report.freed);
    }

    #[test]
    fn all_extensions_together() {
        let report = run_model(&ModelConfig {
            distributed_frees: true,
            heap_block_cells: 4,
            buffer_capacity: 3,
            steps: 4000,
            seed: 17,
            ..Default::default()
        });
        assert_eq!(report.allocated, report.freed);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// Safety and liveness hold across arbitrary seeds and shapes.
        #[test]
        fn random_schedules_uphold_lemma1_and_lemma4(
            seed in any::<u64>(),
            sim_threads in 1usize..6,
            shadow_slots in 1usize..12,
            buffer_capacity in 2usize..32,
        ) {
            let report = run_model(&ModelConfig {
                sim_threads,
                shadow_slots,
                buffer_capacity,
                steps: 800,
                seed,
                ..Default::default()
            });
            prop_assert_eq!(report.allocated, report.freed);
        }

        /// The §4.3 and §7 extensions preserve both lemmas across random
        /// schedules and shapes.
        #[test]
        fn extended_schedules_uphold_lemma1_and_lemma4(
            seed in any::<u64>(),
            sim_threads in 1usize..5,
            shadow_slots in 1usize..8,
            buffer_capacity in 2usize..16,
            heap_block_cells in 0usize..8,
            distributed_frees in any::<bool>(),
        ) {
            let report = run_model(&ModelConfig {
                sim_threads,
                shadow_slots,
                buffer_capacity,
                steps: 600,
                seed,
                distributed_frees,
                heap_block_cells,
            });
            prop_assert_eq!(report.allocated, report.freed);
        }
    }
}
